//! Offline in-tree FxHash: the Firefox/rustc multiply-rotate-xor hash.
//!
//! The simulator's hot maps (`Block → latency`, predecode caches, loop
//! trip counters) are keyed by small integers and sit on the per-cycle
//! path, where SipHash's per-lookup cost dominates. FxHash replaces it
//! with one rotate + xor + multiply per 8-byte word. It is **not**
//! DoS-resistant — only use it for keys the simulator itself generates.
//!
//! Determinism note: unlike `std`'s `RandomState`, `FxBuildHasher` is a
//! fixed function of the key, so map *iteration order* is identical
//! across processes. The simulator never relies on map iteration order
//! for results, but this property means a hasher swap can never
//! introduce cross-process nondeterminism the way seeding differences
//! could.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Zero-seed `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// 64-bit odd constant from the Firefox hash (Fibonacci hashing scaled
/// to 64 bits); one multiply spreads entropy across the high bits.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash streaming state: `hash = (rotl(hash, 5) ^ word) * SEED`
/// per 8-byte word, with the tail handled a word at a time.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (word, rest) = bytes.split_at(8);
            let mut buf = [0u8; 8];
            buf.copy_from_slice(word);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = rest;
        }
        if !bytes.is_empty() {
            let mut buf = [0u8; 8];
            buf[..bytes.len()].copy_from_slice(bytes);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        for key in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(hash_of(&key), hash_of(&key));
        }
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn integer_writes_match_byte_writes_domain_separate() {
        // Different widths of the same value may hash differently; what
        // matters is each width is self-consistent and spreads values.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            assert!(seen.insert(hash_of(&i)), "collision at {i}");
        }
    }

    #[test]
    fn tail_bytes_affect_hash() {
        let mut a = FxHasher::default();
        a.write(b"abcdefgh_tail1");
        let mut b = FxHasher::default();
        b.write(b"abcdefgh_tail2");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, (i * 3) as u32);
        }
        assert_eq!(m.get(&42), Some(&126));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }
}
