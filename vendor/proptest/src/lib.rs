//! Offline in-tree shim for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build environment cannot resolve the real `proptest` crate, so
//! this shim provides the same *source-level* surface with a simple
//! randomized-testing core: each `proptest!` test generates `cases`
//! seeded-random inputs (deterministic per test name) and runs the body
//! on each. There is no shrinking; a failing case panics with the
//! ordinary assertion message.
//!
//! Supported surface:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ..) {..} }`
//! * strategies: integer and float [`Range`]/[`RangeInclusive`], tuples
//!   of strategies (up to 10), [`Strategy::prop_map`], and
//!   [`collection::vec`],
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!` (mapped to the
//!   corresponding `assert!` family),
//! * [`prelude::ProptestConfig`] with [`ProptestConfig::with_cases`].
//!
//! [`Range`]: core::ops::Range
//! [`RangeInclusive`]: core::ops::RangeInclusive
//! [`ProptestConfig`]: test_runner::Config

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Test-runner configuration.
pub mod test_runner {
    /// Mirrors `proptest::test_runner::Config` for the fields used here.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real default is 256; 64 keeps the heavier simulation
            // property tests affordable while still exploring the space.
            Config { cases: 64 }
        }
    }
}

/// Deterministic per-test RNG construction (FNV-1a over the test path).
#[doc(hidden)]
pub fn rng_for_test(test_path: &str) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut SmallRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            element,
            min: size.start,
            max_exclusive: size.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..self.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-imported prelude, matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. See the crate docs for the supported form.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(
            @impl ($crate::test_runner::Config::default());
            $(#[$meta])* fn $($rest)*
        );
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng =
                $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// `prop_assert!` mapped onto `assert!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` mapped onto `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` mapped onto `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn tuples_and_maps_compose(
            (a, b) in (0u8..10, 0u64..100).prop_map(|(a, b)| (a, b * 2)),
            f in 0.0f64..1.0,
        ) {
            prop_assert!(a < 10);
            prop_assert_eq!(b % 2, 0);
            prop_assert!(b < 200);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vectors_respect_length_bounds(
            v in crate::collection::vec((0u8..2, 0u64..64), 1..50)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            for (op, block) in v {
                prop_assert!(op < 2);
                prop_assert!(block < 64);
            }
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::Rng;
        let mut a = crate::rng_for_test("x::y");
        let mut b = crate::rng_for_test("x::y");
        let mut c = crate::rng_for_test("x::z");
        let (va, vb): (u64, u64) = (a.gen(), b.gen());
        assert_eq!(va, vb);
        assert!((0..8).any(|_| a.gen::<u64>() != c.gen::<u64>()));
    }
}
