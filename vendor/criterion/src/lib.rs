//! Offline in-tree shim for the subset of the `criterion` API this
//! workspace's benches use.
//!
//! The build environment cannot resolve the real `criterion` crate. This
//! shim keeps every `benches/*.rs` target compiling and runnable: each
//! benchmark is timed with a simple calibrated loop (warm-up + a
//! time-capped batch of iterations) and reported as `ns/iter` on stdout.
//! It is *not* a statistically rigorous harness — it exists so `cargo
//! bench` gives ballpark numbers offline and `cargo test`/`cargo build`
//! resolve without a registry.
//!
//! When invoked with `--test` (as `cargo test` does for bench targets),
//! every routine runs exactly once so test runs stay fast.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// An opaque identity function that defeats constant folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (ignored by the shim's timer).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Drives one benchmark's iteration loop.
pub struct Bencher {
    test_mode: bool,
    /// Mean nanoseconds per iteration, filled in by `iter*`.
    ns_per_iter: f64,
}

const TARGET: Duration = Duration::from_millis(120);
const MAX_ITERS: u64 = 10_000_000;

impl Bencher {
    /// Times `routine`, storing the mean ns/iter.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.ns_per_iter = 0.0;
            return;
        }
        // Warm up and calibrate with a single iteration.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.ns_per_iter = t0.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded
    /// from the timing).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            self.ns_per_iter = 0.0;
            return;
        }
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 1000 as u128) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total += t0.elapsed();
        }
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }
}

/// The top-level benchmark manager.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let mut line = format!("bench {name:40} {ns:14.1} ns/iter");
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if count > 0 && ns > 0.0 {
            let per_sec = count as f64 / (ns * 1e-9);
            line.push_str(&format!("   {per_sec:14.0} {unit}/s"));
        }
    }
    println!("{line}");
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<N, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        N: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            test_mode: self.test_mode,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        if !self.test_mode {
            report(name.as_ref(), b.ns_per_iter, None);
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for compatibility; the shim's
    /// loop is time-capped instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Attaches a throughput annotation to subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<N, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        N: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        if !self.criterion.test_mode {
            let full = format!("{}/{}", self.name, name.as_ref());
            report(&full, b.ns_per_iter, self.throughput);
        }
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0u32;
        c.bench_function("t", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_run_batched_routines() {
        let mut c = Criterion { test_mode: true };
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(1));
        let mut ran = 0u32;
        g.bench_function("t", |b| {
            b.iter_batched(|| 1u32, |x| ran += x, BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(ran, 1);
    }
}
