//! Offline in-tree shim for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no network access and no vendored registry,
//! so the real `rand` crate cannot be resolved. This shim provides a
//! drop-in replacement for exactly the surface the workspace consumes:
//!
//! * [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over integer/float ranges (half-open and
//!   inclusive),
//! * [`Rng::gen`] and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ (the same family the real `SmallRng`
//! uses on 64-bit targets) seeded through splitmix64, so statistical
//! quality is adequate for workload synthesis. Streams are *not*
//! bit-compatible with upstream `rand`; all uses in this workspace only
//! require determinism for a fixed seed, which this shim guarantees.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}
impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Maps 64 random bits to a uniform float in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits of precision, exactly as the real crate does.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as u128 + v) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + (hi - lo) * unit_f64(rng.next_u64()) as f32
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

/// User-facing convenience methods, blanket-implemented for any
/// [`RngCore`] (mirroring `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded through splitmix64 — a small, fast generator
    /// matching the role of `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert!((0..16).any(|_| a.gen::<u64>() != b.gen::<u64>()));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&u));
            let k = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&k));
            let j = rng.gen_range(0..10u32);
            assert!(j < 10);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let draws: Vec<f64> = (0..2000).map(|_| rng.gen_range(0.0..1.0)).collect();
        assert!(draws.iter().any(|&u| u < 0.1));
        assert!(draws.iter().any(|&u| u > 0.9));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((800..1200).contains(&hits), "hits {hits}");
    }
}
