//! The paper's headline argument (Fig. 18): BTB-directed prefetching
//! degrades as BTB capacity shrinks relative to the workload's branch
//! working set, while SN4L+Dis+BTB — whose instruction prefetching does
//! not depend on BTB content — keeps its gains.
//!
//! ```sh
//! cargo run --release -p dcfb-examples --example btb_pressure
//! ```

use dcfb_frontend::ShotgunBtbConfig;
use dcfb_sim::{run_config, PrefetcherKind, SimConfig};
use dcfb_workloads::workload;

fn main() {
    let w = workload("OLTP (DB A)").expect("catalog workload");
    println!("workload: {} (largest instruction footprint)\n", w.name);
    println!(
        "{:>10} {:>14} {:>10} {:>12} {:>16}",
        "BTB scale", "SN4L+Dis+BTB", "Shotgun", "ours/Shotgun", "footprint miss"
    );

    for scale in [1.0f64, 0.5, 0.25, 0.125] {
        // Our proposal with a scaled conventional BTB.
        let mut ours = SimConfig::for_method("SN4L+Dis+BTB").expect("method");
        ours.warmup_instrs = 400_000;
        ours.measure_instrs = 800_000;
        ours.btb.entries = ((ours.btb.entries as f64 * scale) as usize).max(64) / 4 * 4;
        let ours_rep = run_config(&w, ours, 42);

        // Shotgun with all three split-BTB components scaled.
        let mut shot = SimConfig::for_method("Shotgun").expect("method");
        shot.warmup_instrs = 400_000;
        shot.measure_instrs = 800_000;
        shot.prefetcher = PrefetcherKind::Shotgun(ShotgunBtbConfig::scaled(scale));
        let shot_rep = run_config(&w, shot, 42);

        println!(
            "{:>10} {:>13.3} {:>10.3} {:>11.2}x {:>15.1}%",
            format!("{scale:.3}x"),
            ours_rep.ipc(),
            shot_rep.ipc(),
            ours_rep.ipc() / shot_rep.ipc().max(1e-9),
            shot_rep
                .shotgun
                .map(|s| s.footprint_miss_ratio() * 100.0)
                .unwrap_or(0.0),
        );
    }
    println!("\nExpected shape: the ours/Shotgun ratio grows as the BTB shrinks (Fig. 18).");
}
