//! Shootout: every prefetcher in the paper on one workload.
//!
//! ```sh
//! cargo run --release -p dcfb-examples --example prefetcher_shootout [workload]
//! ```
//!
//! The optional argument is a Table IV workload name
//! (default: "OLTP (DB B)").

use dcfb_sim::{run_config, SimConfig};
use dcfb_workloads::{workload, workload_names};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "OLTP (DB B)".to_owned());
    let Some(w) = workload(&name) else {
        eprintln!(
            "unknown workload {name:?}; choose one of {:?}",
            workload_names()
        );
        std::process::exit(1);
    };

    let methods = [
        "Baseline",
        "NL",
        "N2L",
        "N4L",
        "N8L",
        "Discontinuity",
        "SN4L",
        "Dis",
        "SN4L+Dis",
        "SN4L+Dis+BTB",
        "Boomerang",
        "Shotgun",
        "Confluence",
    ];

    println!("workload: {}\n", w.name);
    println!(
        "{:14} {:>7} {:>7} {:>8} {:>9} {:>9} {:>10}",
        "method", "IPC", "MPKI", "speedup", "CMAL", "ext BW", "storage"
    );

    let mut baseline_ipc = 0.0;
    let mut baseline_bw = 0.0;
    for m in methods {
        let mut cfg = SimConfig::for_method(m).expect("known method");
        cfg.warmup_instrs = 500_000;
        cfg.measure_instrs = 1_000_000;
        let r = run_config(&w, cfg, 42);
        let bw_rate = r.external_requests as f64 / r.instrs.max(1) as f64;
        if m == "Baseline" {
            baseline_ipc = r.ipc();
            baseline_bw = bw_rate;
        }
        println!(
            "{:14} {:7.3} {:7.1} {:7.2}x {:8.1}% {:8.2}x {:7.1} KB",
            m,
            r.ipc(),
            r.l1i_mpki(),
            if baseline_ipc > 0.0 {
                r.ipc() / baseline_ipc
            } else {
                0.0
            },
            r.cmal() * 100.0,
            if baseline_bw > 0.0 {
                bw_rate / baseline_bw
            } else {
                0.0
            },
            r.storage_bits as f64 / 8.0 / 1024.0,
        );
    }
}
