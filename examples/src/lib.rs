//! See the example binaries in this package.
