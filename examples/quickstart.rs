//! Quickstart: run the paper's SN4L+Dis+BTB prefetcher against the
//! no-prefetcher baseline on one server workload.
//!
//! ```sh
//! cargo run --release -p dcfb-examples --example quickstart
//! ```

use dcfb_sim::{run_workload, SimConfig};
use dcfb_workloads::workload;

fn main() {
    // 1. Pick a calibrated synthetic server workload (Table IV).
    let w = workload("Web (Apache)").expect("catalog workload");
    println!(
        "workload: {} (~{:.0} KiB of code)",
        w.name,
        w.params.approx_footprint_kib()
    );

    // 2. Configure the paper's full proposal. `for_method` knows every
    //    evaluated configuration by its figure name.
    let mut cfg = SimConfig::for_method("SN4L+Dis+BTB").expect("known method");
    cfg.warmup_instrs = 500_000;
    cfg.measure_instrs = 1_000_000;

    // 3. Run it paired with the baseline (same image, same trace seed).
    let result = run_workload(&w, cfg, /* trace seed */ 42);

    let r = &result.report;
    let b = &result.baseline;
    println!("\n                      baseline    SN4L+Dis+BTB");
    println!("IPC                   {:8.3}    {:8.3}", b.ipc(), r.ipc());
    println!(
        "L1i MPKI              {:8.1}    {:8.1}",
        b.l1i_mpki(),
        r.l1i_mpki()
    );
    println!(
        "frontend stall frac   {:8.3}    {:8.3}",
        b.frontend_stalls() as f64 / b.cycles as f64,
        r.frontend_stalls() as f64 / r.cycles as f64,
    );
    println!("\nspeedup         : {:.2}x", result.speedup());
    println!("miss coverage   : {:.1}%", result.coverage() * 100.0);
    println!("FSCR            : {:.1}%", result.fscr() * 100.0);
    println!("CMAL            : {:.1}%", r.cmal() * 100.0);
    println!(
        "metadata budget : {:.1} KB (paper: 7.6 KB)",
        r.storage_bits as f64 / 8.0 / 1024.0
    );
}
