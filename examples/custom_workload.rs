//! Build a *custom* synthetic server workload, inspect its static and
//! dynamic structure, and measure how prefetchable it is.
//!
//! ```sh
//! cargo run --release -p dcfb-examples --example custom_workload
//! ```

use dcfb_cache::CacheConfig;
use dcfb_sim::analysis;
use dcfb_sim::{run_workload, SimConfig};
use dcfb_trace::{IsaMode, StreamStats};
use dcfb_workloads::{Walker, Workload, WorkloadParams};
use std::sync::Arc;

fn main() {
    // A microservice-style workload: mid-sized footprint, heavy error
    // handling, shallow call graph.
    let params = WorkloadParams {
        name: "microservice".to_owned(),
        functions: 900,
        avg_segments: 12.0,
        avg_bb_instrs: 5.0,
        cold_frac: 0.40,
        cold_taken_prob: 0.03,
        avg_cold_instrs: 14.0,
        loop_frac: 0.08,
        avg_loop_iters: 3.0,
        call_frac: 0.30,
        indirect_frac: 0.15,
        zipf_s: 0.9,
        max_call_depth: 24,
        root_functions: 20,
        biased_branch_frac: 0.85,
    };
    let w = Workload {
        name: "microservice",
        params,
        image_seed: 2026,
    };

    // --- Static structure. ---
    let image = w.image(IsaMode::Fixed4);
    let (cond, uncond, indirect, rets) = image.branch_census();
    println!("static image:");
    println!("  code size        : {} KiB", image.code_bytes() / 1024);
    println!("  functions        : {}", image.functions().len());
    println!("  code blocks      : {}", image.code_blocks());
    println!("  branch sites     : {cond} cond, {uncond} uncond, {indirect} indirect, {rets} ret");

    // --- Dynamic structure. ---
    let mut walker = Walker::new(Arc::clone(&image), 7);
    let stats = StreamStats::measure(&mut walker, 1_000_000);
    println!("\ndynamic trace (1M instructions):");
    println!(
        "  branch density   : {:.1}%",
        stats.branch_density() * 100.0
    );
    println!("  touched footprint: {:.0} KiB", stats.footprint_kib());
    println!("  transactions     : {}", walker.transactions());

    let mut walker = Walker::new(Arc::clone(&image), 7);
    let (seq, disc) =
        analysis::sequential_miss_fraction(&mut walker, CacheConfig::l1i(), 1_000_000);
    println!(
        "  L1i misses       : {} sequential / {} discontinuity ({:.0}% sequential)",
        seq,
        disc,
        100.0 * seq as f64 / (seq + disc).max(1) as f64
    );
    let mut walker = Walker::new(Arc::clone(&image), 7);
    let stability = analysis::discontinuity_stability(&mut walker, 1_000_000);
    println!(
        "  disc. stability  : {:.0}% (same branch as last time)",
        stability * 100.0
    );

    // --- How well does the paper's prefetcher do on it? ---
    let mut cfg = SimConfig::for_method("SN4L+Dis+BTB").expect("method");
    cfg.warmup_instrs = 400_000;
    cfg.measure_instrs = 800_000;
    let result = run_workload(&w, cfg, 7);
    println!("\nSN4L+Dis+BTB on this workload:");
    println!("  speedup       : {:.2}x", result.speedup());
    println!("  miss coverage : {:.1}%", result.coverage() * 100.0);
    println!("  FSCR          : {:.1}%", result.fscr() * 100.0);
}
