//! Variable-length ISA support (§V-D): branch footprints virtualized in
//! the DV-LLC make BTB pre-decoding possible when instruction
//! boundaries are not self-describing.
//!
//! ```sh
//! cargo run --release -p dcfb-examples --example vl_isa
//! ```

use dcfb_cache::BranchFootprint;
use dcfb_sim::{run_config, SimConfig};
use dcfb_trace::{CodeMemory, IsaMode};
use dcfb_workloads::workload;

fn main() {
    let w = workload("Web (Zeus)").expect("catalog workload");

    // --- Branch footprints on a variable-length image. ---
    let image = w.image(IsaMode::Variable);
    let mut covered = 0usize;
    let mut overflowed = 0usize;
    let mut code_blocks = 0usize;
    let end = dcfb_trace::block_of(image.end());
    for block in dcfb_trace::block_of(dcfb_workloads::image::IMAGE_BASE)..=end {
        let instrs = image.instrs_in_block(block);
        if instrs.is_empty() {
            continue;
        }
        code_blocks += 1;
        let (_bf, overflow) = BranchFootprint::from_block(&instrs);
        if overflow == 0 {
            covered += 1;
        } else {
            overflowed += 1;
        }
    }
    println!("variable-length image of {}:", w.name);
    println!("  code blocks                : {code_blocks}");
    println!(
        "  fully covered by 4-entry BF : {covered} ({:.1}%)",
        100.0 * covered as f64 / code_blocks.max(1) as f64
    );
    println!("  blocks with >4 branches     : {overflowed} (Fig. 8: should be rare)");

    // --- DV-LLC on vs. off under the full prefetcher. ---
    println!("\nSN4L+Dis+BTB with branch footprints virtualized in the DV-LLC:");
    for (label, dvllc) in [("DV-LLC on", true), ("DV-LLC off (no BF source)", false)] {
        let mut cfg = SimConfig::for_method("SN4L+Dis+BTB").expect("method");
        cfg.isa = IsaMode::Variable;
        cfg.uncore.dvllc = dvllc;
        cfg.warmup_instrs = 400_000;
        cfg.measure_instrs = 800_000;
        let r = run_config(&w, cfg, 42);
        let llc_hit = r.uncore.llc_hits as f64 / r.uncore.requests.max(1) as f64;
        println!(
            "  {label:28}: IPC {:.3}, BTB-miss stalls {:>7}, LLC hit {:.1}%",
            r.ipc(),
            r.stall_btb,
            llc_hit * 100.0
        );
    }
    println!("\nWithout the DV-LLC the pre-decoder cannot find instruction boundaries,");
    println!("so BTB prefilling stops and BTB-miss bubbles return (§V-D).");
}
