//! End-to-end contract for the serve-era argument handling: shard
//! range violations are typed configuration errors (exit 3, not a
//! usage error and not a panic), `serve` without an address is a usage
//! error (exit 2), and the exit codes match the documented table.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::process::{Command, Output};

fn dcfb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dcfb"))
        .args(args)
        .output()
        .expect("spawn dcfb")
}

#[test]
fn zero_shards_is_a_typed_config_error() {
    let out = dcfb(&[
        "run",
        "--workload",
        "Web Search",
        "--warmup",
        "1000",
        "--measure",
        "2000",
        "--shards",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(3), "exit 3 = invalid configuration");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("invalid configuration") && stderr.contains("--shards"),
        "want a typed config diagnostic, got:\n{stderr}"
    );
}

#[test]
fn overlap_past_the_warmup_window_is_a_typed_config_error() {
    let out = dcfb(&[
        "run",
        "--workload",
        "Web Search",
        "--warmup",
        "1000",
        "--measure",
        "2000",
        "--shards",
        "2",
        "--warmup-overlap",
        "1001",
    ]);
    assert_eq!(out.status.code(), Some(3), "exit 3 = invalid configuration");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("invalid configuration") && stderr.contains("--warmup-overlap"),
        "want a typed config diagnostic, got:\n{stderr}"
    );
}

#[test]
fn full_warmup_overlap_stays_valid() {
    // overlap == warmup is the conformance operating point, not an
    // error: every later shard warms on the full prefix.
    let out = dcfb(&[
        "run",
        "--workload",
        "Web Search",
        "--warmup",
        "1000",
        "--measure",
        "2000",
        "--shards",
        "2",
        "--warmup-overlap",
        "1000",
    ]);
    assert!(
        out.status.success(),
        "full-warmup overlap must run:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn serve_without_addr_is_a_usage_error() {
    let out = dcfb(&["serve"]);
    assert_eq!(out.status.code(), Some(2), "exit 2 = usage");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--addr"), "got:\n{stderr}");
}

#[test]
fn unparseable_shards_is_still_a_usage_error() {
    // Non-integer values never reach the typed validation; they are
    // malformed arguments.
    let out = dcfb(&["run", "--shards", "three"]);
    assert_eq!(out.status.code(), Some(2));
}
