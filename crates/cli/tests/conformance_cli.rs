//! End-to-end contract for `dcfb conformance`: a clean run prints the
//! per-check table and exits 0, the seed is reproducible, and bad
//! arguments exit 2 with a one-line diagnostic.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::process::{Command, Output};

fn dcfb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dcfb"))
        .args(args)
        .output()
        .expect("spawn dcfb")
}

#[test]
fn conformance_passes_and_reports_every_check() {
    let out = dcfb(&["conformance", "--seed", "42", "--ops", "1500"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "conformance failed:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("seed=42"));
    assert!(stdout.contains("ops=1500"));
    for check in [
        "lockstep/seq-table",
        "lockstep/dis-table",
        "lockstep/rlu",
        "lockstep/btb-buffer",
        "lockstep/prefetch-buffer",
        "lockstep/sn4l",
        "lockstep/dis",
        "lockstep/proactive",
        "invariant/sn4l-gating",
        "invariant/chain-depth",
        "invariant/timeliness-sums",
        "invariant/replay-deterministic",
        "invariant/corpus-replay",
    ] {
        assert!(stdout.contains(check), "missing {check}:\n{stdout}");
    }
    assert!(stdout.contains("all checks passed"));
    assert!(!stdout.contains("FAIL"));
}

#[test]
fn conformance_same_seed_same_output() {
    let a = dcfb(&["conformance", "--seed", "7", "--ops", "800"]);
    let b = dcfb(&["conformance", "--seed", "7", "--ops", "800"]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout, "same seed must render identically");
}

#[test]
fn non_numeric_ops_is_a_usage_error() {
    let out = dcfb(&["conformance", "--ops", "lots"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.starts_with("error:"), "diagnostic first: {stderr}");
    assert!(!stderr.contains("panicked"), "no backtraces: {stderr}");
}

#[test]
fn zero_ops_is_a_typed_config_error() {
    // `--ops 0` parses fine; running a zero-op conformance pass would
    // vacuously succeed, so the command rejects it with the config
    // exit code (3), not the parse-time usage code (2).
    let out = dcfb(&["conformance", "--ops", "0"]);
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.starts_with("error:"), "diagnostic first: {stderr}");
    assert!(stderr.contains("must be positive"), "{stderr}");
    assert!(!stderr.contains("panicked"), "no backtraces: {stderr}");
}

#[test]
fn conformance_is_in_help() {
    let out = dcfb(&["help"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("conformance"));
    assert!(stdout.contains("--ops"));
}
