//! End-to-end contract for `dcfb fuzz`: the quick campaign passes and
//! prints the deterministic summary, stdout is bit-identical at any
//! `--jobs`, state files resume, and a zero budget is a typed config
//! error (exit 3), not a usage error.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::process::{Command, Output};

fn dcfb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dcfb"))
        .args(args)
        .output()
        .expect("spawn dcfb")
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dcfb-fuzz-cli-{}-{name}", std::process::id()));
    p
}

#[test]
fn quick_campaign_passes_and_reports_coverage() {
    let out = dcfb(&["fuzz", "--quick", "--seed", "42", "--jobs", "2"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "fuzz --quick failed:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("fuzz: seed=42"), "{stdout}");
    assert!(stdout.contains("coverage:"), "{stdout}");
    assert!(stdout.contains("baseline"), "{stdout}");
    assert!(stdout.contains("corpus:"), "{stdout}");
    assert!(stdout.contains("digest fnv:"), "{stdout}");
    assert!(stdout.contains("no divergence"), "{stdout}");
    // Timing is stderr-only so stdout stays deterministic.
    assert!(!stdout.contains("wall clock"), "{stdout}");
}

#[test]
fn stdout_is_bit_identical_across_job_counts() {
    let one = dcfb(&["fuzz", "--quick", "--seed", "7", "--jobs", "1"]);
    let four = dcfb(&["fuzz", "--quick", "--seed", "7", "--jobs", "4"]);
    assert!(one.status.success() && four.status.success());
    assert_eq!(
        one.stdout, four.stdout,
        "campaign results must not depend on the worker count"
    );
}

#[test]
fn state_file_resumes_and_corpus_out_writes() {
    let state = tmp("state.json");
    let corpus = tmp("corpus.txt");
    let _ = std::fs::remove_file(&state);
    let _ = std::fs::remove_file(&corpus);
    let state_s = state.to_str().unwrap();
    let corpus_s = corpus.to_str().unwrap();

    let first = dcfb(&[
        "fuzz",
        "--quick",
        "--seed",
        "9",
        "--state",
        state_s,
        "--corpus-out",
        corpus_s,
    ]);
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    assert!(state.exists(), "checkpoint file must be written");
    let text = std::fs::read_to_string(&corpus).unwrap();
    assert!(text.starts_with("# dcfb-corpus-v1 layout-seed=9"), "{text}");

    // Resuming the finished campaign does no further work and prints
    // the identical summary.
    let again = dcfb(&["fuzz", "--quick", "--seed", "9", "--state", state_s]);
    assert!(again.status.success());
    assert_eq!(first.stdout, again.stdout);

    // A different seed against the same state is a config error.
    let clash = dcfb(&["fuzz", "--quick", "--seed", "10", "--state", state_s]);
    assert_eq!(clash.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&clash.stderr);
    assert!(stderr.contains("saved seed 9"), "{stderr}");

    let _ = std::fs::remove_file(&state);
    let _ = std::fs::remove_file(&corpus);
}

#[test]
fn zero_budget_is_a_typed_config_error() {
    let out = dcfb(&["fuzz", "--ops", "0"]);
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.starts_with("error:"), "{stderr}");
    assert!(stderr.contains("must be positive"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn non_numeric_budget_is_still_a_usage_error() {
    let out = dcfb(&["fuzz", "--ops", "lots"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn fuzz_is_in_help() {
    let out = dcfb(&["help"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fuzz"));
    assert!(stdout.contains("--jobs"));
    assert!(stdout.contains("--corpus-out"));
}
