//! End-to-end contract for `dcfb profile`: the exported metrics
//! document must carry the versioned schema, round-trip through the
//! parser, and classify every issued prefetch into exactly one of the
//! four timeliness classes; the CSV series must be rectangular; and
//! the Chrome trace must be valid JSON with monotonically
//! non-decreasing timestamps.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use dcfb_telemetry::{JsonValue, MetricsDoc, METRICS_SCHEMA, SERIES_COLUMNS};
use std::path::PathBuf;
use std::process::{Command, Output};

const WORKLOAD: &str = "Web (Apache)";

fn dcfb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dcfb"))
        .args(args)
        .output()
        .expect("spawn dcfb")
}

fn temp_prefix(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dcfb_profile_{tag}_{}", std::process::id()));
    p
}

fn run_profile(tag: &str, method: &str) -> (String, String, String, String) {
    let prefix = temp_prefix(tag);
    let out = dcfb(&[
        "profile",
        "--workload",
        WORKLOAD,
        "--method",
        method,
        "--warmup",
        "20000",
        "--measure",
        "60000",
        "--out",
        prefix.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    let read = |suffix: &str| {
        let path = format!("{}{suffix}", prefix.display());
        let text = std::fs::read_to_string(&path).expect("profile output file");
        let _ = std::fs::remove_file(&path);
        text
    };
    (
        read(".metrics.json"),
        read(".series.csv"),
        read(".trace.json"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn profile_exports_schema_valid_metrics() {
    let (metrics, series, trace, stdout) = run_profile("full", "SN4L+Dis+BTB");

    // Metrics document: schema-versioned, valid, and a lossless
    // round-trip through the parser.
    let doc = MetricsDoc::from_json(&metrics).expect("parse metrics doc");
    assert_eq!(doc.schema, METRICS_SCHEMA);
    doc.validate().expect("doc validates");
    let again = MetricsDoc::from_json(&doc.to_json()).expect("re-parse");
    assert_eq!(doc, again, "metrics doc must round-trip exactly");

    // Per-prefetcher timeliness: the four classes partition the issues.
    assert!(!doc.timeliness.is_empty(), "full system issues prefetches");
    for t in &doc.timeliness {
        assert_eq!(
            t.accurate + t.late + t.early_evicted + t.useless,
            t.issued,
            "{}: classes must sum to issued",
            t.source
        );
    }
    assert!(
        doc.timeliness.iter().any(|t| t.source == "sn4l"),
        "expected an sn4l row: {:?}",
        doc.timeliness
    );
    // The stdout table mirrors the document.
    assert!(stdout.contains("sn4l"), "stdout: {stdout}");

    // CSV series: header plus one rectangular row per window.
    let mut lines = series.lines();
    let header = lines.next().expect("csv header");
    assert_eq!(header, SERIES_COLUMNS.join(","));
    let mut rows = 0;
    for line in lines {
        assert_eq!(
            line.split(',').count(),
            SERIES_COLUMNS.len(),
            "ragged csv row: {line}"
        );
        rows += 1;
    }
    assert_eq!(rows, doc.series.len());
    assert!(rows > 0, "measured run must produce windows");

    // Chrome trace: valid JSON, events sorted by timestamp.
    let parsed = JsonValue::parse(&trace).expect("trace is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "run with stalls must emit events");
    let mut prev = 0u64;
    for e in events {
        let ts = e.get("ts").and_then(JsonValue::as_u64).expect("ts field");
        assert!(ts >= prev, "timestamps must be non-decreasing");
        prev = ts;
    }
}

#[test]
fn profile_covers_directed_frontends() {
    let (metrics, _series, _trace, _stdout) = run_profile("directed", "Boomerang");
    let doc = MetricsDoc::from_json(&metrics).expect("parse metrics doc");
    doc.validate().expect("doc validates");
    let row = doc
        .timeliness
        .iter()
        .find(|t| t.source == "boomerang")
        .expect("boomerang attribution");
    assert_eq!(
        row.accurate + row.late + row.early_evicted + row.useless,
        row.issued
    );
    // The directed frontend samples FTQ occupancy.
    let ftq = doc
        .histograms
        .iter()
        .find(|h| h.name == "ftq_occupancy")
        .expect("ftq histogram");
    assert!(ftq.count > 0);
}

#[test]
fn profile_requires_a_workload() {
    let out = dcfb(&["profile"]);
    assert_eq!(out.status.code(), Some(2), "usage error expected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "stderr: {stderr}");
}
