//! End-to-end contract for the method registry: `dcfb list` names the
//! registry methods, and a config-only composition (one registry row,
//! no new driver code) runs through `dcfb run` like any built-in
//! method.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::process::{Command, Output};

const WORKLOAD: &str = "Web (Apache)";

fn dcfb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dcfb"))
        .args(args)
        .output()
        .expect("spawn dcfb")
}

#[test]
fn list_shows_registry_methods() {
    let out = dcfb(&["list"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for m in ["Baseline", "SN4L+Dis+BTB", "Shotgun", "N2L+Dis"] {
        assert!(stdout.contains(m), "`dcfb list` missing {m}: {stdout}");
    }
}

#[test]
fn composition_runs_end_to_end() {
    let out = dcfb(&[
        "run",
        "--workload",
        WORKLOAD,
        "--method",
        "N2L+Dis",
        "--warmup",
        "2000",
        "--measure",
        "8000",
        "--json",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"method\": \"N2L+Dis\""), "{stdout}");
    assert!(stdout.contains("\"instructions\": 8000"), "{stdout}");
}

#[test]
fn unknown_method_lists_registry_in_the_error() {
    let out = dcfb(&["run", "--workload", WORKLOAD, "--method", "nope"]);
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("N2L+Dis"),
        "registry compositions missing from the error: {stderr}"
    );
}
