//! End-to-end exit-code and diagnostics contract for the `dcfb`
//! binary: corrupt traces must produce a one-line `error:` diagnostic
//! and exit 3 (never a backtrace), `--lenient` must salvage the valid
//! prefix, and a clean record → replay round trip must succeed.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const WORKLOAD: &str = "Web (Apache)";

fn dcfb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dcfb"))
        .args(args)
        .output()
        .expect("spawn dcfb")
}

fn record(out: &Path, measure: &str) -> Output {
    dcfb(&[
        "record",
        "--workload",
        WORKLOAD,
        "--out",
        out.to_str().unwrap(),
        "--warmup",
        "100",
        "--measure",
        measure,
    ])
}

fn replay(trace: &Path, extra: &[&str]) -> Output {
    let mut args = vec![
        "replay",
        "--trace",
        trace.to_str().unwrap(),
        "--warmup",
        "200",
        "--measure",
        "800",
    ];
    args.extend_from_slice(extra);
    dcfb(&args)
}

fn assert_one_line_error(out: &Output, code: i32) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(code), "stderr: {stderr}");
    assert!(
        stderr.lines().any(|l| l.starts_with("error:")),
        "missing `error:` diagnostic: {stderr}"
    );
    assert!(
        !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
        "backtrace leaked to the user: {stderr}"
    );
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dcfb-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn record_replay_round_trip_succeeds() {
    let dir = temp_dir("roundtrip");
    let trace = dir.join("clean.dcfbt");
    let out = record(&trace, "1500");
    assert_eq!(
        out.status.code(),
        Some(0),
        "record failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = replay(&trace, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    assert!(stdout.contains("replayed"), "{stdout}");
    assert!(!stderr.contains("warning:"), "clean trace warned: {stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_trace_exits_3_strict_and_salvages_lenient() {
    let dir = temp_dir("corrupt");
    let trace = dir.join("clean.dcfbt");
    // 1500 records = 3 chunks of 512; damage in the last chunk leaves
    // a salvageable 1024-record prefix.
    assert_eq!(record(&trace, "1500").status.code(), Some(0));
    let mut data = std::fs::read(&trace).unwrap();
    let flip_at = data.len() - 40;
    data[flip_at] ^= 0x01;
    let damaged = dir.join("damaged.dcfbt");
    std::fs::write(&damaged, &data).unwrap();

    // Strict (default): exit 3, one-line diagnostic, no backtrace.
    let out = replay(&damaged, &[]);
    assert_one_line_error(&out, 3);

    // Lenient: warn, salvage the prefix, and finish the replay.
    let out = replay(&damaged, &["--lenient"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    assert!(stderr.contains("warning:"), "{stderr}");
    assert!(stderr.contains("salvaged 1024 of 1500"), "{stderr}");
    assert!(stdout.contains("replayed 1024 instructions"), "{stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_trace_exits_3() {
    let dir = temp_dir("trunc");
    let trace = dir.join("clean.dcfbt");
    assert_eq!(record(&trace, "600").status.code(), Some(0));
    let data = std::fs::read(&trace).unwrap();
    let cut = dir.join("cut.dcfbt");
    std::fs::write(&cut, &data[..data.len() / 2]).unwrap();
    assert_one_line_error(&replay(&cut, &[]), 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn usage_and_bad_input_exit_codes() {
    // Missing required flag → usage error (2).
    assert_one_line_error(&dcfb(&["replay"]), 2);
    assert_one_line_error(&dcfb(&["record", "--workload", WORKLOAD]), 2);
    // Unknown command / option → usage error (2).
    assert_one_line_error(&dcfb(&["frobnicate"]), 2);
    assert_one_line_error(&dcfb(&["run", "--bogus"]), 2);
    // Unknown workload / method, invalid config → bad input (3).
    assert_one_line_error(&dcfb(&["run", "--workload", "nope"]), 3);
    assert_one_line_error(
        &dcfb(&["run", "--workload", WORKLOAD, "--method", "nope"]),
        3,
    );
    assert_one_line_error(&dcfb(&["run", "--workload", WORKLOAD, "--warmup", "0"]), 3);
}
