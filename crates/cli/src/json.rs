//! Tiny hand-rolled JSON emitter (keeps the CLI dependency-free).

/// Builds one flat JSON object from key/value pairs.
#[derive(Default)]
pub struct JsonObject {
    fields: Vec<String>,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Adds a string field (escaped).
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.fields
            .push(format!("\"{}\": \"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds an integer field.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.fields.push(format!("\"{}\": {value}", escape(key)));
        self
    }

    /// Adds a float field (6 significant decimals; NaN/inf become null).
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        let v = if value.is_finite() {
            format!("{value:.6}")
        } else {
            "null".to_owned()
        };
        self.fields.push(format!("\"{}\": {v}", escape(key)));
        self
    }

    /// Renders the object.
    pub fn render(&self) -> String {
        format!("{{{}}}", self.fields.join(", "))
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_object() {
        let mut o = JsonObject::new();
        o.string("name", "SN4L+Dis+BTB")
            .int("cycles", 123)
            .float("ipc", 0.75);
        assert_eq!(
            o.render(),
            "{\"name\": \"SN4L+Dis+BTB\", \"cycles\": 123, \"ipc\": 0.750000}"
        );
    }

    #[test]
    fn escapes_specials() {
        let mut o = JsonObject::new();
        o.string("k", "a\"b\\c\nd");
        assert_eq!(o.render(), "{\"k\": \"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = JsonObject::new();
        o.float("x", f64::NAN);
        assert_eq!(o.render(), "{\"x\": null}");
    }
}
