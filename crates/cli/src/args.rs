//! Minimal dependency-free argument parsing.

use dcfb_errors::DcfbError;
use dcfb_trace::IsaMode;

/// Usage text shown on `help` and argument errors.
pub const USAGE: &str = "\
dcfb — Divide-and-Conquer Frontend Bottleneck simulator

USAGE:
    dcfb <COMMAND> [OPTIONS]

COMMANDS:
    list                 List workloads and prefetch methods
    run                  Run one method on one workload
    compare              Compare several methods on one workload
    analyze              Timing-free trace analyses for one workload
    profile              Run one method with telemetry on and export
                         <prefix>.metrics.json (versioned schema),
                         <prefix>.series.csv (windowed time series) and
                         <prefix>.trace.json (Chrome trace events);
                         --out sets the prefix (default \"profile\")
    sweep-btb            Ours-vs-Shotgun as the BTB shrinks (Fig. 18)
    bench-sweep          Time the experiment sweep (sequential vs
                         parallel) and engine throughput; writes
                         BENCH_sweep.json (--out overrides). Scale and
                         worker count come from DCFB_WARMUP,
                         DCFB_MEASURE, DCFB_WORKLOADS and DCFB_JOBS
    record               Write a workload trace to a file (any source:
                         synthetic, mix:, or trace:)
    replay               Simulate an external trace file
    import               Convert a ChampSim-style record file (--trace)
                         into a checksummed v2 trace (--out); the result
                         runs everywhere via --workload trace:PATH.
                         --lenient salvages the longest well-formed
                         prefix of a damaged input
    conformance          Lockstep-check the prefetch structures against
                         executable reference models over fuzzed op
                         streams, plus cross-prefetcher invariants;
                         exits 4 with a shrunk counterexample on the
                         first divergence
    chaos                Run the seeded fault campaign through the real
                         stack (supervised retries, deadlines,
                         quarantine, trace corruption, checkpoint
                         salvage) and check its invariants; exits 4 on
                         any violation. --seed reproduces a campaign,
                         --quick runs the tier-1 smoke subset
    fuzz                 Coverage-guided conformance fuzzing: mutate op
                         sequences on the worker pool, keep only
                         coverage-increasing inputs (ddmin-minimized),
                         and lockstep-check every candidate against the
                         reference models; exits 4 with a shrunk
                         counterexample on the first divergence. The
                         result is bit-identical at any --jobs; --quick
                         runs the bounded smoke campaign (and requires
                         the guided coverage to beat the fixed-seed
                         generator), --state persists/resumes the
                         campaign, --corpus-out writes the minimized
                         corpus text
    serve                Run the simulation job server: accepts job
                         submissions over HTTP/1.1 + JSON (see the
                         dcfb-sdk crate for the client), memoizes
                         results in a digest-keyed LRU cache, coalesces
                         duplicate in-flight submissions, and persists
                         its job table (--state) so a killed server
                         resumes on restart. Requires --addr
    help                 Show this message

OPTIONS:
    --workload <SPEC>    Workload source (required except `list`): a
                         Table IV workload name, a multi-tenant mix
                         `mix:NAME_A+NAME_B[,quantum=N]`, or an on-disk
                         trace `trace:PATH` (see `dcfb import`)
    --method <NAME>      Method for `run` (default SN4L+Dis+BTB)
    --methods <A,B,C>    Comma-separated list for `compare`
    --warmup <N>         Warmup instructions (default 500000)
    --measure <N>        Measured instructions (default 1000000)
    --seed <N>           Trace seed (default 42)
    --isa <fixed|variable>  Instruction encoding (default fixed)
    --json               Machine-readable output (for `run`)
    --out <FILE>         Output path for `record` / prefix for `profile`
    --trace <FILE>       Input path for `replay` / `import`
    --format <binary|text>  Trace format for `record` (default binary)
    --ops <N>            Fuzzed ops per structure for `conformance`,
                         total op budget for `fuzz` (default 10000;
                         zero is a configuration error, exit 3)
    --lenient            For `replay` / `import`: salvage the valid
                         prefix of a damaged input instead of failing
                         (default is strict: any corruption is an
                         error, exit 3)
    --quick              For `chaos` / `fuzz`: run the reduced smoke
                         campaign
    --jobs <N>           For `fuzz`: worker threads for candidate
                         evaluation (default 0 = DCFB_JOBS, which
                         itself defaults to the host's parallelism);
                         any value yields bit-identical results
    --corpus-out <FILE>  For `fuzz`: write the minimized corpus in the
                         replayable text form (the source of the
                         checked-in seed corpus)
    --shards <K>         For `run`: slice the measured window into K
                         time shards simulated concurrently and stitch
                         the reports (default 1 = sequential; K=1 is
                         byte-identical to sequential)
    --warmup-overlap <N> Warm-only instruction prefix replayed before
                         each shard after the first (default: a quarter
                         of --warmup)
    --addr <HOST:PORT>   For `serve`: listen address (port 0 picks an
                         ephemeral port, printed on startup)
    --state <FILE>       For `serve`: job-table persistence file;
                         omit to disable crash recovery.
                         For `fuzz`: campaign checkpoint file, saved
                         every round and resumed when present
    --workers <N>        For `serve`: worker-pool size (default 0 =
                         DCFB_JOBS, which itself defaults to the host's
                         available parallelism)
    --queue-limit <N>    For `serve`: queued-job bound; submissions
                         beyond it are rejected with 503 (default 1024)
    --cache-budget <N>   For `serve`: result-cache byte budget
                         (default 8388608)
";

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Subcommand name.
    pub command: String,
    /// `--workload`.
    pub workload: Option<String>,
    /// `--method`.
    pub method: String,
    /// `--methods`.
    pub methods: Vec<String>,
    /// `--warmup`.
    pub warmup: u64,
    /// `--measure`.
    pub measure: u64,
    /// `--seed`.
    pub seed: u64,
    /// `--isa`.
    pub isa: IsaMode,
    /// `--json`.
    pub json: bool,
    /// `--out` (for `record`).
    pub out: Option<String>,
    /// `--trace` (for `replay`).
    pub trace: Option<String>,
    /// `--format` for `record`: `"binary"` or `"text"`.
    pub format: String,
    /// `--lenient` for `replay`: salvage damaged traces.
    pub lenient: bool,
    /// `--ops` for `conformance` / `fuzz`: op budget. Positivity is a
    /// typed config rule checked at run time, not here.
    pub ops: usize,
    /// `--quick` for `chaos` / `fuzz`: reduced smoke campaign.
    pub quick: bool,
    /// `--jobs` for `fuzz`: worker threads (0 = `DCFB_JOBS`).
    pub jobs: usize,
    /// `--corpus-out` for `fuzz`: minimized-corpus output path.
    pub corpus_out: Option<String>,
    /// `--shards` for `run`: time shards to slice the window into.
    /// Validated against the typed config rules at run time, not here.
    pub shards: usize,
    /// `--warmup-overlap` for `run`: warm-only prefix per shard
    /// (`None` = a quarter of the warmup window).
    pub warmup_overlap: Option<u64>,
    /// `--addr` for `serve`: listen address.
    pub addr: Option<String>,
    /// `--state` for `serve`: job-table persistence file.
    pub state: Option<String>,
    /// `--workers` for `serve`: worker-pool size (0 = `DCFB_JOBS`).
    pub workers: usize,
    /// `--queue-limit` for `serve`: queued-job bound.
    pub queue_limit: usize,
    /// `--cache-budget` for `serve`: result-cache byte budget.
    pub cache_budget: usize,
}

impl Cli {
    /// Parses arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, String> {
        let mut it = args.into_iter();
        let command = it.next().ok_or("missing command")?;
        let mut cli = Cli {
            command,
            workload: None,
            method: "SN4L+Dis+BTB".to_owned(),
            methods: vec![
                "NL".into(),
                "N4L".into(),
                "SN4L".into(),
                "SN4L+Dis".into(),
                "SN4L+Dis+BTB".into(),
                "Shotgun".into(),
                "Confluence".into(),
            ],
            warmup: 500_000,
            measure: 1_000_000,
            seed: 42,
            isa: IsaMode::Fixed4,
            json: false,
            out: None,
            trace: None,
            format: "binary".to_owned(),
            lenient: false,
            ops: 10_000,
            quick: false,
            jobs: 0,
            corpus_out: None,
            shards: 1,
            warmup_overlap: None,
            addr: None,
            state: None,
            workers: 0,
            queue_limit: 1024,
            cache_budget: 8 << 20,
        };
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--workload" => cli.workload = Some(value("--workload")?),
                "--method" => cli.method = value("--method")?,
                "--methods" => {
                    cli.methods = value("--methods")?
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .filter(|s| !s.is_empty())
                        .collect();
                    if cli.methods.is_empty() {
                        return Err("--methods list is empty".into());
                    }
                }
                "--warmup" => {
                    cli.warmup = value("--warmup")?
                        .parse()
                        .map_err(|_| "--warmup must be an integer")?;
                }
                "--measure" => {
                    cli.measure = value("--measure")?
                        .parse()
                        .map_err(|_| "--measure must be an integer")?;
                }
                "--seed" => {
                    cli.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "--seed must be an integer")?;
                }
                "--isa" => {
                    cli.isa = match value("--isa")?.as_str() {
                        "fixed" => IsaMode::Fixed4,
                        "variable" => IsaMode::Variable,
                        other => return Err(format!("unknown --isa {other:?}")),
                    };
                }
                "--ops" => {
                    // `--ops 0` parses; the commands reject it at run
                    // time as a typed config error (exit 3), so a
                    // zero budget never silently "passes" by checking
                    // nothing.
                    cli.ops = value("--ops")?
                        .parse()
                        .map_err(|_| "--ops must be an integer")?;
                }
                "--jobs" => {
                    cli.jobs = value("--jobs")?
                        .parse()
                        .map_err(|_| "--jobs must be an integer")?;
                }
                "--corpus-out" => cli.corpus_out = Some(value("--corpus-out")?),
                "--shards" => {
                    // Range rules (>= 1, overlap within warmup) are
                    // checked at run time by `ShardOptions::validate`,
                    // so they surface as typed config errors (exit 3)
                    // rather than usage errors.
                    cli.shards = value("--shards")?
                        .parse()
                        .map_err(|_| "--shards must be an integer")?;
                }
                "--warmup-overlap" => {
                    cli.warmup_overlap = Some(
                        value("--warmup-overlap")?
                            .parse()
                            .map_err(|_| "--warmup-overlap must be an integer")?,
                    );
                }
                "--addr" => cli.addr = Some(value("--addr")?),
                "--state" => cli.state = Some(value("--state")?),
                "--workers" => {
                    cli.workers = value("--workers")?
                        .parse()
                        .map_err(|_| "--workers must be an integer")?;
                }
                "--queue-limit" => {
                    cli.queue_limit = value("--queue-limit")?
                        .parse()
                        .map_err(|_| "--queue-limit must be an integer")?;
                    if cli.queue_limit == 0 {
                        return Err("--queue-limit must be positive".into());
                    }
                }
                "--cache-budget" => {
                    cli.cache_budget = value("--cache-budget")?
                        .parse()
                        .map_err(|_| "--cache-budget must be an integer")?;
                }
                "--json" => cli.json = true,
                "--lenient" => cli.lenient = true,
                "--quick" => cli.quick = true,
                "--out" => cli.out = Some(value("--out")?),
                "--trace" => cli.trace = Some(value("--trace")?),
                "--format" => {
                    cli.format = value("--format")?;
                    if cli.format != "binary" && cli.format != "text" {
                        return Err(format!("unknown --format {:?}", cli.format));
                    }
                }
                other => return Err(format!("unknown option {other:?}")),
            }
        }
        Ok(cli)
    }

    /// The workload-source spec, as a typed error when missing or
    /// unknown. Both error paths enumerate every registry source —
    /// the seven synthetic names plus the `mix:` and `trace:`
    /// syntaxes — not just the synthetic catalog.
    ///
    /// # Errors
    ///
    /// [`DcfbError::Usage`] when `--workload` was not given (exit 2),
    /// [`DcfbError::UnknownWorkload`] for an unrecognized name and
    /// [`DcfbError::Config`] for a malformed `mix:`/`trace:` spec
    /// (exit 3).
    pub fn require_source(&self) -> Result<dcfb_workloads::SourceSpec, DcfbError> {
        let Some(name) = &self.workload else {
            return Err(DcfbError::Usage(format!(
                "--workload is required for this command; available: {:?}",
                dcfb_workloads::source_names()
            )));
        };
        dcfb_workloads::SourceSpec::parse(name)
    }

    /// Like [`Cli::require_source`], but restricted to the synthetic
    /// catalog — for commands that need the program image itself
    /// (`analyze`).
    ///
    /// # Errors
    ///
    /// Everything [`Cli::require_source`] returns, plus
    /// [`DcfbError::Config`] when the spec names a non-synthetic
    /// source.
    pub fn require_synthetic(&self) -> Result<dcfb_workloads::Workload, DcfbError> {
        let spec = self.require_source()?;
        let dcfb_workloads::SourceSpec::Synthetic(name) = &spec else {
            return Err(DcfbError::Config(format!(
                "this command needs a synthetic workload image; {:?} is a {} source",
                spec.canonical_name(),
                spec.source_kind()
            )));
        };
        dcfb_workloads::workload(name).ok_or_else(|| DcfbError::UnknownWorkload {
            name: name.clone(),
            available: dcfb_workloads::source_names(),
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_run_with_options() {
        let cli = parse(&[
            "run",
            "--workload",
            "Web (Apache)",
            "--method",
            "Shotgun",
            "--warmup",
            "1000",
            "--measure",
            "2000",
            "--seed",
            "7",
            "--isa",
            "variable",
            "--json",
        ])
        .unwrap();
        assert_eq!(cli.command, "run");
        assert_eq!(cli.workload.as_deref(), Some("Web (Apache)"));
        assert_eq!(cli.method, "Shotgun");
        assert_eq!(cli.warmup, 1000);
        assert_eq!(cli.measure, 2000);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.isa, IsaMode::Variable);
        assert!(cli.json);
    }

    #[test]
    fn defaults_are_sensible() {
        let cli = parse(&["compare", "--workload", "x"]).unwrap();
        assert_eq!(cli.method, "SN4L+Dis+BTB");
        assert!(cli.methods.len() >= 5);
        assert!(!cli.json);
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse(&["run", "--bogus"]).is_err());
        assert!(parse(&["run", "--warmup", "abc"]).is_err());
        assert!(parse(&["run", "--isa", "thumb"]).is_err());
        assert!(parse(&["run", "--methods", ""]).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn parses_and_validates_ops() {
        let cli = parse(&["conformance", "--seed", "9", "--ops", "500"]).unwrap();
        assert_eq!(cli.command, "conformance");
        assert_eq!(cli.seed, 9);
        assert_eq!(cli.ops, 500);
        assert_eq!(parse(&["conformance"]).unwrap().ops, 10_000);
        // Zero parses here; the command rejects it at run time as a
        // typed config error (exit 3), not a usage error.
        assert_eq!(parse(&["conformance", "--ops", "0"]).unwrap().ops, 0);
        assert!(parse(&["conformance", "--ops", "many"]).is_err());
    }

    #[test]
    fn parses_fuzz_flags() {
        let cli = parse(&[
            "fuzz",
            "--seed",
            "7",
            "--ops",
            "50000",
            "--jobs",
            "4",
            "--state",
            "fuzz.json",
            "--corpus-out",
            "corpus.txt",
            "--quick",
        ])
        .unwrap();
        assert_eq!(cli.command, "fuzz");
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.ops, 50_000);
        assert_eq!(cli.jobs, 4);
        assert_eq!(cli.state.as_deref(), Some("fuzz.json"));
        assert_eq!(cli.corpus_out.as_deref(), Some("corpus.txt"));
        assert!(cli.quick);
        let defaults = parse(&["fuzz"]).unwrap();
        assert_eq!(defaults.jobs, 0);
        assert_eq!(defaults.corpus_out, None);
        assert!(parse(&["fuzz", "--jobs", "many"]).is_err());
    }

    #[test]
    fn parses_chaos_flags() {
        let cli = parse(&["chaos", "--seed", "42", "--quick"]).unwrap();
        assert_eq!(cli.command, "chaos");
        assert_eq!(cli.seed, 42);
        assert!(cli.quick);
        assert!(!parse(&["chaos"]).unwrap().quick);
    }

    #[test]
    fn parses_shard_flags() {
        let cli = parse(&["run", "--shards", "4", "--warmup-overlap", "25000"]).unwrap();
        assert_eq!(cli.shards, 4);
        assert_eq!(cli.warmup_overlap, Some(25_000));
        let defaults = parse(&["run"]).unwrap();
        assert_eq!(defaults.shards, 1);
        assert_eq!(defaults.warmup_overlap, None);
        // `--shards 0` parses; the typed config validation rejects it
        // at run time with exit 3 (see ShardOptions::validate).
        assert_eq!(parse(&["run", "--shards", "0"]).unwrap().shards, 0);
        assert!(parse(&["run", "--shards", "four"]).is_err());
        assert!(parse(&["run", "--warmup-overlap", "x"]).is_err());
    }

    #[test]
    fn parses_serve_flags() {
        let cli = parse(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--state",
            "jobs.json",
            "--workers",
            "3",
            "--queue-limit",
            "16",
            "--cache-budget",
            "4096",
        ])
        .unwrap();
        assert_eq!(cli.command, "serve");
        assert_eq!(cli.addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(cli.state.as_deref(), Some("jobs.json"));
        assert_eq!(cli.workers, 3);
        assert_eq!(cli.queue_limit, 16);
        assert_eq!(cli.cache_budget, 4096);
        let defaults = parse(&["serve"]).unwrap();
        assert_eq!(defaults.addr, None);
        assert_eq!(defaults.workers, 0);
        assert_eq!(defaults.queue_limit, 1024);
        assert_eq!(defaults.cache_budget, 8 << 20);
        assert!(parse(&["serve", "--queue-limit", "0"]).is_err());
        assert!(parse(&["serve", "--workers", "some"]).is_err());
    }

    #[test]
    fn require_source_errors_enumerate_registry_sources() {
        // Missing --workload: usage error (exit 2) listing all sources.
        let err = parse(&["run"]).unwrap().require_source().unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let DcfbError::Usage(msg) = &err else {
            panic!("expected Usage, got {err:?}");
        };
        assert!(msg.contains("mix:NAME_A+NAME_B"), "{msg}");
        assert!(msg.contains("trace:PATH"), "{msg}");
        // Unknown name: typed error (exit 3) listing all sources.
        let err = parse(&["run", "--workload", "nope"])
            .unwrap()
            .require_source()
            .unwrap_err();
        assert_eq!(err.exit_code(), 3);
        let DcfbError::UnknownWorkload { available, .. } = &err else {
            panic!("expected UnknownWorkload, got {err:?}");
        };
        assert!(available.iter().any(|s| s.starts_with("mix:")));
        assert!(available.iter().any(|s| s.starts_with("trace:")));
        // Well-formed specs parse.
        let spec = parse(&["run", "--workload", "mix:Web (Apache)+Web Search"])
            .unwrap()
            .require_source()
            .unwrap();
        assert_eq!(spec.source_kind(), "mix");
    }

    #[test]
    fn require_synthetic_rejects_other_sources_with_typed_error() {
        let err = parse(&["analyze", "--workload", "mix:Web (Apache)+Web Search"])
            .unwrap()
            .require_synthetic()
            .unwrap_err();
        assert!(matches!(err, DcfbError::Config(_)), "got {err:?}");
        let w = parse(&["analyze", "--workload", "Web Search"])
            .unwrap()
            .require_synthetic()
            .unwrap();
        assert_eq!(w.name, "Web Search");
    }

    #[test]
    fn parses_method_lists() {
        let cli = parse(&["compare", "--methods", "NL, Shotgun ,Confluence"]).unwrap();
        assert_eq!(cli.methods, vec!["NL", "Shotgun", "Confluence"]);
    }
}
