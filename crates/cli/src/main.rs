//! `dcfb` — command-line driver for the DCFB reproduction.
//!
//! ```text
//! dcfb list
//! dcfb run      --workload "OLTP (DB A)" --method SN4L+Dis+BTB [options]
//! dcfb compare  --workload "Web (Apache)" [--methods a,b,c] [options]
//! dcfb analyze  --workload "Media Streaming" [options]
//! dcfb profile  --workload "OLTP (DB A)" --method Shotgun --out prof [options]
//! dcfb sweep-btb --workload "OLTP (DB A)" [options]
//! dcfb bench-sweep [--out BENCH_sweep.json]
//! dcfb record   --workload "Web (Zeus)" --out trace.dcfbt [options]
//! dcfb import   --trace champsim.bin --out trace.dcfbt [--lenient]
//! dcfb replay   --trace trace.dcfbt --method Shotgun [--lenient] [options]
//! dcfb conformance [--seed N] [--ops N]
//! dcfb fuzz     [--seed N] [--ops N] [--jobs N] [--quick]
//!               [--state camp.json] [--corpus-out corpus.txt]
//! dcfb chaos    [--seed N] [--quick]
//! dcfb serve    --addr 127.0.0.1:7070 [--state jobs.json] [--workers N]
//! ```
//!
//! Common options: `--warmup N`, `--measure N`, `--seed N`,
//! `--isa fixed|variable`, `--json` (machine-readable output for `run`).
//!
//! Every failure prints a one-line `error:` diagnostic — never a
//! backtrace — and exits with a code describing what went wrong:
//! 2 usage, 3 bad input (corrupt trace, unknown workload/method, bad
//! config), 4 run failure, 5 host I/O, 6 supervised job timeout,
//! 7 job quarantined, 8 protocol error (serve/SDK transport or a
//! rejected request).

mod args;
mod commands;
mod json;

use args::Cli;
use dcfb_errors::{DcfbError, EXIT_USAGE};

fn main() {
    let cli = match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            std::process::exit(EXIT_USAGE);
        }
    };
    let result: Result<(), DcfbError> = match cli.command.as_str() {
        "list" => {
            commands::list();
            Ok(())
        }
        "run" => commands::run(&cli),
        "compare" => commands::compare(&cli),
        "analyze" => commands::analyze(&cli),
        "profile" => commands::profile(&cli),
        "sweep-btb" => commands::sweep_btb(&cli),
        "bench-sweep" => commands::bench_sweep(&cli),
        "record" => commands::record(&cli),
        "import" => commands::import(&cli),
        "replay" => commands::replay(&cli),
        "conformance" => commands::conformance(&cli),
        "fuzz" => commands::fuzz(&cli),
        "chaos" => commands::chaos(&cli),
        "serve" => commands::serve(&cli),
        "help" | "--help" | "-h" => {
            println!("{}", args::USAGE);
            Ok(())
        }
        other => {
            eprintln!("error: unknown command {other:?}\n");
            eprintln!("{}", args::USAGE);
            std::process::exit(EXIT_USAGE);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}
