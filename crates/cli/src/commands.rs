//! The CLI subcommands.
//!
//! Every command returns `Result<(), DcfbError>`; `main` maps the
//! error onto the documented exit codes. No command calls
//! `std::process::exit` or panics on bad input.

use crate::args::Cli;
use crate::json::JsonObject;
use dcfb_cache::CacheConfig;
use dcfb_errors::DcfbError;
use dcfb_frontend::ShotgunBtbConfig;
use dcfb_sim::Simulator;
use dcfb_sim::{
    analysis, run_resolved, run_sharded_resolved, PrefetcherKind, ShardOptions, SimConfig,
    SimReport,
};
use dcfb_trace::{CodeMemory, InstrStream, IsaMode, ReadMode, RecordedCode, VecTrace};
use dcfb_workloads::{all_workloads, Walker, MIX_SYNTAX, TRACE_SYNTAX};
use std::sync::Arc;

fn config_for(cli: &Cli, method: &str) -> Result<SimConfig, DcfbError> {
    let Some(mut cfg) = SimConfig::for_method(method) else {
        return Err(DcfbError::UnknownMethod {
            name: method.to_owned(),
            available: dcfb_prefetch::method_names().map(str::to_owned).collect(),
        });
    };
    cfg.warmup_instrs = cli.warmup;
    cfg.measure_instrs = cli.measure;
    cfg.isa = cli.isa;
    if cli.isa == IsaMode::Variable {
        // Branch footprints need somewhere to live (§V-D).
        cfg.uncore.dvllc = true;
    }
    cfg.validate()?;
    Ok(cfg)
}

/// `dcfb list`
pub fn list() {
    println!("workloads (Table IV):");
    for w in all_workloads() {
        println!(
            "  {:16} ~{:>5.0} KiB code, {} functions",
            w.name,
            w.params.approx_footprint_kib(),
            w.params.functions
        );
    }
    println!("\nmethods (§VI-D, from the method registry):");
    for m in dcfb_prefetch::method_names() {
        println!("  {m}");
    }
    println!("\nworkload sources (the registry behind --workload):");
    println!("  NAME                            a synthetic workload from the table above");
    println!("  {MIX_SYNTAX}    multi-tenant round-robin interleaving");
    println!("  {TRACE_SYNTAX}");
}

/// `dcfb run`
pub fn run(cli: &Cli) -> Result<(), DcfbError> {
    let spec = cli.require_source()?;
    let cfg = config_for(cli, &cli.method)?;
    let base_cfg = config_for(cli, "Baseline")?;
    // Shard arguments are range-checked here, at argument time, so
    // `--shards 0` or an overlap reaching past the measured window is
    // a typed configuration error (exit 3) even on paths that would
    // otherwise silently fall back to a sequential run.
    let shard_opts = ShardOptions {
        shards: cli.shards,
        warmup_overlap: cli.warmup_overlap,
        jobs: cli.shards,
    };
    shard_opts.validate(cfg.warmup_instrs)?;
    let resolved = spec.resolve(cfg.isa)?;
    let base = run_resolved(&resolved, base_cfg, cli.seed)?;
    let r = if cli.shards > 1 {
        let sharded = run_sharded_resolved(&cfg, &resolved, cli.seed, &shard_opts)?;
        if !cli.json {
            println!(
                "sharded: {} shards (requested {}), warmup-overlap {}",
                sharded.plan.shards.len(),
                sharded.plan.requested,
                sharded.plan.overlap
            );
        }
        sharded.merged
    } else {
        run_resolved(&resolved, cfg, cli.seed)?
    };
    if cli.json {
        println!("{}", report_json(&r, Some(&base)).render());
        return Ok(());
    }
    print_report(&r, &base);
    Ok(())
}

/// `dcfb compare`
pub fn compare(cli: &Cli) -> Result<(), DcfbError> {
    let resolved = cli.require_source()?.resolve(cli.isa)?;
    let base = run_resolved(&resolved, config_for(cli, "Baseline")?, cli.seed)?;
    println!(
        "workload: {} | baseline IPC {:.3}\n",
        resolved.name(),
        base.ipc()
    );
    println!(
        "{:14} {:>7} {:>8} {:>9} {:>9} {:>9}",
        "method", "IPC", "speedup", "coverage", "FSCR", "lookups"
    );
    for m in &cli.methods {
        let r = run_resolved(&resolved, config_for(cli, m)?, cli.seed)?;
        println!(
            "{:14} {:7.3} {:7.2}x {:8.1}% {:8.1}% {:8.2}x",
            m,
            r.ipc(),
            r.speedup_over(&base),
            r.miss_coverage_over(&base) * 100.0,
            r.fscr_over(&base) * 100.0,
            r.lookups_over(&base),
        );
    }
    Ok(())
}

/// `dcfb analyze`
pub fn analyze(cli: &Cli) -> Result<(), DcfbError> {
    let w = cli.require_synthetic()?;
    let image = w.image(cli.isa);
    let (cond, uncond, indirect, rets) = image.branch_census();
    println!("workload: {}", w.name);
    println!(
        "  code            : {} KiB in {} blocks",
        image.code_bytes() / 1024,
        image.code_blocks()
    );
    println!(
        "  branch sites    : {cond} cond / {uncond} uncond / {indirect} indirect / {rets} ret"
    );

    let limit = cli.measure;
    let mut walker = Walker::new(Arc::clone(&image), cli.seed);
    let (seq, disc) = analysis::sequential_miss_fraction(&mut walker, CacheConfig::l1i(), limit);
    println!(
        "  L1i misses      : {:.1}% sequential ({} seq / {} disc) [Fig. 2]",
        100.0 * seq as f64 / (seq + disc).max(1) as f64,
        seq,
        disc
    );
    let mut walker = Walker::new(Arc::clone(&image), cli.seed);
    let pat = analysis::pattern_predictability(&mut walker, CacheConfig::l1i(), limit);
    println!(
        "  4-block pattern : {:.1}% predictable [Fig. 6]",
        pat * 100.0
    );
    let mut walker = Walker::new(Arc::clone(&image), cli.seed);
    let stab = analysis::discontinuity_stability(&mut walker, limit);
    println!(
        "  discontinuities : {:.1}% same-branch [Fig. 7]",
        stab * 100.0
    );
    for per_bf in [2usize, 4] {
        let unc = analysis::branch_footprint_coverage(&image, per_bf);
        println!(
            "  BF({per_bf} offsets)   : {:.2}% branches uncovered [Fig. 8]",
            unc * 100.0
        );
    }
    Ok(())
}

/// `dcfb profile` — one telemetry-instrumented run, exported three
/// ways: a versioned-schema JSON metrics document, a CSV time series,
/// and Chrome trace-event JSON (load in `chrome://tracing` / Perfetto).
pub fn profile(cli: &Cli) -> Result<(), DcfbError> {
    let cfg = config_for(cli, &cli.method)?;
    let resolved = cli.require_source()?.resolve(cfg.isa)?;
    let (r, telem) = dcfb_sim::run_resolved_profiled(&resolved, cfg, cli.seed)?;
    telem
        .doc
        .validate()
        .map_err(|e| DcfbError::Config(format!("telemetry export failed validation: {e}")))?;

    let prefix = cli.out.as_deref().unwrap_or("profile");
    let metrics_path = format!("{prefix}.metrics.json");
    let series_path = format!("{prefix}.series.csv");
    let trace_path = format!("{prefix}.trace.json");
    std::fs::write(&metrics_path, telem.doc.to_json())
        .map_err(|e| DcfbError::io(&metrics_path, &e))?;
    std::fs::write(&series_path, telem.doc.to_csv())
        .map_err(|e| DcfbError::io(&series_path, &e))?;
    std::fs::write(&trace_path, telem.chrome_trace())
        .map_err(|e| DcfbError::io(&trace_path, &e))?;

    println!(
        "workload : {} | method: {} | IPC {:.3}",
        r.workload,
        r.method,
        r.ipc()
    );
    println!();
    println!(
        "{:16} {:>9} {:>9} {:>7} {:>9} {:>9}",
        "prefetcher", "issued", "accurate", "late", "evicted", "useless"
    );
    for t in &telem.doc.timeliness {
        println!(
            "{:16} {:>9} {:>9} {:>7} {:>9} {:>9}",
            t.source, t.issued, t.accurate, t.late, t.early_evicted, t.useless
        );
    }
    if telem.doc.timeliness.is_empty() {
        println!("(no prefetches issued)");
    }
    println!();
    println!(
        "series   : {} windows of ~{} cycles",
        telem.doc.series.len(),
        telem.doc.window_cycles
    );
    println!("wrote {metrics_path}, {series_path}, {trace_path}");
    Ok(())
}

/// `dcfb sweep-btb`
pub fn sweep_btb(cli: &Cli) -> Result<(), DcfbError> {
    let resolved = cli.require_source()?.resolve(cli.isa)?;
    println!("workload: {}\n", resolved.name());
    println!(
        "{:>10} {:>14} {:>10} {:>13} {:>16}",
        "BTB scale", "ours (IPC)", "Shotgun", "ours/Shotgun", "footprint miss"
    );
    for scale in [1.0f64, 0.5, 0.25, 0.125] {
        let mut ours = config_for(cli, "SN4L+Dis+BTB")?;
        ours.btb.entries = ((ours.btb.entries as f64 * scale) as usize).max(64) / 4 * 4;
        let ours_rep = run_resolved(&resolved, ours, cli.seed)?;
        let mut shot = config_for(cli, "Shotgun")?;
        shot.prefetcher = PrefetcherKind::Shotgun(ShotgunBtbConfig::scaled(scale));
        let shot_rep = run_resolved(&resolved, shot, cli.seed)?;
        println!(
            "{:>10} {:>14.3} {:>10.3} {:>12.2}x {:>15.1}%",
            format!("{scale:.3}x"),
            ours_rep.ipc(),
            shot_rep.ipc(),
            ours_rep.ipc() / shot_rep.ipc().max(1e-9),
            shot_rep
                .shotgun
                .map(|s| s.footprint_miss_ratio() * 100.0)
                .unwrap_or(0.0)
        );
    }
    Ok(())
}

/// `dcfb bench-sweep` — the perf-trajectory harness: times the
/// experiment sweep sequentially and in parallel (`DCFB_JOBS` workers),
/// measures single-run engine throughput, and writes the validated
/// measurements as JSON (default `BENCH_sweep.json`).
pub fn bench_sweep(cli: &Cli) -> Result<(), DcfbError> {
    let opts = dcfb_bench::SweepOptions::default();
    eprintln!(
        "bench-sweep: {} workloads x {} methods, warmup {} / measure {}, {} jobs",
        dcfb_bench::workloads().len(),
        opts.methods.len(),
        opts.warmup,
        opts.measure,
        opts.jobs
    );
    eprintln!("bench-sweep: measuring the served job mix through dcfb serve");
    let serve_mix = dcfb_serve::measure_serve_mix(opts.warmup, opts.measure)?;
    let report = dcfb_bench::run_bench_sweep(&opts, &serve_mix)?;
    report.validate()?;
    let out = cli.out.as_deref().unwrap_or("BENCH_sweep.json");
    std::fs::write(out, report.to_json()).map_err(|e| DcfbError::io(out, &e))?;
    println!(
        "sweep: {} runs, sequential {:.2}s, parallel {:.2}s ({} jobs, {} cores) -> {:.2}x, deterministic: {}",
        report.runs,
        report.seq_seconds,
        report.par_seconds,
        report.jobs,
        report.host_cores,
        report.sweep_speedup,
        report.deterministic
    );
    println!(
        "single-run throughput: Baseline {:.0} instrs/s, SN4L+Dis+BTB {:.0} instrs/s",
        report.single_run_baseline_ips, report.single_run_dcfb_ips
    );
    println!(
        "telemetry on: {:.0} instrs/s ({:+.2}% vs off), {} prefetches issued, {} accurate",
        report.single_run_dcfb_telemetry_ips,
        -report.telemetry_overhead_frac * 100.0,
        report.telemetry_issued_prefetches,
        report.telemetry_accurate_prefetches
    );
    println!(
        "sharded: {} shards (overlap {}) {:.0} instrs/s -> {:.2}x vs sequential, K=1 digest identity: {}",
        report.shards,
        report.shard_warmup_overlap,
        report.single_run_sharded_ips,
        report.sharded_speedup,
        report.shard_digest_identity
    );
    println!(
        "served mix: {} submissions, {:.0}% cache hits, {:.1} jobs/s through dcfb serve",
        report.serve_submit_jobs,
        report.serve_cache_hit_frac * 100.0,
        report.serve_jobs_per_sec
    );
    println!(
        "fuzz campaign: {:.0} candidate ops/s, {:.1}% of the coverage map lit",
        report.fuzz_ops_per_sec,
        report.fuzz_coverage_frac * 100.0
    );
    println!(
        "tenant mix: {} {:.0} instrs/s, K=1 digest identity: {} (sources: {})",
        report.mix_workload,
        report.mix_single_run_ips,
        report.mix_digest_identity,
        report.workload_source_kinds
    );
    if !report.jobs_warning.is_empty() {
        eprintln!("warning: {}", report.jobs_warning);
    }
    println!("wrote {out}");
    Ok(())
}

/// `dcfb serve` — the long-lived simulation job server. Binds the
/// requested address, prints the bound address (port 0 resolves to an
/// ephemeral port), and serves until a `POST /v1/shutdown` arrives.
pub fn serve(cli: &Cli) -> Result<(), DcfbError> {
    let Some(addr) = &cli.addr else {
        return Err(DcfbError::Usage(
            "--addr HOST:PORT is required for serve (port 0 picks an ephemeral port)".into(),
        ));
    };
    let opts = dcfb_serve::ServeOptions {
        addr: addr.clone(),
        state_path: cli.state.as_ref().map(std::path::PathBuf::from),
        workers: cli.workers,
        queue_limit: cli.queue_limit,
        cache_budget: cli.cache_budget,
        ..dcfb_serve::ServeOptions::default()
    };
    let mut server = dcfb_serve::Server::spawn(opts)?;
    println!("dcfb serve: listening on {}", server.local_addr());
    if let Some(state) = &cli.state {
        println!("dcfb serve: persisting job state to {state}");
    }
    server.wait();
    println!(
        "dcfb serve: shut down after {} executed job(s)",
        server.executed()
    );
    Ok(())
}

fn print_report(r: &SimReport, base: &SimReport) {
    println!("workload : {}", r.workload);
    println!("method   : {}", r.method);
    println!();
    println!("cycles            : {}", r.cycles);
    println!("instructions      : {}", r.instrs);
    println!(
        "IPC               : {:.3} (baseline {:.3})",
        r.ipc(),
        base.ipc()
    );
    println!("speedup           : {:.3}x", r.speedup_over(base));
    println!(
        "L1i MPKI          : {:.2} (baseline {:.2})",
        r.l1i_mpki(),
        base.l1i_mpki()
    );
    println!(
        "miss coverage     : {:.1}%",
        r.miss_coverage_over(base) * 100.0
    );
    println!("seq/disc misses   : {} / {}", r.seq_misses, r.disc_misses);
    println!("FSCR              : {:.1}%", r.fscr_over(base) * 100.0);
    println!("CMAL              : {:.1}%", r.cmal() * 100.0);
    println!("cache lookups     : {:.2}x baseline", r.lookups_over(base));
    println!(
        "external bandwidth: {:.2}x baseline",
        r.bandwidth_over(base)
    );
    println!("branch accuracy   : {:.2}%", r.branch_accuracy * 100.0);
    println!(
        "stalls (cycles)   : l1i {} / btb {} / redirect {} / empty-FTQ {}",
        r.stall_l1i, r.stall_btb, r.stall_redirect, r.stall_empty_ftq
    );
    println!(
        "metadata storage  : {:.1} KB",
        r.storage_bits as f64 / 8.0 / 1024.0
    );
    if let Some(s) = &r.shotgun {
        println!(
            "footprint misses  : {:.1}% of dynamic unconditional branches",
            s.footprint_miss_ratio() * 100.0
        );
    }
}

fn report_json(r: &SimReport, base: Option<&SimReport>) -> JsonObject {
    let mut o = JsonObject::new();
    o.string("workload", &r.workload)
        .string("method", &r.method)
        .int("cycles", r.cycles)
        .int("instructions", r.instrs)
        .float("ipc", r.ipc())
        .float("l1i_mpki", r.l1i_mpki())
        .int("seq_misses", r.seq_misses)
        .int("disc_misses", r.disc_misses)
        .int("uncovered_misses", r.uncovered_misses)
        .int("late_prefetches", r.late_prefetches)
        .int("dropped_prefetches", r.dropped_prefetches)
        .int("buffer_hits", r.buffer_hits)
        .float("cmal", r.cmal())
        .int("stall_l1i", r.stall_l1i)
        .int("stall_btb", r.stall_btb)
        .int("stall_redirect", r.stall_redirect)
        .int("stall_empty_ftq", r.stall_empty_ftq)
        .int("external_requests", r.external_requests)
        .int("cache_lookups", r.cache_lookups)
        .float("branch_accuracy", r.branch_accuracy)
        .int("storage_bits", r.storage_bits);
    if let Some(b) = base {
        o.float("speedup", r.speedup_over(b))
            .float("miss_coverage", r.miss_coverage_over(b))
            .float("fscr", r.fscr_over(b))
            .float("bandwidth_rel", r.bandwidth_over(b))
            .float("lookups_rel", r.lookups_over(b));
    }
    o
}

/// `dcfb record`
pub fn record(cli: &Cli) -> Result<(), DcfbError> {
    let resolved = cli.require_source()?.resolve(cli.isa)?;
    let Some(out) = &cli.out else {
        return Err(DcfbError::Usage("--out is required for record".into()));
    };
    let mut stream = resolved.stream(cli.seed);
    // Skip the warmup region so the recorded window matches `run`.
    for _ in 0..cli.warmup {
        stream.next_instr();
    }
    let file = std::fs::File::create(out).map_err(|e| DcfbError::io(out, &e))?;
    let written = match cli.format.as_str() {
        "text" => dcfb_trace::write_text(&mut stream, file, cli.measure),
        _ => dcfb_trace::write_binary_v2(
            &mut stream,
            file,
            cli.measure,
            Some(cli.isa),
            dcfb_trace::file::DEFAULT_CHUNK_RECORDS,
        ),
    }
    .map_err(|e| DcfbError::io(out, &e))?;
    println!(
        "wrote {written} instructions of {} to {out} ({})",
        resolved.name(),
        cli.format
    );
    Ok(())
}

/// `dcfb import` — convert a ChampSim-style 64-byte-record trace into
/// the native trace v2 format, ready for `--workload trace:PATH` or
/// `dcfb replay`. `--lenient` salvages a whole-record prefix from
/// truncated input; the default strict mode rejects it with a typed
/// error at the damaged byte offset.
pub fn import(cli: &Cli) -> Result<(), DcfbError> {
    let Some(path) = &cli.trace else {
        return Err(DcfbError::Usage(
            "--trace INPUT is required for import (a ChampSim-style 64-byte-record file)".into(),
        ));
    };
    let Some(out) = &cli.out else {
        return Err(DcfbError::Usage("--out is required for import".into()));
    };
    let data = std::fs::read(path).map_err(|e| DcfbError::io(path, &e))?;
    let mode = if cli.lenient {
        ReadMode::Lenient
    } else {
        ReadMode::Strict
    };
    let (trace, report) = dcfb_trace::import_champsim(&data, mode)?;
    if let Some(reason) = &report.salvage {
        eprintln!(
            "warning: {path}: input damaged ({reason}); salvaged {} record(s)",
            report.records
        );
    }
    if trace.is_empty() {
        return Err(DcfbError::Config(format!(
            "{path}: no importable records; nothing to write"
        )));
    }
    let file = std::fs::File::create(out).map_err(|e| DcfbError::io(out, &e))?;
    let written = dcfb_trace::write_binary_v2(
        &mut trace.replay(),
        file,
        trace.len() as u64,
        None,
        dcfb_trace::file::DEFAULT_CHUNK_RECORDS,
    )
    .map_err(|e| DcfbError::io(out, &e))?;
    println!(
        "imported {} record(s) ({} branches, {} discontinuities) -> {written} instructions in {out}",
        report.records, report.branches, report.discontinuities
    );
    println!("replay with: dcfb run --workload \"trace:{out}\" --method SN4L+Dis+BTB");
    Ok(())
}

/// `dcfb replay`
pub fn replay(cli: &Cli) -> Result<(), DcfbError> {
    let Some(path) = &cli.trace else {
        return Err(DcfbError::Usage("--trace is required for replay".into()));
    };
    let data = std::fs::read(path).map_err(|e| DcfbError::io(path, &e))?;
    let mode = if cli.lenient {
        ReadMode::Lenient
    } else {
        ReadMode::Strict
    };
    // Sniff the format by magic.
    let trace: VecTrace = if data.starts_with(dcfb_trace::file::MAGIC)
        || data.starts_with(dcfb_trace::file::MAGIC_V2)
    {
        let (trace, report) = dcfb_trace::read_binary_checked(data.as_slice(), mode)?;
        if let Some(reason) = &report.salvage {
            eprintln!(
                "warning: {path}: trace damaged ({reason}); salvaged {} of {} records",
                report.records,
                report
                    .declared_records
                    .map_or_else(|| "unknown".to_owned(), |n| n.to_string()),
            );
        }
        trace
    } else {
        dcfb_trace::read_text(data.as_slice())?
    };
    if trace.is_empty() {
        return Err(DcfbError::Config(format!(
            "{path}: trace holds no records; nothing to replay"
        )));
    }
    let start_pc = trace.instrs()[0].pc;
    let code: Arc<dyn CodeMemory + Send + Sync> =
        Arc::new(RecordedCode::from_trace(trace.instrs()));
    let label = path.clone();
    let total = trace.len() as u64;
    let warmup = cli.warmup.min(total / 2);
    let measure = (total - warmup).min(cli.measure);

    let run_one = |method: &str| -> Result<SimReport, DcfbError> {
        let mut cfg = config_for(cli, method)?;
        cfg.warmup_instrs = warmup.max(1);
        cfg.measure_instrs = measure.max(1);
        let mut sim = Simulator::try_with_code(cfg, Arc::clone(&code), start_pc, label.clone())?;
        let mut replayer = trace.replay();
        Ok(sim.run(&mut replayer))
    };
    let base = run_one("Baseline")?;
    let r = run_one(&cli.method)?;
    if cli.json {
        // Reuse the same JSON shape as `run`.
        println!("{}", report_json(&r, Some(&base)).render());
        return Ok(());
    }
    println!(
        "replayed {} instructions ({warmup} warmup + {measure} measured)\n",
        total
    );
    print_report(&r, &base);
    Ok(())
}

/// `dcfb conformance`
pub fn conformance(cli: &Cli) -> Result<(), DcfbError> {
    if cli.ops == 0 {
        // A zero budget would "pass" every lockstep check by running
        // nothing — reject it as a configuration error, not usage.
        return Err(DcfbError::Config(
            "conformance op budget must be positive (--ops 0 would check nothing)".into(),
        ));
    }
    let report = dcfb_conformance::run_full_suite(cli.seed, cli.ops);
    print!("{}", report.render());
    if report.passed() {
        Ok(())
    } else {
        let first = report
            .failures()
            .first()
            .map(|c| c.name.clone())
            .unwrap_or_default();
        Err(DcfbError::Run {
            workload: "fuzzed op streams".to_owned(),
            method: "conformance".to_owned(),
            message: format!(
                "{} of {} checks failed (first: {first}); \
                 reproduce with --seed {} --ops {}",
                report.failures().len(),
                report.checks.len(),
                report.seed,
                report.ops_per_structure
            ),
        })
    }
}

/// `dcfb fuzz` — the coverage-guided conformance campaign on the
/// worker pool. Stdout carries only the deterministic summary (the
/// same bytes at any `--jobs`); timing goes to stderr.
pub fn fuzz(cli: &Cli) -> Result<(), DcfbError> {
    let jobs = if cli.jobs == 0 {
        dcfb_bench::sweep::jobs()
    } else {
        cli.jobs
    };
    let opts = dcfb_bench::FuzzOptions {
        seed: cli.seed,
        total_ops: cli.ops as u64,
        jobs,
        quick: cli.quick,
        state: cli.state.as_ref().map(std::path::PathBuf::from),
        corpus_out: cli.corpus_out.as_ref().map(std::path::PathBuf::from),
    };
    let report = dcfb_bench::run_fuzz_campaign(&opts)?;
    print!("{}", report.render());
    eprintln!(
        "fuzz: {:.2}s wall clock, {:.0} ops/s, {} jobs",
        report.seconds, report.ops_per_sec, report.jobs
    );
    if let Some(path) = &cli.corpus_out {
        eprintln!("fuzz: wrote minimized corpus to {path}");
    }
    if let Some(len) = report.counterexample_len {
        return Err(DcfbError::Run {
            workload: "fuzzed op streams".to_owned(),
            method: "fuzz".to_owned(),
            message: format!(
                "a campaign candidate diverged from production (shrunk to {len} op(s)); \
                 reproduce with --seed {}{}",
                report.seed,
                if cli.quick {
                    " --quick".to_owned()
                } else {
                    format!(" --ops {}", cli.ops)
                }
            ),
        });
    }
    if cli.quick && report.coverage_bits <= report.baseline_bits {
        // The --quick smoke doubles as the verify-flow gate: guided
        // search must strictly beat the fixed-seed generator at the
        // same executed-op budget.
        return Err(DcfbError::Run {
            workload: "fuzzed op streams".to_owned(),
            method: "fuzz".to_owned(),
            message: format!(
                "guided coverage ({} bits) failed to exceed the fixed-seed baseline ({} bits)",
                report.coverage_bits, report.baseline_bits
            ),
        });
    }
    Ok(())
}

/// `chaos`: the seeded fault campaign — supervised retries, deadlines,
/// quarantine, trace corruption, and checkpoint salvage, all through
/// the real stack, with every invariant checked.
pub fn chaos(cli: &Cli) -> Result<(), DcfbError> {
    let opts = dcfb_bench::chaos::ChaosOptions {
        seed: cli.seed,
        quick: cli.quick,
        ..dcfb_bench::chaos::ChaosOptions::default()
    };
    // The campaign injects worker panics on purpose; keep the default
    // hook's noise (message + optional backtrace) out of stderr for
    // those while leaving genuine panics visible. `take_hook` afterwards
    // restores the default hook.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !dcfb_errors::panic_message(info.payload()).contains("injected fault") {
            prev(info);
        }
    }));
    let report = dcfb_bench::chaos::run_chaos(&opts);
    let _ = std::panic::take_hook();
    print!("{}", report.render());
    if report.passed() {
        Ok(())
    } else {
        let first = report.failures.first().cloned().unwrap_or_default();
        Err(DcfbError::Run {
            workload: "fault campaign".to_owned(),
            method: "chaos".to_owned(),
            message: format!(
                "{} invariant violation(s) (first: {first}); reproduce with --seed {}{}",
                report.failures.len(),
                report.seed,
                if report.quick { " --quick" } else { "" }
            ),
        })
    }
}
