//! Seeded round-trip fuzzing for the SDK's flat-JSON wire codec:
//! random flat objects must encode → decode → encode byte-identically,
//! and mangled documents must come back as typed protocol errors —
//! never a panic, whatever a malformed peer sends.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use dcfb_sdk::json::{parse_object, JsonValue, ObjectWriter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Characters spanning every escape class the writer knows: plain
/// ASCII, the named escapes, raw control bytes (escaped as `\u00xx`),
/// and 2–4-byte UTF-8 sequences.
const CHAR_POOL: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\t', '\r', '\u{0001}', '\u{001f}', '\u{0008}',
    '\u{000C}', 'é', 'ß', '→', '丕', '😀',
];

fn random_string(rng: &mut SmallRng) -> String {
    let len = rng.gen_range(0..24usize);
    (0..len)
        .map(|_| CHAR_POOL[rng.gen_range(0..CHAR_POOL.len())])
        .collect()
}

/// An f64 that survives the writer's `{:.6}` rendering exactly: a
/// dyadic rational with denominator 64 needs exactly six decimal
/// digits, so parse-then-reprint is the identity.
fn random_sixdigit_f64(rng: &mut SmallRng) -> f64 {
    rng.gen_range(0..1u64 << 20) as f64 / 64.0
}

fn random_object_text(rng: &mut SmallRng) -> String {
    let mut w = ObjectWriter::new();
    let fields = rng.gen_range(0..12usize);
    for i in 0..fields {
        let key = format!("k{i}-{}", random_string(rng));
        match rng.gen_range(0..4u32) {
            0 => {
                let s = random_string(rng);
                w.str_field(&key, &s);
            }
            1 => {
                let n: u64 = rng.gen();
                w.u64_field(&key, n);
            }
            2 => {
                w.f64_field(&key, random_sixdigit_f64(rng));
            }
            _ => {
                w.bool_field(&key, rng.gen_bool(0.5));
            }
        }
    }
    w.finish()
}

fn reencode(obj: &[(String, JsonValue)]) -> String {
    let mut w = ObjectWriter::new();
    for (key, value) in obj {
        match value {
            JsonValue::Str(s) => w.str_field(key, s),
            JsonValue::U64(n) => w.u64_field(key, *n),
            JsonValue::F64(x) => w.f64_field(key, *x),
            JsonValue::Bool(b) => w.bool_field(key, *b),
            JsonValue::Null => panic!("the writer never produces null from finite inputs"),
        };
    }
    w.finish()
}

#[test]
fn random_objects_round_trip_byte_identically() {
    let mut rng = SmallRng::seed_from_u64(0x5DC0);
    for round in 0..300 {
        let text = random_object_text(&mut rng);
        let obj = parse_object(&text)
            .unwrap_or_else(|e| panic!("round {round}: rejected own output {text:?}: {e}"));
        let again = reencode(&obj);
        assert_eq!(text, again, "round {round}: re-encode drifted");
        // And a second decode sees the identical structure.
        let obj2 = parse_object(&again).unwrap();
        assert_eq!(obj, obj2, "round {round}: decode unstable");
    }
}

#[test]
fn truncated_documents_error_but_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0x5DC1);
    for _ in 0..100 {
        let text = random_object_text(&mut rng);
        let chars: Vec<char> = text.chars().collect();
        let cut = rng.gen_range(0..chars.len());
        let truncated: String = chars[..cut].iter().collect();
        // Anything short of the full document is malformed; the parser
        // must return a typed error, not panic.
        assert!(
            parse_object(&truncated).is_err(),
            "accepted truncation {truncated:?} of {text:?}"
        );
    }
}

#[test]
fn mutated_documents_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0x5DC2);
    let mut parsed = 0u32;
    for _ in 0..500 {
        let text = random_object_text(&mut rng);
        let mut bytes = text.into_bytes();
        if bytes.is_empty() {
            continue;
        }
        for _ in 0..rng.gen_range(1..4u32) {
            let at = rng.gen_range(0..bytes.len());
            bytes[at] = rng.gen::<u8>() & 0x7f; // stay ASCII so UTF-8 survives
        }
        let Ok(mangled) = String::from_utf8(bytes) else {
            continue;
        };
        // Err or Ok are both acceptable (a flip inside a string body
        // can leave the document valid); panicking is not.
        if parse_object(&mangled).is_ok() {
            parsed += 1;
        }
    }
    // Sanity: the mutation actually breaks most documents.
    assert!(parsed < 400, "mutations almost never invalidated anything");
}

#[test]
fn hostile_fixed_inputs_error_cleanly() {
    for bad in [
        "{\"k\": 18446744073709551616}", // u64::MAX + 1
        "{\"k\": \"\\u12\"}",            // truncated \u escape
        "{\"k\": \"\\q\"}",              // unknown escape
        "{\"k\": --1}",
        "{\"k\": 1 2}",
        "{\"k\": \"a\" \"b\"}",
        "{\"k\"; 1}",
        "{\"k\": nulll}",
        "{{}}",
        "null",
    ] {
        assert!(parse_object(bad).is_err(), "accepted {bad:?}");
    }
}
