//! Wire types shared by the `dcfb serve` server and the SDK client:
//! job specifications with their digest identity, job states, and the
//! reply shapes of every endpoint.
//!
//! A job is identified by the digest of its canonical form
//! (`workload|method|warmup|measure|seed`) — the same string is the
//! memoization cache key, so identical submissions coalesce no matter
//! which client sent them.

use crate::json::{self, JsonObject, ObjectWriter};
use dcfb_errors::DcfbError;

/// Everything that determines a simulation's result: the workload, the
/// registry method, the window, and the trace seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Workload name (a `dcfb_workloads` registry entry).
    pub workload: String,
    /// Method name (a `dcfb_prefetch` registry row).
    pub method: String,
    /// Warm-only instructions before measurement.
    pub warmup: u64,
    /// Measured instructions.
    pub measure: u64,
    /// Trace seed driving the workload walker.
    pub seed: u64,
}

impl JobSpec {
    /// The canonical identity string the digest folds over.
    pub fn canonical(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            self.workload, self.method, self.warmup, self.measure, self.seed
        )
    }

    /// 16-hex-digit job identity: a splitmix64 fold over the canonical
    /// string. This is both the job id on the wire and the server's
    /// memoization cache key.
    pub fn digest(&self) -> String {
        let mut h = 0x9E37_79B9_7F4A_7C15u64;
        for b in self.canonical().bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        format!("{h:016x}")
    }

    /// Renders the submission body.
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.str_field("workload", &self.workload)
            .str_field("method", &self.method)
            .u64_field("warmup", self.warmup)
            .u64_field("measure", self.measure)
            .u64_field("seed", self.seed);
        w.finish()
    }

    /// Parses a submission body.
    ///
    /// # Errors
    ///
    /// Returns [`DcfbError::Protocol`] for malformed JSON or missing
    /// fields.
    pub fn from_json(text: &str) -> Result<Self, DcfbError> {
        let obj = json::parse_object(text)?;
        JobSpec::from_object(&obj)
    }

    /// Builds a spec from an already-parsed flat object.
    ///
    /// # Errors
    ///
    /// Returns [`DcfbError::Protocol`] naming the first missing field.
    pub fn from_object(obj: &JsonObject) -> Result<Self, DcfbError> {
        Ok(JobSpec {
            workload: json::want_str(obj, "workload")?,
            method: json::want_str(obj, "method")?,
            warmup: json::want_u64(obj, "warmup")?,
            measure: json::want_u64(obj, "measure")?,
            seed: json::want_u64(obj, "seed")?,
        })
    }
}

/// The one-way life cycle of a served job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is simulating it.
    Running,
    /// Finished; the result is fetchable.
    Done,
    /// Every permitted attempt failed; `error` explains why.
    Failed,
}

impl JobState {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// Returns [`DcfbError::Protocol`] for an unknown state.
    pub fn parse(name: &str) -> Result<Self, DcfbError> {
        match name {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "done" => Ok(JobState::Done),
            "failed" => Ok(JobState::Failed),
            other => Err(DcfbError::protocol(format!("unknown job state {other:?}"))),
        }
    }

    /// Whether the job will never change state again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }
}

/// Reply to `POST /v1/jobs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubmitReply {
    /// Job id (the spec digest).
    pub job: String,
    /// State at submission time.
    pub state: JobState,
    /// The result was already memoized; no new work was scheduled.
    pub cached: bool,
    /// An identical job was already queued/running; this submission
    /// attached to it.
    pub coalesced: bool,
}

impl SubmitReply {
    /// Parses a reply body.
    ///
    /// # Errors
    ///
    /// Returns [`DcfbError::Protocol`] for malformed JSON or fields.
    pub fn from_json(text: &str) -> Result<Self, DcfbError> {
        let obj = json::parse_object(text)?;
        Ok(SubmitReply {
            job: json::want_str(&obj, "job")?,
            state: JobState::parse(&json::want_str(&obj, "state")?)?,
            cached: json::opt_bool(&obj, "cached"),
            coalesced: json::opt_bool(&obj, "coalesced"),
        })
    }
}

/// Reply to `GET /v1/jobs/<id>` and the long-poll progress endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatusReply {
    /// Job id.
    pub job: String,
    /// Current state.
    pub state: JobState,
    /// Lifetime instructions retired by the running attempt (0 while
    /// queued; final count once terminal).
    pub instrs: u64,
    /// Coarse phase: `"queued"`, `"warmup"`, `"measure"`, `"done"`, or
    /// `"failed"`.
    pub phase: String,
    /// Failure diagnostic, present iff `state == Failed`.
    pub error: Option<String>,
}

impl StatusReply {
    /// Parses a reply body.
    ///
    /// # Errors
    ///
    /// Returns [`DcfbError::Protocol`] for malformed JSON or fields.
    pub fn from_json(text: &str) -> Result<Self, DcfbError> {
        let obj = json::parse_object(text)?;
        Ok(StatusReply {
            job: json::want_str(&obj, "job")?,
            state: JobState::parse(&json::want_str(&obj, "state")?)?,
            instrs: json::opt_u64(&obj, "instrs"),
            phase: json::want_str(&obj, "phase")?,
            error: json::opt_str(&obj, "error"),
        })
    }
}

/// Reply to `GET /v1/jobs/<id>/result`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResultReply {
    /// Job id.
    pub job: String,
    /// `SimReport::digest()` of the result — the integrity check a
    /// client can compare against a direct run.
    pub digest: String,
    /// The rendered report JSON, exactly as `dcfb run` would print it.
    pub report_json: String,
}

impl ResultReply {
    /// Parses a reply body.
    ///
    /// # Errors
    ///
    /// Returns [`DcfbError::Protocol`] for malformed JSON or fields.
    pub fn from_json(text: &str) -> Result<Self, DcfbError> {
        let obj = json::parse_object(text)?;
        Ok(ResultReply {
            job: json::want_str(&obj, "job")?,
            digest: json::want_str(&obj, "digest")?,
            report_json: json::want_str(&obj, "report")?,
        })
    }
}

/// Reply to `GET /v1/stats`: the server's counters and queue shape.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// HTTP requests parsed and routed.
    pub requests: u64,
    /// Submissions answered from the memoized cache.
    pub cache_hits: u64,
    /// Submissions coalesced onto an identical queued/running job.
    pub coalesced: u64,
    /// Cache entries evicted under the byte budget.
    pub evictions: u64,
    /// Simulations actually executed by the worker pool.
    pub executed: u64,
    /// Rendered bytes currently held by the result cache.
    pub cache_bytes: u64,
    /// Entries currently held by the result cache.
    pub cache_entries: u64,
    /// Jobs waiting for a worker.
    pub queued: u64,
    /// Jobs being simulated right now.
    pub running: u64,
    /// Jobs finished successfully.
    pub done: u64,
    /// Jobs that failed terminally.
    pub failed: u64,
    /// Worker threads draining the queue.
    pub workers: u64,
}

impl StatsReply {
    /// Parses a reply body (missing fields read as zero, so old
    /// clients survive new servers and vice versa).
    ///
    /// # Errors
    ///
    /// Returns [`DcfbError::Protocol`] for malformed JSON.
    pub fn from_json(text: &str) -> Result<Self, DcfbError> {
        let obj = json::parse_object(text)?;
        Ok(StatsReply {
            requests: json::opt_u64(&obj, "serve_requests"),
            cache_hits: json::opt_u64(&obj, "serve_cache_hits"),
            coalesced: json::opt_u64(&obj, "serve_coalesced"),
            evictions: json::opt_u64(&obj, "serve_evictions"),
            executed: json::opt_u64(&obj, "executed"),
            cache_bytes: json::opt_u64(&obj, "cache_bytes"),
            cache_entries: json::opt_u64(&obj, "cache_entries"),
            queued: json::opt_u64(&obj, "queued"),
            running: json::opt_u64(&obj, "running"),
            done: json::opt_u64(&obj, "done"),
            failed: json::opt_u64(&obj, "failed"),
            workers: json::opt_u64(&obj, "workers"),
        })
    }
}

/// One splitmix64 scramble step (the workspace's standard cheap mixer,
/// also used by the supervisor's backoff jitter).
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            workload: "OLTP (DB A)".to_owned(),
            method: "SN4L+Dis+BTB".to_owned(),
            warmup: 1_000,
            measure: 5_000,
            seed: 42,
        }
    }

    #[test]
    fn digest_is_stable_and_identity_sensitive() {
        let a = spec();
        assert_eq!(a.digest(), spec().digest());
        assert_eq!(a.digest().len(), 16);
        let mut b = spec();
        b.seed = 43;
        assert_ne!(a.digest(), b.digest());
        let mut c = spec();
        c.method = "Baseline".to_owned();
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let a = spec();
        let back = JobSpec::from_json(&a.to_json()).unwrap();
        assert_eq!(a, back);
        assert!(matches!(
            JobSpec::from_json(r#"{"workload": "x"}"#),
            Err(DcfbError::Protocol { .. })
        ));
    }

    #[test]
    fn states_roundtrip_and_classify() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
        ] {
            assert_eq!(JobState::parse(s.name()).unwrap(), s);
        }
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(!JobState::Queued.is_terminal());
        assert!(JobState::parse("exploded").is_err());
    }

    #[test]
    fn replies_parse() {
        let submit = SubmitReply::from_json(
            r#"{"job":"ab","state":"queued","cached":false,"coalesced":true}"#,
        )
        .unwrap();
        assert!(submit.coalesced);
        assert!(!submit.cached);
        let status = StatusReply::from_json(
            r#"{"job":"ab","state":"failed","instrs":12,"phase":"failed","error":"boom"}"#,
        )
        .unwrap();
        assert_eq!(status.error.as_deref(), Some("boom"));
        let result =
            ResultReply::from_json(r#"{"job":"ab","digest":"d","report":"{\"x\":1}"}"#).unwrap();
        assert_eq!(result.report_json, r#"{"x":1}"#);
        let stats = StatsReply::from_json(r#"{"serve_requests":3,"queued":1}"#).unwrap();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.queued, 1);
        assert_eq!(stats.done, 0);
    }
}
