//! # dcfb-sdk
//!
//! The thin blocking client for the `dcfb serve` job server, plus the
//! wire protocol both sides share.
//!
//! The protocol is minimal HTTP/1.1 with flat-JSON bodies — no
//! external HTTP or JSON dependency, hand-rolled the way
//! `crates/trace` hand-rolls its binary format. A client submits a
//! [`JobSpec`], polls or long-polls its progress, and fetches the
//! rendered `SimReport` (with its digest for integrity checking)
//! once the job is done:
//!
//! ```no_run
//! use dcfb_sdk::{Client, JobSpec};
//!
//! # fn main() -> Result<(), dcfb_errors::DcfbError> {
//! let client = Client::new("127.0.0.1:7070");
//! let spec = JobSpec {
//!     workload: "OLTP (DB A)".to_owned(),
//!     method: "SN4L+Dis+BTB".to_owned(),
//!     warmup: 100_000,
//!     measure: 1_000_000,
//!     seed: 42,
//! };
//! let submitted = client.submit(&spec)?;
//! let result = client.wait(&submitted.job)?;
//! println!("{} -> {}", result.digest, result.report_json);
//! # Ok(())
//! # }
//! ```
//!
//! Identical specs share one job id ([`JobSpec::digest`]): repeat
//! submissions are cache hits and concurrent duplicates coalesce onto
//! the one running simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod wire;

pub use client::Client;
pub use wire::{JobSpec, JobState, ResultReply, StatsReply, StatusReply, SubmitReply};
