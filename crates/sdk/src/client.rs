//! The blocking client: one `TcpStream` per request (the server speaks
//! `Connection: close`), hand-rolled HTTP/1.1 framing, typed replies.

use crate::json;
use crate::wire::{JobSpec, ResultReply, StatsReply, StatusReply, SubmitReply};
use dcfb_errors::DcfbError;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Per-request socket timeout: generous enough for the long-poll
/// progress endpoint (which waits up to [`Client::LONG_POLL_MS`]).
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A blocking client for one `dcfb serve` instance.
#[derive(Clone, Debug)]
pub struct Client {
    addr: String,
}

impl Client {
    /// Longest wait the progress long-poll asks the server for.
    pub const LONG_POLL_MS: u64 = 10_000;

    /// A client for the server at `addr` (`HOST:PORT`). No connection
    /// is opened until the first request.
    pub fn new(addr: impl Into<String>) -> Self {
        Client { addr: addr.into() }
    }

    /// The address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// `GET /healthz` — `Ok` iff the server is up and answering.
    ///
    /// # Errors
    ///
    /// [`DcfbError::Protocol`] when the server is unreachable or
    /// answers with anything but 200.
    pub fn health(&self) -> Result<(), DcfbError> {
        self.request("GET", "/healthz", None).map(|_| ())
    }

    /// Submits a job; returns whether it was cached, coalesced, or
    /// newly queued.
    ///
    /// # Errors
    ///
    /// [`DcfbError::Protocol`] for transport failures or a rejected
    /// submission (unknown workload/method, full queue).
    pub fn submit(&self, spec: &JobSpec) -> Result<SubmitReply, DcfbError> {
        let body = self.request("POST", "/v1/jobs", Some(&spec.to_json()))?;
        SubmitReply::from_json(&body)
    }

    /// Fetches a job's current state.
    ///
    /// # Errors
    ///
    /// [`DcfbError::Protocol`] for transport failures or an unknown
    /// job id.
    pub fn status(&self, job: &str) -> Result<StatusReply, DcfbError> {
        let body = self.request("GET", &format!("/v1/jobs/{job}"), None)?;
        StatusReply::from_json(&body)
    }

    /// Long-polls a job's progress: the server replies as soon as the
    /// retired-instruction count moves past `since`, the job reaches a
    /// terminal state, or `wait_ms` elapses — whichever happens first.
    ///
    /// # Errors
    ///
    /// [`DcfbError::Protocol`] for transport failures or an unknown
    /// job id.
    pub fn progress(&self, job: &str, since: u64, wait_ms: u64) -> Result<StatusReply, DcfbError> {
        let path = format!("/v1/jobs/{job}/progress?since={since}&wait_ms={wait_ms}");
        let body = self.request("GET", &path, None)?;
        StatusReply::from_json(&body)
    }

    /// Fetches a finished job's result.
    ///
    /// # Errors
    ///
    /// [`DcfbError::Protocol`] when the job is unknown, not finished,
    /// or its cached result was evicted (resubmit to recompute).
    pub fn result(&self, job: &str) -> Result<ResultReply, DcfbError> {
        let body = self.request("GET", &format!("/v1/jobs/{job}/result"), None)?;
        ResultReply::from_json(&body)
    }

    /// Fetches the server's counters and queue shape.
    ///
    /// # Errors
    ///
    /// [`DcfbError::Protocol`] for transport failures.
    pub fn stats(&self) -> Result<StatsReply, DcfbError> {
        let body = self.request("GET", "/v1/stats", None)?;
        StatsReply::from_json(&body)
    }

    /// Asks the server to shut down cleanly (the SIGTERM equivalent):
    /// it stops accepting, cancels running attempts, persists state,
    /// and exits.
    ///
    /// # Errors
    ///
    /// [`DcfbError::Protocol`] for transport failures.
    pub fn shutdown(&self) -> Result<(), DcfbError> {
        self.request("POST", "/v1/shutdown", Some("{}")).map(|_| ())
    }

    /// Streams a job's progress via repeated long-polls, invoking
    /// `observe` on every update, until the job reaches a terminal
    /// state; returns the final status.
    ///
    /// # Errors
    ///
    /// [`DcfbError::Protocol`] for transport failures mid-stream.
    pub fn stream_progress(
        &self,
        job: &str,
        mut observe: impl FnMut(&StatusReply),
    ) -> Result<StatusReply, DcfbError> {
        let mut since = 0u64;
        loop {
            let status = self.progress(job, since, Self::LONG_POLL_MS)?;
            observe(&status);
            if status.state.is_terminal() {
                return Ok(status);
            }
            since = status.instrs;
        }
    }

    /// Blocks until the job finishes, then fetches its result.
    ///
    /// # Errors
    ///
    /// [`DcfbError::Protocol`] for transport failures, and a protocol
    /// error carrying the job's diagnostic if it failed terminally.
    pub fn wait(&self, job: &str) -> Result<ResultReply, DcfbError> {
        let last = self.stream_progress(job, |_| {})?;
        if let Some(error) = last.error {
            return Err(DcfbError::protocol(format!("job {job} failed: {error}")));
        }
        self.result(job)
    }

    /// One request/response exchange. Returns the body of a 2xx reply;
    /// any other status becomes a protocol error carrying the server's
    /// `error` field when present.
    fn request(&self, method: &str, path: &str, body: Option<&str>) -> Result<String, DcfbError> {
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| DcfbError::protocol(format!("connect {}: {e}", self.addr)))?;
        stream
            .set_read_timeout(Some(IO_TIMEOUT))
            .and_then(|()| stream.set_write_timeout(Some(IO_TIMEOUT)))
            .map_err(|e| DcfbError::protocol(format!("socket setup: {e}")))?;
        let payload = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            self.addr,
            payload.len(),
        );
        stream
            .write_all(request.as_bytes())
            .map_err(|e| DcfbError::protocol(format!("send {method} {path}: {e}")))?;
        let mut raw = Vec::new();
        stream
            .read_to_end(&mut raw)
            .map_err(|e| DcfbError::protocol(format!("read {method} {path}: {e}")))?;
        let text = String::from_utf8(raw)
            .map_err(|_| DcfbError::protocol("response is not UTF-8".to_owned()))?;
        let (status, reply_body) = parse_response(&text)?;
        if (200..300).contains(&status) {
            Ok(reply_body)
        } else {
            let detail = json::parse_object(&reply_body)
                .ok()
                .and_then(|obj| json::opt_str(&obj, "error"))
                .unwrap_or_else(|| reply_body.trim().to_owned());
            Err(DcfbError::protocol(format!(
                "{method} {path}: HTTP {status}: {detail}"
            )))
        }
    }
}

/// Splits a raw HTTP/1.1 response into `(status code, body)`. The
/// server closes the connection after each reply, so the body is
/// everything after the header block (Content-Length is advisory).
fn parse_response(text: &str) -> Result<(u16, String), DcfbError> {
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| DcfbError::protocol("response has no header/body separator".to_owned()))?;
    let status_line = head.lines().next().unwrap_or("");
    let code = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse::<u16>().ok())
        .ok_or_else(|| DcfbError::protocol(format!("bad status line {status_line:?}")))?;
    Ok((code, body.to_owned()))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn parses_responses_and_rejects_garbage() {
        let (code, body) =
            parse_response("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n{}").unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, "{}");
        assert!(parse_response("not http").is_err());
        assert!(parse_response("HTTP/1.1 abc\r\n\r\n").is_err());
    }

    #[test]
    fn unreachable_server_is_a_protocol_error() {
        // Port 1 on localhost is never listening in the test sandbox.
        let client = Client::new("127.0.0.1:1");
        assert!(matches!(client.health(), Err(DcfbError::Protocol { .. })));
    }
}
