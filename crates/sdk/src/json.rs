//! Minimal flat-JSON reader/writer for the dcfb wire protocol.
//!
//! Every message on the wire is one JSON object whose values are
//! strings, unsigned integers, floats, booleans, or null — no nesting,
//! no arrays. Structured payloads (a rendered `SimReport`) travel as
//! escaped strings inside such an object, the same convention the
//! bench checkpoint format uses. The reader is strict: trailing
//! garbage, duplicate syntax errors, and unterminated strings are
//! [`DcfbError::Protocol`] — a malformed peer must never panic this
//! side of the connection.

use dcfb_errors::DcfbError;

/// One value in a flat wire object.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A (fully unescaped) string.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A float (any number with a `.`, exponent, or sign).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a float (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::F64(x) => Some(*x),
            JsonValue::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parsed flat object: `(key, value)` pairs in document order.
pub type JsonObject = Vec<(String, JsonValue)>;

/// Looks up `key` in a parsed object (first occurrence).
pub fn get<'a>(obj: &'a JsonObject, key: &str) -> Option<&'a JsonValue> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Required string field, or a protocol error naming the key.
pub fn want_str(obj: &JsonObject, key: &str) -> Result<String, DcfbError> {
    get(obj, key)
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| DcfbError::protocol(format!("missing string field {key:?}")))
}

/// Required unsigned-integer field, or a protocol error naming the key.
pub fn want_u64(obj: &JsonObject, key: &str) -> Result<u64, DcfbError> {
    get(obj, key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| DcfbError::protocol(format!("missing integer field {key:?}")))
}

/// Optional boolean field, defaulting to `false`.
pub fn opt_bool(obj: &JsonObject, key: &str) -> bool {
    get(obj, key).and_then(JsonValue::as_bool).unwrap_or(false)
}

/// Optional unsigned-integer field, defaulting to zero.
pub fn opt_u64(obj: &JsonObject, key: &str) -> u64 {
    get(obj, key).and_then(JsonValue::as_u64).unwrap_or(0)
}

/// Optional string field; `None` when absent or null.
pub fn opt_str(obj: &JsonObject, key: &str) -> Option<String> {
    get(obj, key).and_then(JsonValue::as_str).map(str::to_owned)
}

/// Parses one flat JSON object from `text`.
///
/// # Errors
///
/// Returns [`DcfbError::Protocol`] describing the first syntax problem.
pub fn parse_object(text: &str) -> Result<JsonObject, DcfbError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut obj = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            obj.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(p.err("expected ',' or '}' in object")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after object"));
    }
    Ok(obj)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> DcfbError {
        DcfbError::protocol(format!("bad JSON at byte {}: {message}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), DcfbError> {
        if self.next() == Some(want) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", want as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, DcfbError> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, DcfbError> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, DcfbError> {
        let start = self.pos;
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {}
                b'.' | b'e' | b'E' | b'+' => fractional = true,
                b'-' if self.pos == start => {}
                b'-' => fractional = true, // exponent sign
                _ => break,
            }
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        if fractional || text.starts_with('-') {
            text.parse::<f64>()
                .map(JsonValue::F64)
                .map_err(|_| self.err("malformed number"))
        } else {
            text.parse::<u64>()
                .map(JsonValue::U64)
                .map_err(|_| self.err("integer out of range"))
        }
    }

    fn string(&mut self) -> Result<String, DcfbError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let end = self.pos + 4;
                        let hex = self
                            .bytes
                            .get(self.pos..end)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| self.err("truncated \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
                        self.pos = end;
                        // Surrogates map to the replacement character;
                        // the writer never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the multi-byte UTF-8 sequence.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("bad UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }
}

/// Appends `s` to `buf` as a quoted, escaped JSON string.
pub fn escape_into(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\t' => buf.push_str("\\t"),
            '\r' => buf.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Builds one flat JSON object field by field.
#[derive(Debug)]
pub struct ObjectWriter {
    buf: String,
    first: bool,
}

impl Default for ObjectWriter {
    fn default() -> Self {
        ObjectWriter::new()
    }
}

impl ObjectWriter {
    /// An empty object (`{`).
    pub fn new() -> Self {
        ObjectWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        escape_into(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        escape_into(&mut self.buf, value);
        self
    }

    /// Adds an unsigned-integer field.
    pub fn u64_field(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a float field (`NaN`/infinities render as `null`).
    pub fn f64_field(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            self.buf.push_str(&format!("{value:.6}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool_field(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Closes the object and returns the rendered text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_every_value_kind() {
        let mut w = ObjectWriter::new();
        w.str_field("s", "a \"quoted\"\nline\\")
            .u64_field("n", u64::MAX)
            .f64_field("x", 0.25)
            .bool_field("b", true)
            .bool_field("c", false);
        let text = w.finish();
        let obj = parse_object(&text).unwrap();
        assert_eq!(want_str(&obj, "s").unwrap(), "a \"quoted\"\nline\\");
        assert_eq!(want_u64(&obj, "n").unwrap(), u64::MAX);
        assert_eq!(get(&obj, "x").unwrap().as_f64().unwrap(), 0.25);
        assert!(opt_bool(&obj, "b"));
        assert!(!opt_bool(&obj, "c"));
        assert!(!opt_bool(&obj, "missing"));
    }

    #[test]
    fn parses_null_unicode_and_empty() {
        let obj = parse_object(r#"{"a": null, "u": "Aé", "e": ""}"#).unwrap();
        assert_eq!(get(&obj, "a"), Some(&JsonValue::Null));
        assert_eq!(want_str(&obj, "u").unwrap(), "Aé");
        assert_eq!(want_str(&obj, "e").unwrap(), "");
        assert!(parse_object("{}").unwrap().is_empty());
        let mut w = ObjectWriter::new();
        w.str_field("k", "héllo → wörld");
        let non_ascii = w.finish();
        let back = parse_object(&non_ascii).unwrap();
        assert_eq!(want_str(&back, "k").unwrap(), "héllo → wörld");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":1} x",
            "{\"a\":\"unterminated}",
            "{\"a\":tru}",
            "{\"a\":1e}",
            "[1]",
        ] {
            assert!(parse_object(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn missing_required_fields_are_protocol_errors() {
        let obj = parse_object(r#"{"n": 3}"#).unwrap();
        assert!(matches!(
            want_str(&obj, "name"),
            Err(DcfbError::Protocol { .. })
        ));
        assert!(matches!(
            want_u64(&obj, "count"),
            Err(DcfbError::Protocol { .. })
        ));
        assert_eq!(opt_u64(&obj, "count"), 0);
        assert_eq!(opt_str(&obj, "name"), None);
    }
}
