//! Prefetch-source tags.
//!
//! Every prefetch issued anywhere in the pipeline carries a
//! [`PfSource`] so downstream classification (MSHR fills, cache and
//! prefetch-buffer evictions, demand hits) can attribute timeliness
//! per prefetcher rather than as one undifferentiated pool.

/// Who issued a memory request.
///
/// `Demand` tags ordinary fetch misses so MSHR entries are uniformly
/// labelled; all other variants are prefetcher components. The
/// composite SN4L+Dis+BTB method issues under three distinct tags
/// (`Sn4l`, `Dis`, `ProactiveChain`) plus `BtbPf` for BTB
/// prefetch-buffer fills, matching the paper's decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum PfSource {
    /// A demand fetch miss (not a prefetch).
    Demand = 0,
    /// Simple next-line / next-4-line prefetchers (NL, N4L).
    NextLine,
    /// Shifted next-4-line (SN4L, §IV-A).
    Sn4l,
    /// Discontinuity prefetcher (Dis, §IV-B).
    Dis,
    /// Proactive RLU chain walks beyond the triggering block (§V-B).
    ProactiveChain,
    /// BTB prefetch: pre-decoded branch sets staged into the BTB
    /// prefetch buffer (§V-C). Lives in a separate block keyspace
    /// from L1i prefetches.
    BtbPf,
    /// Standalone discontinuity baseline (Spracklen-style).
    Discontinuity,
    /// Confluence baseline.
    Confluence,
    /// Boomerang baseline.
    Boomerang,
    /// Shotgun baseline.
    Shotgun,
}

impl PfSource {
    /// Number of variants (array-index space).
    pub const COUNT: usize = 10;

    /// All variants, in index order.
    pub const ALL: [PfSource; PfSource::COUNT] = [
        PfSource::Demand,
        PfSource::NextLine,
        PfSource::Sn4l,
        PfSource::Dis,
        PfSource::ProactiveChain,
        PfSource::BtbPf,
        PfSource::Discontinuity,
        PfSource::Confluence,
        PfSource::Boomerang,
        PfSource::Shotgun,
    ];

    /// Stable machine-readable name (used in the metrics schema).
    pub fn name(self) -> &'static str {
        match self {
            PfSource::Demand => "demand",
            PfSource::NextLine => "next_line",
            PfSource::Sn4l => "sn4l",
            PfSource::Dis => "dis",
            PfSource::ProactiveChain => "proactive_chain",
            PfSource::BtbPf => "btb_pf",
            PfSource::Discontinuity => "discontinuity",
            PfSource::Confluence => "confluence",
            PfSource::Boomerang => "boomerang",
            PfSource::Shotgun => "shotgun",
        }
    }

    /// Inverse of [`PfSource::name`].
    pub fn from_name(name: &str) -> Option<PfSource> {
        PfSource::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// Array index for per-source tables.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether this tag denotes a prefetch (everything but `Demand`).
    pub fn is_prefetch(self) -> bool {
        self != PfSource::Demand
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_indices_are_dense() {
        for (i, s) in PfSource::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(PfSource::from_name(s.name()), Some(*s));
        }
        assert_eq!(PfSource::from_name("bogus"), None);
    }

    #[test]
    fn only_demand_is_not_a_prefetch() {
        let non_pf: Vec<_> = PfSource::ALL.iter().filter(|s| !s.is_prefetch()).collect();
        assert_eq!(non_pf, vec![&PfSource::Demand]);
    }
}
