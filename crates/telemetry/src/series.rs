//! Windowed time-series with bounded memory: a flight recorder.
//!
//! Samples are aggregated over fixed windows of simulated cycles.
//! When the buffer reaches capacity, adjacent windows are coalesced
//! pairwise and the window width doubles, so an arbitrarily long run
//! always fits in `capacity` windows at progressively coarser
//! resolution — memory is bounded and the full run remains visible.

/// One aggregated window of run activity. All fields are raw sums;
/// rates (hit rates, IPC) are derived at export time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowSample {
    /// First cycle covered by the window.
    pub start_cycle: u64,
    /// Cycles actually covered (windows widen across stalls and after
    /// coalescing).
    pub cycles: u64,
    /// Instructions fetched in the window.
    pub instrs: u64,
    /// L1i demand misses in the window.
    pub demand_misses: u64,
    /// Prefetches issued in the window.
    pub pf_issued: u64,
    /// BTB lookups in the window.
    pub btb_lookups: u64,
    /// BTB hits in the window.
    pub btb_hits: u64,
    /// RLU lookups in the window (0 for methods without an RLU).
    pub rlu_lookups: u64,
    /// RLU hits in the window.
    pub rlu_hits: u64,
    /// Sum of per-cycle FTQ occupancy samples.
    pub ftq_occ_sum: u64,
    /// Number of FTQ occupancy samples (0 for the conventional
    /// frontend, which has no FTQ).
    pub ftq_samples: u64,
}

impl WindowSample {
    /// Folds `other` (the later window) into `self`.
    fn merge(&mut self, other: &WindowSample) {
        self.cycles += other.cycles;
        self.instrs += other.instrs;
        self.demand_misses += other.demand_misses;
        self.pf_issued += other.pf_issued;
        self.btb_lookups += other.btb_lookups;
        self.btb_hits += other.btb_hits;
        self.rlu_lookups += other.rlu_lookups;
        self.rlu_hits += other.rlu_hits;
        self.ftq_occ_sum += other.ftq_occ_sum;
        self.ftq_samples += other.ftq_samples;
    }
}

/// Bounded buffer of [`WindowSample`]s with pairwise coalescing.
#[derive(Clone, Debug)]
pub struct WindowSeries {
    window_cycles: u64,
    capacity: usize,
    windows: Vec<WindowSample>,
}

impl WindowSeries {
    /// A series aggregating over `window_cycles`-cycle windows,
    /// holding at most `capacity` windows before coalescing. Both are
    /// clamped to at least 1 / 2 respectively.
    pub fn new(window_cycles: u64, capacity: usize) -> WindowSeries {
        WindowSeries {
            window_cycles: window_cycles.max(1),
            capacity: capacity.max(2),
            windows: Vec::new(),
        }
    }

    /// Current aggregation width in cycles (doubles on coalesce).
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// Appends a completed window, coalescing first if full.
    pub fn push(&mut self, w: WindowSample) {
        if self.windows.len() >= self.capacity {
            self.coalesce();
        }
        self.windows.push(w);
    }

    /// Recorded windows, oldest first.
    pub fn windows(&self) -> &[WindowSample] {
        &self.windows
    }

    /// Discards all windows (aggregation width is kept).
    pub fn reset(&mut self) {
        self.windows.clear();
    }

    fn coalesce(&mut self) {
        let mut merged = Vec::with_capacity(self.windows.len() / 2 + 1);
        let mut it = self.windows.chunks_exact(2);
        for pair in &mut it {
            let mut w = pair[0];
            w.merge(&pair[1]);
            merged.push(w);
        }
        if let [last] = it.remainder() {
            merged.push(*last);
        }
        self.windows = merged;
        self.window_cycles = self.window_cycles.saturating_mul(2);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn sample(start: u64, instrs: u64) -> WindowSample {
        WindowSample {
            start_cycle: start,
            cycles: 100,
            instrs,
            demand_misses: 1,
            ..WindowSample::default()
        }
    }

    #[test]
    fn push_below_capacity_keeps_all() {
        let mut s = WindowSeries::new(100, 8);
        for i in 0..8 {
            s.push(sample(i * 100, 10));
        }
        assert_eq!(s.windows().len(), 8);
        assert_eq!(s.window_cycles(), 100);
    }

    #[test]
    fn coalesce_halves_and_doubles() {
        let mut s = WindowSeries::new(100, 4);
        for i in 0..5 {
            s.push(sample(i * 100, 10));
        }
        // 4 windows coalesced to 2, then the 5th appended.
        assert_eq!(s.windows().len(), 3);
        assert_eq!(s.window_cycles(), 200);
        let w0 = s.windows()[0];
        assert_eq!(w0.start_cycle, 0);
        assert_eq!(w0.cycles, 200);
        assert_eq!(w0.instrs, 20);
        assert_eq!(w0.demand_misses, 2);
    }

    #[test]
    fn totals_survive_repeated_coalescing() {
        let mut s = WindowSeries::new(1, 4);
        for i in 0..1000 {
            s.push(sample(i, 3));
        }
        assert!(s.windows().len() <= 4);
        let total: u64 = s.windows().iter().map(|w| w.instrs).sum();
        assert_eq!(total, 3000);
        assert!(s.window_cycles() > 1);
    }

    #[test]
    fn odd_remainder_is_kept() {
        let mut s = WindowSeries::new(10, 2);
        s.push(sample(0, 1));
        s.push(sample(10, 2));
        s.push(sample(20, 4));
        let total: u64 = s.windows().iter().map(|w| w.instrs).sum();
        assert_eq!(total, 7);
    }
}
