//! A small recursive JSON value model and parser.
//!
//! The workspace is dependency-free by design (no serde); this module
//! gives the telemetry layer lossless round-trips for its documents.
//! Integers are kept exact: a number without fraction or exponent
//! parses as `UInt`/`Int` (full 64-bit range), everything else as
//! `Float`.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer literal (exact).
    UInt(u64),
    /// Negative integer literal (exact).
    Int(i64),
    /// Any number with a fraction or exponent.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document (trailing garbage is an
    /// error).
    ///
    /// # Errors
    ///
    /// A human-readable message with a byte offset on malformed
    /// input.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let b = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(u) => Some(*u),
            JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as `f64` for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(u) => Some(*u as f64),
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&Vec<JsonValue>> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Escapes `s` as a JSON string literal (with quotes) into `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so
                // boundaries are valid).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                if let Ok(chunk) = std::str::from_utf8(&b[start..*pos]) {
                    s.push_str(chunk);
                }
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number")?;
    if text.is_empty() || text == "-" {
        return Err(format!("bad number at byte {start}"));
    }
    if !is_float {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(i) = stripped.parse::<i64>() {
                return Ok(JsonValue::Int(-i));
            }
        } else if let Ok(u) = text.parse::<u64>() {
            return Ok(JsonValue::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Float)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = JsonValue::parse(
            r#"{"a": [1, -2, 3.5, "x\n", true, null], "b": {"c": 18446744073709551615}}"#,
        )
        .unwrap();
        let a = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1], JsonValue::Int(-2));
        assert_eq!(a[2].as_f64(), Some(3.5));
        assert_eq!(a[3].as_str(), Some("x\n"));
        assert_eq!(a[4].as_bool(), Some(true));
        assert_eq!(a[5], JsonValue::Null);
        // u64::MAX survives exactly — the reason this module exists.
        let c = v.get("b").and_then(|b| b.get("c")).unwrap();
        assert_eq!(c.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\" 1}",
            "\"unterminated",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\te\u{1}");
        let back = JsonValue::parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn unicode_passes_through() {
        let v = JsonValue::parse(r#""héllo é""#).unwrap();
        assert_eq!(v.as_str(), Some("héllo é"));
    }

    #[test]
    fn last_duplicate_key_wins() {
        let v = JsonValue::parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").and_then(JsonValue::as_u64), Some(2));
    }
}
