//! Prefetch-timeliness classification (FDIP Revisited taxonomy).
//!
//! Every issued prefetch is tracked through a three-stage lifecycle
//! and lands in **exactly one** terminal class, so per source:
//!
//! ```text
//! accurate + late + early_evicted + useless == issued
//! ```
//!
//! State machine (one record per issued prefetch):
//!
//! ```text
//! issue ──► in_flight ──fill──► resident ──hit──────► ACCURATE
//!               │                  │
//!               │ demand merge     │ evicted unused ─► evicted window
//!               ▼                  │                      │
//!             LATE                 │        demand miss ──► EARLY_EVICTED
//!                                  │        aged out ─────► USELESS
//!                                  ▼
//!            (finalize / displacement at any stage) ──────► USELESS
//! ```
//!
//! The evicted window is a bounded FIFO: a block evicted before use
//! that is demanded again "soon" (within the window's lifetime)
//! counts as *early-evicted* — the prefetch was right but the buffer
//! too small or the prefetch too early; blocks that age out of the
//! window were simply *useless*.

use crate::source::PfSource;
use std::collections::{HashMap, VecDeque};

/// Terminal-class tallies for one prefetch source.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimelinessCounts {
    /// Prefetches issued (MSHR allocated / buffer filled).
    pub issued: u64,
    /// Filled before the demand arrived and then used.
    pub accurate: u64,
    /// Demand arrived while the prefetch was still in flight.
    pub late: u64,
    /// Evicted before use, then demanded again shortly after.
    pub early_evicted: u64,
    /// Never helped a demand fetch.
    pub useless: u64,
}

impl TimelinessCounts {
    /// Sum of the four terminal classes; equals `issued` once every
    /// record has been finalized.
    pub fn classified(&self) -> u64 {
        self.accurate + self.late + self.early_evicted + self.useless
    }
}

/// Tracks the lifecycle of issued prefetches, keyed by block.
///
/// The caller guarantees one live record per block per tracker (the
/// MSHR merges duplicate requests); should a duplicate slip through,
/// the displaced record is finalized as *useless* so the sum
/// invariant still holds.
#[derive(Clone, Debug)]
pub struct TimelinessTracker {
    in_flight: HashMap<u64, PfSource>,
    resident: HashMap<u64, PfSource>,
    evicted: HashMap<u64, PfSource>,
    evicted_fifo: VecDeque<u64>,
    evicted_cap: usize,
    counts: [TimelinessCounts; PfSource::COUNT],
}

impl TimelinessTracker {
    /// A tracker whose early-evicted window holds `evicted_cap`
    /// blocks (clamped to at least 1).
    pub fn new(evicted_cap: usize) -> TimelinessTracker {
        TimelinessTracker {
            in_flight: HashMap::new(),
            resident: HashMap::new(),
            evicted: HashMap::new(),
            evicted_fifo: VecDeque::new(),
            evicted_cap: evicted_cap.max(1),
            counts: [TimelinessCounts::default(); PfSource::COUNT],
        }
    }

    /// A prefetch for `block` was issued by `source`.
    pub fn issue(&mut self, block: u64, source: PfSource) {
        self.counts[source.index()].issued += 1;
        if let Some(old) = self.in_flight.insert(block, source) {
            self.counts[old.index()].useless += 1;
        }
    }

    /// A demand request merged onto the in-flight prefetch of `block`.
    pub fn late(&mut self, block: u64) {
        if let Some(s) = self.in_flight.remove(&block) {
            self.counts[s.index()].late += 1;
        }
    }

    /// The prefetch of `block` completed and the line became resident
    /// (L1i or prefetch buffer) without a demand waiting.
    pub fn fill(&mut self, block: u64) {
        if let Some(s) = self.in_flight.remove(&block) {
            if let Some(old) = self.resident.insert(block, s) {
                self.counts[old.index()].useless += 1;
            }
        }
    }

    /// A demand fetch hit the resident prefetched `block`.
    pub fn hit(&mut self, block: u64) {
        if let Some(s) = self.resident.remove(&block) {
            self.counts[s.index()].accurate += 1;
        }
    }

    /// The resident, never-used prefetched `block` was evicted.
    pub fn evict_unused(&mut self, block: u64) {
        let Some(s) = self.resident.remove(&block) else {
            return;
        };
        if let Some(old) = self.evicted.insert(block, s) {
            self.counts[old.index()].useless += 1;
            // Block already queued; don't double-queue.
        } else {
            self.evicted_fifo.push_back(block);
        }
        while self.evicted_fifo.len() > self.evicted_cap {
            if let Some(aged) = self.evicted_fifo.pop_front() {
                if let Some(s) = self.evicted.remove(&aged) {
                    self.counts[s.index()].useless += 1;
                }
            }
        }
    }

    /// A demand miss on `block`: if it was recently evicted unused,
    /// the prefetch was early-evicted.
    pub fn demand_miss(&mut self, block: u64) {
        if let Some(s) = self.evicted.remove(&block) {
            self.counts[s.index()].early_evicted += 1;
        }
    }

    /// Finalizes every live record as *useless*. After this, the sum
    /// invariant holds exactly.
    pub fn finalize(&mut self) {
        for (_, s) in self.in_flight.drain() {
            self.counts[s.index()].useless += 1;
        }
        for (_, s) in self.resident.drain() {
            self.counts[s.index()].useless += 1;
        }
        for (_, s) in self.evicted.drain() {
            self.counts[s.index()].useless += 1;
        }
        self.evicted_fifo.clear();
    }

    /// Tallies for `source`.
    pub fn counts(&self, source: PfSource) -> TimelinessCounts {
        self.counts[source.index()]
    }

    /// Tallies summed over all sources.
    pub fn total(&self) -> TimelinessCounts {
        let mut t = TimelinessCounts::default();
        for c in &self.counts {
            t.issued += c.issued;
            t.accurate += c.accurate;
            t.late += c.late;
            t.early_evicted += c.early_evicted;
            t.useless += c.useless;
        }
        t
    }

    /// Drops all records and tallies (measurement-window reset).
    /// Prefetches in flight across the reset are intentionally
    /// forgotten — they were issued before the window began.
    pub fn reset(&mut self) {
        self.in_flight.clear();
        self.resident.clear();
        self.evicted.clear();
        self.evicted_fifo.clear();
        self.counts = [TimelinessCounts::default(); PfSource::COUNT];
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn t() -> TimelinessTracker {
        TimelinessTracker::new(16)
    }

    #[test]
    fn accurate_path() {
        let mut tr = t();
        tr.issue(1, PfSource::Sn4l);
        tr.fill(1);
        tr.hit(1);
        tr.finalize();
        let c = tr.counts(PfSource::Sn4l);
        assert_eq!(c.issued, 1);
        assert_eq!(c.accurate, 1);
        assert_eq!(c.classified(), c.issued);
    }

    #[test]
    fn late_path() {
        let mut tr = t();
        tr.issue(2, PfSource::Dis);
        tr.late(2);
        // A later fill of the same block must not re-enter tracking.
        tr.fill(2);
        tr.hit(2);
        tr.finalize();
        let c = tr.counts(PfSource::Dis);
        assert_eq!(c.late, 1);
        assert_eq!(c.accurate, 0);
        assert_eq!(c.classified(), c.issued);
    }

    #[test]
    fn early_evicted_vs_useless_aging() {
        let mut tr = TimelinessTracker::new(2);
        for b in 0..4u64 {
            tr.issue(b, PfSource::ProactiveChain);
            tr.fill(b);
            tr.evict_unused(b);
        }
        // Window cap 2: blocks 0 and 1 aged out (useless).
        tr.demand_miss(3); // early-evicted
        tr.demand_miss(0); // already aged out — no effect
        tr.finalize();
        let c = tr.counts(PfSource::ProactiveChain);
        assert_eq!(c.issued, 4);
        assert_eq!(c.early_evicted, 1);
        assert_eq!(c.useless, 3);
        assert_eq!(c.classified(), c.issued);
    }

    #[test]
    fn finalize_flushes_every_stage() {
        let mut tr = t();
        tr.issue(1, PfSource::Sn4l); // stays in flight
        tr.issue(2, PfSource::Sn4l);
        tr.fill(2); // stays resident
        tr.issue(3, PfSource::Sn4l);
        tr.fill(3);
        tr.evict_unused(3); // stays in evicted window
        tr.finalize();
        let c = tr.counts(PfSource::Sn4l);
        assert_eq!(c.issued, 3);
        assert_eq!(c.useless, 3);
        assert_eq!(c.classified(), c.issued);
    }

    #[test]
    fn duplicate_issue_and_fill_preserve_invariant() {
        let mut tr = t();
        tr.issue(7, PfSource::Shotgun);
        tr.issue(7, PfSource::Shotgun); // displaced record → useless
        tr.fill(7);
        tr.hit(7);
        tr.finalize();
        let c = tr.counts(PfSource::Shotgun);
        assert_eq!(c.issued, 2);
        assert_eq!(c.accurate, 1);
        assert_eq!(c.useless, 1);
        assert_eq!(c.classified(), c.issued);
    }

    #[test]
    fn events_for_untracked_blocks_are_ignored() {
        let mut tr = t();
        tr.late(9);
        tr.fill(9);
        tr.hit(9);
        tr.evict_unused(9);
        tr.demand_miss(9);
        tr.finalize();
        assert_eq!(tr.total(), TimelinessCounts::default());
    }

    #[test]
    fn totals_aggregate_sources() {
        let mut tr = t();
        tr.issue(1, PfSource::Sn4l);
        tr.fill(1);
        tr.hit(1);
        tr.issue(2, PfSource::Dis);
        tr.late(2);
        tr.finalize();
        let tot = tr.total();
        assert_eq!(tot.issued, 2);
        assert_eq!(tot.accurate, 1);
        assert_eq!(tot.late, 1);
        assert_eq!(tot.classified(), tot.issued);
    }
}
