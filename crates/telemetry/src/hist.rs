//! Log2-bucketed histograms: fixed `[u64; 65]` storage, so recording
//! a value is two array writes and never allocates.

/// Which histogram a sample belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Hist {
    /// Cycles a demand fetch waited on an uncovered miss.
    MissLatency = 0,
    /// Issue-to-fill latency of completed prefetches.
    PrefetchLatency,
    /// Per-cycle FTQ occupancy (directed frontend only).
    FtqOccupancy,
    /// Per-cycle MSHR occupancy.
    MshrOccupancy,
}

impl Hist {
    /// Number of histograms.
    pub const COUNT: usize = 4;

    /// All histograms, in index order.
    pub const ALL: [Hist; Hist::COUNT] = [
        Hist::MissLatency,
        Hist::PrefetchLatency,
        Hist::FtqOccupancy,
        Hist::MshrOccupancy,
    ];

    /// Stable machine-readable name (used in the metrics schema).
    pub fn name(self) -> &'static str {
        match self {
            Hist::MissLatency => "miss_latency",
            Hist::PrefetchLatency => "prefetch_latency",
            Hist::FtqOccupancy => "ftq_occupancy",
            Hist::MshrOccupancy => "mshr_occupancy",
        }
    }
}

/// Number of buckets: bucket 0 holds the value 0, bucket `k` holds
/// values in `[2^(k-1), 2^k)`, so 65 buckets cover all of `u64`.
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram with fixed storage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

/// Bucket index for `value`: 0 for 0, else `64 - leading_zeros`.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Records `n` identical samples in one O(1) batched update (the
    /// sampled-telemetry path weights each observation by its sampling
    /// stride).
    pub fn record_n(&mut self, value: u64, n: u64) {
        self.buckets[bucket_of(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw count in bucket `idx` (0 when out of range).
    pub fn bucket(&self, idx: usize) -> u64 {
        self.buckets.get(idx).copied().unwrap_or(0)
    }

    /// Non-empty `(bucket_index, count)` pairs, for sparse export.
    pub fn sparse(&self) -> Vec<(u8, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (i as u8, *c))
            .collect()
    }

    /// Upper bound (exclusive) of the smallest bucket prefix covering
    /// at least `p` (0.0–1.0) of the samples: an approximate
    /// percentile. Returns 0 when empty.
    pub fn percentile_bound(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        u64::MAX
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        *self = Log2Histogram::default();
    }
}

/// The fixed set of all run histograms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSet {
    hists: [Log2Histogram; Hist::COUNT],
}

impl HistSet {
    /// All-empty histograms.
    pub fn new() -> HistSet {
        HistSet::default()
    }

    /// Records one sample into histogram `h`.
    pub fn record(&mut self, h: Hist, value: u64) {
        self.hists[h as usize].record(value);
    }

    /// Records `n` identical samples into histogram `h` in O(1).
    pub fn record_n(&mut self, h: Hist, value: u64, n: u64) {
        self.hists[h as usize].record_n(value, n);
    }

    /// Read access to histogram `h`.
    pub fn get(&self, h: Hist) -> &Log2Histogram {
        &self.hists[h as usize]
    }

    /// Clears every histogram.
    pub fn reset(&mut self) {
        for h in &mut self.hists {
            h.reset();
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(255), 8);
        assert_eq!(bucket_of(256), 9);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn record_and_stats() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 110);
        assert!((h.mean() - 110.0 / 6.0).abs() < 1e-9);
        assert_eq!(h.bucket(0), 1); // 0
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 2); // 2, 3
        assert_eq!(h.bucket(3), 1); // 4
        assert_eq!(h.bucket(7), 1); // 100
        assert_eq!(h.sparse().len(), 5);
    }

    #[test]
    fn percentile_bound_is_monotone() {
        let mut h = Log2Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile_bound(0.5);
        let p99 = h.percentile_bound(0.99);
        assert!(p50 <= p99);
        assert!((512..=1024).contains(&p50), "p50 bound {p50}");
        assert_eq!(h.percentile_bound(1.0), 1024);
    }

    #[test]
    fn histset_routes_by_kind() {
        let mut hs = HistSet::new();
        hs.record(Hist::MissLatency, 30);
        hs.record(Hist::FtqOccupancy, 5);
        assert_eq!(hs.get(Hist::MissLatency).count(), 1);
        assert_eq!(hs.get(Hist::FtqOccupancy).count(), 1);
        assert_eq!(hs.get(Hist::MshrOccupancy).count(), 0);
        hs.reset();
        assert_eq!(hs.get(Hist::MissLatency).count(), 0);
    }
}
