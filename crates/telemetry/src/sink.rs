//! The `Sink` trait: the recording contract instrumentation sites
//! talk to, with a no-op implementation that compiles to nothing.
//!
//! Contract:
//! - Every method has an empty default body, so an implementor pays
//!   only for the events it cares about and [`NullSink`] — a
//!   zero-sized type overriding nothing — is guaranteed to optimize
//!   out entirely (each call inlines to an empty body with no
//!   captured state).
//! - Methods must be O(1) amortized and must not panic: sinks run on
//!   the simulator hot path.
//! - Cycle arguments are simulated cycles, monotonically
//!   non-decreasing per sink within a run.

use crate::counters::Ctr;
use crate::hist::Hist;
use crate::source::PfSource;

/// Why the fetch engine stalled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallKind {
    /// Waiting on an L1i miss.
    L1i,
    /// Waiting on BTB fill / misfetch recovery.
    Btb,
    /// Pipeline redirect (branch misprediction) penalty.
    Redirect,
}

impl StallKind {
    /// Display name used in trace events.
    pub fn name(self) -> &'static str {
        match self {
            StallKind::L1i => "l1i_stall",
            StallKind::Btb => "btb_stall",
            StallKind::Redirect => "redirect_stall",
        }
    }
}

/// Event vocabulary emitted by instrumented components.
pub trait Sink {
    /// Adds `delta` to counter `ctr`.
    fn add(&mut self, ctr: Ctr, delta: u64) {
        let _ = (ctr, delta);
    }

    /// Records `value` into histogram `h`.
    fn observe(&mut self, h: Hist, value: u64) {
        let _ = (h, value);
    }

    /// Records a fetch stall of `kind` spanning `[from, to)` cycles.
    fn stall(&mut self, kind: StallKind, from: u64, to: u64) {
        let _ = (kind, from, to);
    }

    /// Records that `source` issued a prefetch for `block`.
    fn prefetch_issued(&mut self, block: u64, source: PfSource) {
        let _ = (block, source);
    }
}

/// The no-op sink: zero-sized, overrides nothing, compiles to
/// nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl Sink for NullSink {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_zero_sized_and_inert() {
        assert_eq!(std::mem::size_of::<NullSink>(), 0);
        let mut s = NullSink;
        // All defaulted methods are no-ops; nothing to observe, but
        // they must be callable without side effects or panics.
        s.add(Ctr::PfIssued, 1);
        s.observe(Hist::MissLatency, 42);
        s.stall(StallKind::L1i, 0, 10);
        s.prefetch_issued(7, PfSource::Sn4l);
        assert_eq!(s, NullSink);
    }

    #[test]
    fn custom_sink_sees_events() {
        #[derive(Default)]
        struct Capture {
            adds: u64,
            stalls: Vec<(StallKind, u64, u64)>,
        }
        impl Sink for Capture {
            fn add(&mut self, _ctr: Ctr, delta: u64) {
                self.adds += delta;
            }
            fn stall(&mut self, kind: StallKind, from: u64, to: u64) {
                self.stalls.push((kind, from, to));
            }
        }
        let mut c = Capture::default();
        c.add(Ctr::DemandMisses, 2);
        c.stall(StallKind::Btb, 5, 9);
        c.observe(Hist::MissLatency, 1); // defaulted: ignored
        assert_eq!(c.adds, 2);
        assert_eq!(c.stalls, vec![(StallKind::Btb, 5, 9)]);
    }

    #[test]
    fn stall_kind_names_are_distinct() {
        let names = [
            StallKind::L1i.name(),
            StallKind::Btb.name(),
            StallKind::Redirect.name(),
        ];
        let mut dedup = names.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
