//! `dcfb-telemetry` — zero-overhead-when-off observability for the
//! DCFB simulator.
//!
//! The subsystem has four layers:
//!
//! 1. **Primitives** — typed [`Ctr`] counters in a fixed array
//!    ([`CounterSet`]), log2-bucketed fixed-size [`Log2Histogram`]s,
//!    and a bounded flight-recorder [`WindowSeries`] of per-window
//!    samples. None of them allocate on the hot path.
//! 2. **Classification** — [`TimelinessTracker`] implements the
//!    FDIP-Revisited prefetch-timeliness taxonomy: every issued
//!    prefetch ends up in exactly one of *accurate*, *late*,
//!    *early-evicted*, or *useless*, so the four classes always sum to
//!    the number issued (see `timeliness` module docs for the state
//!    machine).
//! 3. **Recording** — [`RunTelemetry`] owns one run's primitives and
//!    exposes the event vocabulary the simulator calls into. The
//!    engine holds it as `Option<Box<RunTelemetry>>`: when telemetry
//!    is off the option is `None` and every instrumentation site is a
//!    single never-taken branch.
//! 4. **Export** — [`MetricsDoc`] (versioned JSON schema
//!    [`METRICS_SCHEMA`], round-trips through [`MetricsDoc::to_json`]
//!    / [`MetricsDoc::from_json`]), CSV time-series
//!    ([`MetricsDoc::to_csv`]), and Chrome trace-event JSON
//!    ([`chrome_trace_json`]) loadable in `chrome://tracing` or
//!    Perfetto.
//!
//! The [`Sink`] trait is the extension contract: all default methods
//! are empty, so the no-op [`NullSink`] compiles to nothing; custom
//! sinks (test capture, live streaming) override what they need.

pub mod counters;
pub mod doc;
pub mod hist;
pub mod json;
pub mod series;
pub mod sink;
pub mod source;
pub mod timeliness;
pub mod trace_event;

mod recorder;

pub use counters::{CounterSet, Ctr};
pub use doc::{HistDump, MetricsDoc, TimelinessRow, METRICS_SCHEMA, SERIES_COLUMNS};
pub use hist::{Hist, HistSet, Log2Histogram};
pub use json::JsonValue;
pub use recorder::{CycleSample, RunMeta, RunTelemetry, TelemetryConfig, TelemetryReport};
pub use series::{WindowSample, WindowSeries};
pub use sink::{NullSink, Sink, StallKind};
pub use source::PfSource;
pub use timeliness::{TimelinessCounts, TimelinessTracker};
pub use trace_event::{chrome_trace_json, TraceEvent};
