//! `RunTelemetry`: one run's recording state and the engine-facing
//! event vocabulary.
//!
//! The simulator holds `Option<Box<RunTelemetry>>`; with telemetry
//! off the option is `None` and every instrumentation site reduces to
//! one never-taken branch, which is how the subsystem meets its
//! < 2 % off-mode overhead budget.

use crate::counters::{CounterSet, Ctr};
use crate::doc::{HistDump, MetricsDoc, TimelinessRow, METRICS_SCHEMA, SERIES_COLUMNS};
use crate::hist::{Hist, HistSet};
use crate::series::{WindowSample, WindowSeries};
use crate::sink::{Sink, StallKind};
use crate::source::PfSource;
use crate::timeliness::{TimelinessCounts, TimelinessTracker};
use crate::trace_event::{chrome_trace_json, TraceEvent};

/// Recording knobs.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Nominal time-series window width in cycles.
    pub window_cycles: u64,
    /// Maximum retained windows before pairwise coalescing.
    pub series_capacity: usize,
    /// Maximum retained trace events; overflow increments
    /// [`Ctr::TraceEventsDropped`].
    pub max_trace_events: usize,
    /// Early-evicted FIFO window size (per tracker).
    pub evicted_window: usize,
    /// Occupancy sampling stride: the per-cycle sampler calls
    /// [`RunTelemetry::tick`] once every `sample_every` cycles, and the
    /// recorder weights each observation by the stride so histogram
    /// counts and occupancy sums still estimate per-cycle totals.
    /// Window series stay *exact* regardless (they difference
    /// cumulative counters at window boundaries, which telescope), as
    /// do lifecycle counters and stall spans, which are recorded
    /// per-event, not per-cycle. 1 disables sampling.
    pub sample_every: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            window_cycles: 1024,
            series_capacity: 512,
            max_trace_events: 50_000,
            evicted_window: 4096,
            sample_every: 16,
        }
    }
}

/// Cumulative pipeline state sampled once per simulated cycle.
/// All fields except the occupancies are running totals; the recorder
/// differences them at window boundaries.
#[derive(Clone, Copy, Debug, Default)]
pub struct CycleSample {
    /// Current cycle.
    pub cycle: u64,
    /// Instructions fetched so far.
    pub instrs: u64,
    /// L1i demand misses so far.
    pub demand_misses: u64,
    /// BTB lookups so far.
    pub btb_lookups: u64,
    /// BTB hits so far.
    pub btb_hits: u64,
    /// RLU lookups so far (0 when the method has no RLU).
    pub rlu_lookups: u64,
    /// RLU hits so far.
    pub rlu_hits: u64,
    /// FTQ occupancy this cycle; `None` on the conventional frontend.
    pub ftq_occupancy: Option<u64>,
    /// MSHR occupancy this cycle.
    pub mshr_occupancy: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct Cumulative {
    instrs: u64,
    demand_misses: u64,
    pf_issued: u64,
    btb_lookups: u64,
    btb_hits: u64,
    rlu_lookups: u64,
    rlu_hits: u64,
}

/// Identity and totals of the finished run, supplied at
/// [`RunTelemetry::finalize`] time.
#[derive(Clone, Debug, Default)]
pub struct RunMeta {
    /// Workload name.
    pub workload: String,
    /// Prefetch method name.
    pub method: String,
    /// Measured cycles.
    pub cycles: u64,
    /// Measured instructions.
    pub instrs: u64,
}

/// Everything a finished run exports.
#[derive(Clone, Debug)]
pub struct TelemetryReport {
    /// The structured metrics document.
    pub doc: MetricsDoc,
    /// Raw trace events (render with
    /// [`TelemetryReport::chrome_trace`]).
    pub events: Vec<TraceEvent>,
}

impl TelemetryReport {
    /// The Chrome trace-event JSON for this run.
    pub fn chrome_trace(&self) -> String {
        chrome_trace_json(&self.events)
    }
}

/// Recording state for one simulated run.
#[derive(Clone, Debug)]
pub struct RunTelemetry {
    cfg: TelemetryConfig,
    counters: CounterSet,
    hists: HistSet,
    /// MSHR-mediated (L1i) prefetches, keyed by cache block.
    timeliness: TimelinessTracker,
    /// BTB prefetch-buffer fills — a separate tracker because its
    /// block keyspace overlaps the L1i one but means something else.
    btbpf: TimelinessTracker,
    series: WindowSeries,
    started: bool,
    window_start: u64,
    snap: Cumulative,
    ftq_occ_sum: u64,
    ftq_samples: u64,
    events: Vec<TraceEvent>,
    dropped_events: u64,
}

impl RunTelemetry {
    /// A fresh recorder.
    pub fn new(cfg: TelemetryConfig) -> RunTelemetry {
        RunTelemetry {
            cfg,
            counters: CounterSet::new(),
            hists: HistSet::new(),
            timeliness: TimelinessTracker::new(cfg.evicted_window),
            btbpf: TimelinessTracker::new(cfg.evicted_window),
            series: WindowSeries::new(cfg.window_cycles, cfg.series_capacity),
            started: false,
            window_start: 0,
            snap: Cumulative::default(),
            ftq_occ_sum: 0,
            ftq_samples: 0,
            events: Vec::new(),
            dropped_events: 0,
        }
    }

    fn cumulative(&self, s: &CycleSample) -> Cumulative {
        Cumulative {
            instrs: s.instrs,
            demand_misses: s.demand_misses,
            pf_issued: self.counters.get(Ctr::PfIssued),
            btb_lookups: s.btb_lookups,
            btb_hits: s.btb_hits,
            rlu_lookups: s.rlu_lookups,
            rlu_hits: s.rlu_hits,
        }
    }

    /// The configured sampling stride (see
    /// [`TelemetryConfig::sample_every`]); callers tick once every this
    /// many cycles.
    pub fn sample_every(&self) -> u64 {
        self.cfg.sample_every.max(1)
    }

    /// Sampled-cycle observation: occupancy histograms plus window
    /// rollover. Call once every [`RunTelemetry::sample_every`] cycles;
    /// each observation is weighted by the stride.
    pub fn tick(&mut self, s: &CycleSample) {
        let weight = self.sample_every();
        if let Some(occ) = s.ftq_occupancy {
            self.hists.record_n(Hist::FtqOccupancy, occ, weight);
            self.ftq_occ_sum += occ * weight;
            self.ftq_samples += weight;
        }
        self.hists
            .record_n(Hist::MshrOccupancy, s.mshr_occupancy, weight);
        if !self.started {
            self.started = true;
            self.window_start = s.cycle;
            self.snap = self.cumulative(s);
            return;
        }
        if s.cycle.saturating_sub(self.window_start) >= self.series.window_cycles() {
            self.close_window(s);
        }
    }

    fn close_window(&mut self, s: &CycleSample) {
        let cur = self.cumulative(s);
        let w = WindowSample {
            start_cycle: self.window_start,
            cycles: s.cycle - self.window_start,
            instrs: cur.instrs.saturating_sub(self.snap.instrs),
            demand_misses: cur.demand_misses.saturating_sub(self.snap.demand_misses),
            pf_issued: cur.pf_issued.saturating_sub(self.snap.pf_issued),
            btb_lookups: cur.btb_lookups.saturating_sub(self.snap.btb_lookups),
            btb_hits: cur.btb_hits.saturating_sub(self.snap.btb_hits),
            rlu_lookups: cur.rlu_lookups.saturating_sub(self.snap.rlu_lookups),
            rlu_hits: cur.rlu_hits.saturating_sub(self.snap.rlu_hits),
            ftq_occ_sum: self.ftq_occ_sum,
            ftq_samples: self.ftq_samples,
        };
        self.push_event(TraceEvent::counter(
            "window",
            self.window_start,
            vec![
                ("instrs", w.instrs),
                ("demand_misses", w.demand_misses),
                ("pf_issued", w.pf_issued),
            ],
        ));
        self.series.push(w);
        self.window_start = s.cycle;
        self.snap = cur;
        self.ftq_occ_sum = 0;
        self.ftq_samples = 0;
    }

    fn push_event(&mut self, e: TraceEvent) {
        if self.events.len() < self.cfg.max_trace_events {
            self.events.push(e);
        } else {
            self.dropped_events += 1;
        }
    }

    // --- L1i prefetch lifecycle -------------------------------------

    /// A prefetch for `block` allocated an MSHR.
    pub fn pf_issued(&mut self, block: u64, source: PfSource) {
        self.counters.add(Ctr::PfIssued, 1);
        self.timeliness.issue(block, source);
    }

    /// A prefetch was dropped (MSHR full).
    pub fn pf_dropped(&mut self) {
        self.counters.add(Ctr::PfDropped, 1);
    }

    /// A demand request merged onto the in-flight prefetch of `block`.
    pub fn pf_late(&mut self, block: u64) {
        self.counters.add(Ctr::PfLate, 1);
        self.timeliness.late(block);
    }

    /// The prefetch of `block` filled (L1i or prefetch buffer) with
    /// no demand waiting; `latency` is issue-to-fill cycles.
    pub fn pf_fill(&mut self, block: u64, latency: u64) {
        self.hists.record(Hist::PrefetchLatency, latency);
        self.timeliness.fill(block);
    }

    /// A demand fetch hit the still-unused prefetched `block`.
    pub fn pf_hit(&mut self, block: u64) {
        self.timeliness.hit(block);
    }

    /// The unused prefetched `block` was evicted.
    pub fn pf_evict_unused(&mut self, block: u64) {
        self.timeliness.evict_unused(block);
    }

    /// A demand miss on `block` (checks the early-evicted window).
    pub fn pf_demand_miss(&mut self, block: u64) {
        self.timeliness.demand_miss(block);
    }

    // --- BTB prefetch-buffer lifecycle ------------------------------

    /// A pre-decoded branch set for `block` was staged into the BTB
    /// prefetch buffer; `evicted` is the displaced block, if any.
    pub fn btbpf_fill(&mut self, block: u64, evicted: Option<u64>) {
        self.btbpf.issue(block, PfSource::BtbPf);
        self.btbpf.fill(block);
        if let Some(ev) = evicted {
            self.btbpf.evict_unused(ev);
        }
    }

    /// A BTB miss was served from the prefetch buffer.
    pub fn btbpf_hit(&mut self, block: u64) {
        self.btbpf.hit(block);
    }

    /// A BTB miss on `block` missed the prefetch buffer too.
    pub fn btbpf_demand_miss(&mut self, block: u64) {
        self.btbpf.demand_miss(block);
    }

    // --- Generic recording ------------------------------------------

    /// Adds `delta` to counter `ctr`.
    pub fn add(&mut self, ctr: Ctr, delta: u64) {
        self.counters.add(ctr, delta);
    }

    /// Records `value` into histogram `h`.
    pub fn observe(&mut self, h: Hist, value: u64) {
        self.hists.record(h, value);
    }

    /// Records a stall of `kind` spanning `[from, to)` cycles.
    pub fn stall(&mut self, kind: StallKind, from: u64, to: u64) {
        let cycles = to.saturating_sub(from);
        let (ev, cy, tid) = match kind {
            StallKind::L1i => (Ctr::StallL1iEvents, Ctr::StallL1iCycles, 1),
            StallKind::Btb => (Ctr::StallBtbEvents, Ctr::StallBtbCycles, 2),
            StallKind::Redirect => (Ctr::StallRedirectEvents, Ctr::StallRedirectCycles, 3),
        };
        self.counters.add(ev, 1);
        self.counters.add(cy, cycles);
        self.push_event(TraceEvent::span(kind.name(), from, cycles, tid));
    }

    /// Discards everything recorded so far (measurement-window
    /// reset). Prefetches in flight across the reset are forgotten,
    /// keeping the timeliness sum invariant intact.
    pub fn reset(&mut self) {
        self.counters.reset();
        self.hists.reset();
        self.timeliness.reset();
        self.btbpf.reset();
        self.series.reset();
        self.started = false;
        self.window_start = 0;
        self.snap = Cumulative::default();
        self.ftq_occ_sum = 0;
        self.ftq_samples = 0;
        self.events.clear();
        self.dropped_events = 0;
    }

    /// Current value of `ctr` (for tests and summaries).
    pub fn counter(&self, ctr: Ctr) -> u64 {
        self.counters.get(ctr)
    }

    /// Combined timeliness tallies for `source` (L1i + BTB trackers).
    pub fn timeliness_counts(&self, source: PfSource) -> TimelinessCounts {
        let a = self.timeliness.counts(source);
        let b = self.btbpf.counts(source);
        TimelinessCounts {
            issued: a.issued + b.issued,
            accurate: a.accurate + b.accurate,
            late: a.late + b.late,
            early_evicted: a.early_evicted + b.early_evicted,
            useless: a.useless + b.useless,
        }
    }

    /// Closes the run: flushes the partial window, finalizes
    /// timeliness, and builds the export document.
    pub fn finalize(mut self, meta: &RunMeta, final_sample: &CycleSample) -> TelemetryReport {
        if self.started && final_sample.cycle > self.window_start {
            self.close_window(final_sample);
        }
        self.timeliness.finalize();
        self.btbpf.finalize();
        self.counters
            .add(Ctr::TraceEventsDropped, self.dropped_events);

        let histograms = Hist::ALL
            .iter()
            .map(|h| {
                let hist = self.hists.get(*h);
                HistDump {
                    name: h.name().to_owned(),
                    count: hist.count(),
                    sum: hist.sum(),
                    buckets: hist.sparse(),
                }
            })
            .collect();

        let timeliness = PfSource::ALL
            .iter()
            .filter(|s| s.is_prefetch())
            .map(|s| (s, self.timeliness_counts(*s)))
            .filter(|(_, c)| c.issued > 0 || c.classified() > 0)
            .map(|(s, c)| TimelinessRow {
                source: s.name().to_owned(),
                issued: c.issued,
                accurate: c.accurate,
                late: c.late,
                early_evicted: c.early_evicted,
                useless: c.useless,
            })
            .collect();

        let series = self
            .series
            .windows()
            .iter()
            .map(|w| {
                let row = vec![
                    w.start_cycle,
                    w.cycles,
                    w.instrs,
                    w.demand_misses,
                    w.pf_issued,
                    w.btb_lookups,
                    w.btb_hits,
                    w.rlu_lookups,
                    w.rlu_hits,
                    w.ftq_occ_sum,
                    w.ftq_samples,
                ];
                debug_assert_eq!(row.len(), SERIES_COLUMNS.len());
                row
            })
            .collect();

        let doc = MetricsDoc {
            schema: METRICS_SCHEMA.to_owned(),
            workload: meta.workload.clone(),
            method: meta.method.clone(),
            cycles: meta.cycles,
            instrs: meta.instrs,
            counters: self.counters.dump(),
            histograms,
            timeliness,
            window_cycles: self.series.window_cycles(),
            series,
        };
        TelemetryReport {
            doc,
            events: self.events,
        }
    }
}

impl Sink for RunTelemetry {
    fn add(&mut self, ctr: Ctr, delta: u64) {
        RunTelemetry::add(self, ctr, delta);
    }
    fn observe(&mut self, h: Hist, value: u64) {
        RunTelemetry::observe(self, h, value);
    }
    fn stall(&mut self, kind: StallKind, from: u64, to: u64) {
        RunTelemetry::stall(self, kind, from, to);
    }
    fn prefetch_issued(&mut self, block: u64, source: PfSource) {
        self.pf_issued(block, source);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn sample(cycle: u64, instrs: u64) -> CycleSample {
        CycleSample {
            cycle,
            instrs,
            ftq_occupancy: Some(instrs % 8),
            ..CycleSample::default()
        }
    }

    fn finalize(rt: RunTelemetry, cycle: u64, instrs: u64) -> TelemetryReport {
        let meta = RunMeta {
            workload: "synthetic".to_owned(),
            method: "SN4L+Dis+BTB".to_owned(),
            cycles: cycle,
            instrs,
        };
        rt.finalize(&meta, &sample(cycle, instrs))
    }

    #[test]
    fn windows_roll_and_doc_validates() {
        let mut rt = RunTelemetry::new(TelemetryConfig {
            window_cycles: 10,
            ..TelemetryConfig::default()
        });
        for c in 0..100 {
            rt.tick(&sample(c, c * 2));
        }
        rt.pf_issued(5, PfSource::Sn4l);
        rt.pf_fill(5, 20);
        rt.pf_hit(5);
        rt.stall(StallKind::L1i, 50, 80);
        let report = finalize(rt, 100, 200);
        report.doc.validate().expect("valid doc");
        assert!(report.doc.series.len() >= 9);
        let total_instrs: u64 = report.doc.series.iter().map(|r| r[2]).sum();
        assert_eq!(total_instrs, 200);
        assert_eq!(report.doc.counter("stall_l1i_cycles"), Some(30));
        let row = &report.doc.timeliness[0];
        assert_eq!(row.source, "sn4l");
        assert_eq!((row.issued, row.accurate), (1, 1));
    }

    #[test]
    fn sum_invariant_after_messy_run() {
        let mut rt = RunTelemetry::new(TelemetryConfig::default());
        // accurate, late, early-evicted, useless, in-flight-at-end.
        rt.pf_issued(1, PfSource::Sn4l);
        rt.pf_fill(1, 10);
        rt.pf_hit(1);
        rt.pf_issued(2, PfSource::Dis);
        rt.pf_late(2);
        rt.pf_issued(3, PfSource::ProactiveChain);
        rt.pf_fill(3, 10);
        rt.pf_evict_unused(3);
        rt.pf_demand_miss(3);
        rt.pf_issued(4, PfSource::Sn4l);
        rt.pf_fill(4, 10);
        rt.pf_evict_unused(4);
        rt.pf_issued(5, PfSource::Dis); // still in flight
        rt.btbpf_fill(100, None);
        rt.btbpf_hit(100);
        rt.btbpf_fill(101, Some(102));
        let report = finalize(rt, 10, 10);
        report.doc.validate().expect("sum invariant");
        let issued: u64 = report.doc.timeliness.iter().map(|t| t.issued).sum();
        assert_eq!(issued, 7);
        let btb = report
            .doc
            .timeliness
            .iter()
            .find(|t| t.source == "btb_pf")
            .expect("btb_pf row");
        assert_eq!(btb.issued, 2);
        assert_eq!(btb.accurate, 1);
    }

    #[test]
    fn reset_clears_state() {
        let mut rt = RunTelemetry::new(TelemetryConfig::default());
        for c in 0..5000 {
            rt.tick(&sample(c, c));
        }
        rt.pf_issued(1, PfSource::Sn4l);
        rt.stall(StallKind::Btb, 1, 4);
        rt.reset();
        assert_eq!(rt.counter(Ctr::PfIssued), 0);
        let report = finalize(rt, 10, 0);
        assert_eq!(report.doc.counter("stall_btb_events"), Some(0));
        assert!(report.doc.timeliness.is_empty());
        assert!(report.events.is_empty() || report.events.len() == 1);
    }

    #[test]
    fn event_cap_counts_drops() {
        let mut rt = RunTelemetry::new(TelemetryConfig {
            max_trace_events: 2,
            ..TelemetryConfig::default()
        });
        for i in 0..5 {
            rt.stall(StallKind::Redirect, i * 10, i * 10 + 3);
        }
        let report = finalize(rt, 100, 0);
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.doc.counter("trace_events_dropped"), Some(3));
        // Trace is still valid JSON with sorted timestamps.
        let text = report.chrome_trace();
        crate::json::JsonValue::parse(&text).expect("valid trace JSON");
    }
}
