//! The versioned JSON metrics document emitted by `dcfb profile`.
//!
//! Schema `dcfb-metrics-v1` (see DESIGN.md "Telemetry & metrics
//! schema" for the field-by-field description). The document
//! round-trips losslessly through [`MetricsDoc::to_json`] /
//! [`MetricsDoc::from_json`]; [`MetricsDoc::validate`] checks the
//! structural invariants, most importantly that every timeliness row
//! satisfies `accurate + late + early_evicted + useless == issued`.

use crate::json::{write_escaped, JsonValue};

/// Current metrics document schema identifier.
pub const METRICS_SCHEMA: &str = "dcfb-metrics-v1";

/// Column names of the time-series table, in emission order.
pub const SERIES_COLUMNS: [&str; 11] = [
    "window_start",
    "cycles",
    "instrs",
    "demand_misses",
    "pf_issued",
    "btb_lookups",
    "btb_hits",
    "rlu_lookups",
    "rlu_hits",
    "ftq_occ_sum",
    "ftq_samples",
];

/// A sparse histogram dump: `buckets[i] = (log2 bucket index, count)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistDump {
    /// Histogram name.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: u64,
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<(u8, u64)>,
}

/// Per-source prefetch-timeliness tallies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelinessRow {
    /// Prefetch source name ([`crate::PfSource::name`]).
    pub source: String,
    /// Prefetches issued.
    pub issued: u64,
    /// Used after filling in time.
    pub accurate: u64,
    /// Demanded while still in flight.
    pub late: u64,
    /// Evicted unused, then demanded again soon.
    pub early_evicted: u64,
    /// Never useful.
    pub useless: u64,
}

impl TimelinessRow {
    /// Sum of the four timeliness classes. A well-formed row has
    /// `classified() == issued` — every issued prefetch lands in
    /// exactly one class.
    pub fn classified(&self) -> u64 {
        self.accurate + self.late + self.early_evicted + self.useless
    }
}

/// One run's exported metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsDoc {
    /// Schema identifier; [`METRICS_SCHEMA`] for documents we write.
    pub schema: String,
    /// Workload name.
    pub workload: String,
    /// Prefetch method name.
    pub method: String,
    /// Measured cycles.
    pub cycles: u64,
    /// Measured instructions.
    pub instrs: u64,
    /// `(name, value)` scalar counters, stable order.
    pub counters: Vec<(String, u64)>,
    /// Histograms.
    pub histograms: Vec<HistDump>,
    /// Per-source timeliness rows (all-zero sources omitted).
    pub timeliness: Vec<TimelinessRow>,
    /// Aggregation width of the time-series windows, in cycles.
    pub window_cycles: u64,
    /// Time-series rows; each row has [`SERIES_COLUMNS`] entries.
    pub series: Vec<Vec<u64>>,
}

impl MetricsDoc {
    /// Serializes the document as pretty-stable JSON (fixed field
    /// order, no floats).
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(4096);
        o.push_str("{\n  \"schema\": ");
        write_escaped(&mut o, &self.schema);
        o.push_str(",\n  \"workload\": ");
        write_escaped(&mut o, &self.workload);
        o.push_str(",\n  \"method\": ");
        write_escaped(&mut o, &self.method);
        o.push_str(&format!(",\n  \"cycles\": {}", self.cycles));
        o.push_str(&format!(",\n  \"instrs\": {}", self.instrs));
        o.push_str(",\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            o.push_str(if i > 0 { ", " } else { "" });
            write_escaped(&mut o, name);
            o.push_str(&format!(": {value}"));
        }
        o.push_str("},\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            o.push_str(if i > 0 { ", " } else { "" });
            o.push_str("{\"name\": ");
            write_escaped(&mut o, &h.name);
            o.push_str(&format!(
                ", \"count\": {}, \"sum\": {}, \"buckets\": [",
                h.count, h.sum
            ));
            for (j, (idx, c)) in h.buckets.iter().enumerate() {
                o.push_str(if j > 0 { ", " } else { "" });
                o.push_str(&format!("[{idx}, {c}]"));
            }
            o.push_str("]}");
        }
        o.push_str("],\n  \"timeliness\": [");
        for (i, t) in self.timeliness.iter().enumerate() {
            o.push_str(if i > 0 { ", " } else { "" });
            o.push_str("{\"source\": ");
            write_escaped(&mut o, &t.source);
            o.push_str(&format!(
                ", \"issued\": {}, \"accurate\": {}, \"late\": {}, \"early_evicted\": {}, \"useless\": {}}}",
                t.issued, t.accurate, t.late, t.early_evicted, t.useless
            ));
        }
        o.push_str(&format!("],\n  \"window_cycles\": {}", self.window_cycles));
        o.push_str(",\n  \"series_columns\": [");
        for (i, c) in SERIES_COLUMNS.iter().enumerate() {
            o.push_str(if i > 0 { ", " } else { "" });
            write_escaped(&mut o, c);
        }
        o.push_str("],\n  \"series\": [");
        for (i, row) in self.series.iter().enumerate() {
            o.push_str(if i > 0 { ",\n    " } else { "\n    " });
            o.push('[');
            for (j, v) in row.iter().enumerate() {
                o.push_str(if j > 0 { ", " } else { "" });
                o.push_str(&v.to_string());
            }
            o.push(']');
        }
        o.push_str("\n  ]\n}\n");
        o
    }

    /// Parses a document previously written by [`MetricsDoc::to_json`].
    ///
    /// # Errors
    ///
    /// A descriptive message on malformed JSON, a missing field, or a
    /// schema identifier this version does not understand.
    pub fn from_json(text: &str) -> Result<MetricsDoc, String> {
        let v = JsonValue::parse(text)?;
        let schema = req_str(&v, "schema")?;
        if schema != METRICS_SCHEMA {
            return Err(format!(
                "unsupported metrics schema {schema:?} (expected {METRICS_SCHEMA:?})"
            ));
        }
        let counters = match v.get("counters") {
            Some(JsonValue::Obj(fields)) => fields
                .iter()
                .map(|(k, val)| {
                    val.as_u64()
                        .map(|u| (k.clone(), u))
                        .ok_or_else(|| format!("counter {k:?} is not a u64"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing counters object".to_owned()),
        };
        let histograms = v
            .get("histograms")
            .and_then(JsonValue::as_array)
            .ok_or("missing histograms array")?
            .iter()
            .map(parse_hist)
            .collect::<Result<Vec<_>, _>>()?;
        let timeliness = v
            .get("timeliness")
            .and_then(JsonValue::as_array)
            .ok_or("missing timeliness array")?
            .iter()
            .map(parse_timeliness)
            .collect::<Result<Vec<_>, _>>()?;
        let series = v
            .get("series")
            .and_then(JsonValue::as_array)
            .ok_or("missing series array")?
            .iter()
            .map(|row| {
                row.as_array()
                    .ok_or_else(|| "series row is not an array".to_owned())?
                    .iter()
                    .map(|x| {
                        x.as_u64()
                            .ok_or_else(|| "series cell is not a u64".to_owned())
                    })
                    .collect::<Result<Vec<u64>, String>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MetricsDoc {
            schema,
            workload: req_str(&v, "workload")?,
            method: req_str(&v, "method")?,
            cycles: req_u64(&v, "cycles")?,
            instrs: req_u64(&v, "instrs")?,
            counters,
            histograms,
            timeliness,
            window_cycles: req_u64(&v, "window_cycles")?,
            series,
        })
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// The first violated invariant: schema mismatch, a timeliness
    /// row whose classes don't sum to `issued`, duplicate counter
    /// names, or a series row of the wrong width.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != METRICS_SCHEMA {
            return Err(format!("schema is {:?}", self.schema));
        }
        let mut names: Vec<&str> = self.counters.iter().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        if names.len() != before {
            return Err("duplicate counter names".to_owned());
        }
        for t in &self.timeliness {
            let classified = t.classified();
            if classified != t.issued {
                return Err(format!(
                    "timeliness row {:?}: accurate {} + late {} + early_evicted {} + useless {} = {} != issued {}",
                    t.source, t.accurate, t.late, t.early_evicted, t.useless, classified, t.issued
                ));
            }
        }
        for (i, row) in self.series.iter().enumerate() {
            if row.len() != SERIES_COLUMNS.len() {
                return Err(format!(
                    "series row {i} has {} columns, expected {}",
                    row.len(),
                    SERIES_COLUMNS.len()
                ));
            }
        }
        Ok(())
    }

    /// Renders the time-series table as CSV (header + one row per
    /// window).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(64 + self.series.len() * 64);
        out.push_str(&SERIES_COLUMNS.join(","));
        out.push('\n');
        for row in &self.series {
            let cells: Vec<String> = row.iter().map(u64::to_string).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

fn req_str(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn req_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing u64 field {key:?}"))
}

fn parse_hist(v: &JsonValue) -> Result<HistDump, String> {
    let buckets = v
        .get("buckets")
        .and_then(JsonValue::as_array)
        .ok_or("histogram missing buckets")?
        .iter()
        .map(|pair| {
            let p = pair.as_array().ok_or("bucket is not a pair")?;
            match (
                p.first().and_then(JsonValue::as_u64),
                p.get(1).and_then(JsonValue::as_u64),
            ) {
                (Some(i), Some(c)) if i < 65 && p.len() == 2 => Ok((i as u8, c)),
                _ => Err("bad bucket pair".to_owned()),
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(HistDump {
        name: req_str(v, "name")?,
        count: req_u64(v, "count")?,
        sum: req_u64(v, "sum")?,
        buckets,
    })
}

fn parse_timeliness(v: &JsonValue) -> Result<TimelinessRow, String> {
    Ok(TimelinessRow {
        source: req_str(v, "source")?,
        issued: req_u64(v, "issued")?,
        accurate: req_u64(v, "accurate")?,
        late: req_u64(v, "late")?,
        early_evicted: req_u64(v, "early_evicted")?,
        useless: req_u64(v, "useless")?,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn sample_doc() -> MetricsDoc {
        MetricsDoc {
            schema: METRICS_SCHEMA.to_owned(),
            workload: "Web (Apache)".to_owned(),
            method: "SN4L+Dis+BTB".to_owned(),
            cycles: 123_456,
            instrs: 120_000,
            counters: vec![
                ("demand_accesses".to_owned(), 120_000),
                ("demand_misses".to_owned(), u64::MAX),
            ],
            histograms: vec![HistDump {
                name: "miss_latency".to_owned(),
                count: 10,
                sum: 300,
                buckets: vec![(5, 7), (6, 3)],
            }],
            timeliness: vec![TimelinessRow {
                source: "sn4l".to_owned(),
                issued: 10,
                accurate: 4,
                late: 3,
                early_evicted: 1,
                useless: 2,
            }],
            window_cycles: 1024,
            series: vec![vec![0; SERIES_COLUMNS.len()], {
                let mut r = vec![1; SERIES_COLUMNS.len()];
                r[0] = 1024;
                r
            }],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let doc = sample_doc();
        let text = doc.to_json();
        let back = MetricsDoc::from_json(&text).expect("parses");
        assert_eq!(doc, back);
        // And twice more, to be sure serialization is stable.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad() {
        let doc = sample_doc();
        doc.validate().expect("valid");

        let mut bad = doc.clone();
        bad.timeliness[0].useless += 1;
        assert!(bad.validate().is_err());

        let mut bad = doc.clone();
        bad.series[0].pop();
        assert!(bad.validate().is_err());

        let mut bad = doc.clone();
        bad.counters.push(("demand_accesses".to_owned(), 1));
        assert!(bad.validate().is_err());

        let mut bad = doc;
        bad.schema = "dcfb-metrics-v0".to_owned();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn from_json_rejects_wrong_schema_and_missing_fields() {
        let mut doc = sample_doc();
        doc.schema = "other".to_owned();
        assert!(MetricsDoc::from_json(&doc.to_json()).is_err());
        assert!(MetricsDoc::from_json("{}").is_err());
        assert!(MetricsDoc::from_json("not json").is_err());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let doc = sample_doc();
        let csv = doc.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("window_start,cycles,instrs"));
        assert_eq!(lines[0].split(',').count(), SERIES_COLUMNS.len());
        assert_eq!(lines[2].split(',').count(), SERIES_COLUMNS.len());
    }

    #[test]
    fn counter_lookup() {
        let doc = sample_doc();
        assert_eq!(doc.counter("demand_misses"), Some(u64::MAX));
        assert_eq!(doc.counter("nope"), None);
    }
}
