//! Chrome trace-event export (`chrome://tracing` / Perfetto).
//!
//! Emits the JSON object format: `{"traceEvents": [...]}` where each
//! event carries `name`, `ph`, `ts`, `pid`, `tid`, and for complete
//! (`"X"`) events a `dur`. Timestamps are *simulated cycles* mapped
//! 1:1 to trace microseconds, which viewers render fine.

/// One trace event. `ph` is `'X'` (complete span) or `'C'` (counter).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Event name (track label).
    pub name: &'static str,
    /// Phase: `'X'` complete, `'C'` counter.
    pub ph: char,
    /// Timestamp in cycles.
    pub ts: u64,
    /// Duration in cycles (complete events only).
    pub dur: u64,
    /// Thread id — one lane per stall kind / counter track.
    pub tid: u32,
    /// Counter arguments (`"C"` events) or span annotations.
    pub args: Vec<(&'static str, u64)>,
}

impl TraceEvent {
    /// A complete (`"X"`) span event.
    pub fn span(name: &'static str, ts: u64, dur: u64, tid: u32) -> TraceEvent {
        TraceEvent {
            name,
            ph: 'X',
            ts,
            dur,
            tid,
            args: Vec::new(),
        }
    }

    /// A counter (`"C"`) event.
    pub fn counter(name: &'static str, ts: u64, args: Vec<(&'static str, u64)>) -> TraceEvent {
        TraceEvent {
            name,
            ph: 'C',
            ts,
            dur: 0,
            tid: 0,
            args,
        }
    }
}

/// Serializes `events` as a Chrome trace JSON document.
///
/// Events are stably sorted by timestamp first, so the output always
/// has monotonically non-decreasing `ts` — some viewers require it
/// and our tests assert it.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.ts);
    let mut out = String::with_capacity(64 + sorted.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        out.push_str(e.name);
        out.push_str("\",\"ph\":\"");
        out.push(e.ph);
        out.push_str("\",\"ts\":");
        out.push_str(&e.ts.to_string());
        if e.ph == 'X' {
            out.push_str(",\"dur\":");
            out.push_str(&e.dur.to_string());
        }
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&e.tid.to_string());
        out.push_str(",\"args\":{");
        for (j, (k, v)) in e.args.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(k);
            out.push_str("\":");
            out.push_str(&v.to_string());
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn output_is_valid_json_with_monotone_timestamps() {
        let events = vec![
            TraceEvent::span("l1i_stall", 50, 10, 1),
            TraceEvent::counter("window", 10, vec![("instrs", 100), ("misses", 3)]),
            TraceEvent::span("btb_stall", 20, 5, 2),
        ];
        let text = chrome_trace_json(&events);
        let doc = JsonValue::parse(&text).expect("valid JSON");
        let evs = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        assert_eq!(evs.len(), 3);
        let ts: Vec<u64> = evs
            .iter()
            .map(|e| e.get("ts").and_then(JsonValue::as_u64).unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts {ts:?}");
        // Counter args survive.
        let first = &evs[0];
        assert_eq!(
            first
                .get("args")
                .and_then(|a| a.get("instrs"))
                .and_then(JsonValue::as_u64),
            Some(100)
        );
    }

    #[test]
    fn empty_trace_is_valid() {
        let text = chrome_trace_json(&[]);
        let doc = JsonValue::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("traceEvents")
                .and_then(JsonValue::as_array)
                .map(Vec::len),
            Some(0)
        );
    }

    #[test]
    fn complete_events_carry_duration() {
        let text = chrome_trace_json(&[TraceEvent::span("l1i_stall", 1, 9, 1)]);
        let doc = JsonValue::parse(&text).unwrap();
        let ev = &doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap()[0];
        assert_eq!(ev.get("dur").and_then(JsonValue::as_u64), Some(9));
        assert_eq!(ev.get("ph").and_then(JsonValue::as_str), Some("X"));
    }
}
