//! Typed counters backed by a fixed array — no hashing, no
//! allocation, one add is one array write.

/// Every scalar counter the simulator records.
///
/// Adding a variant requires extending [`Ctr::ALL`] and
/// [`Ctr::name`]; the metrics schema emits counters by name so old
/// documents stay parseable when new counters appear.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Ctr {
    /// L1i demand lookups.
    DemandAccesses = 0,
    /// L1i demand hits (including prefetched lines).
    DemandHits,
    /// L1i demand misses (before prefetch-buffer salvage).
    DemandMisses,
    /// Demand misses served from the prefetch buffer.
    BufferHits,
    /// Misses on the block sequentially following the previous miss.
    SeqMisses,
    /// Misses at a discontinuity.
    DiscMisses,
    /// Misses with no prefetch in flight at all.
    UncoveredMisses,
    /// Prefetches that allocated an MSHR (or filled the BTB buffer).
    PfIssued,
    /// Prefetches dropped for lack of MSHR capacity.
    PfDropped,
    /// Demand misses that merged onto an in-flight prefetch.
    PfLate,
    /// Fetch stalls caused by L1i misses.
    StallL1iEvents,
    /// Cycles lost to L1i-miss stalls.
    StallL1iCycles,
    /// Fetch stalls caused by BTB misses.
    StallBtbEvents,
    /// Cycles lost to BTB-miss stalls.
    StallBtbCycles,
    /// Pipeline redirects (mispredictions / misfetches).
    StallRedirectEvents,
    /// Cycles lost to redirect penalties.
    StallRedirectCycles,
    /// Cycles the directed fetcher starved on an empty FTQ.
    StallEmptyFtqCycles,
    /// Trace events discarded after the event buffer filled.
    TraceEventsDropped,
    /// Supervised job attempts that failed and were retried.
    JobRetries,
    /// Supervised job attempts cancelled at their deadline.
    JobTimeouts,
    /// Supervised jobs quarantined after exhausting their retry budget
    /// (including resubmissions skipped because their config digest was
    /// already quarantined).
    JobQuarantines,
    /// HTTP requests the job server parsed and routed.
    ServeRequests,
    /// Submissions answered from the memoized result cache.
    ServeCacheHits,
    /// Submissions coalesced onto an identical queued/running job.
    ServeCoalesced,
    /// Result-cache entries evicted under the byte budget (including
    /// entries dropped by the integrity check).
    ServeEvictions,
    /// Fuzz campaign candidates evaluated.
    FuzzCandidates,
    /// Fuzz inputs admitted to the corpus (coverage-increasing).
    FuzzCorpusAdmissions,
    /// Lockstep divergences found by fuzz campaigns.
    FuzzDivergences,
}

impl Ctr {
    /// Number of counters.
    pub const COUNT: usize = 28;

    /// All counters, in index order.
    pub const ALL: [Ctr; Ctr::COUNT] = [
        Ctr::DemandAccesses,
        Ctr::DemandHits,
        Ctr::DemandMisses,
        Ctr::BufferHits,
        Ctr::SeqMisses,
        Ctr::DiscMisses,
        Ctr::UncoveredMisses,
        Ctr::PfIssued,
        Ctr::PfDropped,
        Ctr::PfLate,
        Ctr::StallL1iEvents,
        Ctr::StallL1iCycles,
        Ctr::StallBtbEvents,
        Ctr::StallBtbCycles,
        Ctr::StallRedirectEvents,
        Ctr::StallRedirectCycles,
        Ctr::StallEmptyFtqCycles,
        Ctr::TraceEventsDropped,
        Ctr::JobRetries,
        Ctr::JobTimeouts,
        Ctr::JobQuarantines,
        Ctr::ServeRequests,
        Ctr::ServeCacheHits,
        Ctr::ServeCoalesced,
        Ctr::ServeEvictions,
        Ctr::FuzzCandidates,
        Ctr::FuzzCorpusAdmissions,
        Ctr::FuzzDivergences,
    ];

    /// Stable machine-readable name (used in the metrics schema).
    pub fn name(self) -> &'static str {
        match self {
            Ctr::DemandAccesses => "demand_accesses",
            Ctr::DemandHits => "demand_hits",
            Ctr::DemandMisses => "demand_misses",
            Ctr::BufferHits => "buffer_hits",
            Ctr::SeqMisses => "seq_misses",
            Ctr::DiscMisses => "disc_misses",
            Ctr::UncoveredMisses => "uncovered_misses",
            Ctr::PfIssued => "pf_issued",
            Ctr::PfDropped => "pf_dropped",
            Ctr::PfLate => "pf_late",
            Ctr::StallL1iEvents => "stall_l1i_events",
            Ctr::StallL1iCycles => "stall_l1i_cycles",
            Ctr::StallBtbEvents => "stall_btb_events",
            Ctr::StallBtbCycles => "stall_btb_cycles",
            Ctr::StallRedirectEvents => "stall_redirect_events",
            Ctr::StallRedirectCycles => "stall_redirect_cycles",
            Ctr::StallEmptyFtqCycles => "stall_empty_ftq_cycles",
            Ctr::TraceEventsDropped => "trace_events_dropped",
            Ctr::JobRetries => "job_retries",
            Ctr::JobTimeouts => "job_timeouts",
            Ctr::JobQuarantines => "job_quarantines",
            Ctr::ServeRequests => "serve_requests",
            Ctr::ServeCacheHits => "serve_cache_hits",
            Ctr::ServeCoalesced => "serve_coalesced",
            Ctr::ServeEvictions => "serve_evictions",
            Ctr::FuzzCandidates => "fuzz_candidates",
            Ctr::FuzzCorpusAdmissions => "fuzz_corpus_admissions",
            Ctr::FuzzDivergences => "fuzz_divergences",
        }
    }
}

/// A fixed array of all counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSet {
    values: [u64; Ctr::COUNT],
}

impl CounterSet {
    /// All-zero counters.
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    /// Adds `delta` to `ctr` (saturating; counters never wrap).
    pub fn add(&mut self, ctr: Ctr, delta: u64) {
        let v = &mut self.values[ctr as usize];
        *v = v.saturating_add(delta);
    }

    /// Current value of `ctr`.
    pub fn get(&self, ctr: Ctr) -> u64 {
        self.values[ctr as usize]
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        self.values = [0; Ctr::COUNT];
    }

    /// `(name, value)` pairs in index order.
    pub fn dump(&self) -> Vec<(String, u64)> {
        Ctr::ALL
            .iter()
            .map(|c| (c.name().to_owned(), self.get(*c)))
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn add_get_reset() {
        let mut c = CounterSet::new();
        c.add(Ctr::PfIssued, 3);
        c.add(Ctr::PfIssued, 2);
        c.add(Ctr::BufferHits, u64::MAX);
        c.add(Ctr::BufferHits, 1); // saturates, no wrap
        assert_eq!(c.get(Ctr::PfIssued), 5);
        assert_eq!(c.get(Ctr::BufferHits), u64::MAX);
        assert_eq!(c.get(Ctr::DemandMisses), 0);
        c.reset();
        assert_eq!(c.get(Ctr::PfIssued), 0);
    }

    #[test]
    fn names_are_unique_and_dense() {
        let names: Vec<_> = Ctr::ALL.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), Ctr::COUNT);
        for (i, c) in Ctr::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }

    #[test]
    fn dump_preserves_order() {
        let mut c = CounterSet::new();
        c.add(Ctr::DemandAccesses, 7);
        let d = c.dump();
        assert_eq!(d.len(), Ctr::COUNT);
        assert_eq!(d[0], ("demand_accesses".to_owned(), 7));
    }
}
