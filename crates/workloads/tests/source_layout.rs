//! Guard against the workload crate re-growing a monolith: the
//! workload-source registry split resolution across `source.rs`
//! (parsing + dispatch), `mix.rs` (the interleaver), and `catalog.rs`
//! (the synthetic table); keep every source file under 800 lines so a
//! future source kind lands as a new module, not an append.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::Path;

const MAX_LINES: usize = 800;

fn check_dir(dir: &Path, offenders: &mut Vec<String>) {
    for entry in std::fs::read_dir(dir).expect("read src dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            check_dir(&path, offenders);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let lines = std::fs::read_to_string(&path)
                .expect("read source file")
                .lines()
                .count();
            if lines > MAX_LINES {
                offenders.push(format!("{} ({lines} lines)", path.display()));
            }
        }
    }
}

#[test]
fn no_source_file_exceeds_800_lines() {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut offenders = Vec::new();
    check_dir(&src, &mut offenders);
    assert!(
        offenders.is_empty(),
        "files over {MAX_LINES} lines (split them like source.rs / mix.rs): {offenders:?}"
    );
}
