//! # dcfb-workloads
//!
//! Synthetic server-workload generator for the DCFB reproduction.
//!
//! The paper evaluates on commercial server stacks (Oracle/DB2 TPC-C,
//! SPECweb99 Apache/Zeus, CloudSuite Media Streaming / Web Frontend /
//! Web Search) running under full-system simulation. Those stacks and
//! checkpoints are not redistributable, so this crate builds the closest
//! synthetic equivalent: a *program image* with server-like static
//! structure (thousands of functions, structured control flow, cold
//! error/exception paths interleaved with hot code, loops, skewed call
//! graphs) and a deterministic *walker* that executes it to produce an
//! instruction trace.
//!
//! The generator is calibrated against the characteristics the paper
//! measures rather than against any particular binary:
//!
//! * massive instruction footprints (hundreds of KiB to MiB, Table IV),
//! * 65–80 % of L1i misses are sequential (Fig. 2),
//! * rare-path pollution that makes deep NXL prefetching inaccurate
//!   (Algorithm 1, Fig. 5),
//! * ~80 % of per-block discontinuities caused by one stable branch
//!   (Fig. 7),
//! * ≤ 4 branches per 64-byte block for almost all blocks (Fig. 8),
//! * heavy unconditional-branch populations that overflow a 1.5 K-entry
//!   U-BTB (Fig. 1).
//!
//! Everything is seeded: `(WorkloadParams, seed)` fully determines both
//! the image and the trace.

//! # Examples
//!
//! ```
//! use dcfb_trace::{InstrStream, IsaMode, StreamStats};
//! use dcfb_workloads::workload;
//!
//! let w = workload("Web Search").expect("catalog workload");
//! let mut walker = w.walker(IsaMode::Fixed4, /* trace seed */ 7);
//! let stats = StreamStats::measure(&mut walker, 50_000);
//! assert_eq!(stats.instrs, 50_000);
//! assert!(stats.branch_density() > 0.03);
//! assert!(stats.footprint_blocks > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod image;
pub mod mix;
pub mod params;
pub mod source;
pub mod synth;

pub use catalog::{all_workloads, workload, workload_names, Workload};
pub use image::{ProgramImage, Terminator};
pub use mix::{MixCode, MixStream, DEFAULT_QUANTUM, TENANT_STRIDE};
pub use params::WorkloadParams;
pub use source::{
    resolve_workload, source_names, ResolvedWorkload, SourceSpec, MIX_PREFIX, MIX_SYNTAX,
    TRACE_PREFIX, TRACE_SYNTAX,
};
pub use synth::Walker;
