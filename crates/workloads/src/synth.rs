//! The trace walker: executes a [`ProgramImage`] to produce a dynamic
//! instruction stream.
//!
//! The walker starts in the dispatcher (function 0), which indirect-calls
//! a root handler per transaction; control flow then follows the image's
//! terminators, with conditional directions and indirect-call targets
//! drawn from a seeded RNG. Because the call graph is a DAG (see
//! [`crate::image`]), the call stack is bounded and every `Call` is
//! matched by exactly one `Return`.

use crate::image::{ProgramImage, Terminator};
use dcfb_trace::{Addr, Instr, InstrKind, InstrStream, StaticKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A deterministic, endless instruction stream over a program image.
pub struct Walker {
    image: Arc<ProgramImage>,
    rng: SmallRng,
    cur_fn: u32,
    cur_bb: u32,
    cur_instr: u32,
    stack: Vec<(u32, u32)>, // (function, resume bb)
    /// Remaining trips of the loop at (function, bb), when active.
    loop_counts: fxhash::FxHashMap<(u32, u32), u32>,
    emitted: u64,
    transactions: u64,
    max_depth_seen: usize,
    #[cfg(debug_assertions)]
    expected_pc: Option<Addr>,
}

impl Walker {
    /// Creates a walker over `image` seeded with `seed`.
    pub fn new(image: Arc<ProgramImage>, seed: u64) -> Self {
        Walker {
            image,
            rng: SmallRng::seed_from_u64(seed ^ 0x00a1_7e57_0000_0001),
            cur_fn: 0,
            cur_bb: 0,
            cur_instr: 0,
            stack: Vec::with_capacity(64),
            loop_counts: fxhash::FxHashMap::default(),
            emitted: 0,
            transactions: 0,
            max_depth_seen: 0,
            #[cfg(debug_assertions)]
            expected_pc: None,
        }
    }

    /// The image this walker executes.
    pub fn image(&self) -> &Arc<ProgramImage> {
        &self.image
    }

    /// Instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Completed dispatcher transactions (root handler invocations).
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Deepest call stack observed.
    pub fn max_depth_seen(&self) -> usize {
        self.max_depth_seen
    }

    #[inline]
    fn bb_start(&self, f: u32, bb: u32) -> Addr {
        self.image.functions()[f as usize].blocks[bb as usize].start
    }
}

/// Where the walker goes after emitting a block terminator.
enum Next {
    Stay,          // advance within the block
    Bb(u32),       // another bb of the same function
    CallInto(u32), // push frame, enter callee
    Pop,           // return to caller frame
}

impl InstrStream for Walker {
    fn next_instr(&mut self) -> Option<Instr> {
        let image = Arc::clone(&self.image);
        let func = &image.functions()[self.cur_fn as usize];
        let bb = &func.blocks[self.cur_bb as usize];
        let idx = (bb.first_instr + self.cur_instr) as usize;
        let s = &image.instrs()[idx];
        let is_last = self.cur_instr + 1 == bb.n_instrs;

        let (out, next) = if !is_last {
            debug_assert_eq!(s.kind, StaticKind::Other);
            (Instr::other(s.pc, s.size), Next::Stay)
        } else {
            match &bb.term {
                Terminator::FallThrough => {
                    debug_assert_eq!(s.kind, StaticKind::Other);
                    (Instr::other(s.pc, s.size), Next::Bb(self.cur_bb + 1))
                }
                Terminator::Cond { p_taken, taken_to } => {
                    let taken = self.rng.gen_range(0.0..1.0) < *p_taken;
                    let instr = Instr::branch(
                        s.pc,
                        s.size,
                        InstrKind::CondBranch { taken },
                        self.bb_start(self.cur_fn, *taken_to),
                    );
                    let next = if taken {
                        Next::Bb(*taken_to)
                    } else {
                        Next::Bb(self.cur_bb + 1)
                    };
                    (instr, next)
                }
                Terminator::Loop { iters, taken_to } => {
                    let key = (self.cur_fn, self.cur_bb);
                    let remaining = self.loop_counts.entry(key).or_insert(*iters);
                    let taken = *remaining > 1;
                    if taken {
                        *remaining -= 1;
                    } else {
                        self.loop_counts.remove(&key);
                    }
                    let instr = Instr::branch(
                        s.pc,
                        s.size,
                        InstrKind::CondBranch { taken },
                        self.bb_start(self.cur_fn, *taken_to),
                    );
                    let next = if taken {
                        Next::Bb(*taken_to)
                    } else {
                        Next::Bb(self.cur_bb + 1)
                    };
                    (instr, next)
                }
                Terminator::Jump { to } => (
                    Instr::branch(
                        s.pc,
                        s.size,
                        InstrKind::Jump,
                        self.bb_start(self.cur_fn, *to),
                    ),
                    Next::Bb(*to),
                ),
                Terminator::Call { callee } => (
                    Instr::branch(
                        s.pc,
                        s.size,
                        InstrKind::Call,
                        image.functions()[*callee as usize].entry,
                    ),
                    Next::CallInto(*callee),
                ),
                Terminator::IndirectCall {
                    callees,
                    cum_weights,
                } => {
                    let u: f64 = self.rng.gen_range(0.0..1.0);
                    let pick = cum_weights
                        .partition_point(|&c| c < u)
                        .min(callees.len() - 1);
                    let callee = callees[pick];
                    (
                        Instr::branch(
                            s.pc,
                            s.size,
                            InstrKind::IndirectCall,
                            image.functions()[callee as usize].entry,
                        ),
                        Next::CallInto(callee),
                    )
                }
                Terminator::Return => {
                    // Safety net (0, 0): never hit, the dispatcher never
                    // returns.
                    let (rf, rbb) = self.stack.last().copied().unwrap_or((0, 0));
                    (
                        Instr::branch(s.pc, s.size, InstrKind::Return, self.bb_start(rf, rbb)),
                        Next::Pop,
                    )
                }
            }
        };

        #[cfg(debug_assertions)]
        {
            if let Some(exp) = self.expected_pc {
                debug_assert_eq!(exp, out.pc, "trace discontinuity at {:#x}", out.pc);
            }
            self.expected_pc = Some(out.next_pc());
        }

        match next {
            Next::Stay => self.cur_instr += 1,
            Next::Bb(b) => {
                self.cur_bb = b;
                self.cur_instr = 0;
            }
            Next::CallInto(callee) => {
                self.stack.push((self.cur_fn, self.cur_bb + 1));
                self.max_depth_seen = self.max_depth_seen.max(self.stack.len());
                if self.cur_fn == 0 {
                    self.transactions += 1;
                }
                self.cur_fn = callee;
                self.cur_bb = 0;
                self.cur_instr = 0;
            }
            Next::Pop => {
                let (rf, rbb) = self.stack.pop().unwrap_or((0, 0));
                self.cur_fn = rf;
                self.cur_bb = rbb;
                self.cur_instr = 0;
            }
        }

        self.emitted += 1;
        Some(out)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::params::WorkloadParams;
    use dcfb_trace::{IsaMode, StreamStats};

    fn walker(seed: u64) -> Walker {
        let params = WorkloadParams {
            functions: 60,
            root_functions: 8,
            ..WorkloadParams::default()
        };
        let image = Arc::new(ProgramImage::build(&params, 11, IsaMode::Fixed4));
        Walker::new(image, seed)
    }

    #[test]
    fn trace_is_control_flow_consistent() {
        let mut w = walker(1);
        let mut prev: Option<Instr> = None;
        for _ in 0..200_000 {
            let i = w.next_instr().unwrap();
            if let Some(p) = prev {
                assert_eq!(p.next_pc(), i.pc, "discontinuity after {:#x}", p.pc);
            }
            prev = Some(i);
        }
    }

    #[test]
    fn walker_is_deterministic() {
        let mut a = walker(5);
        let mut b = walker(5);
        for _ in 0..50_000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = walker(1);
        let mut b = walker(2);
        let diverged = (0..50_000).any(|_| a.next_instr() != b.next_instr());
        assert!(diverged);
    }

    #[test]
    fn calls_and_returns_balance() {
        let mut w = walker(3);
        let stats = StreamStats::measure(&mut w, 500_000);
        assert!(stats.calls > 0);
        assert!(stats.returns > 0);
        // Calls and returns match within the residual open stack depth.
        let open = stats.calls as i64 - stats.returns as i64;
        assert!(open >= 0, "more returns than calls");
        assert!(open <= w.max_depth_seen() as i64 + 1);
    }

    #[test]
    fn stack_depth_is_bounded() {
        let mut w = walker(4);
        for _ in 0..500_000 {
            w.next_instr();
        }
        assert!(
            w.max_depth_seen() < 64,
            "depth {} too deep",
            w.max_depth_seen()
        );
        assert!(w.transactions() > 0, "no transactions completed");
    }

    #[test]
    fn pcs_stay_inside_image() {
        let mut w = walker(6);
        let image = Arc::clone(w.image());
        for _ in 0..100_000 {
            let i = w.next_instr().unwrap();
            assert!(i.pc >= crate::image::IMAGE_BASE);
            assert!(i.pc < image.end());
        }
    }

    #[test]
    fn branch_mix_is_server_like() {
        let mut w = walker(7);
        let stats = StreamStats::measure(&mut w, 1_000_000);
        let density = stats.branch_density();
        // Server code: roughly 1 branch per 4-8 instructions.
        assert!((0.05..0.35).contains(&density), "branch density {density}");
        // Conditionals are mostly biased-taken or not-taken, but both
        // directions occur.
        assert!(stats.cond_taken > 0);
        assert!(stats.cond_taken < stats.cond_branches);
    }

    #[test]
    fn footprint_touches_many_blocks() {
        let mut w = walker(8);
        let stats = StreamStats::measure(&mut w, 1_000_000);
        assert!(
            stats.footprint_blocks > 200,
            "footprint {} blocks too small",
            stats.footprint_blocks
        );
    }

    #[test]
    fn variable_isa_trace_is_consistent_too() {
        let params = WorkloadParams {
            functions: 40,
            root_functions: 6,
            ..WorkloadParams::default()
        };
        let image = Arc::new(ProgramImage::build(&params, 13, IsaMode::Variable));
        let mut w = Walker::new(image, 9);
        let mut prev: Option<Instr> = None;
        for _ in 0..100_000 {
            let i = w.next_instr().unwrap();
            if let Some(p) = prev {
                assert_eq!(p.next_pc(), i.pc);
            }
            prev = Some(i);
        }
    }
}
