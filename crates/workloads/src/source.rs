//! Workload-source registry: one resolution path for every way a
//! workload can reach the simulator.
//!
//! Mirrors the prefetch-method registry: a spec string parses into a
//! [`SourceSpec`] and resolves into a [`ResolvedWorkload`] — a code
//! memory, a start pc, and a deterministic instruction-stream factory.
//! Three sources:
//!
//! * **synthetic** — the seven catalog workloads, unchanged. Resolution
//!   reuses the exact `Arc<ProgramImage>` + [`Walker`] pair the direct
//!   path uses, so report digests are byte-identical (gated by the
//!   `invariant/workload-source` conformance check).
//! * **mix** — `mix:NAME_A+NAME_B[,quantum=N]`: a multi-tenant
//!   round-robin interleaving of ≥ 2 catalog images through one
//!   simulator instance (see [`crate::mix`]).
//! * **trace** — `trace:PATH`: an on-disk trace (v1/v2 binary or text,
//!   including `dcfb import` output), replayed over a [`RecordedCode`]
//!   reconstruction.
//!
//! Every consumer (CLI run/compare/profile/record, bench sweep, the
//! job server) funnels through [`SourceSpec::parse`] +
//! [`SourceSpec::resolve`], so mixes and imported traces are first-class
//! everywhere a workload name is accepted.

use crate::catalog::{workload, workload_names};
use crate::image::ProgramImage;
use crate::mix::{MixCode, MixStream, DEFAULT_QUANTUM, TENANT_STRIDE};
use crate::synth::Walker;
use dcfb_errors::DcfbError;
use dcfb_trace::{
    read_binary_checked, read_text, Addr, CodeMemory, Instr, InstrStream, IsaMode, ReadMode,
    RecordedCode, VecTrace,
};
use std::sync::Arc;

/// Spec prefix selecting the multi-tenant interleaver.
pub const MIX_PREFIX: &str = "mix:";
/// Spec prefix selecting on-disk trace replay.
pub const TRACE_PREFIX: &str = "trace:";
/// Syntax summary for the mix source (shown in errors and `dcfb list`).
pub const MIX_SYNTAX: &str = "mix:NAME_A+NAME_B[,quantum=N]";
/// Syntax summary for the trace source (shown in errors and `dcfb list`).
pub const TRACE_SYNTAX: &str = "trace:PATH (binary v1/v2 or text; see `dcfb import`)";

/// Every way to name a workload: the seven synthetic names plus the
/// `mix:` and `trace:` source syntaxes. This is the `available` list
/// attached to unknown-workload errors.
pub fn source_names() -> Vec<String> {
    let mut names: Vec<String> = workload_names().iter().map(|s| (*s).to_owned()).collect();
    names.push(MIX_SYNTAX.to_owned());
    names.push(TRACE_SYNTAX.to_owned());
    names
}

/// A parsed (but not yet resolved) workload spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SourceSpec {
    /// One of the seven synthetic catalog workloads.
    Synthetic(String),
    /// Multi-tenant interleaving of ≥ 2 synthetic images.
    Mix {
        /// Catalog names, in round-robin order.
        tenants: Vec<String>,
        /// Instructions per tenant turn (≥ 1).
        quantum: u64,
    },
    /// Replay of an on-disk trace file.
    Trace {
        /// Path to the trace (binary v1/v2 or text).
        path: String,
    },
}

impl SourceSpec {
    /// Parses a workload spec string. Purely syntactic — no file I/O;
    /// `trace:` path existence is checked at [`SourceSpec::resolve`]
    /// time. Unknown names produce the registry-wide enumerating
    /// [`DcfbError::UnknownWorkload`].
    pub fn parse(name: &str) -> Result<SourceSpec, DcfbError> {
        if let Some(rest) = name.strip_prefix(MIX_PREFIX) {
            return Self::parse_mix(rest);
        }
        if let Some(path) = name.strip_prefix(TRACE_PREFIX) {
            if path.is_empty() {
                return Err(DcfbError::Config(format!(
                    "trace source needs a path: {TRACE_SYNTAX}"
                )));
            }
            return Ok(SourceSpec::Trace {
                path: path.to_owned(),
            });
        }
        if workload(name).is_some() {
            Ok(SourceSpec::Synthetic(name.to_owned()))
        } else {
            Err(DcfbError::UnknownWorkload {
                name: name.to_owned(),
                available: source_names(),
            })
        }
    }

    fn parse_mix(rest: &str) -> Result<SourceSpec, DcfbError> {
        let mut pieces = rest.split(',');
        let tenant_part = pieces.next().unwrap_or_default();
        let mut quantum = DEFAULT_QUANTUM;
        for opt in pieces {
            let opt = opt.trim();
            if let Some(v) = opt.strip_prefix("quantum=") {
                quantum = v.parse::<u64>().map_err(|_| {
                    DcfbError::Config(format!("mix quantum must be a positive integer, got {v:?}"))
                })?;
                if quantum == 0 {
                    return Err(DcfbError::Config(
                        "mix quantum must be at least 1".to_owned(),
                    ));
                }
            } else {
                return Err(DcfbError::Config(format!(
                    "unknown mix option {opt:?}; supported: quantum=N"
                )));
            }
        }
        let tenants: Vec<String> = tenant_part
            .split('+')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(str::to_owned)
            .collect();
        if tenants.len() < 2 {
            return Err(DcfbError::Config(format!(
                "a mix needs at least two tenants: {MIX_SYNTAX}"
            )));
        }
        for t in &tenants {
            if workload(t).is_none() {
                return Err(DcfbError::UnknownWorkload {
                    name: t.clone(),
                    available: source_names(),
                });
            }
        }
        Ok(SourceSpec::Mix { tenants, quantum })
    }

    /// Canonical spec string: parse-stable, options fully spelled out.
    /// This is the name that labels reports and enters job digests, so
    /// `mix:A+B` and `mix:A+B,quantum=500` cache as distinct jobs.
    pub fn canonical_name(&self) -> String {
        match self {
            SourceSpec::Synthetic(name) => name.clone(),
            SourceSpec::Mix { tenants, quantum } => {
                format!("{MIX_PREFIX}{},quantum={quantum}", tenants.join("+"))
            }
            SourceSpec::Trace { path } => format!("{TRACE_PREFIX}{path}"),
        }
    }

    /// Which registry source this spec selects.
    pub fn source_kind(&self) -> &'static str {
        match self {
            SourceSpec::Synthetic(_) => "synthetic",
            SourceSpec::Mix { .. } => "mix",
            SourceSpec::Trace { .. } => "trace",
        }
    }

    /// Resolves the spec into code memory + stream factory. `trace:`
    /// specs read the file here (strict mode — damaged traces are
    /// rejected; use `dcfb replay --lenient` to salvage interactively).
    pub fn resolve(&self, isa: IsaMode) -> Result<ResolvedWorkload, DcfbError> {
        match self {
            SourceSpec::Synthetic(name) => {
                let w = workload(name).ok_or_else(|| DcfbError::UnknownWorkload {
                    name: name.clone(),
                    available: source_names(),
                })?;
                Ok(ResolvedWorkload::from_image(w.image(isa)))
            }
            SourceSpec::Mix { tenants, quantum } => {
                if tenants.len() < 2 {
                    return Err(DcfbError::Config(format!(
                        "a mix needs at least two tenants: {MIX_SYNTAX}"
                    )));
                }
                let mut images = Vec::with_capacity(tenants.len());
                for t in tenants {
                    let w = workload(t).ok_or_else(|| DcfbError::UnknownWorkload {
                        name: t.clone(),
                        available: source_names(),
                    })?;
                    let image = w.image(isa);
                    let span = image.end().saturating_sub(crate::image::IMAGE_BASE);
                    if span >= TENANT_STRIDE {
                        return Err(DcfbError::Config(format!(
                            "tenant {t:?} image spans {span:#x} bytes, too large for the \
                             {TENANT_STRIDE:#x}-byte tenant stride"
                        )));
                    }
                    images.push(image);
                }
                let start_pc = images[0].functions()[0].entry;
                Ok(ResolvedWorkload {
                    name: self.canonical_name(),
                    kind: "mix",
                    code: Arc::new(MixCode::new(&images)),
                    start_pc,
                    factory: StreamFactory::Mix {
                        images,
                        quantum: *quantum,
                    },
                })
            }
            SourceSpec::Trace { path } => {
                let data = std::fs::read(path).map_err(|e| DcfbError::io(path.clone(), &e))?;
                let trace: VecTrace = if data.starts_with(dcfb_trace::file::MAGIC)
                    || data.starts_with(dcfb_trace::file::MAGIC_V2)
                {
                    let (trace, _report) = read_binary_checked(data.as_slice(), ReadMode::Strict)?;
                    trace
                } else {
                    read_text(data.as_slice())?
                };
                if trace.is_empty() {
                    return Err(DcfbError::Config(format!(
                        "{path}: trace holds no records; nothing to run"
                    )));
                }
                let start_pc = trace.instrs()[0].pc;
                let trace = Arc::new(trace);
                Ok(ResolvedWorkload {
                    name: self.canonical_name(),
                    kind: "trace",
                    code: Arc::new(RecordedCode::from_trace(trace.instrs())),
                    start_pc,
                    factory: StreamFactory::Replay(trace),
                })
            }
        }
    }
}

/// Parses and resolves in one step — the common consumer entry point.
pub fn resolve_workload(name: &str, isa: IsaMode) -> Result<ResolvedWorkload, DcfbError> {
    SourceSpec::parse(name)?.resolve(isa)
}

/// How a [`ResolvedWorkload`] manufactures instruction streams.
enum StreamFactory {
    /// One synthetic image; streams are [`Walker`]s.
    Synthetic(Arc<ProgramImage>),
    /// Tenant images round-robined by [`MixStream`].
    Mix {
        images: Vec<Arc<ProgramImage>>,
        quantum: u64,
    },
    /// A captured trace, replayed verbatim (trace seed is ignored —
    /// replay is deterministic by construction).
    Replay(Arc<VecTrace>),
}

/// A workload resolved through the registry: everything a simulator
/// needs (code memory, start pc, display name) plus a factory for
/// independent, deterministic instruction streams.
pub struct ResolvedWorkload {
    name: String,
    kind: &'static str,
    code: Arc<dyn CodeMemory + Send + Sync>,
    start_pc: Addr,
    factory: StreamFactory,
}

impl std::fmt::Debug for ResolvedWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolvedWorkload")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("start_pc", &self.start_pc)
            .finish_non_exhaustive()
    }
}

impl ResolvedWorkload {
    /// Wraps a synthetic image. Start pc and name match what
    /// `Simulator::new` derives directly from the image, so the
    /// resolved path is digest-identical to the legacy path.
    pub fn from_image(image: Arc<ProgramImage>) -> Self {
        let start_pc = image.functions()[0].entry;
        let name = image.params().name.clone();
        ResolvedWorkload {
            name,
            kind: "synthetic",
            code: image.clone() as Arc<dyn CodeMemory + Send + Sync>,
            start_pc,
            factory: StreamFactory::Synthetic(image),
        }
    }

    /// Display/digest name (canonical spec string).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registry source kind: `"synthetic"`, `"mix"`, or `"trace"`.
    pub fn source_kind(&self) -> &'static str {
        self.kind
    }

    /// The code memory backing static decode.
    pub fn code(&self) -> Arc<dyn CodeMemory + Send + Sync> {
        Arc::clone(&self.code)
    }

    /// First fetched pc.
    pub fn start_pc(&self) -> Addr {
        self.start_pc
    }

    /// For synthetic sources, the underlying image (used by callers
    /// that need image-level analyses, e.g. `dcfb analyze`).
    pub fn image(&self) -> Option<&Arc<ProgramImage>> {
        match &self.factory {
            StreamFactory::Synthetic(image) => Some(image),
            _ => None,
        }
    }

    /// Total instructions available, if the source is finite.
    pub fn trace_len(&self) -> Option<u64> {
        match &self.factory {
            StreamFactory::Replay(trace) => Some(trace.instrs().len() as u64),
            _ => None,
        }
    }

    /// Builds a fresh instruction stream. Streams from the same
    /// `(spec, trace_seed)` are bit-identical; synthetic streams match
    /// `Walker::new(image, trace_seed)` exactly.
    pub fn stream(&self, trace_seed: u64) -> Box<dyn InstrStream + Send> {
        match &self.factory {
            StreamFactory::Synthetic(image) => Box::new(Walker::new(Arc::clone(image), trace_seed)),
            StreamFactory::Mix { images, quantum } => {
                Box::new(MixStream::new(images, *quantum, trace_seed))
            }
            StreamFactory::Replay(trace) => Box::new(ArcReplay {
                trace: Arc::clone(trace),
                pos: 0,
            }),
        }
    }
}

/// Owned replay cursor over a shared trace — the `Box<dyn InstrStream>`
/// counterpart of the borrowing [`dcfb_trace::ReplayStream`].
struct ArcReplay {
    trace: Arc<VecTrace>,
    pos: usize,
}

impl InstrStream for ArcReplay {
    fn next_instr(&mut self) -> Option<Instr> {
        let i = self.trace.instrs().get(self.pos).copied()?;
        self.pos += 1;
        Some(i)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::catalog::workload_names;

    #[test]
    fn parses_all_synthetic_names() {
        for name in workload_names() {
            let spec = SourceSpec::parse(name).unwrap();
            assert_eq!(spec, SourceSpec::Synthetic((*name).to_owned()));
            assert_eq!(spec.canonical_name(), *name);
            assert_eq!(spec.source_kind(), "synthetic");
        }
    }

    #[test]
    fn unknown_name_enumerates_all_sources() {
        let err = SourceSpec::parse("No Such Workload").unwrap_err();
        let DcfbError::UnknownWorkload { name, available } = err else {
            panic!("expected UnknownWorkload, got {err:?}");
        };
        assert_eq!(name, "No Such Workload");
        assert_eq!(available.len(), workload_names().len() + 2);
        assert!(available.iter().any(|s| s.starts_with("mix:")));
        assert!(available.iter().any(|s| s.starts_with("trace:")));
    }

    #[test]
    fn parses_mix_with_options() {
        let spec = SourceSpec::parse("mix:Web (Apache)+Web Search").unwrap();
        assert_eq!(
            spec,
            SourceSpec::Mix {
                tenants: vec!["Web (Apache)".to_owned(), "Web Search".to_owned()],
                quantum: DEFAULT_QUANTUM,
            }
        );
        let spec = SourceSpec::parse("mix:Web (Apache)+Web Search,quantum=500").unwrap();
        assert_eq!(
            spec,
            SourceSpec::Mix {
                tenants: vec!["Web (Apache)".to_owned(), "Web Search".to_owned()],
                quantum: 500,
            }
        );
        assert_eq!(
            spec.canonical_name(),
            "mix:Web (Apache)+Web Search,quantum=500"
        );
        assert_eq!(spec.source_kind(), "mix");
    }

    #[test]
    fn mix_parse_rejections_are_typed() {
        for bad in [
            "mix:Web (Apache)",
            "mix:",
            "mix:Web (Apache)+Web Search,quantum=0",
            "mix:Web (Apache)+Web Search,quantum=many",
            "mix:Web (Apache)+Web Search,slice=4",
        ] {
            let err = SourceSpec::parse(bad).unwrap_err();
            assert!(
                matches!(err, DcfbError::Config(_)),
                "{bad}: expected Config, got {err:?}"
            );
        }
        let err = SourceSpec::parse("mix:Web (Apache)+Nope").unwrap_err();
        assert!(matches!(err, DcfbError::UnknownWorkload { .. }));
    }

    #[test]
    fn trace_spec_parses_and_missing_file_is_io() {
        let spec = SourceSpec::parse("trace:/no/such/file.dcfbt").unwrap();
        assert_eq!(spec.source_kind(), "trace");
        assert_eq!(spec.canonical_name(), "trace:/no/such/file.dcfbt");
        let err = spec.resolve(IsaMode::Fixed4).unwrap_err();
        assert!(matches!(err, DcfbError::Io { .. }), "got {err:?}");
        let err = SourceSpec::parse("trace:").unwrap_err();
        assert!(matches!(err, DcfbError::Config(_)));
    }

    #[test]
    fn synthetic_resolution_matches_direct_walker() {
        let resolved = resolve_workload("Web Search", IsaMode::Fixed4).unwrap();
        assert_eq!(resolved.name(), "Web Search");
        assert_eq!(resolved.source_kind(), "synthetic");
        let w = workload("Web Search").unwrap();
        let image = w.image(IsaMode::Fixed4);
        assert_eq!(resolved.start_pc(), image.functions()[0].entry);
        let mut direct = Walker::new(Arc::clone(&image), 99);
        let mut via = resolved.stream(99);
        for _ in 0..2_000 {
            assert_eq!(via.next_instr(), direct.next_instr());
        }
    }

    #[test]
    fn mix_resolution_streams_deterministically() {
        let resolved =
            resolve_workload("mix:Web (Apache)+Web Search,quantum=64", IsaMode::Fixed4).unwrap();
        assert_eq!(resolved.source_kind(), "mix");
        let mut a = resolved.stream(5);
        let mut b = resolved.stream(5);
        for _ in 0..1_000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }
}
