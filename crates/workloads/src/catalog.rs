//! The seven server workloads of Table IV, as calibrated synthetic
//! equivalents.
//!
//! Parameter choices encode what the paper reports about each workload:
//!
//! * **OLTP (DB A)** — Oracle TPC-C: the largest instruction footprint
//!   and the highest Shotgun U-BTB footprint miss ratio (31 %, Fig. 1);
//!   deep call chains, many functions.
//! * **OLTP (DB B)** — DB2 TPC-C: large footprint, somewhat smaller than
//!   DB A (Fig. 1 shows a much lower footprint miss ratio).
//! * **Web (Apache)** / **Web (Zeus)** — SPECweb99: mid-sized footprints
//!   with abundant error-handling cold paths.
//! * **Media Streaming** — Darwin: the most frontend-bound workload
//!   (50 % speedup with SN4L+Dis+BTB); long streaming loops make it very
//!   sequential and prefetch-friendly.
//! * **Web Frontend** — Nginx/PHP: the least frontend-bound workload
//!   (7 % speedup); modest footprint.
//! * **Web Search** — Nutch/Lucene: mid-sized, index-traversal loops.

use crate::image::ProgramImage;
use crate::params::WorkloadParams;
use crate::synth::Walker;
use dcfb_trace::IsaMode;
use std::sync::Arc;

/// A named, calibrated synthetic workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Display name (matches the paper's figures).
    pub name: &'static str,
    /// Generator parameters.
    pub params: WorkloadParams,
    /// Seed used for image construction (trace seeds are separate).
    pub image_seed: u64,
}

impl Workload {
    /// Builds this workload's program image in the given ISA mode.
    pub fn image(&self, isa: IsaMode) -> Arc<ProgramImage> {
        Arc::new(ProgramImage::build(&self.params, self.image_seed, isa))
    }

    /// Builds an image and a walker over it in one step.
    pub fn walker(&self, isa: IsaMode, trace_seed: u64) -> Walker {
        Walker::new(self.image(isa), trace_seed)
    }
}

fn base(name: &'static str) -> WorkloadParams {
    WorkloadParams {
        name: name.to_owned(),
        ..WorkloadParams::default()
    }
}

/// The canonical workload names, in the paper's figure order.
pub fn workload_names() -> [&'static str; 7] {
    [
        "Media Streaming",
        "OLTP (DB A)",
        "OLTP (DB B)",
        "Web (Apache)",
        "Web (Zeus)",
        "Web Frontend",
        "Web Search",
    ]
}

/// Returns every calibrated workload, in the paper's figure order.
pub fn all_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "Media Streaming",
            params: WorkloadParams {
                // Streaming: many small transactions rotating over a
                // large population of root handlers — the instruction
                // stream plows through mostly-sequential cold code,
                // making this the most frontend-bound (and most
                // prefetch-friendly) workload, as in the paper (+50%).
                functions: 2600,
                avg_segments: 22.0,
                avg_bb_instrs: 6.0,
                cold_frac: 0.22,
                cold_taken_prob: 0.02,
                avg_cold_instrs: 10.0,
                loop_frac: 0.05,
                avg_loop_iters: 3.0,
                call_frac: 0.20,
                indirect_frac: 0.18,
                zipf_s: 0.45,
                root_functions: 96,
                biased_branch_frac: 0.90,
                ..base("Media Streaming")
            },
            image_seed: 0xA11CE,
        },
        Workload {
            name: "OLTP (DB A)",
            params: WorkloadParams {
                // Oracle: the biggest footprint, deep call graph, the
                // most unconditional-branch sites (worst case for a
                // 1.5 K-entry U-BTB).
                functions: 4200,
                avg_segments: 13.0,
                avg_bb_instrs: 6.0,
                cold_frac: 0.30,
                cold_taken_prob: 0.04,
                avg_cold_instrs: 11.0,
                loop_frac: 0.10,
                avg_loop_iters: 3.0,
                call_frac: 0.38,
                indirect_frac: 0.14,
                zipf_s: 0.85,
                root_functions: 48,
                biased_branch_frac: 0.82,
                ..base("OLTP (DB A)")
            },
            image_seed: 0x0DBA,
        },
        Workload {
            name: "OLTP (DB B)",
            params: WorkloadParams {
                functions: 2100,
                avg_segments: 20.0,
                avg_bb_instrs: 6.5,
                cold_frac: 0.28,
                cold_taken_prob: 0.04,
                avg_cold_instrs: 10.0,
                loop_frac: 0.12,
                avg_loop_iters: 3.5,
                call_frac: 0.16,
                indirect_frac: 0.10,
                zipf_s: 1.05,
                root_functions: 40,
                biased_branch_frac: 0.84,
                ..base("OLTP (DB B)")
            },
            image_seed: 0x0DBB,
        },
        Workload {
            name: "Web (Apache)",
            params: WorkloadParams {
                // Many rarely-taken error/config paths: the cold-path
                // pollution that defeats deep NXL prefetching.
                functions: 1500,
                avg_segments: 11.0,
                avg_bb_instrs: 6.0,
                cold_frac: 0.36,
                cold_taken_prob: 0.05,
                avg_cold_instrs: 12.0,
                loop_frac: 0.10,
                avg_loop_iters: 3.0,
                call_frac: 0.28,
                indirect_frac: 0.12,
                zipf_s: 1.0,
                root_functions: 24,
                biased_branch_frac: 0.83,
                ..base("Web (Apache)")
            },
            image_seed: 0xA9AC_0001,
        },
        Workload {
            name: "Web (Zeus)",
            params: WorkloadParams {
                functions: 1250,
                avg_segments: 16.0,
                avg_bb_instrs: 6.5,
                cold_frac: 0.32,
                cold_taken_prob: 0.04,
                avg_cold_instrs: 10.0,
                loop_frac: 0.12,
                avg_loop_iters: 3.0,
                call_frac: 0.20,
                indirect_frac: 0.10,
                zipf_s: 1.05,
                root_functions: 20,
                biased_branch_frac: 0.85,
                ..base("Web (Zeus)")
            },
            image_seed: 0x2E05,
        },
        Workload {
            name: "Web Frontend",
            params: WorkloadParams {
                // Nginx/PHP: the least frontend-bound workload — small
                // enough that the L1i captures much of the hot path.
                functions: 420,
                avg_segments: 9.0,
                avg_bb_instrs: 6.0,
                cold_frac: 0.26,
                cold_taken_prob: 0.04,
                avg_cold_instrs: 9.0,
                loop_frac: 0.14,
                avg_loop_iters: 4.0,
                call_frac: 0.22,
                indirect_frac: 0.10,
                zipf_s: 1.25,
                root_functions: 12,
                biased_branch_frac: 0.88,
                ..base("Web Frontend")
            },
            image_seed: 0x0FE0,
        },
        Workload {
            name: "Web Search",
            params: WorkloadParams {
                functions: 950,
                avg_segments: 15.0,
                avg_bb_instrs: 7.5,
                cold_frac: 0.24,
                cold_taken_prob: 0.03,
                avg_cold_instrs: 9.0,
                loop_frac: 0.20,
                avg_loop_iters: 5.0,
                call_frac: 0.20,
                indirect_frac: 0.08,
                zipf_s: 1.1,
                root_functions: 16,
                biased_branch_frac: 0.88,
                ..base("Web Search")
            },
            image_seed: 0x5EAC_0004,
        },
    ]
}

/// Looks up a workload by its display name.
pub fn workload(name: &str) -> Option<Workload> {
    all_workloads().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use dcfb_trace::{InstrStream, StreamStats};

    #[test]
    fn all_workloads_validate() {
        for w in all_workloads() {
            w.params.validate();
            assert_eq!(w.params.name, w.name);
        }
    }

    #[test]
    fn names_match_catalog_order() {
        let names = workload_names();
        let all = all_workloads();
        assert_eq!(all.len(), names.len());
        for (w, n) in all.iter().zip(names.iter()) {
            assert_eq!(w.name, *n);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload("OLTP (DB A)").is_some());
        assert!(workload("nope").is_none());
    }

    #[test]
    fn oltp_a_has_the_biggest_footprint() {
        let sizes: Vec<(String, f64)> = all_workloads()
            .iter()
            .map(|w| (w.name.to_owned(), w.params.approx_footprint_kib()))
            .collect();
        let dba = sizes.iter().find(|(n, _)| n == "OLTP (DB A)").unwrap().1;
        for (name, kib) in &sizes {
            if name != "OLTP (DB A)" {
                assert!(dba > *kib, "{name} ({kib} KiB) >= DB A ({dba} KiB)");
            }
        }
    }

    #[test]
    fn web_frontend_is_the_smallest() {
        let sizes: Vec<(String, f64)> = all_workloads()
            .iter()
            .map(|w| (w.name.to_owned(), w.params.approx_footprint_kib()))
            .collect();
        let fe = sizes.iter().find(|(n, _)| n == "Web Frontend").unwrap().1;
        for (name, kib) in &sizes {
            if name != "Web Frontend" {
                assert!(fe < *kib, "{name} ({kib} KiB) <= Web Frontend ({fe} KiB)");
            }
        }
    }

    #[test]
    fn footprints_exceed_l1i_capacity() {
        // Every workload must thrash a 32 KiB L1i for the paper's
        // phenomena to appear.
        for w in all_workloads() {
            assert!(
                w.params.approx_footprint_kib() > 96.0,
                "{} footprint too small",
                w.name
            );
        }
    }

    #[test]
    fn each_workload_produces_a_live_trace() {
        for w in all_workloads() {
            let mut walker = w.walker(dcfb_trace::IsaMode::Fixed4, 1);
            let stats = StreamStats::measure(&mut walker, 50_000);
            assert_eq!(stats.instrs, 50_000, "{} trace too short", w.name);
            assert!(stats.redirects > 1000, "{} too straight-line", w.name);
        }
    }

    #[test]
    fn walker_streams_are_reproducible_per_workload() {
        let w = workload("Web Search").unwrap();
        let mut a = w.walker(dcfb_trace::IsaMode::Fixed4, 7);
        let mut b = w.walker(dcfb_trace::IsaMode::Fixed4, 7);
        for _ in 0..10_000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }
}
