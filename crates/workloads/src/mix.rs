//! Multi-tenant interleaving: several synthetic program images sharing
//! one frontend, round-robined on a fixed instruction quantum.
//!
//! Each tenant keeps its own [`Walker`] (own control-flow state, own
//! per-lane seed) but the interleaved stream runs through a *single*
//! simulator instance, so BTB/RLU/SeqTable/L1i state is carried across
//! context switches — the pollution effect commercial frontends see
//! when many services share a core (cf. ISSUE 10 / ROADMAP item 4).
//!
//! Address layout: every synthetic image is laid out from
//! [`IMAGE_BASE`], so tenant `i` is rebased by `i *` [`TENANT_STRIDE`]
//! (256 MiB apart — far larger than any catalog image). [`MixCode`]
//! dispatches block lookups to the owning tenant and rebases the
//! returned static instructions; [`MixStream`] rebases the dynamic
//! stream the same way. Determinism: the interleaving depends only on
//! `(images, quantum, trace_seed)` — never on wall clock, `--jobs`, or
//! shard count.

use crate::image::{ProgramImage, IMAGE_BASE};
use crate::synth::Walker;
use dcfb_trace::{
    block_base, Addr, Block, CodeMemory, Instr, InstrStream, StaticInstr, BLOCK_BITS,
};
use std::sync::Arc;

/// Address distance between consecutive tenants (256 MiB).
pub const TENANT_STRIDE: Addr = 1 << 28;

/// Default context-switch quantum (instructions per tenant turn).
pub const DEFAULT_QUANTUM: u64 = 10_000;

/// One tenant's image plus its rebased address range.
struct Tenant {
    image: Arc<ProgramImage>,
    /// Address offset added to every pc/target of this tenant.
    offset: Addr,
    /// Rebased half-open code range `[lo, hi)`.
    lo: Addr,
    hi: Addr,
}

/// A [`CodeMemory`] that unions several rebased program images.
///
/// Tenant address ranges are disjoint by construction (stride far
/// exceeds image size, validated by the workload-source resolver), so
/// every block belongs to at most one tenant.
pub struct MixCode {
    tenants: Vec<Tenant>,
}

impl MixCode {
    /// Builds the union code memory. Tenant `i` is rebased by
    /// `i * TENANT_STRIDE`; tenant 0 keeps its native addresses.
    pub fn new(images: &[Arc<ProgramImage>]) -> Self {
        let tenants = images
            .iter()
            .enumerate()
            .map(|(i, image)| {
                let offset = (i as Addr) * TENANT_STRIDE;
                Tenant {
                    lo: IMAGE_BASE + offset,
                    hi: image.end() + offset,
                    offset,
                    image: Arc::clone(image),
                }
            })
            .collect();
        MixCode { tenants }
    }
}

impl CodeMemory for MixCode {
    fn instrs_in_block(&self, block: Block) -> Vec<StaticInstr> {
        let addr = block_base(block);
        for t in &self.tenants {
            if addr >= t.lo && addr < t.hi {
                let inner = block - (t.offset >> BLOCK_BITS);
                let mut instrs = t.image.instrs_in_block(inner);
                for s in &mut instrs {
                    s.pc += t.offset;
                    if let Some(target) = s.target.as_mut() {
                        *target += t.offset;
                    }
                }
                return instrs;
            }
        }
        Vec::new()
    }
}

/// One tenant's dynamic-stream state.
struct Lane {
    walker: Walker,
    offset: Addr,
}

/// Round-robin interleaver over per-tenant [`Walker`]s.
///
/// Emits `quantum` instructions from one tenant, then switches to the
/// next (wrapping). Instruction pcs are always rebased; branch targets
/// are rebased only for branch kinds (non-branches carry `target == 0`,
/// which must stay 0).
pub struct MixStream {
    lanes: Vec<Lane>,
    quantum: u64,
    active: usize,
    /// Instructions left in the active tenant's quantum.
    left: u64,
    switches: u64,
}

/// splitmix64 finalizer — derives statistically independent per-lane
/// seeds from the run's trace seed without coupling lanes.
fn lane_seed(trace_seed: u64, lane: usize) -> u64 {
    let mut z = trace_seed.wrapping_add((lane as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl MixStream {
    /// Builds the interleaver. `quantum` must be ≥ 1 (enforced upstream
    /// by the source parser; clamped defensively here).
    pub fn new(images: &[Arc<ProgramImage>], quantum: u64, trace_seed: u64) -> Self {
        let lanes = images
            .iter()
            .enumerate()
            .map(|(i, image)| Lane {
                walker: Walker::new(Arc::clone(image), lane_seed(trace_seed, i)),
                offset: (i as Addr) * TENANT_STRIDE,
            })
            .collect();
        let quantum = quantum.max(1);
        MixStream {
            lanes,
            quantum,
            active: 0,
            left: quantum,
            switches: 0,
        }
    }

    /// Context switches performed so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }
}

impl InstrStream for MixStream {
    fn next_instr(&mut self) -> Option<Instr> {
        if self.lanes.is_empty() {
            return None;
        }
        if self.left == 0 {
            self.active = (self.active + 1) % self.lanes.len();
            self.left = self.quantum;
            self.switches += 1;
        }
        let lane = &mut self.lanes[self.active];
        let mut i = lane.walker.next_instr()?;
        i.pc += lane.offset;
        if i.kind.is_branch() {
            i.target += lane.offset;
        }
        self.left -= 1;
        Some(i)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::catalog::workload;
    use dcfb_trace::{block_of, IsaMode};

    fn two_images() -> Vec<Arc<ProgramImage>> {
        vec![
            workload("Web (Apache)").unwrap().image(IsaMode::Fixed4),
            workload("Web Search").unwrap().image(IsaMode::Fixed4),
        ]
    }

    #[test]
    fn mix_code_rebases_blocks_and_targets() {
        let images = two_images();
        let code = MixCode::new(&images);
        // Tenant 0 is identity-mapped.
        let b0 = block_of(images[0].functions()[0].entry);
        assert_eq!(code.instrs_in_block(b0), images[0].instrs_in_block(b0));
        // Tenant 1 is rebased by TENANT_STRIDE, targets included.
        let entry1 = images[1].functions()[0].entry;
        let inner = block_of(entry1);
        let rebased = code.instrs_in_block(inner + (TENANT_STRIDE >> BLOCK_BITS));
        let native = images[1].instrs_in_block(inner);
        assert_eq!(rebased.len(), native.len());
        for (r, n) in rebased.iter().zip(&native) {
            assert_eq!(r.pc, n.pc + TENANT_STRIDE);
            assert_eq!(r.size, n.size);
            assert_eq!(r.kind, n.kind);
            assert_eq!(r.target, n.target.map(|t| t + TENANT_STRIDE));
        }
        // A block in neither tenant decodes to nothing.
        assert!(code.instrs_in_block(0).is_empty());
    }

    #[test]
    fn mix_stream_round_robins_on_quantum() {
        let images = two_images();
        let mut s = MixStream::new(&images, 8, 42);
        let lo1 = IMAGE_BASE + TENANT_STRIDE;
        for turn in 0..6u64 {
            for _ in 0..8 {
                let i = s.next_instr().unwrap();
                let in_tenant1 = i.pc >= lo1;
                assert_eq!(in_tenant1, turn % 2 == 1, "pc {:#x} turn {turn}", i.pc);
            }
        }
        assert_eq!(s.switches(), 5);
    }

    #[test]
    fn mix_stream_is_deterministic_and_seed_sensitive() {
        let images = two_images();
        let take = |seed: u64| -> Vec<Instr> {
            let mut s = MixStream::new(&images, 50, seed);
            (0..500).map(|_| s.next_instr().unwrap()).collect()
        };
        assert_eq!(take(7), take(7));
        assert_ne!(take(7), take(8));
    }

    #[test]
    fn mix_stream_targets_stay_inside_owning_tenant() {
        let images = two_images();
        let mut s = MixStream::new(&images, 100, 3);
        for _ in 0..5_000 {
            let i = s.next_instr().unwrap();
            if i.kind.is_branch() {
                let tenant_pc = i.pc / TENANT_STRIDE;
                let tenant_tg = i.target / TENANT_STRIDE;
                assert_eq!(tenant_pc, tenant_tg, "branch escaped its tenant");
            } else {
                assert_eq!(i.target, 0, "non-branch must keep target 0");
            }
        }
    }
}
