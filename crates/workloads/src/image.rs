//! Program-image construction: server-like static code structure.
//!
//! An image is a population of functions laid out contiguously in the
//! simulated address space. Function 0 is the *dispatcher*: an endless
//! loop that indirect-calls one of the root handler functions per
//! "transaction", mimicking a server's request loop. Every other
//! function is a chain of segments (straight code, if/else with a cold
//! alternative, loops, call sites) ending in a single `Return`.

use crate::params::WorkloadParams;
use dcfb_trace::{block_of, Addr, Block, CodeMemory, IsaMode, StaticInstr, StaticKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Base address of the code image.
pub const IMAGE_BASE: Addr = 0x0040_0000;

/// Resolved terminator of a basic block.
///
/// Targets are *basic-block indexes within the owning function*, except
/// for calls, which name a callee function.
#[derive(Clone, Debug, PartialEq)]
pub enum Terminator {
    /// No branch: execution continues into the next basic block.
    FallThrough,
    /// Conditional branch (forward skip), taken with a fixed
    /// probability.
    Cond {
        /// Probability the branch is taken.
        p_taken: f64,
        /// Basic-block index jumped to when taken.
        taken_to: u32,
    },
    /// Backward loop edge with a *fixed* trip count: the walker takes
    /// it `iters - 1` times, then falls through. Fixed trip counts make
    /// loop exits learnable by a history-based predictor, as in real
    /// server code.
    Loop {
        /// Total body executions per loop entry (≥ 2).
        iters: u32,
        /// Basic-block index of the loop head (the block itself).
        taken_to: u32,
    },
    /// Direct unconditional jump to a basic block of the same function.
    Jump {
        /// Target basic-block index.
        to: u32,
    },
    /// Direct call; execution resumes at the next basic block.
    Call {
        /// Callee function index.
        callee: u32,
    },
    /// Indirect call through a dispatch table.
    IndirectCall {
        /// Candidate callee function indexes.
        callees: Vec<u32>,
        /// Cumulative selection weights, same length as `callees`,
        /// ending at 1.0.
        cum_weights: Vec<f64>,
    },
    /// Function return.
    Return,
}

/// One basic block: a run of instructions ending (optionally) in a
/// branch.
#[derive(Clone, Debug)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: Addr,
    /// Index of the first instruction in [`ProgramImage::instrs`].
    pub first_instr: u32,
    /// Number of instructions, including the terminator branch (if the
    /// terminator is not [`Terminator::FallThrough`]).
    pub n_instrs: u32,
    /// Whether this is a cold alternative block (else / catch path).
    pub cold: bool,
    /// How the block ends.
    pub term: Terminator,
}

/// One function of the image.
#[derive(Clone, Debug)]
pub struct Function {
    /// Entry address (start of basic block 0).
    pub entry: Addr,
    /// Basic blocks in layout order.
    pub blocks: Vec<BasicBlock>,
}

impl Function {
    /// The address of this function's `Return` instruction.
    pub fn return_pc(&self, image: &ProgramImage) -> Addr {
        // Construction guarantees at least one block ending in `Return`;
        // an empty function would be a builder bug, caught loudly in
        // debug builds and degraded to the entry address in release.
        let Some(last) = self.blocks.last() else {
            debug_assert!(false, "function has no blocks");
            return self.entry;
        };
        debug_assert!(matches!(last.term, Terminator::Return));
        image.instrs[(last.first_instr + last.n_instrs - 1) as usize].pc
    }
}

/// A fully laid-out synthetic program.
pub struct ProgramImage {
    params: WorkloadParams,
    isa: IsaMode,
    functions: Vec<Function>,
    instrs: Vec<StaticInstr>,
    roots: Vec<u32>,
    end: Addr,
}

/// Internal plan for one basic block before layout.
struct PlanBb {
    sizes: Vec<u8>,
    cold: bool,
    term: PlanTerm,
}

enum PlanTerm {
    FallThrough,
    CondSkip {
        p_taken: f64,
        skip: u32,
    }, // taken_to = own index + 1 + skip
    LoopBack {
        iters: u32,
    }, // taken_to = own index
    DispatchJump, // dispatcher's back edge
    Call {
        callee: u32,
    },
    IndirectCall {
        callees: Vec<u32>,
        cum_weights: Vec<f64>,
    },
    Return,
}

fn geometric(rng: &mut SmallRng, mean: f64) -> u32 {
    debug_assert!(mean >= 1.0);
    if mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean;
    let u: f64 = rng.gen_range(0.0..1.0);
    let draw = 1.0 + (1.0 - u).ln() / (1.0 - p).ln();
    (draw as u32).clamp(1, 2000)
}

/// Zipf sampler over `n` ranks with skew `s`, via precomputed cumulative
/// weights.
pub(crate) struct Zipf {
    cum: Vec<f64>,
}

impl Zipf {
    pub(crate) fn new(n: usize, s: f64) -> Self {
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        Zipf { cum }
    }

    pub(crate) fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cum.partition_point(|&c| c < u).min(self.cum.len() - 1)
    }
}

impl ProgramImage {
    /// Builds a program image from `params` with the given `seed` and
    /// ISA mode. The result is fully deterministic.
    pub fn build(params: &WorkloadParams, seed: u64, isa: IsaMode) -> Self {
        params.validate();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_cafe_f00d_0001);
        let n_fns = params.functions + 1; // + dispatcher

        // Heat ranks: permute function ids so Zipf rank -> id is random.
        let mut heat_order: Vec<u32> = (1..n_fns as u32).collect();
        for i in (1..heat_order.len()).rev() {
            let j = rng.gen_range(0..=i);
            heat_order.swap(i, j);
        }
        // Call-graph levels: an independent random permutation. A call
        // site in `f` may only target functions of strictly higher
        // level, making the call graph a DAG — the walker's stack depth
        // is then structurally bounded (expected O(log n)) and
        // call/return pairing is exact.
        let mut by_level: Vec<u32> = (1..n_fns as u32).collect();
        for i in (1..by_level.len()).rev() {
            let j = rng.gen_range(0..=i);
            by_level.swap(i, j);
        }
        let mut level_of = vec![0u32; n_fns];
        for (level, &fid) in by_level.iter().enumerate() {
            level_of[fid as usize] = level as u32;
        }
        let zipf = Zipf::new(heat_order.len(), params.zipf_s);
        let n_levels = by_level.len();
        // Call-site targets: mostly *uniform* over eligible functions —
        // server transaction paths plow through large amounts of
        // distinct code — with a minority of Zipf-hot picks modeling
        // shared utility routines. (A fully Zipf-skewed call graph
        // concentrates execution in a cache-resident hot set and kills
        // the instruction-miss behaviour the paper studies.)
        let pick_callee = |rng: &mut SmallRng, caller: u32| -> Option<u32> {
            let caller_level = level_of[caller as usize] as usize;
            if rng.gen_range(0.0..1.0) < 0.25 {
                for _ in 0..8 {
                    let id = heat_order[zipf.sample(rng)];
                    if (level_of[id as usize] as usize) > caller_level {
                        return Some(id);
                    }
                }
            }
            if caller_level + 1 >= n_levels {
                return None;
            }
            Some(by_level[rng.gen_range(caller_level + 1..n_levels)])
        };

        // Root handlers sit at the bottom of the level DAG so each
        // transaction traverses a deep, wide subtree of mostly-unique
        // code (level-ordered calls can reach everything above them).
        let roots: Vec<u32> = by_level
            .iter()
            .copied()
            .take(params.root_functions)
            .collect();

        // ---- Pass 1: plan structure. ----
        let mut plans: Vec<Vec<PlanBb>> = Vec::with_capacity(n_fns);
        // Function 0: dispatcher — one block ending in an indirect call
        // over the roots, followed by a jump back (modelled as a
        // 2-block loop: [body + IndirectCall][Jump back to 0]).
        {
            let root_zipf = Zipf::new(roots.len(), 0.3);
            let cum = root_zipf.cum.clone();
            let body_sizes: Vec<u8> = (0..6).map(|_| isa.draw_size(rng.gen())).collect();
            let jump_sizes: Vec<u8> = vec![isa.draw_size(rng.gen())];
            plans.push(vec![
                PlanBb {
                    sizes: body_sizes,
                    cold: false,
                    term: PlanTerm::IndirectCall {
                        callees: roots.clone(),
                        cum_weights: cum,
                    },
                },
                PlanBb {
                    sizes: jump_sizes,
                    cold: false,
                    term: PlanTerm::DispatchJump,
                },
            ]);
        }
        for fid in 1..n_fns as u32 {
            // Function size scales down with DAG level: root-side logic
            // is large and executed once per transaction, while deep
            // (heavily shared) utility leaves are small — so repeated
            // subtrees stay small and the instruction stream keeps
            // plowing through cold code, as in real server stacks.
            let level_frac = f64::from(level_of[fid as usize]) / n_levels.max(1) as f64;
            let seg_mean = (params.avg_segments * (1.7 - 1.5 * level_frac)).max(1.0);
            let n_segments = geometric(&mut rng, seg_mean);
            let mut bbs: Vec<PlanBb> = Vec::new();
            for _ in 0..n_segments {
                let hot_n = geometric(&mut rng, params.avg_bb_instrs);
                let roll: f64 = rng.gen_range(0.0..1.0);
                let mk_sizes = |rng: &mut SmallRng, n: u32, extra_branch: bool| -> Vec<u8> {
                    let total = n + u32::from(extra_branch);
                    (0..total).map(|_| isa.draw_size(rng.gen())).collect()
                };
                if roll < params.cold_frac {
                    // Hot block ends with a biased branch skipping a cold
                    // alternative.
                    let p_skip = 1.0 - params.cold_taken_prob;
                    let sizes = mk_sizes(&mut rng, hot_n, true);
                    bbs.push(PlanBb {
                        sizes,
                        cold: false,
                        term: PlanTerm::CondSkip {
                            p_taken: p_skip,
                            skip: 1,
                        },
                    });
                    let cold_n = geometric(&mut rng, params.avg_cold_instrs);
                    bbs.push(PlanBb {
                        sizes: mk_sizes(&mut rng, cold_n, false),
                        cold: true,
                        term: PlanTerm::FallThrough,
                    });
                } else if roll < params.cold_frac + params.loop_frac {
                    // Loop body: longer run, backward edge with a fixed
                    // per-site trip count (learnable exit).
                    let body_n = geometric(&mut rng, params.avg_bb_instrs * 3.0);
                    let iters = geometric(&mut rng, params.avg_loop_iters).max(2);
                    bbs.push(PlanBb {
                        sizes: mk_sizes(&mut rng, body_n, true),
                        cold: false,
                        term: PlanTerm::LoopBack { iters },
                    });
                } else if roll < params.cold_frac + params.loop_frac + params.call_frac {
                    let indirect = rng.gen_range(0.0..1.0) < params.indirect_frac;
                    if indirect {
                        let k = rng.gen_range(2..=4usize);
                        let callees: Vec<u32> =
                            (0..k).filter_map(|_| pick_callee(&mut rng, fid)).collect();
                        if callees.is_empty() {
                            bbs.push(PlanBb {
                                sizes: mk_sizes(&mut rng, hot_n, false),
                                cold: false,
                                term: PlanTerm::FallThrough,
                            });
                            continue;
                        }
                        // Skewed weights: 0.57, 0.29, 0.14 style.
                        let k = callees.len();
                        let mut w: Vec<f64> = (0..k).map(|i| 0.5f64.powi(i as i32)).collect();
                        let total: f64 = w.iter().sum();
                        let mut acc = 0.0;
                        for x in &mut w {
                            acc += *x / total;
                            *x = acc;
                        }
                        bbs.push(PlanBb {
                            sizes: mk_sizes(&mut rng, hot_n, true),
                            cold: false,
                            term: PlanTerm::IndirectCall {
                                callees,
                                cum_weights: w,
                            },
                        });
                    } else if let Some(callee) = pick_callee(&mut rng, fid) {
                        bbs.push(PlanBb {
                            sizes: mk_sizes(&mut rng, hot_n, true),
                            cold: false,
                            term: PlanTerm::Call { callee },
                        });
                    } else {
                        bbs.push(PlanBb {
                            sizes: mk_sizes(&mut rng, hot_n, false),
                            cold: false,
                            term: PlanTerm::FallThrough,
                        });
                    }
                } else {
                    // Straight code, occasionally biased/noisy branch to
                    // next block (pure fall-through otherwise).
                    bbs.push(PlanBb {
                        sizes: mk_sizes(&mut rng, hot_n, false),
                        cold: false,
                        term: PlanTerm::FallThrough,
                    });
                }
            }
            // Epilogue block with the single return.
            let epi_n = geometric(&mut rng, 3.0);
            let sizes: Vec<u8> = (0..epi_n + 1).map(|_| isa.draw_size(rng.gen())).collect();
            bbs.push(PlanBb {
                sizes,
                cold: false,
                term: PlanTerm::Return,
            });
            plans.push(bbs);
        }

        // ---- Pass 2: layout. ----
        let mut cursor: Addr = IMAGE_BASE;
        let mut fn_entries: Vec<Addr> = Vec::with_capacity(n_fns);
        let mut bb_starts: Vec<Vec<Addr>> = Vec::with_capacity(n_fns);
        for plan in &plans {
            // Align function entries to 16 bytes.
            cursor = (cursor + 15) & !15;
            fn_entries.push(cursor);
            let mut starts = Vec::with_capacity(plan.len());
            for bb in plan {
                starts.push(cursor);
                cursor += bb.sizes.iter().map(|&s| Addr::from(s)).sum::<Addr>();
            }
            bb_starts.push(starts);
        }
        let end = cursor;

        // ---- Pass 3: materialize instructions. ----
        let mut instrs: Vec<StaticInstr> = Vec::new();
        let mut functions: Vec<Function> = Vec::with_capacity(n_fns);
        for (fid, plan) in plans.iter().enumerate() {
            let mut blocks = Vec::with_capacity(plan.len());
            for (bid, bb) in plan.iter().enumerate() {
                let start = bb_starts[fid][bid];
                let first_instr = instrs.len() as u32;
                let mut pc = start;
                let n = bb.sizes.len();
                for (i, &size) in bb.sizes.iter().enumerate() {
                    let is_term = i + 1 == n;
                    let (kind, target) = if is_term {
                        match &bb.term {
                            PlanTerm::FallThrough => (StaticKind::Other, None),
                            PlanTerm::CondSkip { skip, .. } => {
                                let tgt = bb_starts[fid][bid + 1 + *skip as usize];
                                (StaticKind::CondBranch, Some(tgt))
                            }
                            PlanTerm::LoopBack { .. } => (StaticKind::CondBranch, Some(start)),
                            PlanTerm::DispatchJump => (StaticKind::CondBranch, Some(start)),
                            PlanTerm::Call { callee } => {
                                (StaticKind::Call, Some(fn_entries[*callee as usize]))
                            }
                            PlanTerm::IndirectCall { .. } => (StaticKind::IndirectCall, None),
                            PlanTerm::Return => (StaticKind::Return, None),
                        }
                    } else {
                        (StaticKind::Other, None)
                    };
                    instrs.push(StaticInstr {
                        pc,
                        size,
                        kind,
                        target,
                    });
                    pc += Addr::from(size);
                }
                let term = match &bb.term {
                    PlanTerm::FallThrough => Terminator::FallThrough,
                    PlanTerm::CondSkip { p_taken, skip } => Terminator::Cond {
                        p_taken: *p_taken,
                        taken_to: bid as u32 + 1 + skip,
                    },
                    PlanTerm::LoopBack { iters } => Terminator::Loop {
                        iters: *iters,
                        taken_to: bid as u32,
                    },
                    PlanTerm::DispatchJump => Terminator::Cond {
                        p_taken: 1.0,
                        taken_to: bid as u32,
                    },
                    PlanTerm::Call { callee } => Terminator::Call { callee: *callee },
                    PlanTerm::IndirectCall {
                        callees,
                        cum_weights,
                    } => Terminator::IndirectCall {
                        callees: callees.clone(),
                        cum_weights: cum_weights.clone(),
                    },
                    PlanTerm::Return => Terminator::Return,
                };
                blocks.push(BasicBlock {
                    start,
                    first_instr,
                    n_instrs: bb.sizes.len() as u32,
                    cold: bb.cold,
                    term,
                });
            }
            functions.push(Function {
                entry: fn_entries[fid],
                blocks,
            });
        }

        // Dispatcher's loop-back is a Jump in spirit; rewrite bb1's
        // terminator instruction to an unconditional Jump back to bb0.
        {
            let disp = &functions[0];
            let bb1 = &disp.blocks[1];
            let idx = (bb1.first_instr + bb1.n_instrs - 1) as usize;
            instrs[idx].kind = StaticKind::Jump;
            instrs[idx].target = Some(disp.entry);
        }
        let mut image = ProgramImage {
            params: params.clone(),
            isa,
            functions,
            instrs,
            roots,
            end,
        };
        image.functions[0].blocks[1].term = Terminator::Jump { to: 0 };
        debug_assert!(image.instrs.windows(2).all(|w| w[0].pc < w[1].pc));
        image
    }

    /// The parameters this image was built from.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// The ISA mode of the image.
    pub fn isa(&self) -> IsaMode {
        self.isa
    }

    /// All functions; index 0 is the dispatcher.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// The flat, address-sorted static instruction array.
    pub fn instrs(&self) -> &[StaticInstr] {
        &self.instrs
    }

    /// Root handler function indexes.
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// One-past-the-end address of the image.
    pub fn end(&self) -> Addr {
        self.end
    }

    /// Static code size in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.end - IMAGE_BASE
    }

    /// Number of distinct 64-byte blocks holding code.
    pub fn code_blocks(&self) -> usize {
        let mut n = 0;
        let mut last = None;
        for i in &self.instrs {
            let b = block_of(i.pc);
            if last != Some(b) {
                n += 1;
                last = Some(b);
            }
        }
        n
    }

    /// Counts static branch sites by class:
    /// `(conditional, unconditional_direct, indirect, returns)`.
    pub fn branch_census(&self) -> (usize, usize, usize, usize) {
        let mut cond = 0;
        let mut uncond = 0;
        let mut indirect = 0;
        let mut rets = 0;
        for i in &self.instrs {
            match i.kind {
                StaticKind::CondBranch => cond += 1,
                StaticKind::Jump | StaticKind::Call => uncond += 1,
                StaticKind::IndirectJump | StaticKind::IndirectCall => indirect += 1,
                StaticKind::Return => rets += 1,
                StaticKind::Other => {}
            }
        }
        (cond, uncond, indirect, rets)
    }

    /// The instructions of `block` as a slice (no allocation).
    pub fn block_slice(&self, block: Block) -> &[StaticInstr] {
        let base = block << dcfb_trace::BLOCK_BITS;
        let lo = self.instrs.partition_point(|i| i.pc < base);
        let hi = self.instrs.partition_point(|i| i.pc < base + 64);
        &self.instrs[lo..hi]
    }
}

impl CodeMemory for ProgramImage {
    fn instrs_in_block(&self, block: Block) -> Vec<StaticInstr> {
        self.block_slice(block).to_vec()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn small_params() -> WorkloadParams {
        WorkloadParams {
            functions: 50,
            root_functions: 8,
            ..WorkloadParams::default()
        }
    }

    fn build() -> ProgramImage {
        ProgramImage::build(&small_params(), 42, IsaMode::Fixed4)
    }

    #[test]
    fn build_is_deterministic() {
        let a = build();
        let b = build();
        assert_eq!(a.instrs().len(), b.instrs().len());
        assert_eq!(a.end(), b.end());
        for (x, y) in a.instrs().iter().zip(b.instrs()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ProgramImage::build(&small_params(), 1, IsaMode::Fixed4);
        let b = ProgramImage::build(&small_params(), 2, IsaMode::Fixed4);
        assert_ne!(a.instrs().len(), b.instrs().len());
    }

    #[test]
    fn instrs_are_sorted_and_contiguous_within_bbs() {
        let img = build();
        for w in img.instrs().windows(2) {
            assert!(w[0].pc < w[1].pc);
            assert!(w[0].pc + u64::from(w[0].size) <= w[1].pc);
        }
    }

    #[test]
    fn fixed_isa_instrs_are_4_bytes() {
        let img = build();
        assert!(img.instrs().iter().all(|i| i.size == 4));
    }

    #[test]
    fn variable_isa_instrs_vary() {
        let img = ProgramImage::build(&small_params(), 42, IsaMode::Variable);
        let sizes: std::collections::HashSet<u8> = img.instrs().iter().map(|i| i.size).collect();
        assert!(sizes.len() > 3);
    }

    #[test]
    fn every_function_ends_with_return() {
        let img = build();
        for (fid, f) in img.functions().iter().enumerate().skip(1) {
            let last = f.blocks.last().unwrap();
            assert!(
                matches!(last.term, Terminator::Return),
                "function {fid} does not end in Return"
            );
            let ret = &img.instrs()[(last.first_instr + last.n_instrs - 1) as usize];
            assert_eq!(ret.kind, StaticKind::Return);
            assert_eq!(f.return_pc(&img), ret.pc);
        }
    }

    #[test]
    fn dispatcher_loops_over_roots() {
        let img = build();
        let disp = &img.functions()[0];
        assert_eq!(disp.blocks.len(), 2);
        match &disp.blocks[0].term {
            Terminator::IndirectCall {
                callees,
                cum_weights,
            } => {
                assert_eq!(callees.len(), img.roots().len());
                assert!((cum_weights.last().unwrap() - 1.0).abs() < 1e-9);
            }
            t => panic!("dispatcher bb0 has {t:?}"),
        }
        assert!(matches!(disp.blocks[1].term, Terminator::Jump { to: 0 }));
    }

    #[test]
    fn cond_targets_point_at_bb_starts() {
        let img = build();
        for f in img.functions() {
            for (bid, bb) in f.blocks.iter().enumerate() {
                if let Terminator::Cond { taken_to, .. } = bb.term {
                    let term_instr = &img.instrs()[(bb.first_instr + bb.n_instrs - 1) as usize];
                    assert_eq!(term_instr.kind, StaticKind::CondBranch);
                    assert_eq!(
                        term_instr.target.unwrap(),
                        f.blocks[taken_to as usize].start,
                        "bb {bid} cond target mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn call_targets_point_at_function_entries() {
        let img = build();
        for f in img.functions() {
            for bb in &f.blocks {
                if let Terminator::Call { callee } = bb.term {
                    let term_instr = &img.instrs()[(bb.first_instr + bb.n_instrs - 1) as usize];
                    assert_eq!(term_instr.kind, StaticKind::Call);
                    assert_eq!(
                        term_instr.target.unwrap(),
                        img.functions()[callee as usize].entry
                    );
                }
            }
        }
    }

    #[test]
    fn block_slice_matches_code_memory() {
        let img = build();
        let some_block = block_of(img.functions()[3].entry);
        let via_trait = img.instrs_in_block(some_block);
        let via_slice = img.block_slice(some_block);
        assert_eq!(via_trait.as_slice(), via_slice);
        assert!(!via_trait.is_empty());
        for i in &via_trait {
            assert_eq!(block_of(i.pc), some_block);
        }
    }

    #[test]
    fn empty_block_outside_image() {
        let img = build();
        assert!(img.instrs_in_block(0).is_empty());
        assert!(img.instrs_in_block(block_of(img.end()) + 100).is_empty());
        assert!(!img.is_code_block(0));
    }

    #[test]
    fn footprint_scales_with_functions() {
        let small = ProgramImage::build(&small_params(), 7, IsaMode::Fixed4);
        let mut big_params = small_params();
        big_params.functions = 400;
        let big = ProgramImage::build(&big_params, 7, IsaMode::Fixed4);
        assert!(big.code_blocks() > 4 * small.code_blocks());
    }

    #[test]
    fn branch_census_sums() {
        let img = build();
        let (cond, uncond, indirect, rets) = img.branch_census();
        assert!(cond > 0 && uncond > 0 && indirect > 0 && rets > 0);
        // One return per non-dispatcher function.
        assert_eq!(rets, img.functions().len() - 1);
        let branches = img.instrs().iter().filter(|i| i.kind.is_branch()).count();
        assert_eq!(branches, cond + uncond + indirect + rets);
    }

    #[test]
    fn cold_blocks_exist_and_are_marked() {
        let img = build();
        let cold: usize = img
            .functions()
            .iter()
            .flat_map(|f| &f.blocks)
            .filter(|b| b.cold)
            .count();
        assert!(cold > 0, "no cold blocks generated");
    }

    #[test]
    fn zipf_is_skewed() {
        let mut rng = SmallRng::seed_from_u64(3);
        let z = Zipf::new(100, 1.2);
        let mut counts = [0u32; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50].max(1) * 5);
    }
}
