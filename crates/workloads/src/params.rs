//! Tunable parameters of the synthetic workload generator.

/// Shape parameters for one synthetic server workload.
///
/// A workload is a population of functions; each function is a chain of
/// *segments*, and each segment is one of: a straight basic block, an
/// if/else whose alternative is cold, a loop, or a call site. The walker
/// (see [`crate::synth`]) executes transactions by walking root handler
/// functions to completion.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadParams {
    /// Human-readable workload name.
    pub name: String,
    /// Number of functions in the image (footprint driver).
    pub functions: usize,
    /// Mean segments per function (geometric, ≥ 1).
    pub avg_segments: f64,
    /// Mean instructions per hot basic block (geometric, ≥ 1).
    pub avg_bb_instrs: f64,
    /// Fraction of segments that carry a cold alternative block
    /// (else-branches, exception handlers, error paths).
    pub cold_frac: f64,
    /// Probability that a cold alternative actually executes.
    pub cold_taken_prob: f64,
    /// Mean instructions in a cold block (usually longer than hot BBs —
    /// error handling and logging code).
    pub avg_cold_instrs: f64,
    /// Fraction of segments that are loop bodies.
    pub loop_frac: f64,
    /// Mean loop iteration count (geometric, ≥ 1).
    pub avg_loop_iters: f64,
    /// Fraction of segments that end in a call.
    pub call_frac: f64,
    /// Fraction of calls that are indirect (virtual dispatch).
    pub indirect_frac: f64,
    /// Zipf skew for callee selection (higher = hotter hot functions).
    pub zipf_s: f64,
    /// Call-depth cap for the walker (recursion guard).
    pub max_call_depth: usize,
    /// Number of root handler functions (transaction entry points).
    pub root_functions: usize,
    /// Fraction of conditional branches that are strongly biased
    /// (≈ 95/5); the rest are noisy (uniform in `[0.25, 0.75]`).
    pub biased_branch_frac: f64,
}

impl WorkloadParams {
    /// Validates internal consistency; called by the image builder.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range fields, with the offending field named.
    pub fn validate(&self) {
        assert!(self.functions >= 2, "functions must be >= 2");
        assert!(self.avg_segments >= 1.0, "avg_segments must be >= 1");
        assert!(self.avg_bb_instrs >= 1.0, "avg_bb_instrs must be >= 1");
        for (v, n) in [
            (self.cold_frac, "cold_frac"),
            (self.cold_taken_prob, "cold_taken_prob"),
            (self.loop_frac, "loop_frac"),
            (self.call_frac, "call_frac"),
            (self.indirect_frac, "indirect_frac"),
            (self.biased_branch_frac, "biased_branch_frac"),
        ] {
            assert!((0.0..=1.0).contains(&v), "{n} must be in [0,1], got {v}");
        }
        assert!(
            self.cold_frac + self.loop_frac + self.call_frac <= 1.0,
            "segment-kind fractions exceed 1"
        );
        assert!(self.avg_cold_instrs >= 1.0, "avg_cold_instrs must be >= 1");
        assert!(self.avg_loop_iters >= 1.0, "avg_loop_iters must be >= 1");
        assert!(self.zipf_s > 0.0, "zipf_s must be positive");
        assert!(self.max_call_depth >= 1, "max_call_depth must be >= 1");
        assert!(
            (1..=self.functions).contains(&self.root_functions),
            "root_functions out of range"
        );
    }

    /// Rough static instruction count implied by these parameters
    /// (hot + cold code), before layout padding.
    pub fn approx_static_instrs(&self) -> f64 {
        let per_segment =
            self.avg_bb_instrs + self.cold_frac * self.avg_cold_instrs + 1.0 /* terminator */;
        self.functions as f64 * self.avg_segments * per_segment
    }

    /// Rough instruction footprint in KiB for a fixed-length (4 B) ISA.
    pub fn approx_footprint_kib(&self) -> f64 {
        self.approx_static_instrs() * 4.0 / 1024.0
    }
}

impl Default for WorkloadParams {
    /// A mid-sized server-like workload, useful for tests and examples.
    fn default() -> Self {
        WorkloadParams {
            name: "default".to_owned(),
            functions: 600,
            avg_segments: 10.0,
            avg_bb_instrs: 6.0,
            cold_frac: 0.30,
            cold_taken_prob: 0.03,
            avg_cold_instrs: 10.0,
            loop_frac: 0.15,
            avg_loop_iters: 4.0,
            call_frac: 0.30,
            indirect_frac: 0.10,
            zipf_s: 1.1,
            max_call_depth: 12,
            root_functions: 24,
            biased_branch_frac: 0.85,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn default_params_validate() {
        WorkloadParams::default().validate();
    }

    #[test]
    #[should_panic(expected = "cold_frac")]
    fn bad_cold_frac_panics() {
        let mut p = WorkloadParams::default();
        p.cold_frac = 1.5;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn segment_fractions_must_fit() {
        let mut p = WorkloadParams::default();
        p.cold_frac = 0.5;
        p.loop_frac = 0.4;
        p.call_frac = 0.4;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "root_functions")]
    fn too_many_roots_panics() {
        let mut p = WorkloadParams::default();
        p.root_functions = p.functions + 1;
        p.validate();
    }

    #[test]
    fn footprint_estimate_scales_with_functions() {
        let small = WorkloadParams {
            functions: 100,
            ..WorkloadParams::default()
        };
        let large = WorkloadParams {
            functions: 1000,
            ..WorkloadParams::default()
        };
        assert!(large.approx_footprint_kib() > 5.0 * small.approx_footprint_kib());
    }
}
