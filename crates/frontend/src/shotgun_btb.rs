//! Shotgun's split BTB: U-BTB + C-BTB + RIB with spatial footprints.
//!
//! Shotgun (ASPLOS'18, [20]) dedicates most of its BTB budget to
//! unconditional branches (U-BTB), keeps a tiny conditional-branch BTB
//! (C-BTB) that is aggressively prefilled by pre-decoding, and tracks
//! returns in a RIB. Each U-BTB entry additionally stores two *spatial
//! footprints* learned from the retired instruction stream:
//!
//! * the **call footprint** — which blocks around the branch target were
//!   touched after the control transfer (used to prefetch the callee's
//!   working set), and
//! * the **return footprint** — which blocks around the matching return
//!   target were touched (prefetched when the callee's return is
//!   near).
//!
//! §III of the DCFB paper shows the failure mode this reproduction must
//! exhibit: when the U-BTB cannot hold a workload's unconditional
//! working set, footprints are missing (*footprint misses*, Fig. 1),
//! proactive prefetching stops, C-BTB prefilling starves, and the core
//! crawls block-by-block (Table I's empty-FTQ stalls).

use crate::btb::BranchClass;
use dcfb_trace::Addr;

/// A spatial footprint: bit `i` set means block `base_block + i` was
/// touched, where `base_block` is the block of the footprint's anchor
/// address (branch target for call footprints, return target for return
/// footprints).
pub type SpatialFootprint = u8;

/// One U-BTB entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UBtbEntry {
    /// Basic-block start this entry is keyed by.
    pub pc: Addr,
    /// Address of the terminating branch instruction (the basic block
    /// spans `pc..=end`).
    pub end: Addr,
    /// Branch target.
    pub target: Addr,
    /// Branch class (unconditional: jump/call/indirect).
    pub class: BranchClass,
    /// Blocks touched around `target` (0 = not yet learned).
    pub call_footprint: SpatialFootprint,
    /// Blocks touched around the matching return target
    /// (0 = not yet learned).
    pub ret_footprint: SpatialFootprint,
}

/// Shotgun BTB geometry (defaults follow §VI-D2: 1.5 K U-BTB,
/// 128-entry C-BTB, 512-entry RIB).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShotgunBtbConfig {
    /// U-BTB entries.
    pub u_entries: usize,
    /// C-BTB entries.
    pub c_entries: usize,
    /// RIB entries.
    pub r_entries: usize,
    /// Associativity of every component.
    pub ways: usize,
}

impl Default for ShotgunBtbConfig {
    fn default() -> Self {
        ShotgunBtbConfig {
            u_entries: 1536,
            c_entries: 128,
            r_entries: 512,
            ways: 4,
        }
    }
}

impl ShotgunBtbConfig {
    /// A configuration scaled by `factor` (Fig. 18's BTB-size sweep
    /// shrinks all components proportionally).
    pub fn scaled(factor: f64) -> Self {
        let d = ShotgunBtbConfig::default();
        let scale = |n: usize| (((n as f64) * factor) as usize).max(8);
        ShotgunBtbConfig {
            u_entries: scale(d.u_entries),
            c_entries: scale(d.c_entries),
            r_entries: scale(d.r_entries),
            ways: d.ways,
        }
    }
}

/// Per-component and footprint statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShotgunBtbStats {
    /// U-BTB lookups (unconditional branch sites).
    pub u_lookups: u64,
    /// U-BTB hits.
    pub u_hits: u64,
    /// U-BTB hits whose call footprint was learned (non-zero).
    pub u_footprint_hits: u64,
    /// C-BTB lookups.
    pub c_lookups: u64,
    /// C-BTB hits.
    pub c_hits: u64,
    /// RIB lookups.
    pub r_lookups: u64,
    /// RIB hits.
    pub r_hits: u64,
}

impl ShotgunBtbStats {
    /// The paper's Fig. 1 metric: the fraction of U-BTB accesses that
    /// could not supply a learned footprint (entry missing *or* entry
    /// present with an unconstructed footprint).
    pub fn footprint_miss_ratio(&self) -> f64 {
        if self.u_lookups == 0 {
            0.0
        } else {
            1.0 - self.u_footprint_hits as f64 / self.u_lookups as f64
        }
    }

    /// C-BTB miss ratio.
    pub fn c_miss_ratio(&self) -> f64 {
        if self.c_lookups == 0 {
            0.0
        } else {
            1.0 - self.c_hits as f64 / self.c_lookups as f64
        }
    }

    /// Accumulates another window's counters into this one (shard
    /// stitching: every field is a sum-mergeable event count).
    pub fn absorb(&mut self, other: &ShotgunBtbStats) {
        self.u_lookups += other.u_lookups;
        self.u_hits += other.u_hits;
        self.u_footprint_hits += other.u_footprint_hits;
        self.c_lookups += other.c_lookups;
        self.c_hits += other.c_hits;
        self.r_lookups += other.r_lookups;
        self.r_hits += other.r_hits;
    }
}

#[derive(Clone, Copy, Debug)]
struct UWay {
    tag: u64,
    valid: bool,
    stamp: u64,
    end: Addr,
    target: Addr,
    class: BranchClass,
    call_fp: SpatialFootprint,
    ret_fp: SpatialFootprint,
}

#[derive(Clone, Copy, Debug)]
struct SmallWay {
    tag: u64,
    valid: bool,
    stamp: u64,
    end: Addr,
    target: Addr,
}

/// The three-part Shotgun BTB.
#[derive(Clone, Debug)]
pub struct ShotgunBtb {
    cfg: ShotgunBtbConfig,
    u: Vec<UWay>,
    c: Vec<SmallWay>,
    r: Vec<SmallWay>,
    clock: u64,
    stats: ShotgunBtbStats,
}

impl ShotgunBtb {
    /// Creates an empty split BTB.
    ///
    /// # Panics
    ///
    /// Panics if any component size is not a multiple of `ways`.
    pub fn new(cfg: ShotgunBtbConfig) -> Self {
        for (n, name) in [
            (cfg.u_entries, "u_entries"),
            (cfg.c_entries, "c_entries"),
            (cfg.r_entries, "r_entries"),
        ] {
            assert!(
                n % cfg.ways == 0 && n > 0,
                "{name} ({n}) not divisible by ways ({})",
                cfg.ways
            );
        }
        ShotgunBtb {
            cfg,
            u: vec![
                UWay {
                    tag: 0,
                    valid: false,
                    stamp: 0,
                    end: 0,
                    target: 0,
                    class: BranchClass::Jump,
                    call_fp: 0,
                    ret_fp: 0,
                };
                cfg.u_entries
            ],
            c: vec![
                SmallWay {
                    tag: 0,
                    valid: false,
                    stamp: 0,
                    end: 0,
                    target: 0
                };
                cfg.c_entries
            ],
            r: vec![
                SmallWay {
                    tag: 0,
                    valid: false,
                    stamp: 0,
                    end: 0,
                    target: 0
                };
                cfg.r_entries
            ],
            clock: 0,
            stats: ShotgunBtbStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> ShotgunBtbConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ShotgunBtbStats {
        self.stats
    }

    /// Resets statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = ShotgunBtbStats::default();
    }

    fn locate(n_entries: usize, ways: usize, pc: Addr) -> (usize, u64) {
        let sets = n_entries / ways;
        let set = ((pc >> 2) as usize) % sets;
        let tag = (pc >> 2) / sets as u64;
        (set * ways, tag)
    }

    /// Looks up an unconditional branch in the U-BTB.
    pub fn lookup_u(&mut self, pc: Addr) -> Option<UBtbEntry> {
        self.clock += 1;
        self.stats.u_lookups += 1;
        let (base, tag) = Self::locate(self.cfg.u_entries, self.cfg.ways, pc);
        for i in base..base + self.cfg.ways {
            if self.u[i].valid && self.u[i].tag == tag {
                self.u[i].stamp = self.clock;
                self.stats.u_hits += 1;
                if self.u[i].call_fp != 0 {
                    self.stats.u_footprint_hits += 1;
                }
                return Some(UBtbEntry {
                    pc,
                    end: self.u[i].end,
                    target: self.u[i].target,
                    class: self.u[i].class,
                    call_footprint: self.u[i].call_fp,
                    ret_footprint: self.u[i].ret_fp,
                });
            }
        }
        None
    }

    /// Looks up a conditional-branch basic block in the C-BTB; returns
    /// `(end, target)` — the terminating branch address and its taken
    /// target.
    pub fn lookup_c(&mut self, pc: Addr) -> Option<(Addr, Addr)> {
        self.clock += 1;
        self.stats.c_lookups += 1;
        let (base, tag) = Self::locate(self.cfg.c_entries, self.cfg.ways, pc);
        for i in base..base + self.cfg.ways {
            if self.c[i].valid && self.c[i].tag == tag {
                self.c[i].stamp = self.clock;
                self.stats.c_hits += 1;
                return Some((self.c[i].end, self.c[i].target));
            }
        }
        None
    }

    /// Looks up a return basic block in the RIB; returns the address of
    /// the return instruction.
    pub fn lookup_r(&mut self, pc: Addr) -> Option<Addr> {
        self.clock += 1;
        self.stats.r_lookups += 1;
        let (base, tag) = Self::locate(self.cfg.r_entries, self.cfg.ways, pc);
        for i in base..base + self.cfg.ways {
            if self.r[i].valid && self.r[i].tag == tag {
                self.r[i].stamp = self.clock;
                self.stats.r_hits += 1;
                return Some(self.r[i].end);
            }
        }
        None
    }

    /// Checks, without disturbing LRU or statistics, whether the U-BTB
    /// holds `pc` and whether its call footprint has been learned.
    /// Returns `None` on a miss, `Some(has_footprint)` on a hit. Used
    /// for the retire-side Fig. 1 accounting.
    pub fn peek_u_footprint(&self, pc: Addr) -> Option<bool> {
        let (base, tag) = Self::locate(self.cfg.u_entries, self.cfg.ways, pc);
        (base..base + self.cfg.ways)
            .find(|&i| self.u[i].valid && self.u[i].tag == tag)
            .map(|i| self.u[i].call_fp != 0)
    }

    /// Inserts (or refreshes) an unconditional branch. Footprints of a
    /// *new* entry start unlearned; a refresh keeps the learned
    /// footprints and updates the target.
    pub fn insert_u(&mut self, pc: Addr, end: Addr, target: Addr, class: BranchClass) {
        self.clock += 1;
        let (base, tag) = Self::locate(self.cfg.u_entries, self.cfg.ways, pc);
        for i in base..base + self.cfg.ways {
            if self.u[i].valid && self.u[i].tag == tag {
                self.u[i].end = end;
                self.u[i].target = target;
                self.u[i].class = class;
                self.u[i].stamp = self.clock;
                return;
            }
        }
        let victim = (base..base + self.cfg.ways)
            .find(|&i| !self.u[i].valid)
            .unwrap_or_else(|| {
                (base..base + self.cfg.ways)
                    .min_by_key(|&i| self.u[i].stamp)
                    .expect("set non-empty")
            });
        self.u[victim] = UWay {
            tag,
            valid: true,
            stamp: self.clock,
            end,
            target,
            class,
            call_fp: 0,
            ret_fp: 0,
        };
    }

    /// Merges learned footprints into an existing U-BTB entry (no-op if
    /// the branch has been evicted — footprints cannot be prefilled,
    /// which is exactly Fig. 1's pathology).
    pub fn learn_footprints(
        &mut self,
        pc: Addr,
        call_fp: SpatialFootprint,
        ret_fp: SpatialFootprint,
    ) {
        let (base, tag) = Self::locate(self.cfg.u_entries, self.cfg.ways, pc);
        for i in base..base + self.cfg.ways {
            if self.u[i].valid && self.u[i].tag == tag {
                self.u[i].call_fp |= call_fp;
                self.u[i].ret_fp |= ret_fp;
                return;
            }
        }
    }

    /// Inserts a conditional-branch basic block into the C-BTB.
    pub fn insert_c(&mut self, pc: Addr, end: Addr, target: Addr) {
        self.clock += 1;
        let (base, tag) = Self::locate(self.cfg.c_entries, self.cfg.ways, pc);
        for i in base..base + self.cfg.ways {
            if self.c[i].valid && self.c[i].tag == tag {
                self.c[i].end = end;
                self.c[i].target = target;
                self.c[i].stamp = self.clock;
                return;
            }
        }
        let victim = (base..base + self.cfg.ways)
            .find(|&i| !self.c[i].valid)
            .unwrap_or_else(|| {
                (base..base + self.cfg.ways)
                    .min_by_key(|&i| self.c[i].stamp)
                    .expect("set non-empty")
            });
        self.c[victim] = SmallWay {
            tag,
            valid: true,
            stamp: self.clock,
            end,
            target,
        };
    }

    /// Inserts a return basic block into the RIB.
    pub fn insert_r(&mut self, pc: Addr, end: Addr) {
        self.clock += 1;
        let (base, tag) = Self::locate(self.cfg.r_entries, self.cfg.ways, pc);
        for i in base..base + self.cfg.ways {
            if self.r[i].valid && self.r[i].tag == tag {
                self.r[i].end = end;
                self.r[i].stamp = self.clock;
                return;
            }
        }
        let victim = (base..base + self.cfg.ways)
            .find(|&i| !self.r[i].valid)
            .unwrap_or_else(|| {
                (base..base + self.cfg.ways)
                    .min_by_key(|&i| self.r[i].stamp)
                    .expect("set non-empty")
            });
        self.r[victim] = SmallWay {
            tag,
            valid: true,
            stamp: self.clock,
            end,
            target: 0,
        };
    }
}

/// Builds a spatial footprint from block deltas relative to an anchor
/// block: deltas outside `0..8` are ignored.
pub fn footprint_from_deltas<I: IntoIterator<Item = i64>>(deltas: I) -> SpatialFootprint {
    let mut fp = 0u8;
    for d in deltas {
        if (0..8).contains(&d) {
            fp |= 1 << d;
        }
    }
    fp
}

/// Expands a footprint into block numbers given its anchor block.
pub fn footprint_blocks(anchor_block: u64, fp: SpatialFootprint) -> Vec<u64> {
    (0..8)
        .filter(|i| fp & (1 << i) != 0)
        .map(|i| anchor_block + i as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn btb() -> ShotgunBtb {
        ShotgunBtb::new(ShotgunBtbConfig {
            u_entries: 16,
            c_entries: 8,
            r_entries: 8,
            ways: 2,
        })
    }

    #[test]
    fn u_btb_miss_insert_hit() {
        let mut b = btb();
        assert!(b.lookup_u(0x100).is_none());
        b.insert_u(0x100, 0x10c, 0x900, BranchClass::Call);
        let e = b.lookup_u(0x100).unwrap();
        assert_eq!(e.target, 0x900);
        assert_eq!(e.class, BranchClass::Call);
        assert_eq!(e.call_footprint, 0);
    }

    #[test]
    fn footprint_learning_and_miss_ratio() {
        let mut b = btb();
        b.insert_u(0x100, 0x10c, 0x900, BranchClass::Call);
        b.lookup_u(0x100); // hit, but footprint unlearned
        b.learn_footprints(0x100, 0b101, 0b1);
        let e = b.lookup_u(0x100).unwrap();
        assert_eq!(e.call_footprint, 0b101);
        assert_eq!(e.ret_footprint, 0b1);
        // 2 lookups: 1 hit without a footprint + 1 hit with one.
        let s = b.stats();
        assert_eq!(s.u_lookups, 2);
        assert_eq!(s.u_footprint_hits, 1);
        assert!((s.footprint_miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn footprints_lost_on_eviction() {
        let mut b = btb();
        // U-BTB: 16 entries / 2 ways = 8 sets; pc stride 8*4=32 keeps set.
        b.insert_u(0x0, 0xc, 0x900, BranchClass::Call);
        b.learn_footprints(0x0, 0xff, 0xff);
        b.insert_u(0x20, 0x2c, 0x901, BranchClass::Call);
        b.insert_u(0x40, 0x4c, 0x902, BranchClass::Call); // evicts 0x0 (LRU)
        assert!(b.lookup_u(0x0).is_none());
        b.insert_u(0x0, 0xc, 0x900, BranchClass::Call); // prefill-style reinsert
                                                        // Footprint must be unlearned again — BTB prefilling cannot
                                                        // restore footprints (the §III pathology).
        assert_eq!(b.lookup_u(0x0).unwrap().call_footprint, 0);
    }

    #[test]
    fn learn_into_evicted_entry_is_noop() {
        let mut b = btb();
        b.learn_footprints(0x500, 0xff, 0xff);
        assert!(b.lookup_u(0x500).is_none());
    }

    #[test]
    fn c_btb_and_rib_roundtrip() {
        let mut b = btb();
        assert!(b.lookup_c(0x10).is_none());
        b.insert_c(0x10, 0x1c, 0x300);
        assert_eq!(b.lookup_c(0x10), Some((0x1c, 0x300)));
        assert!(b.lookup_r(0x14).is_none());
        b.insert_r(0x14, 0x18);
        assert_eq!(b.lookup_r(0x14), Some(0x18));
        let s = b.stats();
        assert_eq!(s.c_lookups, 2);
        assert_eq!(s.c_hits, 1);
        assert!((s.c_miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(s.r_hits, 1);
    }

    #[test]
    fn refresh_keeps_footprints() {
        let mut b = btb();
        b.insert_u(0x100, 0x10c, 0x900, BranchClass::Call);
        b.learn_footprints(0x100, 0b11, 0);
        b.insert_u(0x100, 0x10c, 0x904, BranchClass::Call); // target changed
        let e = b.lookup_u(0x100).unwrap();
        assert_eq!(e.target, 0x904);
        assert_eq!(e.call_footprint, 0b11);
    }

    #[test]
    fn footprint_helpers() {
        let fp = footprint_from_deltas([0i64, 2, 9, -1]);
        assert_eq!(fp, 0b101);
        assert_eq!(footprint_blocks(100, fp), vec![100, 102]);
        assert_eq!(footprint_blocks(5, 0), Vec::<u64>::new());
    }

    #[test]
    fn scaled_config() {
        let half = ShotgunBtbConfig::scaled(0.5);
        assert_eq!(half.u_entries, 768);
        assert_eq!(half.c_entries, 64);
        let tiny = ShotgunBtbConfig::scaled(0.001);
        assert!(tiny.u_entries >= 8);
    }

    #[test]
    fn default_is_papers_configuration() {
        let d = ShotgunBtbConfig::default();
        assert_eq!(d.u_entries, 1536);
        assert_eq!(d.c_entries, 128);
        assert_eq!(d.r_entries, 512);
    }

    #[test]
    fn c_btb_eviction_prefers_lru_and_keeps_refreshed() {
        // C-BTB: 8 entries / 2 ways = 4 sets; pc stride 0x10 keeps the
        // set index while changing the tag.
        let mut b = btb();
        b.insert_c(0x0, 0xc, 0x300);
        b.insert_c(0x10, 0x1c, 0x301);
        let _ = b.lookup_c(0x0); // refresh: 0x10 becomes the LRU
        b.insert_c(0x20, 0x2c, 0x302);
        assert_eq!(b.lookup_c(0x0), Some((0xc, 0x300)));
        assert!(b.lookup_c(0x10).is_none());
        assert_eq!(b.lookup_c(0x20), Some((0x2c, 0x302)));
    }

    #[test]
    fn rib_eviction_under_set_pressure() {
        // RIB: 8 entries / 2 ways = 4 sets; 0x4, 0x14, 0x24 share a set.
        let mut b = btb();
        b.insert_r(0x4, 0x8);
        b.insert_r(0x14, 0x18);
        b.insert_r(0x24, 0x28); // evicts 0x4 (LRU)
        assert!(b.lookup_r(0x4).is_none());
        assert_eq!(b.lookup_r(0x14), Some(0x18));
        assert_eq!(b.lookup_r(0x24), Some(0x28));
    }

    #[test]
    fn full_tags_prevent_same_set_aliasing() {
        // U-BTB: 16 entries / 2 ways = 8 sets; 0x0 and 0x20 share set 0
        // but carry different full tags, and the three components are
        // independent structures.
        let mut b = btb();
        b.insert_u(0x0, 0xc, 0x900, BranchClass::Jump);
        assert!(b.lookup_u(0x20).is_none(), "same set, different tag");
        assert!(b.lookup_c(0x0).is_none(), "components are independent");
        assert!(b.lookup_r(0x0).is_none());
        assert_eq!(b.lookup_u(0x0).unwrap().target, 0x900);
    }

    #[test]
    fn capacity_pressure_evicts_lru() {
        let mut b = ShotgunBtb::new(ShotgunBtbConfig {
            u_entries: 4,
            c_entries: 4,
            r_entries: 4,
            ways: 4,
        });
        for i in 0..8u64 {
            b.insert_u(i * 4, i * 4, 0x100 + i, BranchClass::Jump);
        }
        // Only the last 4 survive (single set, 4 ways).
        let survivors = (0..8u64).filter(|&i| b.lookup_u(i * 4).is_some()).count();
        assert_eq!(survivors, 4);
    }
}
