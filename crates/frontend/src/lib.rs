//! # dcfb-frontend
//!
//! Frontend building blocks shared by the baseline core and every
//! prefetcher in the DCFB reproduction:
//!
//! * [`Btb`] — a conventional PC-indexed, set-associative branch target
//!   buffer (the paper's proposal deliberately keeps this unmodified),
//! * [`ShotgunBtb`] — Shotgun's split U-BTB / C-BTB / RIB organization
//!   with call/return footprints,
//! * [`Tage`] — a TAGE conditional-direction predictor (Table III),
//! * [`ReturnAddressStack`] — return-target prediction,
//! * [`Ftq`] — the fetch target queue decoupling branch prediction from
//!   instruction fetch,
//! * [`Predecoder`] — block pre-decoding, the mechanism behind both the
//!   Dis prefetcher's target extraction and Confluence-style BTB
//!   prefilling, including the variable-length-ISA path that consumes
//!   branch footprints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btb;
pub mod ftq;
pub mod predecoder;
pub mod ras;
pub mod shotgun_btb;
pub mod tage;

pub use btb::{BranchClass, Btb, BtbConfig, BtbEntry, BtbStats};
pub use ftq::{Ftq, FtqEntry};
pub use predecoder::{PredecodedBlock, Predecoder};
pub use ras::ReturnAddressStack;
pub use shotgun_btb::{ShotgunBtb, ShotgunBtbConfig, ShotgunBtbStats, UBtbEntry};
pub use tage::{Tage, TageConfig};
