//! Instruction-block pre-decoding.
//!
//! The pre-decoder inspects the bytes of a fetched/prefetched cache
//! block to find branch instructions and extract their targets. It
//! powers three mechanisms in the paper:
//!
//! * **BTB prefilling** (Confluence-style, §V-C): every block missing in
//!   the RLU is pre-decoded and its branches pushed into the BTB
//!   prefetch buffer,
//! * **Dis target extraction** (§V-B): the DisTable stores only a branch
//!   *offset*; the pre-decoder recovers the target,
//! * **reactive BTB fills** in Boomerang/Shotgun.
//!
//! On a fixed-length ISA all 16 slots of a 64-byte block decode in
//! parallel. On a variable-length ISA instruction boundaries are
//! unknown; the pre-decoder needs a *branch footprint* (BF) naming the
//! branch byte-offsets (§V-D), and decodes only at those offsets.

use crate::btb::{BranchClass, BtbEntry};
use dcfb_cache::BranchFootprint;
use dcfb_trace::{Block, CodeMemory, IsaMode, StaticInstr};

/// The result of pre-decoding one cache block.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PredecodedBlock {
    /// Branch instructions found in the block, in address order.
    pub branches: Vec<BtbEntry>,
    /// Branches whose target is *not* in the encoding (indirects,
    /// returns): they are reported in `branches` with `target = 0` and
    /// counted here.
    pub unresolved_targets: usize,
    /// For VL-ISA with a footprint: offsets listed in the BF that did
    /// not decode to a branch (stale footprint).
    pub stale_offsets: usize,
}

/// A block pre-decoder over a [`CodeMemory`].
#[derive(Clone, Debug)]
pub struct Predecoder {
    isa: IsaMode,
    decoded_blocks: u64,
    decoded_branches: u64,
}

impl Predecoder {
    /// Creates a pre-decoder for the given ISA mode.
    pub fn new(isa: IsaMode) -> Self {
        Predecoder {
            isa,
            decoded_blocks: 0,
            decoded_branches: 0,
        }
    }

    /// The ISA mode.
    pub fn isa(&self) -> IsaMode {
        self.isa
    }

    /// `(blocks, branches)` decoded so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.decoded_blocks, self.decoded_branches)
    }

    /// Pre-decodes `block`, extracting every branch. On a fixed-length
    /// ISA this needs no side information; on a variable-length ISA it
    /// requires `footprint` and decodes only at the recorded offsets
    /// (without a footprint it returns an empty result — the hardware
    /// cannot find boundaries).
    pub fn decode<M: CodeMemory>(
        &mut self,
        code: &M,
        block: Block,
        footprint: Option<&BranchFootprint>,
    ) -> PredecodedBlock {
        self.decoded_blocks += 1;
        let instrs = code.instrs_in_block(block);
        match self.isa {
            IsaMode::Fixed4 => self.decode_instrs(&instrs, None),
            IsaMode::Variable => match footprint {
                Some(bf) => self.decode_instrs(&instrs, Some(bf)),
                None => PredecodedBlock::default(),
            },
        }
    }

    /// Checks whether the instruction at `byte_offset` in `block` is a
    /// branch, and if so returns its BTB entry (target `0` if not in the
    /// encoding). This is the Dis prefetcher's replay path.
    pub fn decode_at<M: CodeMemory>(
        &mut self,
        code: &M,
        block: Block,
        byte_offset: u32,
    ) -> Option<BtbEntry> {
        let instrs = code.instrs_in_block(block);
        let i = instrs.iter().find(|i| i.byte_offset() == byte_offset)?;
        Self::to_entry(i)
    }

    fn decode_instrs(
        &mut self,
        instrs: &[StaticInstr],
        footprint: Option<&BranchFootprint>,
    ) -> PredecodedBlock {
        let mut out = PredecodedBlock::default();
        match footprint {
            None => {
                for i in instrs {
                    if let Some(e) = Self::to_entry(i) {
                        if e.target == 0 {
                            out.unresolved_targets += 1;
                        }
                        out.branches.push(e);
                    }
                }
            }
            Some(bf) => {
                for &off in bf.offsets() {
                    match instrs.iter().find(|i| i.byte_offset() == u32::from(off)) {
                        Some(i) if i.kind.is_branch() => {
                            let e = Self::to_entry(i).expect("branch entry");
                            if e.target == 0 {
                                out.unresolved_targets += 1;
                            }
                            out.branches.push(e);
                        }
                        _ => out.stale_offsets += 1,
                    }
                }
            }
        }
        self.decoded_branches += out.branches.len() as u64;
        out
    }

    fn to_entry(i: &StaticInstr) -> Option<BtbEntry> {
        let class = BranchClass::from_static(i.kind)?;
        Some(BtbEntry {
            pc: i.pc,
            target: i.target.unwrap_or(0),
            class,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcfb_trace::{block_base, StaticKind};

    /// A toy code memory: block 1 holds 16 fixed-size instructions, with
    /// branches at slots 3 (cond), 7 (call), 15 (return).
    struct Toy;

    impl CodeMemory for Toy {
        fn instrs_in_block(&self, block: Block) -> Vec<StaticInstr> {
            if block != 1 {
                return Vec::new();
            }
            (0..16u64)
                .map(|slot| {
                    let pc = block_base(1) + slot * 4;
                    let (kind, target) = match slot {
                        3 => (StaticKind::CondBranch, Some(0x400)),
                        7 => (StaticKind::Call, Some(0x800)),
                        15 => (StaticKind::Return, None),
                        _ => (StaticKind::Other, None),
                    };
                    StaticInstr {
                        pc,
                        size: 4,
                        kind,
                        target,
                    }
                })
                .collect()
        }
    }

    #[test]
    fn fixed_mode_finds_all_branches() {
        let mut p = Predecoder::new(IsaMode::Fixed4);
        let d = p.decode(&Toy, 1, None);
        assert_eq!(d.branches.len(), 3);
        assert_eq!(d.branches[0].class, BranchClass::Conditional);
        assert_eq!(d.branches[0].target, 0x400);
        assert_eq!(d.branches[1].class, BranchClass::Call);
        assert_eq!(d.branches[2].class, BranchClass::Return);
        assert_eq!(d.unresolved_targets, 1); // the return
        assert_eq!(p.counters(), (1, 3));
    }

    #[test]
    fn empty_block_decodes_empty() {
        let mut p = Predecoder::new(IsaMode::Fixed4);
        let d = p.decode(&Toy, 99, None);
        assert!(d.branches.is_empty());
    }

    #[test]
    fn variable_mode_without_footprint_fails() {
        let mut p = Predecoder::new(IsaMode::Variable);
        let d = p.decode(&Toy, 1, None);
        assert!(d.branches.is_empty());
    }

    #[test]
    fn variable_mode_with_footprint_decodes_at_offsets() {
        let mut p = Predecoder::new(IsaMode::Variable);
        let mut bf = BranchFootprint::new();
        bf.push(12); // slot 3
        bf.push(28); // slot 7
        bf.push(60); // slot 15
        let d = p.decode(&Toy, 1, Some(&bf));
        assert_eq!(d.branches.len(), 3);
        assert_eq!(d.stale_offsets, 0);
    }

    #[test]
    fn stale_footprint_offsets_counted() {
        let mut p = Predecoder::new(IsaMode::Variable);
        let mut bf = BranchFootprint::new();
        bf.push(12); // branch
        bf.push(16); // slot 4: not a branch
        bf.push(13); // not an instruction boundary
        let d = p.decode(&Toy, 1, Some(&bf));
        assert_eq!(d.branches.len(), 1);
        assert_eq!(d.stale_offsets, 2);
    }

    #[test]
    fn decode_at_hits_branch_offset() {
        let mut p = Predecoder::new(IsaMode::Fixed4);
        let e = p.decode_at(&Toy, 1, 12).unwrap();
        assert_eq!(e.class, BranchClass::Conditional);
        assert_eq!(e.target, 0x400);
        // Non-branch offset decodes to None.
        assert!(p.decode_at(&Toy, 1, 16).is_none());
        // Offset that is not an instruction boundary.
        assert!(p.decode_at(&Toy, 1, 13).is_none());
    }
}
