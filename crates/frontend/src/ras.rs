//! Return address stack (RAS).

use dcfb_trace::Addr;

/// A bounded return-address stack with wrap-around overwrite on
/// overflow (the usual hardware behaviour).
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    entries: Vec<Addr>,
    capacity: usize,
    overflows: u64,
    underflows: u64,
}

impl ReturnAddressStack {
    /// Creates a RAS with room for `capacity` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be non-zero");
        ReturnAddressStack {
            entries: Vec::with_capacity(capacity),
            capacity,
            overflows: 0,
            underflows: 0,
        }
    }

    /// Pushes a return address; on overflow the *oldest* entry is
    /// dropped.
    pub fn push(&mut self, addr: Addr) {
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
            self.overflows += 1;
        }
        self.entries.push(addr);
    }

    /// Pops the predicted return target; `None` on an empty stack
    /// (counted as an underflow).
    pub fn pop(&mut self) -> Option<Addr> {
        let v = self.entries.pop();
        if v.is_none() {
            self.underflows += 1;
        }
        v
    }

    /// Peeks the top without popping.
    pub fn peek(&self) -> Option<Addr> {
        self.entries.last().copied()
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// `(overflows, underflows)` counters.
    pub fn pressure(&self) -> (u64, u64) {
        (self.overflows, self.underflows)
    }

    /// Clears the stack (pipeline squash on deep misprediction).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo() {
        let mut r = ReturnAddressStack::new(4);
        r.push(1);
        r.push(2);
        assert_eq!(r.peek(), Some(2));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), None);
        assert_eq!(r.pressure(), (0, 1));
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
        assert_eq!(r.pressure().0, 1);
    }

    #[test]
    fn clear_empties() {
        let mut r = ReturnAddressStack::new(4);
        r.push(9);
        r.clear();
        assert_eq!(r.depth(), 0);
        assert_eq!(r.peek(), None);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = ReturnAddressStack::new(0);
    }
}
