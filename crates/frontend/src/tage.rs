//! A TAGE conditional-branch direction predictor (Table III cites
//! Seznec & Michaud's TAGE [25]).
//!
//! This is a faithful small-scale TAGE: a bimodal base predictor plus
//! `N` partially-tagged components indexed with geometrically growing
//! global-history lengths, provider/alternate selection, usefulness
//! counters with periodic aging, and allocation on mispredictions.

use dcfb_trace::Addr;

/// TAGE geometry.
#[derive(Clone, Debug, PartialEq)]
pub struct TageConfig {
    /// Log2 of bimodal table entries.
    pub bimodal_bits: u32,
    /// Log2 of each tagged table's entries.
    pub tagged_bits: u32,
    /// Tag width in bits.
    pub tag_bits: u32,
    /// History length per tagged component (ascending).
    pub history_lengths: Vec<u32>,
    /// Aging period: every `age_period` allocations, usefulness
    /// counters are halved.
    pub age_period: u64,
}

impl Default for TageConfig {
    fn default() -> Self {
        TageConfig {
            bimodal_bits: 12,
            tagged_bits: 10,
            tag_bits: 9,
            history_lengths: vec![5, 15, 44, 130],
            age_period: 256 * 1024,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct TageEntry {
    tag: u16,
    ctr: i8, // 3-bit signed counter, -4..=3
    useful: u8,
}

/// Folded history register: compresses an arbitrary-length global
/// history into `out_bits` via circular XOR folding, updated
/// incrementally.
#[derive(Clone, Debug)]
struct Folded {
    value: u32,
    out_bits: u32,
    hist_len: u32,
}

impl Folded {
    fn new(hist_len: u32, out_bits: u32) -> Self {
        Folded {
            value: 0,
            out_bits,
            hist_len,
        }
    }

    fn update(&mut self, new_bit: bool, dropped_bit: bool) {
        // Shift in the new bit at position 0.
        self.value = (self.value << 1) | u32::from(new_bit);
        // XOR out the bit leaving the history window.
        self.value ^= u32::from(dropped_bit) << (self.hist_len % self.out_bits);
        // Re-fold the carry-out.
        let carry = (self.value >> self.out_bits) & 1;
        self.value ^= carry;
        self.value &= (1 << self.out_bits) - 1;
    }
}

/// The TAGE predictor.
///
/// # Examples
///
/// ```
/// use dcfb_frontend::Tage;
///
/// let mut tage = Tage::default_sized();
/// for _ in 0..64 {
///     tage.update(0x4000, true); // strongly biased taken
/// }
/// assert!(tage.predict(0x4000));
/// assert!(tage.accuracy() > 0.9);
/// ```
#[derive(Clone, Debug)]
pub struct Tage {
    cfg: TageConfig,
    bimodal: Vec<i8>,
    tables: Vec<Vec<TageEntry>>,
    idx_fold: Vec<Folded>,
    tag_fold_a: Vec<Folded>,
    tag_fold_b: Vec<Folded>,
    ghr: Vec<bool>, // most recent at the back
    allocs: u64,
    predictions: u64,
    correct: u64,
}

/// Internal per-prediction bookkeeping returned to the updater.
#[derive(Clone, Copy, Debug)]
struct Lookup {
    provider: Option<usize>,
    provider_idx: usize,
    provider_pred: bool,
    alt_pred: bool,
}

impl Tage {
    /// Creates a TAGE predictor with the given configuration.
    pub fn new(cfg: TageConfig) -> Self {
        let n = cfg.history_lengths.len();
        let tagged = 1usize << cfg.tagged_bits;
        let max_hist = *cfg.history_lengths.last().unwrap_or(&1) as usize;
        Tage {
            bimodal: vec![0; 1 << cfg.bimodal_bits],
            tables: vec![vec![TageEntry::default(); tagged]; n],
            idx_fold: cfg
                .history_lengths
                .iter()
                .map(|&h| Folded::new(h, cfg.tagged_bits))
                .collect(),
            tag_fold_a: cfg
                .history_lengths
                .iter()
                .map(|&h| Folded::new(h, cfg.tag_bits))
                .collect(),
            tag_fold_b: cfg
                .history_lengths
                .iter()
                .map(|&h| Folded::new(h, cfg.tag_bits.saturating_sub(1).max(1)))
                .collect(),
            ghr: vec![false; max_hist + 1],
            cfg,
            allocs: 0,
            predictions: 0,
            correct: 0,
        }
    }

    /// Creates the default-sized predictor.
    pub fn default_sized() -> Self {
        Tage::new(TageConfig::default())
    }

    /// `(predictions, correct)` counters.
    pub fn accuracy_counters(&self) -> (u64, u64) {
        (self.predictions, self.correct)
    }

    /// Prediction accuracy so far, in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }

    fn bimodal_index(&self, pc: Addr) -> usize {
        ((pc >> 2) as usize) & ((1 << self.cfg.bimodal_bits) - 1)
    }

    fn table_index(&self, pc: Addr, t: usize) -> usize {
        let mask = (1usize << self.cfg.tagged_bits) - 1;
        let pc_bits = (pc >> 2) as u32;
        ((pc_bits ^ (pc_bits >> self.cfg.tagged_bits) ^ self.idx_fold[t].value) as usize) & mask
    }

    fn table_tag(&self, pc: Addr, t: usize) -> u16 {
        let mask = (1u32 << self.cfg.tag_bits) - 1;
        let pc_bits = (pc >> 2) as u32;
        ((pc_bits ^ self.tag_fold_a[t].value ^ (self.tag_fold_b[t].value << 1)) & mask) as u16
    }

    fn lookup(&self, pc: Addr) -> Lookup {
        let mut provider = None;
        let mut provider_idx = 0;
        let mut provider_pred = false;
        let mut alt_pred = self.bimodal[self.bimodal_index(pc)] >= 0;
        // Scan from the longest history down; first match is provider,
        // second is alternate.
        for t in (0..self.tables.len()).rev() {
            let idx = self.table_index(pc, t);
            let e = &self.tables[t][idx];
            if e.tag == self.table_tag(pc, t) && e.useful != u8::MAX {
                if provider.is_none() {
                    provider = Some(t);
                    provider_idx = idx;
                    provider_pred = e.ctr >= 0;
                } else {
                    alt_pred = e.ctr >= 0;
                    break;
                }
            }
        }
        Lookup {
            provider,
            provider_idx,
            provider_pred,
            alt_pred,
        }
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: Addr) -> bool {
        let l = self.lookup(pc);
        match l.provider {
            Some(_) => l.provider_pred,
            None => l.alt_pred,
        }
    }

    /// Updates the predictor with the resolved direction and advances
    /// the global history. Call once per retired conditional branch.
    pub fn update(&mut self, pc: Addr, taken: bool) {
        let l = self.lookup(pc);
        let pred = match l.provider {
            Some(_) => l.provider_pred,
            None => l.alt_pred,
        };
        self.predictions += 1;
        if pred == taken {
            self.correct += 1;
        }

        match l.provider {
            Some(t) => {
                let e = &mut self.tables[t][l.provider_idx];
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                if l.provider_pred != l.alt_pred {
                    if l.provider_pred == taken {
                        e.useful = e.useful.saturating_add(1).min(3);
                    } else {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
                // Allocate on misprediction in a longer table.
                if pred != taken && t + 1 < self.tables.len() {
                    self.allocate(pc, taken, t + 1);
                }
            }
            None => {
                let idx = self.bimodal_index(pc);
                let c = &mut self.bimodal[idx];
                *c = (*c + if taken { 1 } else { -1 }).clamp(-2, 1);
                if pred != taken && !self.tables.is_empty() {
                    self.allocate(pc, taken, 0);
                }
            }
        }
        self.push_history(taken);
    }

    fn allocate(&mut self, pc: Addr, taken: bool, from: usize) {
        self.allocs += 1;
        if self.allocs % self.cfg.age_period == 0 {
            for table in &mut self.tables {
                for e in table.iter_mut() {
                    e.useful >>= 1;
                }
            }
        }
        // Find a not-useful entry in tables [from..], preferring shorter
        // histories.
        for t in from..self.tables.len() {
            let idx = self.table_index(pc, t);
            let tag = self.table_tag(pc, t);
            let e = &mut self.tables[t][idx];
            if e.useful == 0 {
                e.tag = tag;
                e.ctr = if taken { 0 } else { -1 };
                e.useful = 0;
                return;
            }
        }
        // All candidates useful: decay them so a future allocation
        // succeeds.
        for t in from..self.tables.len() {
            let idx = self.table_index(pc, t);
            self.tables[t][idx].useful -= 1;
        }
    }

    fn push_history(&mut self, taken: bool) {
        // ghr: index 0 = oldest within window, back = newest.
        self.ghr.rotate_left(1);
        let len = self.ghr.len();
        self.ghr[len - 1] = taken;
        for t in 0..self.idx_fold.len() {
            let h = self.cfg.history_lengths[t] as usize;
            let dropped = self.ghr[len - 1 - h];
            self.idx_fold[t].update(taken, dropped);
            self.tag_fold_a[t].update(taken, dropped);
            self.tag_fold_b[t].update(taken, dropped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately tiny geometry: 4-bit partial tags make aliasing
    /// easy to construct deterministically.
    fn tiny_cfg() -> TageConfig {
        TageConfig {
            bimodal_bits: 12,
            tagged_bits: 4,
            tag_bits: 4,
            history_lengths: vec![5],
            age_period: 1 << 30,
        }
    }

    #[test]
    fn partial_tags_alias_distant_pcs() {
        let mut t = Tage::new(tiny_cfg());
        // pc_bits 0x011 and 0x211 agree in the low 4 tag bits and fold
        // to the same table index, yet are distinct branches. With an
        // all-false history the folded registers stay zero, so both
        // stay colliding throughout the test.
        let (pc_a, pc_b) = (0x011u64 << 2, 0x211u64 << 2);
        assert_ne!(pc_a, pc_b);
        assert_eq!(t.table_tag(pc_a, 0), t.table_tag(pc_b, 0));
        assert_eq!(t.table_index(pc_a, 0), t.table_index(pc_b, 0));
        // Train A not-taken: the first misprediction allocates a tagged
        // entry under the shared partial tag.
        for _ in 0..8 {
            t.update(pc_a, false);
        }
        assert!(!t.predict(pc_a));
        // B has never been seen, but the 4-bit tag cannot tell it from
        // A: the aliased provider overrides B's (taken) bimodal default.
        assert!(!t.predict(pc_b), "partial-tag alias must capture pc_b");
        // A pc with a different tag nibble is unaffected.
        let pc_c = 0x012u64 << 2;
        assert_ne!(t.table_tag(pc_a, 0), t.table_tag(pc_c, 0));
        assert!(t.predict(pc_c));
    }

    #[test]
    fn allocation_prefers_not_useful_entries() {
        let mut t = Tage::new(tiny_cfg());
        let pc = 0x011u64 << 2;
        let idx = t.table_index(pc, 0);
        let tag = t.table_tag(pc, 0);
        // The only candidate slot is held by a maximally useful entry
        // belonging to some other branch.
        t.tables[0][idx] = TageEntry {
            tag: 0xf,
            ctr: 3,
            useful: 3,
        };
        t.update(pc, false); // mispredict: no victim available
        assert_eq!(t.tables[0][idx].tag, 0xf, "useful entry survives");
        assert_eq!(t.tables[0][idx].useful, 2, "and is decayed instead");
        // Once the usefulness drains, the next mispredict claims it.
        t.tables[0][idx].useful = 0;
        t.update(pc, true); // bimodal now says not-taken: mispredict
        assert_eq!(t.tables[0][idx].tag, tag);
        assert_eq!(t.tables[0][idx].ctr, 0, "fresh entry starts weak");
    }

    #[test]
    fn useful_counters_age_with_allocations() {
        let mut t = Tage::new(TageConfig {
            age_period: 2,
            ..tiny_cfg()
        });
        t.tables[0][7].useful = 3; // an unrelated mature entry
        t.update(0x011u64 << 2, false); // allocation #1: no aging yet
        assert_eq!(t.tables[0][7].useful, 3);
        t.update(0x012u64 << 2, false); // allocation #2 crosses period
        assert_eq!(t.tables[0][7].useful, 1, "aging halves usefulness");
    }

    #[test]
    fn learns_a_biased_branch() {
        let mut t = Tage::default_sized();
        for _ in 0..200 {
            t.update(0x1000, true);
        }
        assert!(t.predict(0x1000));
        assert!(t.accuracy() > 0.9);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut t = Tage::default_sized();
        // Strict alternation: bimodal alone cannot learn this; tagged
        // history components must.
        let mut correct_tail = 0;
        for i in 0..4000u32 {
            let taken = i % 2 == 0;
            if i >= 3000 && t.predict(0x2000) == taken {
                correct_tail += 1;
            }
            t.update(0x2000, taken);
        }
        assert!(
            correct_tail > 900,
            "alternation accuracy {correct_tail}/1000"
        );
    }

    #[test]
    fn learns_period_four_pattern() {
        let mut t = Tage::default_sized();
        let pattern = [true, true, false, true];
        let mut correct_tail = 0;
        for i in 0..8000usize {
            let taken = pattern[i % 4];
            if i >= 7000 && t.predict(0x3000) == taken {
                correct_tail += 1;
            }
            t.update(0x3000, taken);
        }
        assert!(correct_tail > 900, "period-4 accuracy {correct_tail}/1000");
    }

    #[test]
    fn distinguishes_many_branches() {
        let mut t = Tage::default_sized();
        // 64 branches with fixed alternating biases.
        for round in 0..100 {
            for b in 0..64u64 {
                let taken = b % 2 == 0;
                let _ = round;
                t.update(0x4000 + b * 4, taken);
            }
        }
        // Tagged-table aliasing can cost a couple of branches; a real
        // TAGE tolerates the same. Require near-perfect separation.
        let correct = (0..64u64)
            .filter(|&b| t.predict(0x4000 + b * 4) == (b % 2 == 0))
            .count();
        assert!(correct >= 58, "only {correct}/64 branches separated");
    }

    #[test]
    fn random_noise_accuracy_is_mediocre() {
        // A deterministic "pseudo-random" direction stream: accuracy must
        // stay well below the biased case (sanity check against
        // over-fitting bugs like always-predict-taken).
        let mut t = Tage::default_sized();
        let mut x = 0x12345678u64;
        let mut correct = 0;
        let n = 20_000;
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 62) & 1 == 1;
            if t.predict(0x5000) == taken {
                correct += 1;
            }
            t.update(0x5000, taken);
        }
        let acc = correct as f64 / n as f64;
        assert!(acc < 0.65, "noise accuracy suspiciously high: {acc}");
    }

    #[test]
    fn accuracy_counters_track() {
        let mut t = Tage::default_sized();
        assert_eq!(t.accuracy(), 0.0);
        t.update(0x100, true);
        let (preds, _) = t.accuracy_counters();
        assert_eq!(preds, 1);
    }

    #[test]
    fn biased_branches_converge_quickly() {
        let mut t = Tage::default_sized();
        // 95/5 bias, like the workload generator's cold-path skips.
        let mut correct = 0;
        let mut total = 0;
        let mut x = 7u64;
        for i in 0..10_000u32 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let taken = (x % 100) < 95;
            if i > 1000 {
                total += 1;
                if t.predict(0x6000) == taken {
                    correct += 1;
                }
            }
            t.update(0x6000, taken);
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.85, "biased accuracy {acc}");
    }
}
