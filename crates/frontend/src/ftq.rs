//! The fetch target queue (FTQ).
//!
//! "FTQ is a long queue of basic-blocks, which is used to fill the gap
//! between the branch prediction unit and the instruction cache"
//! (paper, footnote 1). BTB-directed prefetchers (Boomerang, Shotgun)
//! run the branch-prediction unit ahead of fetch and scan FTQ entries to
//! discover prefetch candidates; when a BTB miss stalls FTQ filling and
//! the fetch engine drains the queue, the core stalls on an *empty FTQ*
//! (Table I).

use dcfb_trace::Addr;

/// One FTQ entry: a fetch region `[start, end]` (addresses of the first
/// and last instruction to fetch) plus the address execution continues
/// at afterwards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FtqEntry {
    /// First instruction of the region.
    pub start: Addr,
    /// Last instruction of the region (inclusive).
    pub end: Addr,
    /// Where the instruction stream continues after `end` (branch
    /// target or fall-through).
    pub next: Addr,
}

impl FtqEntry {
    /// The cache blocks this region touches, in order.
    pub fn blocks(&self) -> impl Iterator<Item = u64> {
        let first = dcfb_trace::block_of(self.start);
        let last = dcfb_trace::block_of(self.end);
        first..=last
    }
}

/// A bounded FIFO of fetch regions, with occupancy statistics.
///
/// Backed by a fixed ring arena allocated once at construction, so
/// pushes, pops, and redirect-clears never touch the heap — the FTQ
/// sits on the simulator's per-cycle hot path.
#[derive(Clone, Debug)]
pub struct Ftq {
    arena: Box<[FtqEntry]>,
    head: usize,
    len: usize,
    pushes: u64,
    pops: u64,
    empty_polls: u64,
}

impl Ftq {
    /// Creates an FTQ with room for `capacity` regions (the paper's
    /// Shotgun configuration uses 32).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FTQ capacity must be non-zero");
        let vacant = FtqEntry {
            start: 0,
            end: 0,
            next: 0,
        };
        Ftq {
            arena: vec![vacant; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
            pushes: 0,
            pops: 0,
            empty_polls: 0,
        }
    }

    fn slot(&self, i: usize) -> usize {
        (self.head + i) % self.arena.len()
    }

    /// Whether another region fits.
    pub fn is_full(&self) -> bool {
        self.len == self.arena.len()
    }

    /// Whether the queue holds no regions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.arena.len()
    }

    /// Pushes a region; returns `false` (dropping it) when full.
    pub fn push(&mut self, entry: FtqEntry) -> bool {
        if self.is_full() {
            return false;
        }
        let tail = self.slot(self.len);
        self.arena[tail] = entry;
        self.len += 1;
        self.pushes += 1;
        true
    }

    /// Pops the oldest region; `None` (counted as an empty poll) when
    /// the queue is dry.
    pub fn pop(&mut self) -> Option<FtqEntry> {
        if self.len == 0 {
            self.empty_polls += 1;
            return None;
        }
        let e = self.arena[self.head];
        self.head = self.slot(1);
        self.len -= 1;
        self.pops += 1;
        Some(e)
    }

    /// Iterates the queued regions oldest-first (used by BTB-directed
    /// prefetchers to scan ahead of fetch).
    pub fn iter(&self) -> impl Iterator<Item = &FtqEntry> {
        (0..self.len).map(|i| &self.arena[self.slot(i)])
    }

    /// Clears all regions (pipeline redirect). The arena stays
    /// allocated; only the cursors reset.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    /// `(pushes, pops, empty_polls)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.pushes, self.pops, self.empty_polls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(start: Addr, end: Addr) -> FtqEntry {
        FtqEntry {
            start,
            end,
            next: end + 4,
        }
    }

    #[test]
    fn fifo_order() {
        let mut f = Ftq::new(4);
        f.push(region(0x100, 0x10c));
        f.push(region(0x200, 0x204));
        assert_eq!(f.pop().unwrap().start, 0x100);
        assert_eq!(f.pop().unwrap().start, 0x200);
        assert!(f.pop().is_none());
        assert_eq!(f.counters(), (2, 2, 1));
    }

    #[test]
    fn full_queue_rejects() {
        let mut f = Ftq::new(2);
        assert!(f.push(region(0, 4)));
        assert!(f.push(region(8, 12)));
        assert!(!f.push(region(16, 20)));
        assert!(f.is_full());
    }

    #[test]
    fn entry_blocks_span() {
        // Region crossing a block boundary: 0x3c..0x44 covers blocks 0,1.
        let e = region(0x3c, 0x44);
        let blocks: Vec<u64> = e.blocks().collect();
        assert_eq!(blocks, vec![0, 1]);
        // Single-block region.
        let e2 = region(0x00, 0x3c);
        assert_eq!(e2.blocks().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn iter_scans_without_consuming() {
        let mut f = Ftq::new(4);
        f.push(region(0x100, 0x104));
        f.push(region(0x200, 0x204));
        let starts: Vec<Addr> = f.iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![0x100, 0x200]);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn clear_on_redirect() {
        let mut f = Ftq::new(4);
        f.push(region(0, 4));
        f.clear();
        assert!(f.is_empty());
    }

    #[test]
    fn ring_wraps_without_reordering() {
        let mut f = Ftq::new(3);
        // Push/pop enough to wrap the ring several times over.
        for round in 0u64..10 {
            assert!(f.push(region(round * 0x100, round * 0x100 + 4)));
            if round >= 2 {
                assert_eq!(f.pop().unwrap().start, (round - 2) * 0x100);
            }
        }
        let starts: Vec<Addr> = f.iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![8 * 0x100, 9 * 0x100]);
        assert_eq!(f.len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = Ftq::new(0);
    }
}
