//! A conventional PC-indexed, set-associative branch target buffer.
//!
//! The paper's BTB prefetcher is deliberately "independent of the BTB
//! type" (§V-C): it works against exactly this structure, with no
//! basic-block reorganization. Table III gives the baseline size:
//! 2 K entries.

use dcfb_trace::{Addr, StaticKind};

/// The branch class stored with a BTB entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchClass {
    /// Conditional branch.
    Conditional,
    /// Direct unconditional jump.
    Jump,
    /// Direct call.
    Call,
    /// Indirect jump.
    IndirectJump,
    /// Indirect call.
    IndirectCall,
    /// Return.
    Return,
}

impl BranchClass {
    /// Maps a static (pre-decoded) branch kind to a BTB class.
    /// Returns `None` for non-branches.
    pub fn from_static(kind: StaticKind) -> Option<Self> {
        match kind {
            StaticKind::Other => None,
            StaticKind::CondBranch => Some(BranchClass::Conditional),
            StaticKind::Jump => Some(BranchClass::Jump),
            StaticKind::Call => Some(BranchClass::Call),
            StaticKind::IndirectJump => Some(BranchClass::IndirectJump),
            StaticKind::IndirectCall => Some(BranchClass::IndirectCall),
            StaticKind::Return => Some(BranchClass::Return),
        }
    }

    /// Whether this class is unconditional.
    pub fn is_unconditional(self) -> bool {
        !matches!(self, BranchClass::Conditional)
    }

    /// Whether this class pushes a return address.
    pub fn is_call(self) -> bool {
        matches!(self, BranchClass::Call | BranchClass::IndirectCall)
    }
}

/// One BTB entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BtbEntry {
    /// The branch instruction's address.
    pub pc: Addr,
    /// Predicted target (last seen for indirects).
    pub target: Addr,
    /// Branch class.
    pub class: BranchClass,
}

/// BTB geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BtbConfig {
    /// Total entries; must be `ways * power_of_two`.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl BtbConfig {
    /// The paper's baseline: 2 K entries (Table III), 4-way.
    pub fn baseline_2k() -> Self {
        BtbConfig {
            entries: 2048,
            ways: 4,
        }
    }

    /// The 16 K-entry BTB used to model Confluence's upper bound
    /// (§VI-D1).
    pub fn confluence_16k() -> Self {
        BtbConfig {
            entries: 16 * 1024,
            ways: 4,
        }
    }

    fn sets(&self) -> usize {
        self.entries / self.ways
    }
}

/// Hit/miss statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BtbStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that found the branch.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
}

impl BtbStats {
    /// Miss ratio over all lookups.
    pub fn miss_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups as f64
        }
    }

    /// Accumulates another window's counters into this one (shard
    /// stitching).
    pub fn absorb(&mut self, other: &BtbStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.misses += other.misses;
        self.inserts += other.inserts;
    }
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    valid: bool,
    stamp: u64,
    target: Addr,
    class: BranchClass,
}

/// A set-associative, true-LRU BTB.
#[derive(Clone, Debug)]
pub struct Btb {
    cfg: BtbConfig,
    ways: Vec<Way>,
    clock: u64,
    stats: BtbStats,
}

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (sets not a power of two).
    pub fn new(cfg: BtbConfig) -> Self {
        assert!(cfg.ways > 0 && cfg.entries % cfg.ways == 0, "bad BTB shape");
        assert!(cfg.sets().is_power_of_two(), "BTB sets not a power of two");
        Btb {
            cfg,
            ways: vec![
                Way {
                    tag: 0,
                    valid: false,
                    stamp: 0,
                    target: 0,
                    class: BranchClass::Jump,
                };
                cfg.entries
            ],
            clock: 0,
            stats: BtbStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> BtbConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BtbStats {
        self.stats
    }

    /// Resets statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = BtbStats::default();
    }

    #[inline]
    fn index(&self, pc: Addr) -> (usize, u64) {
        let sets = self.cfg.sets();
        let idx = ((pc >> 2) as usize) & (sets - 1);
        let tag = pc >> (2 + sets.trailing_zeros());
        (idx, tag)
    }

    /// Looks up `pc`, updating LRU and statistics.
    pub fn lookup(&mut self, pc: Addr) -> Option<BtbEntry> {
        self.clock += 1;
        self.stats.lookups += 1;
        let (set, tag) = self.index(pc);
        let base = set * self.cfg.ways;
        for i in base..base + self.cfg.ways {
            if self.ways[i].valid && self.ways[i].tag == tag {
                self.ways[i].stamp = self.clock;
                self.stats.hits += 1;
                return Some(BtbEntry {
                    pc,
                    target: self.ways[i].target,
                    class: self.ways[i].class,
                });
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Checks residency without LRU update or statistics.
    pub fn contains(&self, pc: Addr) -> bool {
        let (set, tag) = self.index(pc);
        let base = set * self.cfg.ways;
        (base..base + self.cfg.ways).any(|i| self.ways[i].valid && self.ways[i].tag == tag)
    }

    /// Inserts or updates the entry for `entry.pc`.
    pub fn insert(&mut self, entry: BtbEntry) {
        self.clock += 1;
        self.stats.inserts += 1;
        let (set, tag) = self.index(entry.pc);
        let base = set * self.cfg.ways;
        // Update in place if present.
        for i in base..base + self.cfg.ways {
            if self.ways[i].valid && self.ways[i].tag == tag {
                self.ways[i].target = entry.target;
                self.ways[i].class = entry.class;
                self.ways[i].stamp = self.clock;
                return;
            }
        }
        let victim = (base..base + self.cfg.ways)
            .find(|&i| !self.ways[i].valid)
            .unwrap_or_else(|| {
                (base..base + self.cfg.ways)
                    .min_by_key(|&i| self.ways[i].stamp)
                    .expect("non-empty set")
            });
        self.ways[victim] = Way {
            tag,
            valid: true,
            stamp: self.clock,
            target: entry.target,
            class: entry.class,
        };
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pc: Addr, target: Addr) -> BtbEntry {
        BtbEntry {
            pc,
            target,
            class: BranchClass::Conditional,
        }
    }

    fn small() -> Btb {
        Btb::new(BtbConfig {
            entries: 8,
            ways: 2,
        }) // 4 sets
    }

    #[test]
    fn miss_insert_hit() {
        let mut b = small();
        assert!(b.lookup(0x1000).is_none());
        b.insert(entry(0x1000, 0x2000));
        let e = b.lookup(0x1000).unwrap();
        assert_eq!(e.target, 0x2000);
        assert_eq!(b.stats().hits, 1);
        assert_eq!(b.stats().misses, 1);
    }

    #[test]
    fn update_in_place_changes_target() {
        let mut b = small();
        b.insert(entry(0x1000, 0x2000));
        b.insert(entry(0x1000, 0x3000));
        assert_eq!(b.occupancy(), 1);
        assert_eq!(b.lookup(0x1000).unwrap().target, 0x3000);
    }

    #[test]
    fn lru_within_set() {
        let mut b = small();
        // Same set: pcs differing in bits above the index. Set index uses
        // pc >> 2 over 4 sets, so a stride of 64 keeps the set.
        b.insert(entry(0x0, 0x1));
        b.insert(entry(0x40, 0x2));
        b.lookup(0x0); // make 0x40 LRU
        b.insert(entry(0x80, 0x3));
        assert!(b.contains(0x0));
        assert!(!b.contains(0x40));
        assert!(b.contains(0x80));
    }

    #[test]
    fn invalid_ways_fill_before_eviction() {
        // One set, 4 ways: the first `ways` inserts must claim invalid
        // ways without evicting anything.
        let mut b = Btb::new(BtbConfig {
            entries: 4,
            ways: 4,
        });
        for i in 0..4u64 {
            b.insert(entry(i * 4, 0x100 + i));
            assert_eq!(b.occupancy(), i as usize + 1);
        }
        // The fifth insert evicts exactly the LRU (the oldest insert).
        b.insert(entry(0x100, 0x999));
        assert_eq!(b.occupancy(), 4);
        assert!(!b.contains(0x0));
        for i in 1..4u64 {
            assert!(b.contains(i * 4), "entry {i} must survive");
        }
        assert!(b.contains(0x100));
    }

    #[test]
    fn refresh_on_insert_protects_from_eviction() {
        let mut b = small(); // 4 sets, 2 ways
        b.insert(entry(0x0, 0x1));
        b.insert(entry(0x40, 0x2));
        // Update-in-place refreshes 0x0's stamp, making 0x40 the LRU.
        b.insert(entry(0x0, 0x9));
        b.insert(entry(0x80, 0x3));
        assert!(b.contains(0x0));
        assert!(!b.contains(0x40));
        assert_eq!(b.lookup(0x0).unwrap().target, 0x9);
    }

    #[test]
    fn full_tags_prevent_same_set_aliasing() {
        // The conventional BTB stores full tags: pcs that collide on the
        // set index must miss, never return another branch's target.
        let mut b = small(); // 4 sets: 0x0, 0x40, 0x80 share set 0
        b.insert(entry(0x40, 0x2));
        assert!(b.lookup(0x0).is_none());
        assert!(b.lookup(0x80).is_none());
        assert_eq!(b.lookup(0x40).unwrap().target, 0x2);
    }

    #[test]
    fn class_round_trips() {
        let mut b = small();
        b.insert(BtbEntry {
            pc: 0x10,
            target: 0x99,
            class: BranchClass::Return,
        });
        assert_eq!(b.lookup(0x10).unwrap().class, BranchClass::Return);
    }

    #[test]
    fn from_static_mapping() {
        assert_eq!(
            BranchClass::from_static(StaticKind::CondBranch),
            Some(BranchClass::Conditional)
        );
        assert_eq!(BranchClass::from_static(StaticKind::Other), None);
        assert!(BranchClass::from_static(StaticKind::Call)
            .unwrap()
            .is_call());
        assert!(BranchClass::from_static(StaticKind::Return)
            .unwrap()
            .is_unconditional());
        assert!(!BranchClass::Conditional.is_unconditional());
    }

    #[test]
    fn miss_ratio() {
        let mut b = small();
        b.lookup(0x4);
        b.insert(entry(0x4, 0x8));
        b.lookup(0x4);
        assert!((b.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paper_configs() {
        assert_eq!(BtbConfig::baseline_2k().entries, 2048);
        assert_eq!(BtbConfig::confluence_16k().entries, 16384);
        let b = Btb::new(BtbConfig::baseline_2k());
        assert_eq!(b.occupancy(), 0);
    }

    #[test]
    fn distinct_pcs_in_same_block_coexist() {
        let mut b = Btb::new(BtbConfig {
            entries: 64,
            ways: 4,
        });
        for i in 0..8u64 {
            b.insert(entry(0x1000 + i * 4, 0x2000 + i));
        }
        for i in 0..8u64 {
            assert_eq!(b.lookup(0x1000 + i * 4).unwrap().target, 0x2000 + i);
        }
    }
}
