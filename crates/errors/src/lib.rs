//! # dcfb-errors
//!
//! The typed error hierarchy shared by every crate in the workspace,
//! plus the process exit-code policy for the `dcfb` CLI.
//!
//! Design rules (see DESIGN.md, "Trace format v2 & failure handling"):
//!
//! * Libraries never call `panic!`/`unwrap` on fallible input paths —
//!   they return [`DcfbError`]. The trace and CLI crates enforce this
//!   with `clippy::unwrap_used`-family deny lints.
//! * Every error formats as a one-line human-readable diagnostic; the
//!   CLI prints `error: {e}` and exits with [`DcfbError::exit_code`],
//!   never a backtrace.
//! * Exit codes: `2` usage errors, `3` bad input (malformed trace,
//!   unknown workload/method, invalid configuration), `4` run failures
//!   (a simulation panicked or produced an unusable result), `5` I/O
//!   on the host filesystem, `6` a supervised job overran its deadline
//!   and was cancelled, `7` a job was quarantined after exhausting its
//!   retry budget, `8` a `dcfb serve` / SDK wire-protocol violation
//!   (malformed HTTP framing or JSON, unexpected status, rejected
//!   request).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Exit code for usage errors (bad flags, missing arguments).
pub const EXIT_USAGE: i32 = 2;
/// Exit code for bad input: corrupt/truncated traces, unknown
/// workloads/methods, invalid configuration.
pub const EXIT_BAD_INPUT: i32 = 3;
/// Exit code for run failures (a simulation died or diverged).
pub const EXIT_RUN_FAILURE: i32 = 4;
/// Exit code for host I/O failures (cannot read/write files).
pub const EXIT_IO: i32 = 5;
/// Exit code for a supervised job cancelled at its deadline.
pub const EXIT_TIMEOUT: i32 = 6;
/// Exit code for a job quarantined after exhausting its retry budget.
pub const EXIT_QUARANTINED: i32 = 7;
/// Exit code for a `dcfb serve` / SDK wire-protocol violation.
pub const EXIT_PROTOCOL: i32 = 8;

/// Where in a trace byte stream a problem was found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceLocation {
    /// Byte offset into the stream, when known.
    pub byte_offset: Option<u64>,
    /// Record index into the stream, when known.
    pub record: Option<u64>,
    /// Chunk index (format v2), when known.
    pub chunk: Option<u64>,
}

impl TraceLocation {
    /// An unknown location.
    pub const UNKNOWN: TraceLocation = TraceLocation {
        byte_offset: None,
        record: None,
        chunk: None,
    };

    /// A location known only by byte offset.
    pub fn at_byte(byte_offset: u64) -> Self {
        TraceLocation {
            byte_offset: Some(byte_offset),
            record: None,
            chunk: None,
        }
    }

    /// A location known by chunk index and byte offset.
    pub fn in_chunk(chunk: u64, byte_offset: u64) -> Self {
        TraceLocation {
            byte_offset: Some(byte_offset),
            record: None,
            chunk: Some(chunk),
        }
    }
}

impl fmt::Display for TraceLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        if let Some(c) = self.chunk {
            write!(f, "chunk {c}")?;
            wrote = true;
        }
        if let Some(r) = self.record {
            if wrote {
                write!(f, ", ")?;
            }
            write!(f, "record {r}")?;
            wrote = true;
        }
        if let Some(b) = self.byte_offset {
            if wrote {
                write!(f, ", ")?;
            }
            write!(f, "byte {b}")?;
            wrote = true;
        }
        if !wrote {
            write!(f, "unknown offset")?;
        }
        Ok(())
    }
}

/// Why a trace stream was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceErrorKind {
    /// The stream does not start with a known magic header.
    BadMagic,
    /// The header declares an unsupported format version.
    BadVersion(u8),
    /// A header field is malformed (bad ISA code, header CRC, …).
    BadHeader(String),
    /// The stream ends mid-header, mid-chunk, or mid-record.
    Truncated,
    /// A chunk checksum does not match its payload.
    ChecksumMismatch {
        /// CRC32 stored in the chunk footer.
        stored: u32,
        /// CRC32 computed over the received payload.
        computed: u32,
    },
    /// A record carries an unknown instruction-kind code.
    BadKindCode(u8),
    /// A record carries a zero instruction size.
    ZeroSize,
    /// The stream holds fewer records than the header declares.
    RecordCountMismatch {
        /// Record count declared in the header.
        declared: u64,
        /// Records actually decoded.
        actual: u64,
    },
    /// A malformed record in an imported (foreign-format) trace.
    BadRecord(String),
    /// Malformed text-format line.
    BadTextLine {
        /// 1-based line number.
        line: u64,
        /// What was wrong with it.
        message: String,
    },
    /// The underlying reader failed.
    Io(String),
}

impl fmt::Display for TraceErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceErrorKind::BadMagic => write!(f, "not a DCFB trace (bad magic)"),
            TraceErrorKind::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceErrorKind::BadHeader(m) => write!(f, "bad trace header: {m}"),
            TraceErrorKind::Truncated => write!(f, "truncated trace"),
            TraceErrorKind::ChecksumMismatch { stored, computed } => write!(
                f,
                "chunk checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            TraceErrorKind::BadKindCode(c) => write!(f, "bad instruction kind code {c}"),
            TraceErrorKind::ZeroSize => write!(f, "zero instruction size"),
            TraceErrorKind::RecordCountMismatch { declared, actual } => write!(
                f,
                "record count mismatch (header declares {declared}, decoded {actual})"
            ),
            TraceErrorKind::BadRecord(m) => write!(f, "bad record: {m}"),
            TraceErrorKind::BadTextLine { line, message } => {
                write!(f, "line {line}: {message}")
            }
            TraceErrorKind::Io(m) => write!(f, "read failed: {m}"),
        }
    }
}

/// The workspace-wide error type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DcfbError {
    /// Command-line usage error (exit 2).
    Usage(String),
    /// Malformed or corrupt trace input (exit 3).
    Trace {
        /// What was wrong.
        kind: TraceErrorKind,
        /// Where it was found.
        location: TraceLocation,
    },
    /// Invalid simulation configuration (exit 3).
    Config(String),
    /// Unknown workload name (exit 3).
    UnknownWorkload {
        /// The requested name.
        name: String,
        /// The valid names, for the diagnostic.
        available: Vec<String>,
    },
    /// Unknown method name (exit 3).
    UnknownMethod {
        /// The requested name.
        name: String,
        /// The valid names, for the diagnostic.
        available: Vec<String>,
    },
    /// A simulation run failed — panicked, diverged, or produced an
    /// unusable report (exit 4).
    Run {
        /// Workload the run was on.
        workload: String,
        /// Method the run was testing.
        method: String,
        /// One-line failure description (panic payload or diagnosis).
        message: String,
    },
    /// Host filesystem I/O failure (exit 5).
    Io {
        /// Path being read or written.
        path: String,
        /// OS-level failure description.
        message: String,
    },
    /// A supervised job overran its deadline and was cooperatively
    /// cancelled mid-simulation (exit 6).
    Timeout {
        /// Workload the job was on.
        workload: String,
        /// Method the job was testing.
        method: String,
        /// The deadline that fired (e.g. `"instruction budget 5000"`
        /// or `"wall clock 30s"`).
        deadline: String,
    },
    /// A job failed every attempt its retry budget allowed and was
    /// quarantined — recorded by config digest and skipped on
    /// resubmission instead of re-crashing the pool (exit 7).
    Quarantined {
        /// Job id (`method/workload`).
        job: String,
        /// Digest of the job's resolved configuration.
        config_digest: String,
        /// How many attempts failed before quarantine.
        failures: u32,
        /// The last attempt's one-line failure description.
        last_error: String,
    },
    /// A `dcfb serve` / `dcfb-sdk` wire-protocol violation: malformed
    /// HTTP framing or JSON on either side, an unexpected response
    /// status, or a request the server rejected (unknown route, full
    /// queue, bad job spec) (exit 8).
    Protocol {
        /// One-line description of what was wrong on the wire.
        message: String,
    },
}

impl DcfbError {
    /// Builds a trace error at an unknown location.
    pub fn trace(kind: TraceErrorKind) -> Self {
        DcfbError::Trace {
            kind,
            location: TraceLocation::UNKNOWN,
        }
    }

    /// Builds a trace error at a known location.
    pub fn trace_at(kind: TraceErrorKind, location: TraceLocation) -> Self {
        DcfbError::Trace { kind, location }
    }

    /// Builds an I/O error for `path`.
    pub fn io(path: impl Into<String>, err: &std::io::Error) -> Self {
        DcfbError::Io {
            path: path.into(),
            message: err.to_string(),
        }
    }

    /// The process exit code the CLI maps this error to.
    pub fn exit_code(&self) -> i32 {
        match self {
            DcfbError::Usage(_) => EXIT_USAGE,
            DcfbError::Trace { .. }
            | DcfbError::Config(_)
            | DcfbError::UnknownWorkload { .. }
            | DcfbError::UnknownMethod { .. } => EXIT_BAD_INPUT,
            DcfbError::Run { .. } => EXIT_RUN_FAILURE,
            DcfbError::Io { .. } => EXIT_IO,
            DcfbError::Timeout { .. } => EXIT_TIMEOUT,
            DcfbError::Quarantined { .. } => EXIT_QUARANTINED,
            DcfbError::Protocol { .. } => EXIT_PROTOCOL,
        }
    }

    /// Builds a protocol error from any one-line message.
    pub fn protocol(message: impl Into<String>) -> Self {
        DcfbError::Protocol {
            message: message.into(),
        }
    }
}

impl fmt::Display for DcfbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcfbError::Usage(m) => write!(f, "{m}"),
            DcfbError::Trace { kind, location } => write!(f, "{kind} (at {location})"),
            DcfbError::Config(m) => write!(f, "invalid configuration: {m}"),
            DcfbError::UnknownWorkload { name, available } => {
                write!(f, "unknown workload {name:?}; available: {available:?}")
            }
            DcfbError::UnknownMethod { name, available } => {
                write!(f, "unknown method {name:?}; available: {available:?}")
            }
            DcfbError::Run {
                workload,
                method,
                message,
            } => write!(f, "run failed ({method} on {workload}): {message}"),
            DcfbError::Io { path, message } => write!(f, "{path}: {message}"),
            DcfbError::Timeout {
                workload,
                method,
                deadline,
            } => write!(
                f,
                "job timed out ({method} on {workload}): cancelled at {deadline}"
            ),
            DcfbError::Quarantined {
                job,
                config_digest,
                failures,
                last_error,
            } => write!(
                f,
                "job quarantined ({job}, config {config_digest}) after {failures} failed attempt(s): {last_error}"
            ),
            DcfbError::Protocol { message } => write!(f, "protocol error: {message}"),
        }
    }
}

impl std::error::Error for DcfbError {}

/// Extracts a one-line message from a `catch_unwind` panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_match_policy() {
        assert_eq!(DcfbError::Usage("x".into()).exit_code(), 2);
        assert_eq!(DcfbError::trace(TraceErrorKind::BadMagic).exit_code(), 3);
        assert_eq!(DcfbError::Config("x".into()).exit_code(), 3);
        assert_eq!(
            DcfbError::UnknownMethod {
                name: "x".into(),
                available: vec![]
            }
            .exit_code(),
            3
        );
        assert_eq!(
            DcfbError::Run {
                workload: "w".into(),
                method: "m".into(),
                message: "boom".into()
            }
            .exit_code(),
            4
        );
        assert_eq!(
            DcfbError::Io {
                path: "p".into(),
                message: "denied".into()
            }
            .exit_code(),
            5
        );
        assert_eq!(
            DcfbError::Timeout {
                workload: "w".into(),
                method: "m".into(),
                deadline: "instruction budget 5000".into()
            }
            .exit_code(),
            6
        );
        assert_eq!(
            DcfbError::Quarantined {
                job: "m/w".into(),
                config_digest: "deadbeef".into(),
                failures: 3,
                last_error: "boom".into()
            }
            .exit_code(),
            7
        );
        assert_eq!(DcfbError::protocol("bad request line").exit_code(), 8);
    }

    #[test]
    fn diagnostics_are_one_line() {
        let errors = [
            DcfbError::trace_at(
                TraceErrorKind::ChecksumMismatch {
                    stored: 1,
                    computed: 2,
                },
                TraceLocation::in_chunk(3, 4096),
            ),
            DcfbError::trace(TraceErrorKind::RecordCountMismatch {
                declared: 100,
                actual: 7,
            }),
            DcfbError::Config("ftq_entries must be nonzero".into()),
            DcfbError::Timeout {
                workload: "OLTP (DB A)".into(),
                method: "Shotgun".into(),
                deadline: "wall clock 30s".into(),
            },
            DcfbError::Quarantined {
                job: "Shotgun/OLTP (DB A)".into(),
                config_digest: "0123456789abcdef".into(),
                failures: 3,
                last_error: "panicked at full scale".into(),
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.contains('\n'), "multi-line diagnostic: {s}");
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn trace_location_formats() {
        assert_eq!(TraceLocation::UNKNOWN.to_string(), "unknown offset");
        assert_eq!(TraceLocation::at_byte(16).to_string(), "byte 16");
        assert_eq!(
            TraceLocation::in_chunk(2, 9234).to_string(),
            "chunk 2, byte 9234"
        );
    }

    #[test]
    fn panic_messages_extract() {
        let payload = std::panic::catch_unwind(|| panic!("boom {}", 1)).unwrap_err();
        assert_eq!(panic_message(payload.as_ref()), "boom 1");
        let payload = std::panic::catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(
            panic_message(payload.as_ref()),
            "panic with non-string payload"
        );
    }
}
