//! NoC latency and load-dependent contention.

/// Geometry and timing of the on-chip network (Table III: 4×4 2D mesh,
/// 2-stage router + 1-cycle link = 3 cycles/hop).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NocConfig {
    /// Average one-way hop count between a tile and the home LLC bank.
    ///
    /// For uniformly distributed banks on a 4×4 mesh the mean Manhattan
    /// distance is ≈ 2.67 hops.
    pub avg_hops: f64,
    /// Cycles per hop (router pipeline + link traversal).
    pub hop_cycles: u64,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            avg_hops: 2.67,
            hop_cycles: 3,
        }
    }
}

impl NocConfig {
    /// Zero-load round-trip NoC cycles (request + response traversal).
    pub fn round_trip_cycles(&self) -> u64 {
        (self.avg_hops * self.hop_cycles as f64 * 2.0).round() as u64
    }
}

/// An M/D/1-style queueing model that converts an observed request rate
/// into extra cycles of queueing delay.
///
/// Requests are counted in a sliding window; utilization is the measured
/// rate divided by the service rate, and the queueing delay grows as
/// `rho / (1 - rho)` — negligible at baseline traffic, tens of cycles
/// under an N8L-like 7× request storm.
#[derive(Clone, Debug)]
pub struct ContentionModel {
    /// Requests/cycle the NoC + LLC bank can absorb before queueing.
    service_rate: f64,
    /// Sliding-window length in cycles.
    window: u64,
    /// Standing utilization from other cores / L1d traffic (`[0, 0.9)`).
    background_util: f64,
    /// Timestamps of requests inside the current window.
    recent: std::collections::VecDeque<u64>,
}

impl ContentionModel {
    /// Creates a model. `service_rate` must be positive; `background_util`
    /// must lie in `[0, 0.9)`.
    ///
    /// # Panics
    ///
    /// Panics if the arguments are out of range.
    pub fn new(service_rate: f64, window: u64, background_util: f64) -> Self {
        assert!(service_rate > 0.0, "service rate must be positive");
        assert!(window > 0, "window must be non-zero");
        assert!(
            (0.0..0.9).contains(&background_util),
            "background utilization out of range"
        );
        ContentionModel {
            service_rate,
            window,
            background_util,
            recent: std::collections::VecDeque::new(),
        }
    }

    /// The default calibration: tuned so that baseline server-workload
    /// instruction traffic sees ≈ 0 queueing while a 7× N8L storm
    /// inflates average LLC access latency by roughly a quarter (Fig. 5).
    pub fn calibrated() -> Self {
        ContentionModel::new(0.12, 1024, 0.35)
    }

    /// Records a request at `now` and returns the queueing delay (in
    /// cycles) this request experiences.
    pub fn observe(&mut self, now: u64) -> u64 {
        while let Some(&front) = self.recent.front() {
            if front + self.window <= now {
                self.recent.pop_front();
            } else {
                break;
            }
        }
        self.recent.push_back(now);
        let rate = self.recent.len() as f64 / self.window as f64;
        let rho = (self.background_util + rate / self.service_rate).min(0.95);
        let service_time = 1.0 / self.service_rate;
        // M/D/1 mean queueing delay: rho / (2 (1 - rho)) * service time.
        (rho / (2.0 * (1.0 - rho)) * service_time).round() as u64
    }

    /// The current utilization estimate in `[0, 0.95]`, without recording
    /// a request.
    pub fn utilization(&self, now: u64) -> f64 {
        let live = self
            .recent
            .iter()
            .filter(|&&t| t + self.window > now)
            .count();
        let rate = live as f64 / self.window as f64;
        (self.background_util + rate / self.service_rate).min(0.95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_default_is_sixteen() {
        assert_eq!(NocConfig::default().round_trip_cycles(), 16);
    }

    #[test]
    fn custom_noc_round_trip() {
        let noc = NocConfig {
            avg_hops: 2.0,
            hop_cycles: 3,
        };
        assert_eq!(noc.round_trip_cycles(), 12);
    }

    #[test]
    fn idle_network_has_small_delay() {
        let mut c = ContentionModel::calibrated();
        // Sparse requests: one every 200 cycles.
        let mut last = 0;
        for i in 0..50u64 {
            last = c.observe(i * 200);
        }
        assert!(last <= 4, "idle delay too high: {last}");
    }

    #[test]
    fn saturated_network_queues() {
        let mut c = ContentionModel::calibrated();
        let mut idle_delay = 0;
        for i in 0..10u64 {
            idle_delay = c.observe(i * 300);
        }
        let mut c2 = ContentionModel::calibrated();
        let mut storm_delay = 0;
        // A request every cycle — far above the service rate.
        for i in 0..2000u64 {
            storm_delay = c2.observe(i);
        }
        assert!(
            storm_delay > idle_delay + 10,
            "storm {storm_delay} vs idle {idle_delay}"
        );
    }

    #[test]
    fn delay_is_monotonic_in_load() {
        let loads = [64u64, 16, 4, 1]; // inter-arrival gaps, decreasing load -> increasing
        let mut last_delay = 0;
        for gap in loads {
            let mut c = ContentionModel::calibrated();
            let mut d = 0;
            for i in 0..3000u64 {
                d = c.observe(i * gap);
            }
            assert!(d >= last_delay, "gap {gap}: {d} < {last_delay}");
            last_delay = d;
        }
    }

    #[test]
    fn window_forgets_old_traffic() {
        let mut c = ContentionModel::new(0.2, 100, 0.0);
        for i in 0..100u64 {
            c.observe(i);
        }
        assert!(c.utilization(99) > 0.9);
        // Long quiet period: utilization collapses.
        assert!(c.utilization(10_000) < 0.05);
    }

    #[test]
    fn utilization_is_capped() {
        let mut c = ContentionModel::new(0.01, 64, 0.5);
        for i in 0..64u64 {
            c.observe(i);
        }
        assert!(c.utilization(63) <= 0.95);
    }

    #[test]
    #[should_panic(expected = "service rate")]
    fn zero_service_rate_panics() {
        let _ = ContentionModel::new(0.0, 10, 0.0);
    }

    #[test]
    #[should_panic(expected = "background utilization")]
    fn excessive_background_panics() {
        let _ = ContentionModel::new(0.2, 10, 0.95);
    }
}
