//! The uncore proper: LLC slice + NoC + memory behind one interface.

use crate::latency::{ContentionModel, NocConfig};
use dcfb_cache::{CacheConfig, DvLlc, LineFlags, SetAssocCache};
use dcfb_trace::Block;

/// Uncore configuration (defaults follow Table III).
#[derive(Clone, Debug)]
pub struct UncoreConfig {
    /// LLC bank access latency in cycles.
    pub llc_latency: u64,
    /// Main-memory access latency in cycles (60 ns at 2 GHz).
    pub memory_latency: u64,
    /// NoC geometry/timing.
    pub noc: NocConfig,
    /// Geometry of the core-visible LLC slice.
    pub llc_config: CacheConfig,
    /// Use the DV-LLC (BF virtualization) instead of a plain LLC.
    pub dvllc: bool,
    /// BF-holder capacity per set when `dvllc` is set.
    pub bf_per_set: usize,
}

impl Default for UncoreConfig {
    fn default() -> Self {
        UncoreConfig {
            llc_latency: 18,
            memory_latency: 120,
            noc: NocConfig::default(),
            llc_config: CacheConfig::llc_slice(),
            dvllc: false,
            bf_per_set: 10,
        }
    }
}

/// Where a request was served from, and when it completes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the block is available at the L1.
    pub ready_at: u64,
    /// `true` if served by the LLC, `false` if it went to memory.
    pub llc_hit: bool,
    /// Total latency charged, including queueing.
    pub latency: u64,
}

/// Aggregate uncore statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UncoreStats {
    /// Requests received (demand + prefetch).
    pub requests: u64,
    /// Requests marked as prefetches.
    pub prefetch_requests: u64,
    /// Requests that hit in the LLC.
    pub llc_hits: u64,
    /// Requests that missed to memory.
    pub llc_misses: u64,
    /// Sum of all request latencies (for averaging).
    pub total_latency: u64,
    /// Sum of queueing delays only.
    pub total_queueing: u64,
}

impl UncoreStats {
    /// Mean end-to-end latency per request.
    pub fn avg_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.requests as f64
        }
    }

    /// Mean queueing delay per request.
    pub fn avg_queueing(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_queueing as f64 / self.requests as f64
        }
    }

    /// Accumulates another window's counters into this one (shard
    /// stitching: every field is a sum-mergeable event count).
    pub fn absorb(&mut self, other: &UncoreStats) {
        self.requests += other.requests;
        self.prefetch_requests += other.prefetch_requests;
        self.llc_hits += other.llc_hits;
        self.llc_misses += other.llc_misses;
        self.total_latency += other.total_latency;
        self.total_queueing += other.total_queueing;
    }
}

enum Llc {
    Plain(SetAssocCache),
    Virtualized(DvLlc),
}

/// The memory system below the private caches.
pub struct Uncore {
    cfg: UncoreConfig,
    llc: Llc,
    contention: ContentionModel,
    stats: UncoreStats,
}

impl Uncore {
    /// Creates an uncore with the given configuration and the calibrated
    /// contention model.
    pub fn new(cfg: UncoreConfig) -> Self {
        let llc = if cfg.dvllc {
            Llc::Virtualized(DvLlc::new(
                cfg.llc_config.sets,
                cfg.llc_config.ways,
                cfg.bf_per_set,
            ))
        } else {
            Llc::Plain(SetAssocCache::new(cfg.llc_config))
        };
        Uncore {
            cfg,
            llc,
            contention: ContentionModel::calibrated(),
            stats: UncoreStats::default(),
        }
    }

    /// Replaces the contention model (used by calibration tests).
    pub fn set_contention(&mut self, model: ContentionModel) {
        self.contention = model;
    }

    /// The configuration this uncore was built with.
    pub fn config(&self) -> &UncoreConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> UncoreStats {
        self.stats
    }

    /// Resets statistics (keeps LLC contents — used after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = UncoreStats::default();
        match &mut self.llc {
            Llc::Plain(c) => c.reset_stats(),
            Llc::Virtualized(c) => c.reset_stats(),
        }
    }

    /// Issues a block fetch at `now`. The block is installed in the LLC
    /// on the way up (on a memory fill).
    pub fn access(
        &mut self,
        now: u64,
        block: Block,
        is_prefetch: bool,
        is_instruction: bool,
    ) -> AccessResult {
        self.stats.requests += 1;
        if is_prefetch {
            self.stats.prefetch_requests += 1;
        }
        let queueing = self.contention.observe(now);
        let noc = self.cfg.noc.round_trip_cycles();
        let hit = match &mut self.llc {
            Llc::Plain(c) => {
                let hit = c.demand_access(block);
                if !hit {
                    c.fill(
                        block,
                        LineFlags {
                            is_instruction,
                            demanded: true,
                            ..LineFlags::default()
                        },
                    );
                }
                hit
            }
            Llc::Virtualized(c) => {
                let hit = c.demand_access(block, is_instruction);
                if !hit {
                    c.fill(
                        block,
                        LineFlags {
                            is_instruction,
                            demanded: true,
                            ..LineFlags::default()
                        },
                    );
                }
                hit
            }
        };
        let latency = if hit {
            self.stats.llc_hits += 1;
            noc + queueing + self.cfg.llc_latency
        } else {
            self.stats.llc_misses += 1;
            noc + queueing + self.cfg.llc_latency + self.cfg.memory_latency
        };
        self.stats.total_latency += latency;
        self.stats.total_queueing += queueing;
        AccessResult {
            ready_at: now + latency,
            llc_hit: hit,
            latency,
        }
    }

    /// Pre-warms the LLC with `block` (checkpoint-style warmup; no
    /// latency, no statistics).
    pub fn warm(&mut self, block: Block, is_instruction: bool) {
        let flags = LineFlags {
            is_instruction,
            demanded: true,
            ..LineFlags::default()
        };
        match &mut self.llc {
            Llc::Plain(c) => {
                c.fill(block, flags);
            }
            Llc::Virtualized(c) => {
                c.fill(block, flags);
            }
        }
    }

    /// Whether `block` is resident in the LLC (no side effects).
    pub fn llc_contains(&self, block: Block) -> bool {
        match &self.llc {
            Llc::Plain(c) => c.contains(block),
            Llc::Virtualized(c) => c.contains(block),
        }
    }

    /// Access to the DV-LLC, when configured (`None` for a plain LLC).
    pub fn dvllc_mut(&mut self) -> Option<&mut DvLlc> {
        match &mut self.llc {
            Llc::Plain(_) => None,
            Llc::Virtualized(c) => Some(c),
        }
    }

    /// Read access to the DV-LLC, when configured.
    pub fn dvllc(&self) -> Option<&DvLlc> {
        match &self.llc {
            Llc::Plain(_) => None,
            Llc::Virtualized(c) => Some(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_uncore() -> Uncore {
        let mut cfg = UncoreConfig::default();
        cfg.llc_config = CacheConfig { sets: 64, ways: 4 };
        Uncore::new(cfg)
    }

    #[test]
    fn first_access_misses_to_memory_then_hits() {
        let mut u = small_uncore();
        let r1 = u.access(0, 42, false, true);
        assert!(!r1.llc_hit);
        assert!(r1.latency >= 18 + 120);
        let r2 = u.access(r1.ready_at, 42, false, true);
        assert!(r2.llc_hit);
        assert!(r2.latency < r1.latency);
        assert_eq!(u.stats().llc_hits, 1);
        assert_eq!(u.stats().llc_misses, 1);
    }

    #[test]
    fn warm_prefills_llc() {
        let mut u = small_uncore();
        u.warm(7, true);
        assert!(u.llc_contains(7));
        let r = u.access(0, 7, false, true);
        assert!(r.llc_hit);
        assert_eq!(u.stats().requests, 1);
    }

    #[test]
    fn prefetch_requests_counted() {
        let mut u = small_uncore();
        u.access(0, 1, true, true);
        u.access(10, 2, false, true);
        assert_eq!(u.stats().prefetch_requests, 1);
        assert_eq!(u.stats().requests, 2);
    }

    #[test]
    fn latency_grows_under_storm() {
        let mut u = small_uncore();
        // Warm block so every access is an LLC hit.
        u.warm(5, true);
        let idle = u.access(0, 5, false, true).latency;
        // Storm: 3000 back-to-back requests.
        let mut last = 0;
        for i in 0..3000u64 {
            u.warm(1000 + i % 16, true);
            last = u.access(1_000 + i, 1000 + i % 16, true, true).latency;
        }
        assert!(last > idle, "storm latency {last} <= idle {idle}");
        assert!(u.stats().avg_queueing() > 0.0);
    }

    #[test]
    fn dvllc_mode_exposes_bf_interface() {
        let mut cfg = UncoreConfig::default();
        cfg.llc_config = CacheConfig { sets: 16, ways: 4 };
        cfg.dvllc = true;
        cfg.bf_per_set = 4;
        let mut u = Uncore::new(cfg);
        assert!(u.dvllc().is_some());
        u.access(0, 3, false, true);
        let dv = u.dvllc_mut().unwrap();
        assert!(dv.bf_mode_sets() > 0);
        let plain = small_uncore();
        assert!(plain.dvllc().is_none());
    }

    #[test]
    fn stats_averages() {
        let mut u = small_uncore();
        assert_eq!(u.stats().avg_latency(), 0.0);
        u.access(0, 1, false, true);
        assert!(u.stats().avg_latency() > 0.0);
        u.reset_stats();
        assert_eq!(u.stats().requests, 0);
        // Contents survive the reset.
        assert!(u.llc_contains(1));
    }

    #[test]
    fn memory_latency_dominates_misses() {
        let mut u = small_uncore();
        let miss = u.access(0, 9, false, false);
        let hit = u.access(miss.ready_at, 9, false, false);
        assert!(miss.latency >= hit.latency + u.config().memory_latency);
    }
}
