//! # dcfb-uncore
//!
//! The memory system below the L1i: a shared-LLC slice, an analytic
//! mesh-NoC latency model with load-dependent queueing, and main memory.
//!
//! The paper's CMP (Table III) is a 16-core 4×4 mesh with a 32 MB shared
//! LLC (18-cycle bank access), 3 cycles per mesh hop, and 60 ns main
//! memory. We model a single core's view of that system: every request
//! leaving the L1i crosses the NoC (average-hop latency both ways),
//! possibly queues behind other traffic, accesses an LLC bank, and on an
//! LLC miss pays the memory latency.
//!
//! The *contention* term is what couples useless prefetches to
//! performance: Fig. 5 shows an N8L prefetcher inflating average LLC
//! access latency by ~28 % at 7.2× external bandwidth, and Fig. 4 shows
//! that this inflation is why N8L's timeliness falls below N4L's. We
//! reproduce that coupling with an M/D/1-style queueing delay driven by
//! the measured request rate over a sliding window.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod latency;
pub mod uncore;

pub use latency::{ContentionModel, NocConfig};
pub use uncore::{AccessResult, Uncore, UncoreConfig, UncoreStats};
