//! Dynamic and static instruction records.
//!
//! A *dynamic* instruction ([`Instr`]) is one executed occurrence on the
//! retired (correct) path: it knows whether a conditional branch was taken
//! and what the resolved target was. A *static* instruction
//! ([`StaticInstr`]) is what a pre-decoder can recover from the bytes of a
//! cache block: its position, size, branch kind, and — for direct
//! branches — the target encoded in the instruction itself.

use crate::{block_of, block_offset, Addr, Block};

/// The control-flow class of a dynamic instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstrKind {
    /// A non-control-flow instruction (ALU, load, store, ...).
    Other,
    /// A conditional branch; `taken` records the resolved direction.
    CondBranch {
        /// Whether this execution of the branch was taken.
        taken: bool,
    },
    /// A direct unconditional jump.
    Jump,
    /// A direct call (pushes a return address).
    Call,
    /// An indirect unconditional jump (target from a register).
    IndirectJump,
    /// An indirect call.
    IndirectCall,
    /// A return (target from the call stack).
    Return,
}

impl InstrKind {
    /// Returns `true` for every control-flow instruction.
    #[inline]
    pub fn is_branch(self) -> bool {
        !matches!(self, InstrKind::Other)
    }

    /// Returns `true` for unconditional control flow (always redirects).
    #[inline]
    pub fn is_unconditional(self) -> bool {
        matches!(
            self,
            InstrKind::Jump
                | InstrKind::Call
                | InstrKind::IndirectJump
                | InstrKind::IndirectCall
                | InstrKind::Return
        )
    }

    /// Returns `true` if this instruction pushes a return address.
    #[inline]
    pub fn is_call(self) -> bool {
        matches!(self, InstrKind::Call | InstrKind::IndirectCall)
    }

    /// Returns `true` if the branch target is encoded in the instruction
    /// bytes (recoverable by a pre-decoder without any BTB consultation).
    #[inline]
    pub fn target_in_encoding(self) -> bool {
        matches!(
            self,
            InstrKind::CondBranch { .. } | InstrKind::Jump | InstrKind::Call
        )
    }

    /// The corresponding static (pre-decode visible) kind.
    pub fn static_kind(self) -> StaticKind {
        match self {
            InstrKind::Other => StaticKind::Other,
            InstrKind::CondBranch { .. } => StaticKind::CondBranch,
            InstrKind::Jump => StaticKind::Jump,
            InstrKind::Call => StaticKind::Call,
            InstrKind::IndirectJump => StaticKind::IndirectJump,
            InstrKind::IndirectCall => StaticKind::IndirectCall,
            InstrKind::Return => StaticKind::Return,
        }
    }
}

/// One dynamic (executed, correct-path) instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Instr {
    /// Address of the first byte of the instruction.
    pub pc: Addr,
    /// Encoded size in bytes (4 in fixed-length mode, 1–15 in variable).
    pub size: u8,
    /// Control-flow class, including the resolved direction.
    pub kind: InstrKind,
    /// Resolved control-flow target.
    ///
    /// Meaningful only when [`Self::redirects`] returns `true`; `0`
    /// otherwise.
    pub target: Addr,
}

impl Instr {
    /// Creates a non-branch instruction.
    pub fn other(pc: Addr, size: u8) -> Self {
        Instr {
            pc,
            size,
            kind: InstrKind::Other,
            target: 0,
        }
    }

    /// Creates a branch instruction of the given `kind` and resolved
    /// `target`.
    pub fn branch(pc: Addr, size: u8, kind: InstrKind, target: Addr) -> Self {
        debug_assert!(kind.is_branch());
        Instr {
            pc,
            size,
            kind,
            target,
        }
    }

    /// The fall-through address (start of the next sequential instruction).
    #[inline]
    pub fn fallthrough(&self) -> Addr {
        self.pc + Addr::from(self.size)
    }

    /// Whether this execution redirected control flow away from the
    /// fall-through path.
    #[inline]
    pub fn redirects(&self) -> bool {
        match self.kind {
            InstrKind::Other => false,
            InstrKind::CondBranch { taken } => taken,
            _ => true,
        }
    }

    /// The address of the instruction that executes next on the correct
    /// path.
    #[inline]
    pub fn next_pc(&self) -> Addr {
        if self.redirects() {
            self.target
        } else {
            self.fallthrough()
        }
    }

    /// Cache block containing the first byte of this instruction.
    #[inline]
    pub fn block(&self) -> Block {
        block_of(self.pc)
    }

    /// Byte offset of this instruction within its cache block.
    #[inline]
    pub fn byte_offset(&self) -> u32 {
        block_offset(self.pc)
    }
}

/// The control-flow class of a static instruction, as visible to a
/// pre-decoder (no dynamic direction information).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StaticKind {
    /// Non-control-flow instruction.
    Other,
    /// Conditional branch (direction unknown statically).
    CondBranch,
    /// Direct unconditional jump.
    Jump,
    /// Direct call.
    Call,
    /// Indirect jump (target not in the encoding).
    IndirectJump,
    /// Indirect call (target not in the encoding).
    IndirectCall,
    /// Return.
    Return,
}

impl StaticKind {
    /// Returns `true` for every control-flow instruction.
    #[inline]
    pub fn is_branch(self) -> bool {
        !matches!(self, StaticKind::Other)
    }

    /// Returns `true` if a pre-decoder can extract the target from the
    /// instruction bytes alone.
    #[inline]
    pub fn target_in_encoding(self) -> bool {
        matches!(
            self,
            StaticKind::CondBranch | StaticKind::Jump | StaticKind::Call
        )
    }

    /// Returns `true` for conditional branches.
    #[inline]
    pub fn is_conditional(self) -> bool {
        matches!(self, StaticKind::CondBranch)
    }

    /// Returns `true` for unconditional control flow.
    #[inline]
    pub fn is_unconditional(self) -> bool {
        self.is_branch() && !self.is_conditional()
    }
}

/// One static instruction, as recoverable by pre-decoding the bytes of a
/// cache block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaticInstr {
    /// Address of the first byte.
    pub pc: Addr,
    /// Encoded size in bytes.
    pub size: u8,
    /// Static control-flow class.
    pub kind: StaticKind,
    /// Target encoded in the instruction, when
    /// [`StaticKind::target_in_encoding`] holds; `None` otherwise.
    pub target: Option<Addr>,
}

impl StaticInstr {
    /// Byte offset of this instruction within its cache block.
    #[inline]
    pub fn byte_offset(&self) -> u32 {
        block_offset(self.pc)
    }

    /// Cache block containing the first byte of this instruction.
    #[inline]
    pub fn block(&self) -> Block {
        block_of(self.pc)
    }

    /// Instruction index within the block for a fixed-length (4 B) ISA.
    ///
    /// The paper's `DisTable` stores a 4-bit *instruction offset*
    /// distinguishing the 16 possible 4-byte slots of a 64-byte block.
    #[inline]
    pub fn instr_offset_fixed4(&self) -> u32 {
        self.byte_offset() / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_does_not_redirect() {
        let i = Instr::other(0x1000, 4);
        assert!(!i.redirects());
        assert_eq!(i.next_pc(), 0x1004);
        assert!(!i.kind.is_branch());
    }

    #[test]
    fn taken_cond_branch_redirects() {
        let i = Instr::branch(0x1000, 4, InstrKind::CondBranch { taken: true }, 0x2000);
        assert!(i.redirects());
        assert_eq!(i.next_pc(), 0x2000);
        let nt = Instr::branch(0x1000, 4, InstrKind::CondBranch { taken: false }, 0x2000);
        assert!(!nt.redirects());
        assert_eq!(nt.next_pc(), 0x1004);
    }

    #[test]
    fn unconditional_always_redirects() {
        for kind in [
            InstrKind::Jump,
            InstrKind::Call,
            InstrKind::IndirectJump,
            InstrKind::IndirectCall,
            InstrKind::Return,
        ] {
            let i = Instr::branch(0x40, 4, kind, 0x80);
            assert!(i.redirects(), "{kind:?}");
            assert_eq!(i.next_pc(), 0x80);
            assert!(kind.is_unconditional());
        }
    }

    #[test]
    fn target_in_encoding_matches_directness() {
        assert!(InstrKind::Jump.target_in_encoding());
        assert!(InstrKind::Call.target_in_encoding());
        assert!(InstrKind::CondBranch { taken: false }.target_in_encoding());
        assert!(!InstrKind::IndirectJump.target_in_encoding());
        assert!(!InstrKind::IndirectCall.target_in_encoding());
        assert!(!InstrKind::Return.target_in_encoding());
        assert!(!InstrKind::Other.target_in_encoding());
    }

    #[test]
    fn static_kind_mapping_is_consistent() {
        let pairs = [
            (InstrKind::Other, StaticKind::Other),
            (
                InstrKind::CondBranch { taken: true },
                StaticKind::CondBranch,
            ),
            (InstrKind::Jump, StaticKind::Jump),
            (InstrKind::Call, StaticKind::Call),
            (InstrKind::IndirectJump, StaticKind::IndirectJump),
            (InstrKind::IndirectCall, StaticKind::IndirectCall),
            (InstrKind::Return, StaticKind::Return),
        ];
        for (dynk, stk) in pairs {
            assert_eq!(dynk.static_kind(), stk);
            assert_eq!(dynk.is_branch(), stk.is_branch());
            assert_eq!(dynk.target_in_encoding(), stk.target_in_encoding());
        }
    }

    #[test]
    fn instr_offset_fixed4_spans_block() {
        for slot in 0..16u64 {
            let s = StaticInstr {
                pc: 0x1000 + slot * 4,
                size: 4,
                kind: StaticKind::Other,
                target: None,
            };
            assert_eq!(s.instr_offset_fixed4(), slot as u32);
        }
    }

    #[test]
    fn block_and_offset_of_instr() {
        let i = Instr::other(0x1044, 4);
        assert_eq!(i.block(), 0x1044 >> 6);
        assert_eq!(i.byte_offset(), 0x04);
    }
}
