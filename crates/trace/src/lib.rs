//! # dcfb-trace
//!
//! Instruction, address, and trace model for the Divide-and-Conquer
//! Frontend Bottleneck (DCFB) reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`Addr`] / [`Block`] — byte addresses and cache-block numbers,
//! * [`Instr`] / [`InstrKind`] — one *dynamic* (executed) instruction,
//! * [`StaticInstr`] / [`StaticKind`] — one *static* instruction as seen
//!   by a pre-decoder looking at the bytes of a cache block,
//! * [`CodeMemory`] — the interface a pre-decoder uses to inspect the
//!   contents of an instruction block,
//! * [`InstrStream`] — a (possibly lazily generated) dynamic instruction
//!   trace,
//! * [`IsaMode`] — fixed-length (SPARC-like, 4 B) vs. variable-length
//!   (x86-like, 1–15 B) instruction encodings.
//!
//! The paper's prefetchers never look at raw instruction bytes; they only
//! need block addresses, intra-block instruction/byte offsets, branch
//! kinds, and branch targets. These types capture exactly that surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod fault;
pub mod file;
pub mod import;
pub mod instr;
pub mod isa;
pub mod memory;
pub mod stream;

pub use fault::{FaultyReader, FaultyStream, StreamFault};
pub use file::{
    read_binary, read_binary_checked, read_text, write_binary, write_binary_v1, write_binary_v2,
    write_text, ReadMode, ReadReport,
};
pub use import::{import_champsim, ImportReport, IMPORT_RECORD_BYTES};
pub use instr::{Instr, InstrKind, StaticInstr, StaticKind};
pub use isa::IsaMode;
pub use memory::{CodeMemory, RecordedCode};
pub use stream::{InstrStream, ReplayStream, StreamStats, VecTrace};

/// A byte address in the simulated (virtual) address space.
pub type Addr = u64;

/// A cache-block number: [`Addr`] with the block-offset bits stripped.
pub type Block = u64;

/// Log2 of the cache-block size used throughout the workspace (64 B).
pub const BLOCK_BITS: u32 = 6;

/// Cache-block size in bytes (64 B, as in the paper's Table III).
pub const BLOCK_BYTES: u64 = 1 << BLOCK_BITS;

/// Returns the block number containing byte address `addr`.
///
/// # Examples
///
/// ```
/// use dcfb_trace::{block_of, BLOCK_BYTES};
/// assert_eq!(block_of(0), 0);
/// assert_eq!(block_of(BLOCK_BYTES - 1), 0);
/// assert_eq!(block_of(BLOCK_BYTES), 1);
/// ```
#[inline]
pub fn block_of(addr: Addr) -> Block {
    addr >> BLOCK_BITS
}

/// Returns the first byte address of block `block`.
#[inline]
pub fn block_base(block: Block) -> Addr {
    block << BLOCK_BITS
}

/// Returns the byte offset of `addr` within its cache block (`0..64`).
#[inline]
pub fn block_offset(addr: Addr) -> u32 {
    (addr & (BLOCK_BYTES - 1)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_helpers_roundtrip() {
        for addr in [0u64, 1, 63, 64, 65, 4096, 0xdead_beef] {
            let b = block_of(addr);
            assert!(block_base(b) <= addr);
            assert!(addr < block_base(b) + BLOCK_BYTES);
            assert_eq!(block_base(b) + u64::from(block_offset(addr)), addr);
        }
    }

    #[test]
    fn block_constants_consistent() {
        assert_eq!(BLOCK_BYTES, 64);
        assert_eq!(1u64 << BLOCK_BITS, BLOCK_BYTES);
    }
}
