//! External trace ingestion: ChampSim-style instruction records →
//! native trace.
//!
//! The import format is the fixed 64-byte record layout used by
//! ChampSim-family tracers, little-endian:
//!
//! ```text
//! offset  size  field
//!      0     8  ip               (u64)
//!      8     1  is_branch        (0 or 1)
//!      9     1  branch_taken     (0 or 1)
//!     10     2  destination_registers (u8 × 2)
//!     12     4  source_registers      (u8 × 4)
//!     16    16  destination_memory    (u64 × 2)
//!     32    32  source_memory         (u64 × 4)
//! ```
//!
//! The format carries no sizes, kinds, or targets, so the importer
//! reconstructs them:
//!
//! * **size** — inferred from the pc delta to the next sequential
//!   record (clamped to 1..=15); branch and final records reuse the
//!   size learned from another occurrence of the same ip, defaulting
//!   to 4.
//! * **kind** — ChampSim's register-based inference: a branch reading
//!   the flags register is conditional; reading+writing the stack
//!   pointer distinguishes calls (which also read the instruction
//!   pointer) from returns; remaining ip-writers are jumps, indirect
//!   when they read general registers.
//! * **target** — the next record's ip for taken branches; not-taken
//!   conditionals reuse the target learned from a taken occurrence of
//!   the same ip (falling back to the fallthrough pc). A non-branch
//!   record followed by a pc discontinuity (interrupt, trap) becomes an
//!   `IndirectJump` so the stream stays `next_pc`-continuous.
//!
//! Strict mode ([`ReadMode::Strict`]) rejects truncation and malformed
//! flag bytes with typed errors; lenient mode salvages the longest
//! well-formed whole-record prefix, mirroring the v2 reader's recovery
//! semantics. The converted stream is written back out through the
//! checksummed v2 writer, so downstream consumers get the full CRC
//! machinery for free.

use crate::file::ReadMode;
use crate::instr::{Instr, InstrKind};
use crate::stream::VecTrace;
use crate::Addr;
use dcfb_errors::{DcfbError, TraceErrorKind, TraceLocation};
use std::collections::HashMap;

/// Size of one imported record, in bytes.
pub const IMPORT_RECORD_BYTES: usize = 64;

/// Default instruction size when no pc delta pins it down.
const DEFAULT_SIZE: u8 = 4;

/// x86-style architectural register numbers the tracer uses to flag
/// control flow (ChampSim convention).
const REG_STACK_POINTER: u8 = 6;
const REG_FLAGS: u8 = 25;
const REG_INSTRUCTION_POINTER: u8 = 26;

/// What one import produced, alongside the trace itself.
#[derive(Clone, Debug, Default)]
pub struct ImportReport {
    /// Records converted.
    pub records: u64,
    /// Bytes consumed from the input.
    pub bytes: u64,
    /// Why the input was cut short, when lenient salvage engaged.
    pub salvage: Option<String>,
    /// Converted records that are control flow.
    pub branches: u64,
    /// Non-branch records followed by a pc discontinuity (converted to
    /// indirect jumps).
    pub discontinuities: u64,
}

/// One decoded raw record.
#[derive(Clone, Copy)]
struct RawRecord {
    ip: Addr,
    is_branch: bool,
    taken: bool,
    dst_regs: [u8; 2],
    src_regs: [u8; 4],
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(buf)
}

fn decode_record(bytes: &[u8], index: u64) -> Result<RawRecord, DcfbError> {
    let flag_err = |field: &str, value: u8| {
        DcfbError::trace_at(
            TraceErrorKind::BadRecord(format!("record {index}: {field} byte is {value}, not 0/1")),
            TraceLocation {
                byte_offset: Some(index * IMPORT_RECORD_BYTES as u64),
                record: Some(index),
                chunk: None,
            },
        )
    };
    let is_branch = bytes[8];
    if is_branch > 1 {
        return Err(flag_err("is_branch", is_branch));
    }
    let taken = bytes[9];
    if taken > 1 {
        return Err(flag_err("branch_taken", taken));
    }
    Ok(RawRecord {
        ip: read_u64(bytes, 0),
        is_branch: is_branch == 1,
        taken: taken == 1,
        dst_regs: [bytes[10], bytes[11]],
        src_regs: [bytes[12], bytes[13], bytes[14], bytes[15]],
    })
}

/// Per-ip knowledge accumulated in the first pass.
#[derive(Clone, Copy, Default)]
struct IpInfo {
    /// Size pinned by a sequential pc delta.
    size: Option<u8>,
    /// Branch target learned from a taken occurrence.
    taken_target: Option<Addr>,
}

/// ChampSim's register-read/write inference, reduced to our
/// [`InstrKind`] alphabet.
fn classify(r: &RawRecord) -> InstrKind {
    let reads = |reg: u8| r.src_regs.contains(&reg);
    let writes_ip = r.dst_regs.contains(&REG_INSTRUCTION_POINTER);
    let writes_sp = r.dst_regs.contains(&REG_STACK_POINTER);
    let reads_other = r.src_regs.iter().any(|&s| {
        s != 0 && s != REG_STACK_POINTER && s != REG_FLAGS && s != REG_INSTRUCTION_POINTER
    });
    if reads(REG_FLAGS) {
        return InstrKind::CondBranch { taken: r.taken };
    }
    if writes_sp && reads(REG_STACK_POINTER) {
        if reads(REG_INSTRUCTION_POINTER) {
            return if reads_other {
                InstrKind::IndirectCall
            } else {
                InstrKind::Call
            };
        }
        return InstrKind::Return;
    }
    if writes_ip && reads_other {
        return InstrKind::IndirectJump;
    }
    if writes_ip {
        return InstrKind::Jump;
    }
    // The tracer said "branch" but the register sets pin nothing down —
    // the weakest assumption is a conditional with the recorded
    // direction.
    InstrKind::CondBranch { taken: r.taken }
}

/// Converts a ChampSim-style byte stream into a native trace.
///
/// Strict mode rejects trailing partial records ([`TraceErrorKind::Truncated`])
/// and malformed flag bytes ([`TraceErrorKind::BadRecord`]); lenient
/// mode converts the longest well-formed whole-record prefix and notes
/// the reason in [`ImportReport::salvage`]. Never panics on arbitrary
/// input.
pub fn import_champsim(data: &[u8], mode: ReadMode) -> Result<(VecTrace, ImportReport), DcfbError> {
    let mut report = ImportReport::default();
    let whole = data.len() / IMPORT_RECORD_BYTES;
    let tail = data.len() % IMPORT_RECORD_BYTES;
    if tail != 0 && mode == ReadMode::Strict {
        return Err(DcfbError::trace_at(
            TraceErrorKind::Truncated,
            TraceLocation::at_byte((whole * IMPORT_RECORD_BYTES) as u64),
        ));
    }
    if tail != 0 {
        report.salvage = Some(format!(
            "{tail} trailing bytes are not a whole {IMPORT_RECORD_BYTES}-byte record"
        ));
    }

    // Pass 1: decode, stopping at the first malformed record in
    // lenient mode.
    let mut raw: Vec<RawRecord> = Vec::with_capacity(whole);
    for i in 0..whole {
        let at = i * IMPORT_RECORD_BYTES;
        match decode_record(&data[at..at + IMPORT_RECORD_BYTES], i as u64) {
            Ok(r) => raw.push(r),
            Err(e) if mode == ReadMode::Lenient => {
                report.salvage = Some(format!("{e}"));
                break;
            }
            Err(e) => return Err(e),
        }
    }

    // Pass 1b: learn per-ip sizes (sequential deltas) and taken
    // targets.
    let mut info: HashMap<Addr, IpInfo> = HashMap::new();
    for w in raw.windows(2) {
        let (cur, next) = (w[0], w[1]);
        let entry = info.entry(cur.ip).or_default();
        let delta = next.ip.wrapping_sub(cur.ip);
        if cur.is_branch && cur.taken {
            entry.taken_target = Some(next.ip);
        } else if entry.size.is_none() && (1..=15).contains(&delta) {
            entry.size = Some(delta as u8);
        }
    }

    // Pass 2: emit native instructions.
    let mut instrs: Vec<Instr> = Vec::with_capacity(raw.len());
    for (i, cur) in raw.iter().enumerate() {
        let known = info.get(&cur.ip).copied().unwrap_or_default();
        let size = known.size.unwrap_or(DEFAULT_SIZE);
        let next_ip = raw.get(i + 1).map(|n| n.ip);
        let fallthrough = cur.ip.wrapping_add(size as u64);
        let instr = if cur.is_branch {
            report.branches += 1;
            let kind = classify(cur);
            let target = if cur.taken {
                // Final-record taken branches fall back to the target
                // learned from an earlier taken occurrence.
                next_ip.or(known.taken_target).unwrap_or(fallthrough)
            } else {
                known.taken_target.unwrap_or(fallthrough)
            };
            Instr::branch(cur.ip, size, kind, target)
        } else {
            match next_ip {
                // A pc discontinuity with no branch flag: an interrupt
                // or trap boundary. Model it as an indirect jump so
                // the stream stays next_pc-continuous.
                Some(n) if n != fallthrough => {
                    report.discontinuities += 1;
                    Instr::branch(cur.ip, size, InstrKind::IndirectJump, n)
                }
                _ => Instr::other(cur.ip, size),
            }
        };
        instrs.push(instr);
    }
    report.records = instrs.len() as u64;
    report.bytes = (raw.len() * IMPORT_RECORD_BYTES) as u64;
    Ok((VecTrace::new(instrs), report))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    /// Builds one 64-byte record.
    fn rec(ip: u64, is_branch: u8, taken: u8, dst: [u8; 2], src: [u8; 4]) -> Vec<u8> {
        let mut r = vec![0u8; IMPORT_RECORD_BYTES];
        r[0..8].copy_from_slice(&ip.to_le_bytes());
        r[8] = is_branch;
        r[9] = taken;
        r[10..12].copy_from_slice(&dst);
        r[12..16].copy_from_slice(&src);
        r
    }

    fn seq(ip: u64) -> Vec<u8> {
        rec(ip, 0, 0, [0, 0], [0, 0, 0, 0])
    }

    fn cond(ip: u64, taken: u8) -> Vec<u8> {
        rec(
            ip,
            1,
            taken,
            [REG_INSTRUCTION_POINTER, 0],
            [REG_FLAGS, REG_INSTRUCTION_POINTER, 0, 0],
        )
    }

    #[test]
    fn sequential_run_infers_sizes() {
        let mut data = Vec::new();
        for pc in [0x1000u64, 0x1004, 0x1006, 0x100f] {
            data.extend(seq(pc));
        }
        let (trace, report) = import_champsim(&data, ReadMode::Strict).unwrap();
        assert_eq!(report.records, 4);
        assert_eq!(report.branches, 0);
        let sizes: Vec<u8> = trace.instrs().iter().map(|i| i.size).collect();
        // 4, 2, 9 inferred from deltas; final record defaults to 4.
        assert_eq!(sizes, vec![4, 2, 9, DEFAULT_SIZE]);
        assert!(trace.instrs().iter().all(|i| i.kind == InstrKind::Other));
    }

    #[test]
    fn taken_conditional_takes_next_ip_as_target() {
        let mut data = Vec::new();
        data.extend(seq(0x1000));
        data.extend(cond(0x1004, 1));
        data.extend(seq(0x2000));
        let (trace, report) = import_champsim(&data, ReadMode::Strict).unwrap();
        assert_eq!(report.branches, 1);
        let b = trace.instrs()[1];
        assert_eq!(b.kind, InstrKind::CondBranch { taken: true });
        assert_eq!(b.target, 0x2000);
    }

    #[test]
    fn not_taken_conditional_reuses_learned_target() {
        let mut data = Vec::new();
        data.extend(cond(0x1004, 1)); // taken: learns target 0x2000
        data.extend(seq(0x2000));
        data.extend(cond(0x1004, 0)); // not taken: reuses 0x2000
        data.extend(seq(0x1008));
        let (trace, _) = import_champsim(&data, ReadMode::Strict).unwrap();
        let nt = trace.instrs()[2];
        assert_eq!(nt.kind, InstrKind::CondBranch { taken: false });
        assert_eq!(nt.target, 0x2000);
        // Not-taken delta pinned the branch size.
        assert_eq!(nt.size, 4);
    }

    #[test]
    fn register_inference_classifies_call_return_jump() {
        let sp = REG_STACK_POINTER;
        let ip = REG_INSTRUCTION_POINTER;
        let call = rec(0x1000, 1, 1, [ip, sp], [ip, sp, 0, 0]);
        let callee = seq(0x5000);
        let ret = rec(0x5004, 1, 1, [ip, sp], [sp, 0, 0, 0]);
        let jump = rec(0x1004, 1, 1, [ip, 0], [0, 0, 0, 0]);
        let ijmp = rec(0x6000, 1, 1, [ip, 0], [3, 0, 0, 0]);
        let icall = rec(0x6004, 1, 1, [ip, sp], [ip, sp, 9, 0]);
        let mut data = Vec::new();
        for r in [&call, &callee, &ret, &jump, &ijmp, &icall, &seq(0x9000)] {
            data.extend(r.iter());
        }
        let (trace, _) = import_champsim(&data, ReadMode::Strict).unwrap();
        let kinds: Vec<InstrKind> = trace.instrs().iter().map(|i| i.kind).collect();
        assert_eq!(kinds[0], InstrKind::Call);
        assert_eq!(kinds[2], InstrKind::Return);
        assert_eq!(kinds[3], InstrKind::Jump);
        assert_eq!(kinds[4], InstrKind::IndirectJump);
        assert_eq!(kinds[5], InstrKind::IndirectCall);
    }

    #[test]
    fn non_branch_discontinuity_becomes_indirect_jump() {
        let mut data = Vec::new();
        data.extend(seq(0x1000));
        data.extend(seq(0x9000)); // 0x1000 -> 0x9000 with no branch flag
        data.extend(seq(0x9004));
        let (trace, report) = import_champsim(&data, ReadMode::Strict).unwrap();
        assert_eq!(report.discontinuities, 1);
        let i = trace.instrs()[0];
        assert_eq!(i.kind, InstrKind::IndirectJump);
        assert_eq!(i.target, 0x9000);
    }

    #[test]
    fn truncated_input_strict_vs_lenient() {
        let mut data = Vec::new();
        data.extend(seq(0x1000));
        data.extend(seq(0x1004));
        data.extend_from_slice(&[0u8; 10]); // partial third record
        let err = import_champsim(&data, ReadMode::Strict).unwrap_err();
        assert!(
            matches!(
                err,
                DcfbError::Trace {
                    kind: TraceErrorKind::Truncated,
                    ..
                }
            ),
            "got {err:?}"
        );
        assert_eq!(err.exit_code(), 3);
        let (trace, report) = import_champsim(&data, ReadMode::Lenient).unwrap();
        assert_eq!(trace.instrs().len(), 2);
        assert!(report.salvage.is_some());
    }

    #[test]
    fn malformed_flag_byte_strict_vs_lenient() {
        let mut data = Vec::new();
        data.extend(seq(0x1000));
        data.extend(rec(0x1004, 7, 0, [0, 0], [0, 0, 0, 0])); // is_branch = 7
        data.extend(seq(0x1008));
        let err = import_champsim(&data, ReadMode::Strict).unwrap_err();
        let DcfbError::Trace { kind, location } = &err else {
            panic!("expected Trace error, got {err:?}");
        };
        assert!(matches!(kind, TraceErrorKind::BadRecord(_)));
        assert_eq!(location.record, Some(1));
        let (trace, report) = import_champsim(&data, ReadMode::Lenient).unwrap();
        assert_eq!(trace.instrs().len(), 1);
        assert!(report.salvage.unwrap().contains("is_branch"));
    }

    #[test]
    fn empty_input_is_ok_and_empty() {
        let (trace, report) = import_champsim(&[], ReadMode::Strict).unwrap();
        assert!(trace.is_empty());
        assert_eq!(report.records, 0);
    }
}
