//! CRC-32 (IEEE 802.3) used by the `.dcfbt` v2 chunk footers and
//! header checksum.
//!
//! Table-driven, generated at compile time; matches the polynomial and
//! conventions of zlib/`crc32fast` so traces can be checked with
//! standard tools.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// A streaming CRC-32 accumulator.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finishes and returns the checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 64];
        for (i, b) in data.iter_mut().enumerate() {
            *b = i as u8;
        }
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), good, "flip at {byte}.{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
