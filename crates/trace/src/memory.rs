//! The [`CodeMemory`] abstraction: what a pre-decoder can see.
//!
//! Pre-decoding is central to the paper: the Dis prefetcher recovers
//! discontinuity targets by decoding the branch at a recorded offset, and
//! the BTB prefetcher decodes whole blocks to prefill a BTB prefetch
//! buffer. In silicon the pre-decoder reads the block's bytes; in this
//! reproduction it queries the workload's program image through this
//! trait.

use crate::{Block, StaticInstr};

/// Read-only access to the static instructions of the simulated program.
///
/// Implemented by `dcfb-workloads`' program image. Consumers (the
/// pre-decoder in `dcfb-frontend`) must treat the result as the exact
/// content of the named 64-byte block.
pub trait CodeMemory {
    /// Returns every instruction whose first byte lies in `block`, in
    /// ascending address order. Returns an empty vector for blocks that
    /// hold no code (data, padding, unmapped).
    fn instrs_in_block(&self, block: Block) -> Vec<StaticInstr>;

    /// Returns `true` if `block` contains at least one instruction.
    fn is_code_block(&self, block: Block) -> bool {
        !self.instrs_in_block(block).is_empty()
    }
}

impl<T: CodeMemory + ?Sized> CodeMemory for &T {
    fn instrs_in_block(&self, block: Block) -> Vec<StaticInstr> {
        (**self).instrs_in_block(block)
    }
}

impl<T: CodeMemory + ?Sized> CodeMemory for Box<T> {
    fn instrs_in_block(&self, block: Block) -> Vec<StaticInstr> {
        (**self).instrs_in_block(block)
    }
}

impl<T: CodeMemory + ?Sized> CodeMemory for std::sync::Arc<T> {
    fn instrs_in_block(&self, block: Block) -> Vec<StaticInstr> {
        (**self).instrs_in_block(block)
    }
}

/// A [`CodeMemory`] reconstructed from an *observed* instruction trace.
///
/// When the simulator replays an external trace (no program image is
/// available), the pre-decoder still needs to see the static
/// instructions of a block. This adapter rebuilds that view from the
/// dynamic stream: every distinct pc that appears in the trace becomes
/// a static instruction, with direct-branch targets taken from the
/// observed resolved targets. Blocks the trace never executed decode as
/// empty — exactly what a pre-decoder warmed only by execution would
/// know, and a conservative under-approximation for prefetchers.
#[derive(Clone, Debug, Default)]
pub struct RecordedCode {
    blocks: fxhash::FxHashMap<Block, Vec<StaticInstr>>,
}

impl RecordedCode {
    /// Creates an empty recording.
    pub fn new() -> Self {
        RecordedCode::default()
    }

    /// Builds a recording from a slice of dynamic instructions.
    pub fn from_trace(instrs: &[crate::Instr]) -> Self {
        let mut rec = RecordedCode::new();
        for i in instrs {
            rec.observe(i);
        }
        rec
    }

    /// Incorporates one dynamic instruction (idempotent per pc).
    pub fn observe(&mut self, i: &crate::Instr) {
        let block = crate::block_of(i.pc);
        let list = self.blocks.entry(block).or_default();
        match list.binary_search_by_key(&i.pc, |s| s.pc) {
            Ok(_) => {} // already recorded
            Err(pos) => {
                let kind = i.kind.static_kind();
                let target = kind.target_in_encoding().then_some(i.target);
                list.insert(
                    pos,
                    StaticInstr {
                        pc: i.pc,
                        size: i.size,
                        kind,
                        target,
                    },
                );
            }
        }
    }

    /// Number of distinct blocks observed.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of distinct instructions observed.
    pub fn instr_count(&self) -> usize {
        self.blocks.values().map(Vec::len).sum()
    }
}

impl CodeMemory for RecordedCode {
    fn instrs_in_block(&self, block: Block) -> Vec<StaticInstr> {
        self.blocks.get(&block).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::{block_base, StaticKind};

    /// A toy code memory with one 4-byte instruction per 16 bytes.
    struct Toy;

    impl CodeMemory for Toy {
        fn instrs_in_block(&self, block: Block) -> Vec<StaticInstr> {
            if block >= 8 {
                return Vec::new();
            }
            (0..4)
                .map(|i| StaticInstr {
                    pc: block_base(block) + i * 16,
                    size: 4,
                    kind: StaticKind::Other,
                    target: None,
                })
                .collect()
        }
    }

    #[test]
    fn default_is_code_block_uses_instrs() {
        let toy = Toy;
        assert!(toy.is_code_block(0));
        assert!(!toy.is_code_block(8));
    }

    #[test]
    fn recorded_code_reconstructs_blocks() {
        use crate::{Instr, InstrKind};
        let trace = vec![
            Instr::other(0x1000, 4),
            Instr::branch(0x1004, 4, InstrKind::CondBranch { taken: true }, 0x2000),
            Instr::other(0x2000, 4),
            Instr::branch(0x2004, 4, InstrKind::IndirectCall, 0x3000),
            // Re-execution of the same pcs must not duplicate.
            Instr::other(0x1000, 4),
            Instr::branch(0x1004, 4, InstrKind::CondBranch { taken: false }, 0x2000),
        ];
        let rec = RecordedCode::from_trace(&trace);
        assert_eq!(rec.block_count(), 2);
        assert_eq!(rec.instr_count(), 4);
        let b = rec.instrs_in_block(crate::block_of(0x1000));
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].pc, 0x1000);
        assert_eq!(b[1].kind, StaticKind::CondBranch);
        assert_eq!(b[1].target, Some(0x2000));
        // Indirect targets are NOT in the encoding.
        let b2 = rec.instrs_in_block(crate::block_of(0x2004));
        let call = b2.iter().find(|s| s.pc == 0x2004).unwrap();
        assert_eq!(call.kind, StaticKind::IndirectCall);
        assert_eq!(call.target, None);
        // Unseen blocks decode empty.
        assert!(rec.instrs_in_block(0xdead).is_empty());
    }

    #[test]
    fn recorded_code_keeps_instrs_sorted() {
        use crate::Instr;
        let mut rec = RecordedCode::new();
        rec.observe(&Instr::other(0x1008, 4));
        rec.observe(&Instr::other(0x1000, 4));
        rec.observe(&Instr::other(0x1004, 4));
        let b = rec.instrs_in_block(crate::block_of(0x1000));
        let pcs: Vec<u64> = b.iter().map(|s| s.pc).collect();
        assert_eq!(pcs, vec![0x1000, 0x1004, 0x1008]);
    }

    #[test]
    fn blanket_impls_delegate() {
        let toy = Toy;
        let by_ref: &dyn CodeMemory = &toy;
        assert_eq!(by_ref.instrs_in_block(1).len(), 4);
        let boxed: Box<dyn CodeMemory> = Box::new(Toy);
        assert_eq!(boxed.instrs_in_block(2).len(), 4);
        assert!(boxed.is_code_block(2));
    }
}
