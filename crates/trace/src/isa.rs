//! ISA encoding mode: fixed-length vs. variable-length instructions.

/// Instruction encoding mode.
///
/// The paper's evaluation machine is UltraSPARC (fixed 4-byte
/// instructions); Section V-D extends the proposal to variable-length
/// ISAs. The two modes differ in:
///
/// * how a `DisTable` entry names a branch inside a block (4-bit
///   instruction offset vs. 6-bit byte offset),
/// * whether a pre-decoder can find instruction boundaries on its own
///   (fixed) or needs a branch footprint (variable),
/// * the instruction size distribution used by the workload generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum IsaMode {
    /// Fixed 4-byte instructions (SPARC-like). Default.
    #[default]
    Fixed4,
    /// Variable 1–15-byte instructions (x86-like).
    Variable,
}

impl IsaMode {
    /// Number of bits a `DisTable` entry needs to name a branch within a
    /// 64-byte block in this mode (paper §V-D: 4 bits fixed, 6 bits
    /// variable — a 20 % `DisTable` storage increase on an 8-bit entry,
    /// i.e. 8 → 10 bits).
    pub fn dis_offset_bits(self) -> u32 {
        match self {
            IsaMode::Fixed4 => 4,
            IsaMode::Variable => 6,
        }
    }

    /// Maximum number of instructions that can start within one 64-byte
    /// block.
    pub fn max_instrs_per_block(self) -> usize {
        match self {
            IsaMode::Fixed4 => 16,
            IsaMode::Variable => 64,
        }
    }

    /// Whether a pre-decoder can determine instruction boundaries from
    /// the block bytes alone (without a branch footprint).
    pub fn self_describing_boundaries(self) -> bool {
        matches!(self, IsaMode::Fixed4)
    }

    /// Draws an instruction size (in bytes) for this mode.
    ///
    /// `entropy` is a uniformly random 32-bit value supplied by the
    /// caller, keeping this crate independent of any RNG implementation.
    /// The variable-length distribution is a coarse x86-64 mix: mostly
    /// 2–5 bytes, with a tail up to 11 bytes (mean ≈ 3.7 B).
    pub fn draw_size(self, entropy: u32) -> u8 {
        match self {
            IsaMode::Fixed4 => 4,
            IsaMode::Variable => {
                // Weighted buckets out of 100.
                const TABLE: [(u8, u32); 9] = [
                    (1, 6),
                    (2, 18),
                    (3, 24),
                    (4, 20),
                    (5, 14),
                    (6, 8),
                    (7, 5),
                    (8, 3),
                    (11, 2),
                ];
                let mut roll = entropy % 100;
                for (size, weight) in TABLE {
                    if roll < weight {
                        return size;
                    }
                    roll -= weight;
                }
                4
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_mode_properties() {
        let m = IsaMode::Fixed4;
        assert_eq!(m.dis_offset_bits(), 4);
        assert_eq!(m.max_instrs_per_block(), 16);
        assert!(m.self_describing_boundaries());
        for e in 0..1000 {
            assert_eq!(m.draw_size(e), 4);
        }
    }

    #[test]
    fn variable_mode_properties() {
        let m = IsaMode::Variable;
        assert_eq!(m.dis_offset_bits(), 6);
        assert_eq!(m.max_instrs_per_block(), 64);
        assert!(!m.self_describing_boundaries());
    }

    #[test]
    fn variable_sizes_in_range_and_varied() {
        let m = IsaMode::Variable;
        let mut seen = std::collections::HashSet::new();
        let mut sum = 0u64;
        const N: u32 = 10_000;
        for e in 0..N {
            // Spread entropy so buckets are hit evenly.
            let s = m.draw_size(e.wrapping_mul(2_654_435_761));
            assert!((1..=15).contains(&s));
            seen.insert(s);
            sum += u64::from(s);
        }
        assert!(seen.len() >= 5, "expected a spread of sizes: {seen:?}");
        let mean = sum as f64 / f64::from(N);
        assert!((2.5..5.5).contains(&mean), "mean size {mean}");
    }

    #[test]
    fn default_is_fixed() {
        assert_eq!(IsaMode::default(), IsaMode::Fixed4);
    }
}
