//! Trace (de)serialization: record a trace to a file and replay it.
//!
//! Three on-disk layouts are supported:
//!
//! * **Binary v2** (`.dcfbt`, magic `DCFBTRC2`) — the native format:
//!   a checksummed header (version, ISA mode, declared record count)
//!   followed by fixed-width records grouped into chunks, each chunk
//!   closed by a CRC-32 footer. Corruption and truncation are
//!   *detected*, never silently replayed; in [`ReadMode::Lenient`] the
//!   reader salvages the longest fully-verified prefix instead of
//!   failing.
//! * **Binary v1** (magic `DCFBTRC1`) — the legacy format: a bare magic
//!   header and records with no integrity metadata. Still read for
//!   compatibility; v1 files replay byte-identically.
//! * **Text** — one instruction per line,
//!   `pc size kind [target [taken]]`, with `#` comments; easy to
//!   generate from other simulators' traces (e.g. a ChampSim trace
//!   converted by a script).
//!
//! All formats round-trip exactly through [`Instr`], so a recorded
//! synthetic trace and a replayed one drive the simulator identically.
//!
//! # Binary v2 layout
//!
//! ```text
//! header (24 B):  "DCFBTRC2" | version u8 (=2) | isa u8 | chunk u16 LE
//!                 | records u64 LE | crc32(header[0..20]) u32 LE
//! chunk (×N):     k × 18 B records | crc32(payload) u32 LE
//!                 where k = min(chunk, records remaining)
//! record (18 B):  pc u64 LE | target u64 LE | size u8 | kind u8
//! ```
//!
//! Readers return [`DcfbError::Trace`] with a [`TraceErrorKind`] and a
//! byte/chunk location on any malformed input — they never panic.

use crate::crc::crc32;
use crate::instr::{Instr, InstrKind};
use crate::isa::IsaMode;
use crate::stream::{InstrStream, VecTrace};
use dcfb_errors::{DcfbError, TraceErrorKind, TraceLocation};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Magic bytes at the start of a legacy (v1) binary trace file.
pub const MAGIC: &[u8; 8] = b"DCFBTRC1";

/// Magic bytes at the start of a v2 binary trace file.
pub const MAGIC_V2: &[u8; 8] = b"DCFBTRC2";

/// One encoded record: pc (8) + target (8) + size (1) + kind (1).
const RECORD_BYTES: usize = 18;

/// Records per chunk written by default (9 KiB payload + 4 B footer).
pub const DEFAULT_CHUNK_RECORDS: u16 = 512;

/// v2 header length in bytes.
const V2_HEADER_BYTES: usize = 24;

/// ISA-mode byte meaning "not recorded" in a v2 header.
const ISA_UNSPECIFIED: u8 = 0xFF;

fn kind_code(kind: InstrKind) -> u8 {
    match kind {
        InstrKind::Other => 0,
        InstrKind::CondBranch { taken: false } => 1,
        InstrKind::CondBranch { taken: true } => 2,
        InstrKind::Jump => 3,
        InstrKind::Call => 4,
        InstrKind::IndirectJump => 5,
        InstrKind::IndirectCall => 6,
        InstrKind::Return => 7,
    }
}

fn kind_from_code(code: u8) -> Option<InstrKind> {
    Some(match code {
        0 => InstrKind::Other,
        1 => InstrKind::CondBranch { taken: false },
        2 => InstrKind::CondBranch { taken: true },
        3 => InstrKind::Jump,
        4 => InstrKind::Call,
        5 => InstrKind::IndirectJump,
        6 => InstrKind::IndirectCall,
        7 => InstrKind::Return,
        _ => return None,
    })
}

fn isa_to_code(isa: Option<IsaMode>) -> u8 {
    match isa {
        None => ISA_UNSPECIFIED,
        Some(IsaMode::Fixed4) => 0,
        Some(IsaMode::Variable) => 1,
    }
}

fn isa_from_code(code: u8) -> Option<Option<IsaMode>> {
    match code {
        ISA_UNSPECIFIED => Some(None),
        0 => Some(Some(IsaMode::Fixed4)),
        1 => Some(Some(IsaMode::Variable)),
        _ => None,
    }
}

/// Infallible fixed-width little-endian reads from a checked slice
/// (`b` must hold at least the required bytes at `at`).
#[inline]
fn le_u64_at(b: &[u8], at: usize) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[at..at + 8]);
    u64::from_le_bytes(a)
}

#[inline]
fn le_u32_at(b: &[u8], at: usize) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[at..at + 4]);
    u32::from_le_bytes(a)
}

#[inline]
fn le_u16_at(b: &[u8], at: usize) -> u16 {
    let mut a = [0u8; 2];
    a.copy_from_slice(&b[at..at + 2]);
    u16::from_le_bytes(a)
}

fn encode_record(i: &Instr, buf: &mut [u8; RECORD_BYTES]) {
    buf[0..8].copy_from_slice(&i.pc.to_le_bytes());
    buf[8..16].copy_from_slice(&i.target.to_le_bytes());
    buf[16] = i.size;
    buf[17] = kind_code(i.kind);
}

fn decode_record(buf: &[u8]) -> Result<Instr, TraceErrorKind> {
    let pc = le_u64_at(buf, 0);
    let target = le_u64_at(buf, 8);
    let size = buf[16];
    let kind = kind_from_code(buf[17]).ok_or(TraceErrorKind::BadKindCode(buf[17]))?;
    if size == 0 {
        return Err(TraceErrorKind::ZeroSize);
    }
    Ok(Instr {
        pc,
        size,
        kind,
        target,
    })
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

/// Writes up to `limit` instructions from `stream` to `out` in the
/// binary v2 format with default options (ISA unspecified,
/// [`DEFAULT_CHUNK_RECORDS`] per chunk). Returns the number written.
pub fn write_binary<S: InstrStream, W: Write>(
    stream: &mut S,
    out: W,
    limit: u64,
) -> io::Result<u64> {
    write_binary_v2(stream, out, limit, None, DEFAULT_CHUNK_RECORDS)
}

/// Writes up to `limit` instructions in the binary v2 format,
/// recording `isa` in the header and grouping `chunk_records` records
/// per CRC-checked chunk. Returns the number written.
///
/// The record stream is staged in memory so the header can declare the
/// exact record count (streams may end before `limit`).
pub fn write_binary_v2<S: InstrStream, W: Write>(
    stream: &mut S,
    out: W,
    limit: u64,
    isa: Option<IsaMode>,
    chunk_records: u16,
) -> io::Result<u64> {
    let chunk_records = chunk_records.max(1);
    let mut payload = Vec::new();
    let mut n = 0u64;
    let mut buf = [0u8; RECORD_BYTES];
    while n < limit {
        let Some(i) = stream.next_instr() else { break };
        encode_record(&i, &mut buf);
        payload.extend_from_slice(&buf);
        n += 1;
    }

    let mut w = BufWriter::new(out);
    let mut header = [0u8; V2_HEADER_BYTES];
    header[0..8].copy_from_slice(MAGIC_V2);
    header[8] = 2;
    header[9] = isa_to_code(isa);
    header[10..12].copy_from_slice(&chunk_records.to_le_bytes());
    header[12..20].copy_from_slice(&n.to_le_bytes());
    let hcrc = crc32(&header[0..20]);
    header[20..24].copy_from_slice(&hcrc.to_le_bytes());
    w.write_all(&header)?;

    for chunk in payload.chunks(usize::from(chunk_records) * RECORD_BYTES) {
        w.write_all(chunk)?;
        w.write_all(&crc32(chunk).to_le_bytes())?;
    }
    w.flush()?;
    Ok(n)
}

/// Writes up to `limit` instructions in the legacy v1 format (magic +
/// bare records, no integrity metadata). Kept so older tooling can be
/// fed and the v1 read path stays covered. Returns the number written.
pub fn write_binary_v1<S: InstrStream, W: Write>(
    stream: &mut S,
    out: W,
    limit: u64,
) -> io::Result<u64> {
    let mut w = BufWriter::new(out);
    w.write_all(MAGIC)?;
    let mut n = 0u64;
    let mut buf = [0u8; RECORD_BYTES];
    while n < limit {
        let Some(i) = stream.next_instr() else { break };
        encode_record(&i, &mut buf);
        w.write_all(&buf)?;
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

// ---------------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------------

/// How strictly a reader treats damaged input.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReadMode {
    /// Fail fast on the first sign of corruption or truncation.
    #[default]
    Strict,
    /// Salvage the longest fully-verified prefix; the reason reading
    /// stopped early is reported in [`ReadReport::salvage`].
    Lenient,
}

/// What a binary read observed (alongside the decoded trace).
#[derive(Clone, Debug)]
pub struct ReadReport {
    /// Format version (1 or 2).
    pub version: u8,
    /// ISA mode recorded in a v2 header, when present.
    pub isa: Option<IsaMode>,
    /// Records actually decoded.
    pub records: u64,
    /// Record count declared by a v2 header.
    pub declared_records: Option<u64>,
    /// In lenient mode: why reading stopped before the declared end
    /// (`None` means the stream was fully intact).
    pub salvage: Option<DcfbError>,
}

impl ReadReport {
    /// True when the stream was damaged and a prefix was salvaged.
    pub fn is_salvaged(&self) -> bool {
        self.salvage.is_some()
    }
}

/// Tracks the byte offset so diagnostics can name where input broke.
struct CountingReader<R> {
    inner: R,
    pos: u64,
}

/// What one fixed-size read produced.
enum Fill {
    /// The buffer was filled.
    Full,
    /// Clean EOF before any byte of this item.
    Eof,
    /// EOF partway through this item (after at least one byte).
    Partial,
}

impl<R: Read> CountingReader<R> {
    fn new(inner: R) -> Self {
        CountingReader { inner, pos: 0 }
    }

    /// Reads exactly `buf.len()` bytes or reports how far it got.
    fn fill(&mut self, buf: &mut [u8]) -> Result<Fill, DcfbError> {
        let mut got = 0usize;
        while got < buf.len() {
            match self.inner.read(&mut buf[got..]) {
                Ok(0) => {
                    return Ok(if got == 0 { Fill::Eof } else { Fill::Partial });
                }
                Ok(n) => {
                    got += n;
                    self.pos += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(DcfbError::trace_at(
                        TraceErrorKind::Io(e.to_string()),
                        TraceLocation::at_byte(self.pos),
                    ));
                }
            }
        }
        Ok(Fill::Full)
    }
}

/// Reads a binary trace (v1 or v2, auto-detected by magic) in strict
/// mode: any corruption or truncation is an error.
///
/// # Errors
///
/// Returns [`DcfbError::Trace`] describing what was wrong and where;
/// see [`TraceErrorKind`].
pub fn read_binary<R: Read>(input: R) -> Result<VecTrace, DcfbError> {
    read_binary_checked(input, ReadMode::Strict).map(|(t, _)| t)
}

/// Reads a binary trace (v1 or v2) under `mode`, returning the decoded
/// trace plus a [`ReadReport`] describing what was observed.
///
/// In [`ReadMode::Lenient`], damage *after* the header degrades to a
/// salvaged prefix: every chunk whose CRC verified (v2) or record that
/// decoded cleanly (v1) before the damage is kept, and
/// [`ReadReport::salvage`] carries the error that stopped reading. A
/// damaged header is fatal in both modes — nothing after it can be
/// trusted.
pub fn read_binary_checked<R: Read>(
    input: R,
    mode: ReadMode,
) -> Result<(VecTrace, ReadReport), DcfbError> {
    let mut r = CountingReader::new(BufReader::new(input));
    let mut magic = [0u8; 8];
    match r.fill(&mut magic)? {
        Fill::Full => {}
        Fill::Eof | Fill::Partial => {
            return Err(DcfbError::trace_at(
                TraceErrorKind::Truncated,
                TraceLocation::at_byte(0),
            ));
        }
    }
    if &magic == MAGIC_V2 {
        read_v2_body(r, mode)
    } else if &magic == MAGIC {
        read_v1_body(r, mode)
    } else {
        Err(DcfbError::trace_at(
            TraceErrorKind::BadMagic,
            TraceLocation::at_byte(0),
        ))
    }
}

fn read_v1_body<R: Read>(
    mut r: CountingReader<R>,
    mode: ReadMode,
) -> Result<(VecTrace, ReadReport), DcfbError> {
    let mut instrs = Vec::new();
    let mut buf = [0u8; RECORD_BYTES];
    let mut salvage = None;
    loop {
        let at = r.pos;
        match r.fill(&mut buf)? {
            Fill::Eof => break,
            Fill::Partial => {
                let err = DcfbError::trace_at(
                    TraceErrorKind::Truncated,
                    TraceLocation {
                        byte_offset: Some(at),
                        record: Some(instrs.len() as u64),
                        chunk: None,
                    },
                );
                match mode {
                    ReadMode::Strict => return Err(err),
                    ReadMode::Lenient => {
                        salvage = Some(err);
                        break;
                    }
                }
            }
            Fill::Full => {}
        }
        match decode_record(&buf) {
            Ok(i) => instrs.push(i),
            Err(kind) => {
                let err = DcfbError::trace_at(
                    kind,
                    TraceLocation {
                        byte_offset: Some(at),
                        record: Some(instrs.len() as u64),
                        chunk: None,
                    },
                );
                match mode {
                    ReadMode::Strict => return Err(err),
                    ReadMode::Lenient => {
                        salvage = Some(err);
                        break;
                    }
                }
            }
        }
    }
    let records = instrs.len() as u64;
    Ok((
        VecTrace::new(instrs),
        ReadReport {
            version: 1,
            isa: None,
            records,
            declared_records: None,
            salvage,
        },
    ))
}

fn read_v2_body<R: Read>(
    mut r: CountingReader<R>,
    mode: ReadMode,
) -> Result<(VecTrace, ReadReport), DcfbError> {
    // Rebuild the full header buffer (magic already consumed) so the
    // header CRC can be verified.
    let mut header = [0u8; V2_HEADER_BYTES];
    header[0..8].copy_from_slice(MAGIC_V2);
    match r.fill(&mut header[8..])? {
        Fill::Full => {}
        Fill::Eof | Fill::Partial => {
            return Err(DcfbError::trace_at(
                TraceErrorKind::Truncated,
                TraceLocation::at_byte(r.pos),
            ));
        }
    }
    // A damaged header is fatal even in lenient mode: the chunk
    // geometry and record count below it can't be trusted.
    let stored_hcrc = le_u32_at(&header, 20);
    let computed_hcrc = crc32(&header[0..20]);
    if stored_hcrc != computed_hcrc {
        return Err(DcfbError::trace_at(
            TraceErrorKind::BadHeader(format!(
                "header checksum mismatch (stored {stored_hcrc:#010x}, computed {computed_hcrc:#010x})"
            )),
            TraceLocation::at_byte(20),
        ));
    }
    let version = header[8];
    if version != 2 {
        return Err(DcfbError::trace_at(
            TraceErrorKind::BadVersion(version),
            TraceLocation::at_byte(8),
        ));
    }
    let isa = isa_from_code(header[9]).ok_or_else(|| {
        DcfbError::trace_at(
            TraceErrorKind::BadHeader(format!("bad ISA code {}", header[9])),
            TraceLocation::at_byte(9),
        )
    })?;
    let chunk_records = le_u16_at(&header, 10);
    if chunk_records == 0 {
        return Err(DcfbError::trace_at(
            TraceErrorKind::BadHeader("zero chunk size".to_owned()),
            TraceLocation::at_byte(10),
        ));
    }
    let declared = le_u64_at(&header, 12);

    let mut instrs: Vec<Instr> = Vec::new();
    let mut salvage = None;
    let mut remaining = declared;
    let mut chunk_idx = 0u64;
    let mut payload = vec![0u8; usize::from(chunk_records) * RECORD_BYTES];

    'chunks: while remaining > 0 {
        let k = u64::from(chunk_records).min(remaining) as usize;
        let chunk_at = r.pos;
        let body = &mut payload[..k * RECORD_BYTES];
        let fail = |err: DcfbError, salvage: &mut Option<DcfbError>| -> Result<bool, DcfbError> {
            match mode {
                ReadMode::Strict => Err(err),
                ReadMode::Lenient => {
                    *salvage = Some(err);
                    Ok(true) // stop
                }
            }
        };
        match r.fill(body)? {
            Fill::Full => {}
            Fill::Eof => {
                let err = DcfbError::trace_at(
                    TraceErrorKind::RecordCountMismatch {
                        declared,
                        actual: instrs.len() as u64,
                    },
                    TraceLocation::in_chunk(chunk_idx, chunk_at),
                );
                if fail(err, &mut salvage)? {
                    break 'chunks;
                }
            }
            Fill::Partial => {
                let err = DcfbError::trace_at(
                    TraceErrorKind::Truncated,
                    TraceLocation::in_chunk(chunk_idx, chunk_at),
                );
                if fail(err, &mut salvage)? {
                    break 'chunks;
                }
            }
        }
        let mut footer = [0u8; 4];
        match r.fill(&mut footer)? {
            Fill::Full => {}
            Fill::Eof | Fill::Partial => {
                let err = DcfbError::trace_at(
                    TraceErrorKind::Truncated,
                    TraceLocation::in_chunk(chunk_idx, r.pos),
                );
                if fail(err, &mut salvage)? {
                    break 'chunks;
                }
            }
        }
        let stored = u32::from_le_bytes(footer);
        let computed = crc32(body);
        if stored != computed {
            let err = DcfbError::trace_at(
                TraceErrorKind::ChecksumMismatch { stored, computed },
                TraceLocation::in_chunk(chunk_idx, chunk_at),
            );
            if fail(err, &mut salvage)? {
                break 'chunks;
            }
        }
        // CRC verified: decode the chunk. A decode error here means the
        // file was *written* corrupt (bad kind/size behind a valid
        // checksum) — still rejected, or salvaged up to the bad record.
        for (ri, rec) in body.chunks_exact(RECORD_BYTES).enumerate() {
            match decode_record(rec) {
                Ok(i) => instrs.push(i),
                Err(kind) => {
                    let err = DcfbError::trace_at(
                        kind,
                        TraceLocation {
                            byte_offset: Some(chunk_at + (ri * RECORD_BYTES) as u64),
                            record: Some(instrs.len() as u64),
                            chunk: Some(chunk_idx),
                        },
                    );
                    if fail(err, &mut salvage)? {
                        break 'chunks;
                    }
                }
            }
        }
        remaining -= k as u64;
        chunk_idx += 1;
    }

    let records = instrs.len() as u64;
    Ok((
        VecTrace::new(instrs),
        ReadReport {
            version: 2,
            isa,
            records,
            declared_records: Some(declared),
            salvage,
        },
    ))
}

// ---------------------------------------------------------------------------
// Text format
// ---------------------------------------------------------------------------

fn kind_name(kind: InstrKind) -> &'static str {
    match kind {
        InstrKind::Other => "other",
        InstrKind::CondBranch { .. } => "cond",
        InstrKind::Jump => "jump",
        InstrKind::Call => "call",
        InstrKind::IndirectJump => "ijump",
        InstrKind::IndirectCall => "icall",
        InstrKind::Return => "ret",
    }
}

/// Writes up to `limit` instructions as text, one per line:
/// `pc size kind [target [taken]]` (hex pc/target). Returns the number
/// written.
pub fn write_text<S: InstrStream, W: Write>(stream: &mut S, out: W, limit: u64) -> io::Result<u64> {
    let mut w = BufWriter::new(out);
    writeln!(w, "# dcfb text trace v1: pc size kind [target [taken]]")?;
    let mut n = 0u64;
    while n < limit {
        let Some(i) = stream.next_instr() else { break };
        match i.kind {
            InstrKind::Other => writeln!(w, "{:#x} {} other", i.pc, i.size)?,
            InstrKind::CondBranch { taken } => writeln!(
                w,
                "{:#x} {} cond {:#x} {}",
                i.pc,
                i.size,
                i.target,
                u8::from(taken)
            )?,
            k => writeln!(w, "{:#x} {} {} {:#x}", i.pc, i.size, kind_name(k), i.target)?,
        }
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

/// Parses a text trace written by [`write_text`] (or hand-made in the
/// same format). Blank lines and `#` comments are skipped.
///
/// # Errors
///
/// Returns [`DcfbError::Trace`] with [`TraceErrorKind::BadTextLine`]
/// naming the offending line on malformed input.
pub fn read_text<R: Read>(input: R) -> Result<VecTrace, DcfbError> {
    let r = BufReader::new(input);
    let mut instrs = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line.map_err(|e| DcfbError::trace(TraceErrorKind::Io(e.to_string())))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |msg: &str| {
            DcfbError::trace(TraceErrorKind::BadTextLine {
                line: lineno as u64 + 1,
                message: format!("{msg}: {line}"),
            })
        };
        let mut parts = line.split_whitespace();
        let pc = parse_u64(parts.next().ok_or_else(|| bad("missing pc"))?)
            .ok_or_else(|| bad("bad pc"))?;
        let size: u8 = parts
            .next()
            .ok_or_else(|| bad("missing size"))?
            .parse()
            .map_err(|_| bad("bad size"))?;
        if size == 0 {
            return Err(bad("zero size"));
        }
        let kind_str = parts.next().ok_or_else(|| bad("missing kind"))?;
        let mut target = 0u64;
        let kind = match kind_str {
            "other" => InstrKind::Other,
            "cond" => {
                target = parse_u64(parts.next().ok_or_else(|| bad("cond needs target"))?)
                    .ok_or_else(|| bad("bad target"))?;
                let taken: u8 = parts
                    .next()
                    .ok_or_else(|| bad("cond needs taken flag"))?
                    .parse()
                    .map_err(|_| bad("bad taken flag"))?;
                InstrKind::CondBranch { taken: taken != 0 }
            }
            other => {
                target = parse_u64(parts.next().ok_or_else(|| bad("branch needs target"))?)
                    .ok_or_else(|| bad("bad target"))?;
                match other {
                    "jump" => InstrKind::Jump,
                    "call" => InstrKind::Call,
                    "ijump" => InstrKind::IndirectJump,
                    "icall" => InstrKind::IndirectCall,
                    "ret" => InstrKind::Return,
                    _ => return Err(bad("unknown kind")),
                }
            }
        };
        instrs.push(Instr {
            pc,
            size,
            kind,
            target,
        });
    }
    Ok(VecTrace::new(instrs))
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::fault::FaultyReader;

    fn sample() -> Vec<Instr> {
        vec![
            Instr::other(0x1000, 4),
            Instr::branch(0x1004, 4, InstrKind::CondBranch { taken: true }, 0x2000),
            Instr::branch(0x2000, 2, InstrKind::Call, 0x3000),
            Instr::branch(0x3000, 7, InstrKind::Return, 0x2002),
            Instr::branch(0x2002, 4, InstrKind::IndirectJump, 0x4000),
            Instr::branch(0x4000, 1, InstrKind::CondBranch { taken: false }, 0x9999),
        ]
    }

    /// `n` synthetic-but-valid records (varied kinds and fields).
    fn many(n: usize) -> Vec<Instr> {
        (0..n)
            .map(|i| {
                let pc = 0x1_0000 + (i as u64) * 4;
                match i % 4 {
                    0 => Instr::other(pc, 4),
                    1 => Instr::branch(pc, 4, InstrKind::CondBranch { taken: i % 8 == 1 }, pc + 64),
                    2 => Instr::branch(pc, 4, InstrKind::Call, pc + 128),
                    _ => Instr::branch(pc, 4, InstrKind::Return, pc.wrapping_sub(32)),
                }
            })
            .collect()
    }

    fn v2_bytes(instrs: &[Instr], chunk: u16) -> Vec<u8> {
        let mut src = VecTrace::new(instrs.to_vec());
        let mut buf = Vec::new();
        write_binary_v2(&mut src, &mut buf, u64::MAX, Some(IsaMode::Fixed4), chunk).unwrap();
        buf
    }

    fn trace_kind(err: &DcfbError) -> &TraceErrorKind {
        match err {
            DcfbError::Trace { kind, .. } => kind,
            other => panic!("expected trace error, got {other:?}"),
        }
    }

    #[test]
    fn binary_round_trip() {
        let mut src = VecTrace::new(sample());
        let mut buf = Vec::new();
        let n = write_binary(&mut src, &mut buf, u64::MAX).unwrap();
        assert_eq!(n, 6);
        assert!(buf.starts_with(MAGIC_V2));
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back.instrs(), sample().as_slice());
    }

    #[test]
    fn v2_header_records_metadata() {
        let buf = v2_bytes(&many(100), 16);
        let (t, rep) = read_binary_checked(buf.as_slice(), ReadMode::Strict).unwrap();
        assert_eq!(rep.version, 2);
        assert_eq!(rep.isa, Some(IsaMode::Fixed4));
        assert_eq!(rep.declared_records, Some(100));
        assert_eq!(rep.records, 100);
        assert!(!rep.is_salvaged());
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn v1_round_trip_still_reads() {
        let mut src = VecTrace::new(sample());
        let mut buf = Vec::new();
        let n = write_binary_v1(&mut src, &mut buf, u64::MAX).unwrap();
        assert_eq!(n, 6);
        assert!(buf.starts_with(MAGIC));
        let (back, rep) = read_binary_checked(buf.as_slice(), ReadMode::Strict).unwrap();
        assert_eq!(rep.version, 1);
        assert_eq!(back.instrs(), sample().as_slice());
    }

    #[test]
    fn text_round_trip() {
        let mut src = VecTrace::new(sample());
        let mut buf = Vec::new();
        let n = write_text(&mut src, &mut buf, u64::MAX).unwrap();
        assert_eq!(n, 6);
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(back.instrs(), sample().as_slice());
    }

    #[test]
    fn limit_truncates() {
        let mut src = VecTrace::new(sample());
        let mut buf = Vec::new();
        assert_eq!(write_binary(&mut src, &mut buf, 2).unwrap(), 2);
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOTATRCE"[..]).unwrap_err();
        assert_eq!(trace_kind(&err), &TraceErrorKind::BadMagic);
    }

    #[test]
    fn binary_rejects_flipped_magic_byte() {
        for version in [1u8, 2] {
            let mut buf = if version == 1 {
                let mut src = VecTrace::new(sample());
                let mut b = Vec::new();
                write_binary_v1(&mut src, &mut b, u64::MAX).unwrap();
                b
            } else {
                v2_bytes(&sample(), 4)
            };
            buf[3] ^= 0x20; // DCFBTRC? -> DCfBTRC?
            let err = read_binary(buf.as_slice()).unwrap_err();
            assert_eq!(trace_kind(&err), &TraceErrorKind::BadMagic, "v{version}");
        }
    }

    #[test]
    fn binary_rejects_empty_file() {
        let err = read_binary(&b""[..]).unwrap_err();
        assert_eq!(trace_kind(&err), &TraceErrorKind::Truncated);
        // A bare magic with nothing behind it is a valid empty v1 trace…
        let t = read_binary(&MAGIC[..]).unwrap();
        assert!(t.is_empty());
        // …but a bare v2 magic is a truncated header.
        let err = read_binary(&MAGIC_V2[..]).unwrap_err();
        assert_eq!(trace_kind(&err), &TraceErrorKind::Truncated);
    }

    #[test]
    fn binary_rejects_mid_record_truncation() {
        // v1: chop the last record in half.
        let mut src = VecTrace::new(sample());
        let mut buf = Vec::new();
        write_binary_v1(&mut src, &mut buf, u64::MAX).unwrap();
        buf.truncate(buf.len() - RECORD_BYTES / 2);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert_eq!(trace_kind(&err), &TraceErrorKind::Truncated);

        // v2: chop inside a chunk payload.
        let mut buf = v2_bytes(&many(40), 16);
        buf.truncate(buf.len() - 7);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert_eq!(trace_kind(&err), &TraceErrorKind::Truncated);
    }

    #[test]
    fn binary_rejects_bad_kind_code() {
        // v1 path.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&[0u8; 16]);
        buf.push(4); // size
        buf.push(99); // bad kind
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert_eq!(trace_kind(&err), &TraceErrorKind::BadKindCode(99));

        // v2 path: a bad kind *behind a valid checksum* (written
        // corrupt, not transmission damage) must still be rejected.
        let mut bad = sample();
        bad[2] = Instr::other(0x2000, 2);
        let mut buf = v2_bytes(&bad, 4);
        // Rewrite record 2's kind byte and fix up its chunk CRC.
        let rec_off = V2_HEADER_BYTES + 2 * RECORD_BYTES;
        buf[rec_off + 17] = 99;
        let payload_start = V2_HEADER_BYTES;
        let payload_len = 4 * RECORD_BYTES;
        let crc = crc32(&buf[payload_start..payload_start + payload_len]);
        buf[payload_start + payload_len..payload_start + payload_len + 4]
            .copy_from_slice(&crc.to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert_eq!(trace_kind(&err), &TraceErrorKind::BadKindCode(99));
    }

    #[test]
    fn binary_rejects_zero_size() {
        let mut bad = sample();
        bad[1] = Instr {
            pc: 0x1004,
            size: 0,
            kind: InstrKind::Other,
            target: 0,
        };
        let buf = v2_bytes(&bad, 4);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert_eq!(trace_kind(&err), &TraceErrorKind::ZeroSize);
    }

    #[test]
    fn v2_detects_payload_bit_flip_strict() {
        let mut buf = v2_bytes(&many(64), 16);
        let flip_at = V2_HEADER_BYTES + 5; // inside chunk 0's payload
        buf[flip_at] ^= 0x01;
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(
            matches!(trace_kind(&err), TraceErrorKind::ChecksumMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn v2_salvages_prefix_in_lenient_mode() {
        let instrs = many(64);
        let mut buf = v2_bytes(&instrs, 16);
        // Damage chunk 2 (records 32..48).
        let chunk_bytes = 16 * RECORD_BYTES + 4;
        let flip_at = V2_HEADER_BYTES + 2 * chunk_bytes + 9;
        buf[flip_at] ^= 0x80;
        let (t, rep) = read_binary_checked(buf.as_slice(), ReadMode::Lenient).unwrap();
        assert_eq!(t.len(), 32, "salvage stops at the last valid chunk");
        assert_eq!(t.instrs(), &instrs[..32]);
        assert!(rep.is_salvaged());
        assert!(matches!(
            trace_kind(rep.salvage.as_ref().unwrap()),
            TraceErrorKind::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn v2_salvages_truncated_tail_in_lenient_mode() {
        let instrs = many(64);
        let mut buf = v2_bytes(&instrs, 16);
        buf.truncate(buf.len() - 30); // mid-chunk 3
        let (t, rep) = read_binary_checked(buf.as_slice(), ReadMode::Lenient).unwrap();
        assert_eq!(t.len(), 48);
        assert_eq!(t.instrs(), &instrs[..48]);
        assert!(rep.is_salvaged());
    }

    #[test]
    fn v2_detects_missing_records_at_chunk_boundary() {
        let instrs = many(64);
        let mut buf = v2_bytes(&instrs, 16);
        let chunk_bytes = 16 * RECORD_BYTES + 4;
        buf.truncate(V2_HEADER_BYTES + 2 * chunk_bytes); // exactly 2 chunks
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert_eq!(
            trace_kind(&err),
            &TraceErrorKind::RecordCountMismatch {
                declared: 64,
                actual: 32
            }
        );
        let (t, rep) = read_binary_checked(buf.as_slice(), ReadMode::Lenient).unwrap();
        assert_eq!(t.len(), 32);
        assert!(rep.is_salvaged());
    }

    #[test]
    fn v2_header_damage_is_fatal_even_lenient() {
        let mut buf = v2_bytes(&many(32), 16);
        buf[12] ^= 0x01; // declared-count byte; caught by the header CRC
        for mode in [ReadMode::Strict, ReadMode::Lenient] {
            let err = read_binary_checked(buf.as_slice(), mode).unwrap_err();
            assert!(
                matches!(trace_kind(&err), TraceErrorKind::BadHeader(_)),
                "{err}"
            );
        }
    }

    #[test]
    fn v1_lenient_salvages_to_last_good_record() {
        let mut src = VecTrace::new(sample());
        let mut buf = Vec::new();
        write_binary_v1(&mut src, &mut buf, u64::MAX).unwrap();
        buf.truncate(buf.len() - 5); // mid-final-record
        let (t, rep) = read_binary_checked(buf.as_slice(), ReadMode::Lenient).unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.instrs(), &sample()[..5]);
        assert!(rep.is_salvaged());
    }

    /// Satellite: any single-bit corruption of a valid v2 trace is
    /// either detected by the strict reader or provably harmless (the
    /// decoded stream is identical). With every byte covered by the
    /// magic, the header CRC, or a chunk CRC, nothing may silently
    /// change the instruction stream.
    #[test]
    fn v2_single_bit_corruption_never_silently_alters_the_stream() {
        let instrs = many(50);
        let buf = v2_bytes(&instrs, 16);
        let mut silent_accepts = 0u32;
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut dam = buf.clone();
                dam[byte] ^= 1 << bit;
                match read_binary(dam.as_slice()) {
                    Err(_) => {} // detected
                    Ok(t) => {
                        assert_eq!(
                            t.instrs(),
                            instrs.as_slice(),
                            "flip at byte {byte} bit {bit} silently changed the stream"
                        );
                        silent_accepts += 1;
                    }
                }
            }
        }
        // Every byte is integrity-covered, so nothing should be
        // accepted at all — document that expectation.
        assert_eq!(silent_accepts, 0, "v2 has no padding; all flips detected");
    }

    #[test]
    fn faulty_reader_corruption_is_detected() {
        let buf = v2_bytes(&many(64), 16);
        // Deterministically sweep fault offsets with the FaultyReader.
        for seed in 0..32u64 {
            let reader = FaultyReader::with_random_bit_flip(buf.as_slice(), buf.len(), seed);
            match read_binary(reader) {
                Err(_) => {}
                Ok(t) => assert_eq!(t.len(), 64, "seed {seed} silently altered the stream"),
            }
        }
    }

    #[test]
    fn faulty_reader_short_reads_are_harmless() {
        let buf = v2_bytes(&many(64), 16);
        // Short reads exercise the retry loop but deliver intact bytes.
        let reader = FaultyReader::with_max_read(buf.as_slice(), 3);
        let t = read_binary(reader).unwrap();
        assert_eq!(t.len(), 64);
    }

    #[test]
    fn faulty_reader_io_error_surfaces_as_trace_io() {
        let buf = v2_bytes(&many(64), 16);
        let reader = FaultyReader::with_io_error_at(buf.as_slice(), 100);
        let err = read_binary(reader).unwrap_err();
        assert!(matches!(trace_kind(&err), TraceErrorKind::Io(_)), "{err}");
    }

    #[test]
    fn text_accepts_comments_and_decimal() {
        let text = "# comment\n\n4096 4 other\n0x1004 4 jump 8192\n";
        let t = read_text(text.as_bytes()).unwrap();
        assert_eq!(t.instrs().len(), 2);
        assert_eq!(t.instrs()[0].pc, 4096);
        assert_eq!(t.instrs()[1].target, 8192);
    }

    #[test]
    fn text_reports_line_numbers() {
        let text = "0x1000 4 other\n0x1004 4 zorp\n";
        let err = read_text(text.as_bytes()).unwrap_err();
        assert!(
            matches!(
                trace_kind(&err),
                TraceErrorKind::BadTextLine { line: 2, .. }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn text_rejects_missing_fields() {
        assert!(read_text(&b"0x1000"[..]).is_err());
        assert!(read_text(&b"0x1000 4 cond 0x2000"[..]).is_err()); // no taken
        assert!(read_text(&b"0x1000 0 other"[..]).is_err()); // zero size
    }

    #[test]
    fn replayed_trace_drives_streams_identically() {
        let mut src = VecTrace::new(sample());
        let mut buf = Vec::new();
        write_binary(&mut src, &mut buf, u64::MAX).unwrap();
        let mut a = VecTrace::new(sample());
        let mut b = read_binary(buf.as_slice()).unwrap();
        loop {
            let (x, y) = (a.next_instr(), b.next_instr());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }
}
