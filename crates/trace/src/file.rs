//! Trace (de)serialization: record a trace to a file and replay it.
//!
//! Two formats are supported:
//!
//! * **Binary** (`.dcfbt`) — compact fixed-width records behind a magic
//!   header; the native interchange format.
//! * **Text** — one instruction per line,
//!   `pc size kind [target [taken]]`, with `#` comments; easy to
//!   generate from other simulators' traces (e.g. a ChampSim trace
//!   converted by a script).
//!
//! Both round-trip exactly through [`Instr`], so a recorded synthetic
//! trace and a replayed one drive the simulator identically.

use crate::instr::{Instr, InstrKind};
use crate::stream::{InstrStream, VecTrace};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Magic bytes at the start of a binary trace file.
pub const MAGIC: &[u8; 8] = b"DCFBTRC1";

/// One encoded record: pc (8) + target (8) + size (1) + kind (1).
const RECORD_BYTES: usize = 18;

fn kind_code(kind: InstrKind) -> u8 {
    match kind {
        InstrKind::Other => 0,
        InstrKind::CondBranch { taken: false } => 1,
        InstrKind::CondBranch { taken: true } => 2,
        InstrKind::Jump => 3,
        InstrKind::Call => 4,
        InstrKind::IndirectJump => 5,
        InstrKind::IndirectCall => 6,
        InstrKind::Return => 7,
    }
}

fn kind_from_code(code: u8) -> Option<InstrKind> {
    Some(match code {
        0 => InstrKind::Other,
        1 => InstrKind::CondBranch { taken: false },
        2 => InstrKind::CondBranch { taken: true },
        3 => InstrKind::Jump,
        4 => InstrKind::Call,
        5 => InstrKind::IndirectJump,
        6 => InstrKind::IndirectCall,
        7 => InstrKind::Return,
        _ => return None,
    })
}

/// Writes up to `limit` instructions from `stream` to `out` in the
/// binary format. Returns the number written.
pub fn write_binary<S: InstrStream, W: Write>(
    stream: &mut S,
    out: W,
    limit: u64,
) -> io::Result<u64> {
    let mut w = BufWriter::new(out);
    w.write_all(MAGIC)?;
    let mut n = 0u64;
    let mut buf = [0u8; RECORD_BYTES];
    while n < limit {
        let Some(i) = stream.next_instr() else { break };
        buf[0..8].copy_from_slice(&i.pc.to_le_bytes());
        buf[8..16].copy_from_slice(&i.target.to_le_bytes());
        buf[16] = i.size;
        buf[17] = kind_code(i.kind);
        w.write_all(&buf)?;
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

/// Reads a binary trace written by [`write_binary`].
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic header, a truncated record, or
/// an unknown instruction-kind code.
pub fn read_binary<R: Read>(input: R) -> io::Result<VecTrace> {
    let mut r = BufReader::new(input);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a DCFB binary trace (bad magic)",
        ));
    }
    let mut instrs = Vec::new();
    let mut buf = [0u8; RECORD_BYTES];
    loop {
        match r.read_exact(&mut buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                // Distinguish clean EOF from a truncated record: peek.
                break;
            }
            Err(e) => return Err(e),
        }
        let pc = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
        let target = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        let size = buf[16];
        let kind = kind_from_code(buf[17]).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad kind code {}", buf[17]))
        })?;
        if size == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "zero instruction size",
            ));
        }
        instrs.push(Instr {
            pc,
            size,
            kind,
            target,
        });
    }
    Ok(VecTrace::new(instrs))
}

fn kind_name(kind: InstrKind) -> &'static str {
    match kind {
        InstrKind::Other => "other",
        InstrKind::CondBranch { .. } => "cond",
        InstrKind::Jump => "jump",
        InstrKind::Call => "call",
        InstrKind::IndirectJump => "ijump",
        InstrKind::IndirectCall => "icall",
        InstrKind::Return => "ret",
    }
}

/// Writes up to `limit` instructions as text, one per line:
/// `pc size kind [target [taken]]` (hex pc/target). Returns the number
/// written.
pub fn write_text<S: InstrStream, W: Write>(
    stream: &mut S,
    out: W,
    limit: u64,
) -> io::Result<u64> {
    let mut w = BufWriter::new(out);
    writeln!(w, "# dcfb text trace v1: pc size kind [target [taken]]")?;
    let mut n = 0u64;
    while n < limit {
        let Some(i) = stream.next_instr() else { break };
        match i.kind {
            InstrKind::Other => writeln!(w, "{:#x} {} other", i.pc, i.size)?,
            InstrKind::CondBranch { taken } => writeln!(
                w,
                "{:#x} {} cond {:#x} {}",
                i.pc,
                i.size,
                i.target,
                u8::from(taken)
            )?,
            k => writeln!(w, "{:#x} {} {} {:#x}", i.pc, i.size, kind_name(k), i.target)?,
        }
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

/// Parses a text trace written by [`write_text`] (or hand-made in the
/// same format). Blank lines and `#` comments are skipped.
///
/// # Errors
///
/// Returns `InvalidData` with the offending line number on malformed
/// input.
pub fn read_text<R: Read>(input: R) -> io::Result<VecTrace> {
    let r = BufReader::new(input);
    let mut instrs = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |msg: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {msg}: {line}", lineno + 1),
            )
        };
        let mut parts = line.split_whitespace();
        let pc = parse_u64(parts.next().ok_or_else(|| bad("missing pc"))?)
            .ok_or_else(|| bad("bad pc"))?;
        let size: u8 = parts
            .next()
            .ok_or_else(|| bad("missing size"))?
            .parse()
            .map_err(|_| bad("bad size"))?;
        if size == 0 {
            return Err(bad("zero size"));
        }
        let kind_str = parts.next().ok_or_else(|| bad("missing kind"))?;
        let mut target = 0u64;
        let kind = match kind_str {
            "other" => InstrKind::Other,
            "cond" => {
                target = parse_u64(parts.next().ok_or_else(|| bad("cond needs target"))?)
                    .ok_or_else(|| bad("bad target"))?;
                let taken: u8 = parts
                    .next()
                    .ok_or_else(|| bad("cond needs taken flag"))?
                    .parse()
                    .map_err(|_| bad("bad taken flag"))?;
                InstrKind::CondBranch { taken: taken != 0 }
            }
            other => {
                target = parse_u64(parts.next().ok_or_else(|| bad("branch needs target"))?)
                    .ok_or_else(|| bad("bad target"))?;
                match other {
                    "jump" => InstrKind::Jump,
                    "call" => InstrKind::Call,
                    "ijump" => InstrKind::IndirectJump,
                    "icall" => InstrKind::IndirectCall,
                    "ret" => InstrKind::Return,
                    _ => return Err(bad("unknown kind")),
                }
            }
        };
        instrs.push(Instr {
            pc,
            size,
            kind,
            target,
        });
    }
    Ok(VecTrace::new(instrs))
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Instr> {
        vec![
            Instr::other(0x1000, 4),
            Instr::branch(0x1004, 4, InstrKind::CondBranch { taken: true }, 0x2000),
            Instr::branch(0x2000, 2, InstrKind::Call, 0x3000),
            Instr::branch(0x3000, 7, InstrKind::Return, 0x2002),
            Instr::branch(0x2002, 4, InstrKind::IndirectJump, 0x4000),
            Instr::branch(0x4000, 1, InstrKind::CondBranch { taken: false }, 0x9999),
        ]
    }

    #[test]
    fn binary_round_trip() {
        let mut src = VecTrace::new(sample());
        let mut buf = Vec::new();
        let n = write_binary(&mut src, &mut buf, u64::MAX).unwrap();
        assert_eq!(n, 6);
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back.instrs(), sample().as_slice());
    }

    #[test]
    fn text_round_trip() {
        let mut src = VecTrace::new(sample());
        let mut buf = Vec::new();
        let n = write_text(&mut src, &mut buf, u64::MAX).unwrap();
        assert_eq!(n, 6);
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(back.instrs(), sample().as_slice());
    }

    #[test]
    fn limit_truncates() {
        let mut src = VecTrace::new(sample());
        let mut buf = Vec::new();
        assert_eq!(write_binary(&mut src, &mut buf, 2).unwrap(), 2);
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOTATRCE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn binary_rejects_bad_kind() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&[0u8; 16]);
        buf.push(4); // size
        buf.push(99); // bad kind
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn text_accepts_comments_and_decimal() {
        let text = "# comment\n\n4096 4 other\n0x1004 4 jump 8192\n";
        let t = read_text(text.as_bytes()).unwrap();
        assert_eq!(t.instrs().len(), 2);
        assert_eq!(t.instrs()[0].pc, 4096);
        assert_eq!(t.instrs()[1].target, 8192);
    }

    #[test]
    fn text_reports_line_numbers() {
        let text = "0x1000 4 other\n0x1004 4 zorp\n";
        let err = read_text(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn text_rejects_missing_fields() {
        assert!(read_text(&b"0x1000"[..]).is_err());
        assert!(read_text(&b"0x1000 4 cond 0x2000"[..]).is_err()); // no taken
        assert!(read_text(&b"0x1000 0 other"[..]).is_err()); // zero size
    }

    #[test]
    fn replayed_trace_drives_streams_identically() {
        let mut src = VecTrace::new(sample());
        let mut buf = Vec::new();
        write_binary(&mut src, &mut buf, u64::MAX).unwrap();
        let mut a = VecTrace::new(sample());
        let mut b = read_binary(buf.as_slice()).unwrap();
        loop {
            let (x, y) = (a.next_instr(), b.next_instr());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }
}
