//! Fault injection for robustness tests.
//!
//! [`FaultyReader`] wraps any [`Read`] and injects byte-level damage —
//! deterministic bit-flips, truncation, short reads, or I/O errors —
//! so tests can prove the trace readers *detect* damage rather than
//! silently replaying a different instruction stream. [`FaultyStream`]
//! wraps any [`InstrStream`] and injects stream-level faults
//! (early termination, a panic mid-stream) so batch-run crash
//! isolation can be exercised without hand-writing a broken workload.
//!
//! All faults are positioned explicitly or derived from a seed via the
//! same splitmix64 mix used elsewhere in the workspace, so every
//! injected failure is reproducible from the test's constants.

use crate::stream::InstrStream;
use crate::Instr;
use std::io::{self, Read};

/// One injected byte-stream fault.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Fault {
    /// XOR `mask` into the byte at `offset`.
    FlipBits {
        /// Absolute byte offset into the stream.
        offset: u64,
        /// Bit mask to XOR in (nonzero).
        mask: u8,
    },
    /// End the stream (clean EOF) at `offset` bytes.
    TruncateAt(u64),
    /// Fail with an I/O error once `offset` bytes have been delivered.
    IoErrorAt(u64),
}

/// A [`Read`] adapter that injects deterministic faults into the bytes
/// flowing through it.
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    pos: u64,
    faults: Vec<Fault>,
    /// Cap on bytes returned per `read` call (short reads), if any.
    max_read: Option<usize>,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner` with no faults (a transparent pass-through).
    pub fn new(inner: R) -> Self {
        FaultyReader {
            inner,
            pos: 0,
            faults: Vec::new(),
            max_read: None,
        }
    }

    /// XORs `mask` into the byte at absolute `offset`.
    pub fn flip_bits(mut self, offset: u64, mask: u8) -> Self {
        self.faults.push(Fault::FlipBits { offset, mask });
        self
    }

    /// Delivers a clean EOF after `offset` bytes.
    pub fn truncate_at(mut self, offset: u64) -> Self {
        self.faults.push(Fault::TruncateAt(offset));
        self
    }

    /// Fails with `io::ErrorKind::Other` once `offset` bytes have been
    /// delivered.
    pub fn io_error_at(mut self, offset: u64) -> Self {
        self.faults.push(Fault::IoErrorAt(offset));
        self
    }

    /// Caps every `read` call at `n` bytes, exercising callers' short-
    /// read handling without altering the delivered bytes.
    pub fn max_read(mut self, n: usize) -> Self {
        self.max_read = Some(n.max(1));
        self
    }

    /// Convenience: a reader that flips one seeded-random bit somewhere
    /// in the first `len` bytes of the stream.
    pub fn with_random_bit_flip(inner: R, len: usize, seed: u64) -> Self {
        let (offset, bit) = seeded_flip(len, seed);
        FaultyReader::new(inner).flip_bits(offset, 1 << bit)
    }

    /// Convenience: a reader that truncates after `offset` bytes.
    pub fn with_truncation_at(inner: R, offset: u64) -> Self {
        FaultyReader::new(inner).truncate_at(offset)
    }

    /// Convenience: a reader capped at `n` bytes per call.
    pub fn with_max_read(inner: R, n: usize) -> Self {
        FaultyReader::new(inner).max_read(n)
    }

    /// Convenience: a reader that errors after `offset` bytes.
    pub fn with_io_error_at(inner: R, offset: u64) -> Self {
        FaultyReader::new(inner).io_error_at(offset)
    }
}

/// Derives a (byte offset, bit index) pair from `seed` covering the
/// first `len` bytes, via splitmix64.
fn seeded_flip(len: usize, seed: u64) -> (u64, u32) {
    let mixed = splitmix64(seed);
    let offset = if len == 0 { 0 } else { mixed % len as u64 };
    let bit = (splitmix64(mixed) % 8) as u32;
    (offset, bit)
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        // Faults that gate how far this call may deliver.
        let mut limit = buf.len() as u64;
        if let Some(cap) = self.max_read {
            limit = limit.min(cap as u64);
        }
        for f in &self.faults {
            match *f {
                Fault::TruncateAt(at) if at >= self.pos => {
                    limit = limit.min(at - self.pos);
                }
                Fault::TruncateAt(_) => return Ok(0),
                Fault::IoErrorAt(at) => {
                    if at <= self.pos {
                        return Err(io::Error::other("injected fault"));
                    }
                    limit = limit.min(at - self.pos);
                }
                Fault::FlipBits { .. } => {}
            }
        }
        if limit == 0 {
            // A truncation fault is pinned at this offset: clean EOF.
            return Ok(0);
        }
        let upto = limit.min(buf.len() as u64) as usize;
        let n = self.inner.read(&mut buf[..upto])?;
        // Apply bit-flips that landed inside the delivered window.
        for f in &self.faults {
            if let Fault::FlipBits { offset, mask } = *f {
                if offset >= self.pos && offset < self.pos + n as u64 {
                    buf[(offset - self.pos) as usize] ^= mask;
                }
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

/// Stream-level faults for [`FaultyStream`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamFault {
    /// End the stream (as if the trace were shorter) after `n`
    /// instructions.
    TruncateAfter(u64),
    /// Panic once `n` instructions have been produced — used to
    /// exercise `catch_unwind` crash isolation in batch runs.
    PanicAfter(u64),
}

/// An [`InstrStream`] adapter that injects a stream-level fault.
#[derive(Clone, Debug)]
pub struct FaultyStream<S> {
    inner: S,
    fault: StreamFault,
    produced: u64,
}

impl<S: InstrStream> FaultyStream<S> {
    /// Wraps `inner`, injecting `fault`.
    pub fn new(inner: S, fault: StreamFault) -> Self {
        FaultyStream {
            inner,
            fault,
            produced: 0,
        }
    }

    /// Instructions produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }
}

impl<S: InstrStream> InstrStream for FaultyStream<S> {
    // Deliberately panics: this adapter exists to *inject* the panic
    // that crash-isolation tests must survive.
    #[allow(clippy::panic)]
    fn next_instr(&mut self) -> Option<Instr> {
        match self.fault {
            StreamFault::TruncateAfter(n) if self.produced >= n => None,
            StreamFault::PanicAfter(n) if self.produced >= n => {
                panic!("injected fault: stream panicked after {n} instructions")
            }
            _ => {
                let i = self.inner.next_instr();
                if i.is_some() {
                    self.produced += 1;
                }
                i
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::stream::VecTrace;
    use crate::InstrKind;

    fn bytes(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 7 + 3) as u8).collect()
    }

    fn drain<R: Read>(mut r: R) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        r.read_to_end(&mut out)?;
        Ok(out)
    }

    #[test]
    fn passthrough_is_transparent() {
        let data = bytes(100);
        let got = drain(FaultyReader::new(data.as_slice())).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn flip_bits_damages_exactly_one_byte() {
        let data = bytes(100);
        let got = drain(FaultyReader::new(data.as_slice()).flip_bits(42, 0x10)).unwrap();
        assert_eq!(got.len(), data.len());
        let diffs: Vec<usize> = (0..data.len()).filter(|&i| got[i] != data[i]).collect();
        assert_eq!(diffs, vec![42]);
        assert_eq!(got[42], data[42] ^ 0x10);
    }

    #[test]
    fn flip_applies_even_across_read_boundaries() {
        let data = bytes(100);
        let r = FaultyReader::new(data.as_slice())
            .flip_bits(50, 0x01)
            .max_read(3);
        let got = drain(r).unwrap();
        assert_eq!(got[50], data[50] ^ 0x01);
        assert_eq!(&got[..50], &data[..50]);
        assert_eq!(&got[51..], &data[51..]);
    }

    #[test]
    fn truncate_delivers_clean_eof() {
        let data = bytes(100);
        let got = drain(FaultyReader::new(data.as_slice()).truncate_at(33)).unwrap();
        assert_eq!(got, &data[..33]);
    }

    #[test]
    fn short_reads_deliver_intact_bytes() {
        let data = bytes(100);
        let got = drain(FaultyReader::with_max_read(data.as_slice(), 1)).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn io_error_fires_at_offset() {
        let data = bytes(100);
        let mut r = FaultyReader::with_io_error_at(data.as_slice(), 10);
        let mut out = Vec::new();
        let err = r.read_to_end(&mut out).unwrap_err();
        assert_eq!(err.to_string(), "injected fault");
        assert_eq!(out, &data[..10]);
    }

    #[test]
    fn seeded_flip_is_deterministic_and_in_range() {
        for seed in 0..64 {
            let (a, abit) = seeded_flip(100, seed);
            let (b, bbit) = seeded_flip(100, seed);
            assert_eq!((a, abit), (b, bbit));
            assert!(a < 100);
            assert!(abit < 8);
        }
        // Seeds actually spread over the buffer.
        let offsets: std::collections::HashSet<u64> =
            (0..64).map(|s| seeded_flip(100, s).0).collect();
        assert!(offsets.len() > 16);
    }

    fn mini() -> VecTrace {
        VecTrace::new(vec![
            Instr::other(0x1000, 4),
            Instr::other(0x1004, 4),
            Instr::branch(0x1008, 4, InstrKind::Jump, 0x2000),
            Instr::other(0x2000, 4),
        ])
    }

    #[test]
    fn stream_truncation_ends_early() {
        let mut s = FaultyStream::new(mini(), StreamFault::TruncateAfter(2));
        assert!(s.next_instr().is_some());
        assert!(s.next_instr().is_some());
        assert!(s.next_instr().is_none());
        assert_eq!(s.produced(), 2);
    }

    #[test]
    fn stream_panic_fires_after_n() {
        let caught = std::panic::catch_unwind(|| {
            let mut s = FaultyStream::new(mini(), StreamFault::PanicAfter(1));
            let _ = s.next_instr();
            let _ = s.next_instr(); // must panic here
        });
        let msg = dcfb_errors::panic_message(caught.unwrap_err().as_ref());
        assert!(msg.contains("injected fault"), "{msg}");
    }
}
