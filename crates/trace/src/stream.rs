//! Dynamic instruction streams (traces) and replay utilities.

use crate::{Instr, InstrKind};

/// A source of dynamic (correct-path) instructions.
///
/// Implementations may hold a pre-recorded trace ([`VecTrace`]) or
/// synthesize instructions lazily (the workload generator). Streams are
/// deterministic: two streams constructed identically yield identical
/// instruction sequences.
pub trait InstrStream {
    /// Returns the next retired instruction, or `None` when the trace is
    /// exhausted.
    fn next_instr(&mut self) -> Option<Instr>;
}

impl<T: InstrStream + ?Sized> InstrStream for &mut T {
    fn next_instr(&mut self) -> Option<Instr> {
        (**self).next_instr()
    }
}

impl<T: InstrStream + ?Sized> InstrStream for Box<T> {
    fn next_instr(&mut self) -> Option<Instr> {
        (**self).next_instr()
    }
}

/// An in-memory, replayable trace.
#[derive(Clone, Debug, Default)]
pub struct VecTrace {
    instrs: Vec<Instr>,
    pos: usize,
}

impl VecTrace {
    /// Creates a trace over `instrs`, positioned at the start.
    pub fn new(instrs: Vec<Instr>) -> Self {
        VecTrace { instrs, pos: 0 }
    }

    /// Collects up to `limit` instructions from `stream` into a trace.
    pub fn capture<S: InstrStream>(stream: &mut S, limit: usize) -> Self {
        let mut instrs = Vec::with_capacity(limit.min(1 << 20));
        while instrs.len() < limit {
            match stream.next_instr() {
                Some(i) => instrs.push(i),
                None => break,
            }
        }
        VecTrace::new(instrs)
    }

    /// Number of instructions in the trace.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the trace holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The underlying instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Rewinds the replay cursor to the start.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }

    /// Returns a fresh replay cursor over this trace without cloning the
    /// instruction storage.
    pub fn replay(&self) -> ReplayStream<'_> {
        ReplayStream {
            instrs: &self.instrs,
            pos: 0,
        }
    }
}

impl InstrStream for VecTrace {
    fn next_instr(&mut self) -> Option<Instr> {
        let i = self.instrs.get(self.pos).copied();
        if i.is_some() {
            self.pos += 1;
        }
        i
    }
}

/// A borrowing replay cursor over a [`VecTrace`].
#[derive(Clone, Debug)]
pub struct ReplayStream<'a> {
    instrs: &'a [Instr],
    pos: usize,
}

impl InstrStream for ReplayStream<'_> {
    fn next_instr(&mut self) -> Option<Instr> {
        let i = self.instrs.get(self.pos).copied();
        if i.is_some() {
            self.pos += 1;
        }
        i
    }
}

/// Summary statistics over a trace, used by workload-calibration tests
/// and the figure binaries.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StreamStats {
    /// Total dynamic instructions.
    pub instrs: u64,
    /// Dynamic conditional branches.
    pub cond_branches: u64,
    /// Taken dynamic conditional branches.
    pub cond_taken: u64,
    /// Dynamic unconditional branches (jumps, calls, returns, indirects).
    pub uncond_branches: u64,
    /// Dynamic calls (direct + indirect).
    pub calls: u64,
    /// Dynamic returns.
    pub returns: u64,
    /// Number of distinct 64-byte blocks touched (instruction footprint
    /// in blocks).
    pub footprint_blocks: u64,
    /// Number of control-flow redirects (taken branches of any kind).
    pub redirects: u64,
}

impl StreamStats {
    /// Computes statistics by draining `stream` (up to `limit`
    /// instructions).
    pub fn measure<S: InstrStream>(stream: &mut S, limit: u64) -> Self {
        let mut stats = StreamStats::default();
        let mut blocks = std::collections::HashSet::new();
        while stats.instrs < limit {
            let Some(i) = stream.next_instr() else { break };
            stats.instrs += 1;
            blocks.insert(i.block());
            match i.kind {
                InstrKind::Other => {}
                InstrKind::CondBranch { taken } => {
                    stats.cond_branches += 1;
                    if taken {
                        stats.cond_taken += 1;
                    }
                }
                InstrKind::Jump | InstrKind::IndirectJump => stats.uncond_branches += 1,
                InstrKind::Call | InstrKind::IndirectCall => {
                    stats.uncond_branches += 1;
                    stats.calls += 1;
                }
                InstrKind::Return => {
                    stats.uncond_branches += 1;
                    stats.returns += 1;
                }
            }
            if i.redirects() {
                stats.redirects += 1;
            }
        }
        stats.footprint_blocks = blocks.len() as u64;
        stats
    }

    /// Instruction footprint in kilobytes (64 B per block).
    pub fn footprint_kib(&self) -> f64 {
        self.footprint_blocks as f64 * 64.0 / 1024.0
    }

    /// Dynamic branch density: branches per instruction.
    pub fn branch_density(&self) -> f64 {
        if self.instrs == 0 {
            return 0.0;
        }
        (self.cond_branches + self.uncond_branches) as f64 / self.instrs as f64
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::Instr;

    fn mini_trace() -> Vec<Instr> {
        vec![
            Instr::other(0x1000, 4),
            Instr::other(0x1004, 4),
            Instr::branch(0x1008, 4, InstrKind::CondBranch { taken: true }, 0x2000),
            Instr::other(0x2000, 4),
            Instr::branch(0x2004, 4, InstrKind::Call, 0x3000),
            Instr::other(0x3000, 4),
            Instr::branch(0x3004, 4, InstrKind::Return, 0x2008),
            Instr::other(0x2008, 4),
        ]
    }

    #[test]
    fn vec_trace_replays_in_order() {
        let mut t = VecTrace::new(mini_trace());
        let mut pcs = Vec::new();
        while let Some(i) = t.next_instr() {
            pcs.push(i.pc);
        }
        assert_eq!(
            pcs,
            vec![0x1000, 0x1004, 0x1008, 0x2000, 0x2004, 0x3000, 0x3004, 0x2008]
        );
        assert!(t.next_instr().is_none());
        t.rewind();
        assert_eq!(t.next_instr().unwrap().pc, 0x1000);
    }

    #[test]
    fn replay_cursor_is_independent() {
        let t = VecTrace::new(mini_trace());
        let mut a = t.replay();
        let mut b = t.replay();
        assert_eq!(a.next_instr(), b.next_instr());
        let _ = a.next_instr();
        // `b` is unaffected by advancing `a`.
        assert_eq!(b.next_instr().unwrap().pc, 0x1004);
    }

    #[test]
    fn capture_respects_limit() {
        let mut t = VecTrace::new(mini_trace());
        let captured = VecTrace::capture(&mut t, 3);
        assert_eq!(captured.len(), 3);
        // Original stream continues from where capture stopped.
        assert_eq!(t.next_instr().unwrap().pc, 0x2000);
    }

    #[test]
    fn stats_count_kinds_and_footprint() {
        let mut t = VecTrace::new(mini_trace());
        let s = StreamStats::measure(&mut t, u64::MAX);
        assert_eq!(s.instrs, 8);
        assert_eq!(s.cond_branches, 1);
        assert_eq!(s.cond_taken, 1);
        assert_eq!(s.calls, 1);
        assert_eq!(s.returns, 1);
        assert_eq!(s.uncond_branches, 2);
        assert_eq!(s.redirects, 3);
        // Blocks: 0x1000>>6=0x40, 0x2000>>6=0x80, 0x3000>>6=0xC0.
        assert_eq!(s.footprint_blocks, 3);
        assert!((s.branch_density() - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn stats_limit_truncates() {
        let mut t = VecTrace::new(mini_trace());
        let s = StreamStats::measure(&mut t, 2);
        assert_eq!(s.instrs, 2);
        assert_eq!(s.cond_branches, 0);
    }

    #[test]
    fn empty_trace_behaves() {
        let mut t = VecTrace::default();
        assert!(t.is_empty());
        assert!(t.next_instr().is_none());
        let s = StreamStats::measure(&mut t.replay(), 100);
        assert_eq!(s, StreamStats::default());
        assert_eq!(s.branch_density(), 0.0);
    }
}
