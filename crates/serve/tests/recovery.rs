//! The acceptance e2e: a 15-method registry sweep submitted through
//! `dcfb serve`, the server killed mid-run, and a restarted server
//! resuming from the persisted job table — every served digest
//! byte-identical to a direct run, and every resubmission answered
//! from cache without re-simulating.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use dcfb_sdk::{Client, JobSpec};
use dcfb_serve::{ServeOptions, Server};
use dcfb_sim::{SimConfig, Simulator};
use dcfb_workloads::Walker;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn sweep_specs() -> Vec<JobSpec> {
    dcfb_prefetch::method_names()
        .map(|method| JobSpec {
            workload: "Web Search".to_owned(),
            method: method.to_owned(),
            warmup: 20_000,
            measure: 60_000,
            seed: dcfb_bench::runs::TRACE_SEED,
        })
        .collect()
}

fn direct_digest(spec: &JobSpec) -> String {
    let workload = dcfb_workloads::all_workloads()
        .into_iter()
        .find(|w| w.name == spec.workload)
        .expect("workload in catalog");
    let mut cfg = SimConfig::for_method(&spec.method).expect("method in registry");
    cfg.warmup_instrs = spec.warmup;
    cfg.measure_instrs = spec.measure;
    let image = dcfb_bench::runs::image_for(&workload, cfg.isa);
    let mut sim = Simulator::try_new(cfg, Arc::clone(&image)).expect("simulator builds");
    let mut walker = Walker::new(image, spec.seed);
    sim.run(&mut walker).digest()
}

fn options(state: &std::path::Path) -> ServeOptions {
    ServeOptions {
        state_path: Some(state.to_path_buf()),
        ..ServeOptions::default()
    }
}

#[test]
fn killed_server_resumes_and_serves_identical_digests() {
    let dir = std::env::temp_dir().join("dcfb-serve-recovery-test");
    std::fs::create_dir_all(&dir).unwrap();
    let state = dir.join("state.json");
    let _ = std::fs::remove_file(&state);

    let specs = sweep_specs();
    assert_eq!(specs.len(), 15, "the full method registry");

    // Phase 1: submit the whole sweep, then kill the server mid-run
    // (abrupt: no farewell persistence — the file holds whatever the
    // last completed transition wrote).
    let mut server = Server::spawn(options(&state)).expect("server binds");
    let client = Client::new(server.local_addr().to_string());
    for spec in &specs {
        let reply = client.submit(spec).expect("submission accepted");
        assert!(!reply.cached && !reply.coalesced);
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    while server.executed() < 3 {
        assert!(Instant::now() < deadline, "sweep made no progress");
        std::thread::sleep(Duration::from_millis(10));
    }
    let done_before_kill = server.executed();
    server.kill();
    server.wait();
    assert!(
        done_before_kill < specs.len() as u64,
        "kill landed after the sweep finished; shrink the poll threshold"
    );

    // Phase 2: a fresh server on the same state file resumes the
    // unfinished jobs without any resubmission.
    let mut server = Server::spawn(options(&state)).expect("server restarts");
    let client = Client::new(server.local_addr().to_string());
    let mut served = Vec::new();
    for spec in &specs {
        let result = client
            .wait(&spec.digest())
            .expect("recovered job completes");
        served.push(result);
    }
    for (spec, result) in specs.iter().zip(&served) {
        assert_eq!(
            result.digest,
            direct_digest(spec),
            "served digest for {} diverged from the direct run",
            spec.method
        );
    }

    // Phase 3: resubmitting the identical sweep is pure cache — the
    // replies are byte-identical and nothing re-simulates.
    let executed = server.executed();
    for (spec, first) in specs.iter().zip(&served) {
        let reply = client.submit(spec).expect("resubmission accepted");
        assert!(
            reply.cached,
            "resubmitted {} must hit the cache",
            spec.method
        );
        let again = client.result(&reply.job).expect("cached result");
        assert_eq!(again.report_json, first.report_json);
        assert_eq!(again.digest, first.digest);
    }
    assert_eq!(server.executed(), executed, "cache hits must not re-run");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.cache_hits, specs.len() as u64);
    assert_eq!(stats.done, specs.len() as u64);

    client.shutdown().expect("shutdown");
    server.wait();
    let _ = std::fs::remove_file(&state);
}
