//! Tier-1 smoke for `dcfb serve`: a real server on an ephemeral port
//! driven end to end through the SDK client — submit, stream progress,
//! fetch the result, hit the cache, coalesce duplicates, bound the
//! queue, and shut down cleanly.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use dcfb_errors::DcfbError;
use dcfb_sdk::{Client, JobSpec, JobState};
use dcfb_serve::server::JobRunner;
use dcfb_serve::{ServeOptions, Server};
use dcfb_sim::{SimConfig, SimReport, Simulator};
use dcfb_workloads::Walker;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

fn tiny_spec() -> JobSpec {
    JobSpec {
        workload: "Web Search".to_owned(),
        method: "Baseline".to_owned(),
        warmup: 400,
        measure: 2_000,
        seed: dcfb_bench::runs::TRACE_SEED,
    }
}

/// The same simulation the server's default runner performs, executed
/// directly — the byte-identity reference.
fn direct_digest(spec: &JobSpec) -> String {
    let workload = dcfb_workloads::all_workloads()
        .into_iter()
        .find(|w| w.name == spec.workload)
        .expect("workload in catalog");
    let mut cfg = SimConfig::for_method(&spec.method).expect("method in registry");
    cfg.warmup_instrs = spec.warmup;
    cfg.measure_instrs = spec.measure;
    let image = dcfb_bench::runs::image_for(&workload, cfg.isa);
    let mut sim = Simulator::try_new(cfg, Arc::clone(&image)).expect("simulator builds");
    let mut walker = Walker::new(image, spec.seed);
    sim.run(&mut walker).digest()
}

#[test]
fn submit_stream_fetch_memoize_shutdown() {
    let mut server = Server::spawn(ServeOptions::default()).expect("server binds");
    let client = Client::new(server.local_addr().to_string());
    client.health().expect("health answers");

    let spec = tiny_spec();
    let reply = client.submit(&spec).expect("submission accepted");
    assert!(!reply.cached && !reply.coalesced);
    assert_eq!(reply.job, spec.digest());

    // Progress streams monotonically to a terminal state.
    let mut last_instrs = 0u64;
    let final_status = client
        .stream_progress(&reply.job, |s| {
            assert!(s.instrs >= last_instrs, "progress went backwards");
            last_instrs = s.instrs;
        })
        .expect("progress stream completes");
    assert_eq!(final_status.state, JobState::Done);

    let result = client.result(&reply.job).expect("result available");
    assert_eq!(
        result.digest,
        direct_digest(&spec),
        "served digest != direct run"
    );
    assert_eq!(server.executed(), 1);

    // Identical resubmission is memoized: no second simulation runs,
    // and the bytes served are identical.
    let again = client.submit(&spec).expect("resubmission accepted");
    assert!(again.cached, "identical spec must hit the cache");
    let cached = client.result(&again.job).expect("cached result");
    assert_eq!(cached.report_json, result.report_json);
    assert_eq!(cached.digest, result.digest);
    assert_eq!(server.executed(), 1, "cache hit must not re-simulate");

    let stats = client.stats().expect("stats answer");
    assert!(stats.requests >= 4);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.done, 1);
    assert_eq!(stats.executed, 1);

    client.shutdown().expect("shutdown accepted");
    server.wait();
}

/// A runner that parks every job on a gate until the test releases it,
/// so in-flight windows are deterministic on a single-core host.
fn gated_runner(gate: Arc<(Mutex<bool>, Condvar)>) -> JobRunner {
    Arc::new(move |spec, _control| {
        let (lock, cvar) = &*gate;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cvar.wait(open).unwrap();
        }
        Ok(SimReport {
            method: spec.method.clone(),
            workload: spec.workload.clone(),
            cycles: 1,
            instrs: spec.measure,
            ..SimReport::default()
        })
    })
}

fn release(gate: &Arc<(Mutex<bool>, Condvar)>) {
    let (lock, cvar) = &**gate;
    *lock.lock().unwrap() = true;
    cvar.notify_all();
}

#[test]
fn concurrent_identical_submissions_coalesce() {
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let mut server = Server::spawn_with_runner(
        ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        },
        gated_runner(Arc::clone(&gate)),
    )
    .expect("server binds");
    let client = Client::new(server.local_addr().to_string());

    let spec = tiny_spec();
    let first = client.submit(&spec).expect("first submission");
    assert!(!first.cached && !first.coalesced);

    // Wait until the worker has claimed the job, then submit the same
    // spec again while it is provably in flight.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = client.status(&first.job).expect("status");
        if status.state == JobState::Running {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(5));
    }
    let second = client.submit(&spec).expect("duplicate submission");
    assert!(second.coalesced, "in-flight duplicate must coalesce");
    assert!(!second.cached);
    assert_eq!(second.job, first.job);

    release(&gate);
    client.wait(&first.job).expect("job completes");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.coalesced, 1);
    assert_eq!(stats.executed, 1, "coalesced submission must not re-run");

    client.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn full_queue_rejects_with_503() {
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let mut server = Server::spawn_with_runner(
        ServeOptions {
            workers: 1,
            queue_limit: 1,
            ..ServeOptions::default()
        },
        gated_runner(Arc::clone(&gate)),
    )
    .expect("server binds");
    let client = Client::new(server.local_addr().to_string());

    let mut spec_a = tiny_spec();
    spec_a.seed = 1;
    let a = client.submit(&spec_a).expect("first submission");
    // Wait for the single worker to claim A so the queue is empty.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if client.status(&a.job).expect("status").state == JobState::Running {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut spec_b = tiny_spec();
    spec_b.seed = 2;
    client.submit(&spec_b).expect("fills the one queue slot");

    let mut spec_c = tiny_spec();
    spec_c.seed = 3;
    let err = client.submit(&spec_c).expect_err("queue is full");
    match err {
        DcfbError::Protocol { message } => {
            assert!(message.contains("503"), "{message}");
            assert!(message.contains("queue full"), "{message}");
        }
        other => panic!("expected a protocol error, got {other}"),
    }

    release(&gate);
    client.wait(&a.job).expect("A completes");
    client.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn bad_submissions_are_rejected_at_the_door() {
    let mut server = Server::spawn(ServeOptions::default()).expect("server binds");
    let client = Client::new(server.local_addr().to_string());

    let mut bad_workload = tiny_spec();
    bad_workload.workload = "No Such Trace".to_owned();
    let err = client.submit(&bad_workload).expect_err("unknown workload");
    assert!(err.to_string().contains("400"), "{err}");

    let mut bad_method = tiny_spec();
    bad_method.method = "Oracle".to_owned();
    let err = client.submit(&bad_method).expect_err("unknown method");
    assert!(err.to_string().contains("400"), "{err}");

    let err = client.status("feedfacefeedface").expect_err("unknown job");
    assert!(err.to_string().contains("404"), "{err}");

    assert_eq!(server.executed(), 0);
    client.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn tenant_mix_jobs_are_servable_and_byte_identical() {
    // A `mix:` spec is a first-class workload source: it must submit,
    // run, and return the same digest a direct resolved run produces.
    let mut server = Server::spawn(ServeOptions::default()).expect("server binds");
    let client = Client::new(server.local_addr().to_string());

    let mut spec = tiny_spec();
    spec.workload = "mix:Web Frontend+Web Search,quantum=500".to_owned();
    let reply = client.submit(&spec).expect("mix submission accepted");
    let result = client.wait(&reply.job).expect("mix job completes");

    let mut cfg = SimConfig::for_method(&spec.method).expect("method in registry");
    cfg.warmup_instrs = spec.warmup;
    cfg.measure_instrs = spec.measure;
    let resolved = dcfb_bench::runs::resolved_for(&spec.workload, cfg.isa).expect("mix resolves");
    let direct = dcfb_sim::run_resolved(&resolved, cfg, spec.seed).expect("direct mix run");
    assert_eq!(result.digest, direct.digest(), "served mix digest drifted");

    // An unknown tenant inside the mix is rejected at the door, like
    // any unknown workload.
    let mut bad = tiny_spec();
    bad.workload = "mix:Web Frontend+No Such Tenant".to_owned();
    let err = client.submit(&bad).expect_err("unknown tenant");
    assert!(err.to_string().contains("400"), "{err}");

    client.shutdown().expect("shutdown");
    server.wait();
}
