//! The job server: a hand-rolled HTTP/1.1 listener, a bounded queue
//! drained by supervised workers, and the submit/coalesce/memoize
//! logic in front of them.
//!
//! ## Protocol
//!
//! One request per connection (`Connection: close`), flat-JSON bodies:
//!
//! | Request | Reply |
//! |---|---|
//! | `GET /healthz` | `{"ok": true}` |
//! | `POST /v1/jobs` (a [`JobSpec`]) | `{"job", "state", "cached", "coalesced"}` |
//! | `GET /v1/jobs/<id>` | `{"job", "state", "instrs", "phase", "error"?}` |
//! | `GET /v1/jobs/<id>/progress?since=N&wait_ms=M` | same, long-polled |
//! | `GET /v1/jobs/<id>/result` | `{"job", "digest", "report"}` |
//! | `GET /v1/stats` | counters and queue shape |
//! | `POST /v1/shutdown` | `{"ok": true}`, then the server drains |
//!
//! Errors are `{"error": "…"}` with 400 (bad spec), 404 (unknown job),
//! 409 (result not ready / evicted), 503 (queue full), 500 (handler
//! failure).
//!
//! ## Submission semantics
//!
//! For a submitted spec with digest `id`, in order: a memoized result
//! is a **cache hit** (no work scheduled); an identical queued or
//! running job **coalesces** (the submission attaches to it); a done
//! job whose result was evicted — or a failed job — is **re-queued**;
//! a full queue is 503; otherwise the job is accepted and queued.
//! Every transition persists through [`ServerState::persist`], so a
//! killed server resumes its queue on restart.

use crate::state::{JobEntry, ServerState};
use dcfb_bench::supervisor::{JobEnvelope, Supervisor, SupervisorOptions};
use dcfb_bench::sweep;
use dcfb_errors::DcfbError;
use dcfb_sdk::json::ObjectWriter;
use dcfb_sdk::wire::{JobSpec, JobState};
use dcfb_sim::{RunControl, SimConfig, SimReport, Simulator};
use dcfb_telemetry::{CounterSet, Ctr};
use dcfb_workloads::SourceSpec;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a worker executes one job. Injectable so tests can substitute a
/// gated runner (e.g. to hold a job "running" while concurrent
/// duplicates arrive).
pub type JobRunner =
    Arc<dyn Fn(&JobSpec, &mut RunControl) -> Result<SimReport, DcfbError> + Send + Sync>;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen address (`HOST:PORT`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Job-state persistence file; `None` disables crash recovery.
    pub state_path: Option<PathBuf>,
    /// Worker threads draining the queue (0 = the `DCFB_JOBS` sweep
    /// default, i.e. host cores unless overridden).
    pub workers: usize,
    /// Most jobs allowed to wait in the queue before submissions get
    /// 503.
    pub queue_limit: usize,
    /// Result-cache byte budget.
    pub cache_budget: usize,
    /// Supervisor attempts per job before it fails terminally.
    pub max_attempts: u32,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_owned(),
            state_path: None,
            workers: 0,
            queue_limit: 1024,
            cache_budget: 8 << 20,
            max_attempts: 2,
        }
    }
}

/// Everything the listener, handlers, and workers share.
struct Shared {
    opts: ServeOptions,
    state: Mutex<ServerState>,
    /// Signaled when the queue gains work or the server shuts down.
    wake: Condvar,
    /// Signaled on job state transitions (long-pollers also poll the
    /// progress atomics on a short timeout).
    transition: Condvar,
    /// Clean-shutdown flag: stop accepting, cancel attempts, persist.
    shutdown: AtomicBool,
    /// Abrupt-death flag: like shutdown, but nothing persists after it
    /// is raised — the on-disk state stays whatever the last
    /// transition wrote, exactly as if the process had been killed.
    kill: AtomicBool,
    counters: Mutex<CounterSet>,
    /// Simulations actually executed (not served from cache).
    executed: AtomicU64,
    supervisor: Supervisor,
    runner: JobRunner,
    worker_count: usize,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A running job server. Dropping it does not stop it; call
/// [`Server::shutdown`] (clean) or [`Server::kill`] (abrupt) and then
/// [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, recovers persisted job state, and starts the listener
    /// and worker threads with the default (real-simulation) runner.
    ///
    /// # Errors
    ///
    /// Returns [`DcfbError::Io`] when the address cannot be bound or
    /// the state file cannot be read.
    pub fn spawn(opts: ServeOptions) -> Result<Server, DcfbError> {
        Server::spawn_with_runner(opts, Arc::new(default_runner))
    }

    /// [`Server::spawn`] with an injected job runner (tests).
    ///
    /// # Errors
    ///
    /// Returns [`DcfbError::Io`] when the address cannot be bound or
    /// the state file cannot be read.
    pub fn spawn_with_runner(opts: ServeOptions, runner: JobRunner) -> Result<Server, DcfbError> {
        let (state, salvage) = match &opts.state_path {
            Some(path) => ServerState::recover(path, opts.cache_budget)?,
            None => (ServerState::new(opts.cache_budget), None),
        };
        if let Some(reason) = salvage {
            eprintln!("dcfb serve: state file damaged, salvaged prefix ({reason})");
        }
        let listener =
            TcpListener::bind(&opts.addr).map_err(|e| DcfbError::io(opts.addr.clone(), &e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| DcfbError::io(opts.addr.clone(), &e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| DcfbError::io(opts.addr.clone(), &e))?;
        let worker_count = if opts.workers == 0 {
            sweep::jobs()
        } else {
            opts.workers
        };
        let supervisor = Supervisor::new(SupervisorOptions {
            max_attempts: opts.max_attempts.max(1),
            unit: Duration::ZERO,
            jobs: 1,
            ..SupervisorOptions::default()
        });
        let shared = Arc::new(Shared {
            opts,
            state: Mutex::new(state),
            wake: Condvar::new(),
            transition: Condvar::new(),
            shutdown: AtomicBool::new(false),
            kill: AtomicBool::new(false),
            counters: Mutex::new(CounterSet::new()),
            executed: AtomicU64::new(0),
            supervisor,
            runner,
            worker_count,
        });
        let mut workers = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        let accept_shared = Arc::clone(&shared);
        let listener_handle = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(Server {
            shared,
            addr,
            listener: Some(listener_handle),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Simulations executed so far (excludes cache hits).
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Clean shutdown (the SIGTERM path): stop accepting, cancel
    /// running attempts, persist state. Returns immediately; call
    /// [`Server::wait`] to join.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown(false);
    }

    /// Abrupt death for crash-recovery tests: cancel everything and
    /// stop, but persist NOTHING after this point — the state file
    /// keeps whatever the last transition wrote, as a real `kill -9`
    /// would.
    pub fn kill(&self) {
        self.shared.begin_shutdown(true);
    }

    /// Joins the listener and worker threads. Idempotent.
    pub fn wait(&mut self) {
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Shared {
    fn begin_shutdown(&self, abrupt: bool) {
        if abrupt {
            self.kill.store(true, Ordering::SeqCst);
        }
        self.shutdown.store(true, Ordering::SeqCst);
        let state = lock(&self.state);
        for entry in state.jobs.values() {
            if let Some(control) = &entry.control {
                control.cancel();
            }
        }
        drop(state);
        self.wake.notify_all();
        self.transition.notify_all();
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn persist_locked(&self, state: &ServerState) {
        if self.kill.load(Ordering::SeqCst) {
            return;
        }
        if let Err(e) = state.persist(self.opts.state_path.as_deref()) {
            eprintln!("dcfb serve: state persist failed: {e}");
        }
    }

    fn bump(&self, ctr: Ctr, n: u64) {
        if n > 0 {
            lock(&self.counters).add(ctr, n);
        }
    }
}

/// The default runner: a real simulation of the spec resolved through
/// the workload-source registry (synthetic names, `mix:` interleavings,
/// `trace:` replays), progress published through the control,
/// cancellation honored.
fn default_runner(spec: &JobSpec, control: &mut RunControl) -> Result<SimReport, DcfbError> {
    let (cfg, _source) = resolve_spec(spec)?;
    let resolved = dcfb_bench::runs::resolved_for(&spec.workload, cfg.isa)?;
    let mut sim = Simulator::try_with_code(
        cfg,
        resolved.code(),
        resolved.start_pc(),
        resolved.name().to_owned(),
    )?;
    sim.attach_control(control.clone());
    let mut stream = resolved.stream(spec.seed);
    let report = sim.run(&mut stream);
    if sim.interrupted() {
        return Err(DcfbError::protocol(format!(
            "job {} cancelled mid-run",
            spec.digest()
        )));
    }
    Ok(report)
}

/// Validates a spec against the registries and builds its simulation
/// configuration. The workload check is syntactic ([`SourceSpec::parse`]
/// — mix tenants and options are validated, unknown names enumerate
/// every source); a `trace:` path is only read when the job actually
/// runs, so submission stays cheap.
fn resolve_spec(spec: &JobSpec) -> Result<(SimConfig, SourceSpec), DcfbError> {
    let source = SourceSpec::parse(&spec.workload)?;
    let mut cfg = SimConfig::for_method(&spec.method).ok_or_else(|| DcfbError::UnknownMethod {
        name: spec.method.clone(),
        available: dcfb_prefetch::method_names().map(str::to_owned).collect(),
    })?;
    cfg.warmup_instrs = spec.warmup;
    cfg.measure_instrs = spec.measure;
    cfg.validate()?;
    Ok((cfg, source))
}

/// Renders a report for the wire: the headline scalars plus the full
/// digest (the byte-identity witness).
pub fn render_report(report: &SimReport) -> String {
    let mut w = ObjectWriter::new();
    w.str_field("method", &report.method)
        .str_field("workload", &report.workload)
        .u64_field("cycles", report.cycles)
        .u64_field("instrs", report.instrs)
        .f64_field("ipc", report.ipc())
        .f64_field("l1i_mpki", report.l1i_mpki())
        .u64_field("seq_misses", report.seq_misses)
        .u64_field("disc_misses", report.disc_misses)
        .u64_field("stall_l1i", report.stall_l1i)
        .u64_field("stall_btb", report.stall_btb)
        .u64_field("stall_redirect", report.stall_redirect);
    w.finish()
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let Some(id) = claim_next_job(shared) else {
            return; // shutting down
        };
        let Some(spec) = mark_running(shared, &id) else {
            continue; // entry vanished (cannot happen in practice)
        };
        run_one(shared, &id, &spec);
    }
}

/// Blocks until a queued job id is available; `None` on shutdown.
fn claim_next_job(shared: &Arc<Shared>) -> Option<String> {
    let mut state = lock(&shared.state);
    loop {
        if shared.stopping() {
            return None;
        }
        if let Some(id) = state.queue.pop_front() {
            return Some(id);
        }
        state = match shared.wake.wait_timeout(state, Duration::from_millis(100)) {
            Ok((g, _)) => g,
            Err(poisoned) => poisoned.into_inner().0,
        };
    }
}

fn mark_running(shared: &Arc<Shared>, id: &str) -> Option<JobSpec> {
    let mut state = lock(&shared.state);
    let entry = state.jobs.get_mut(id)?;
    entry.state = JobState::Running;
    let spec = entry.spec.clone();
    shared.persist_locked(&state);
    shared.transition.notify_all();
    Some(spec)
}

/// Runs one job under the supervisor and records its terminal state.
fn run_one(shared: &Arc<Shared>, id: &str, spec: &JobSpec) {
    let envelope = match resolve_spec(spec) {
        Ok((_, source)) => JobEnvelope::new(source.canonical_name(), &spec.method),
        Err(e) => {
            finish_failed(shared, id, &e.to_string());
            return;
        }
    };
    let report = shared.supervisor.run_with(vec![envelope], |_env, attempt| {
        if shared.stopping() {
            return Err(DcfbError::protocol("server shutting down".to_owned()));
        }
        let mut control = attempt.control.clone();
        let cell = control.observe_progress();
        {
            let mut state = lock(&shared.state);
            if let Some(entry) = state.jobs.get_mut(id) {
                entry.progress = Some(cell);
                entry.control = Some(control.clone());
            }
        }
        (shared.runner)(spec, &mut control)
    });
    let outcome = report
        .records
        .into_iter()
        .next()
        .map(|r| r.outcome)
        .ok_or_else(|| DcfbError::protocol("supervisor returned no record".to_owned()));
    match outcome {
        Ok(dcfb_bench::supervisor::JobOutcome::Completed(report)) => {
            shared.executed.fetch_add(1, Ordering::Relaxed);
            finish_done(shared, id, &report);
        }
        Ok(dcfb_bench::supervisor::JobOutcome::Quarantined(e)) | Err(e) => {
            if shared.stopping() {
                // Cancelled by shutdown, not failed: put the job back
                // in the queued state so a restarted server resumes it.
                requeue_for_restart(shared, id);
            } else {
                finish_failed(shared, id, &e.to_string());
            }
        }
    }
}

fn finish_done(shared: &Arc<Shared>, id: &str, report: &SimReport) {
    let json_text = render_report(report);
    let digest = report.digest();
    let mut state = lock(&shared.state);
    state
        .cache
        .insert(id, json_text, digest, Some(report.clone()));
    let evicted = state.cache.take_evictions();
    if let Some(entry) = state.jobs.get_mut(id) {
        entry.state = JobState::Done;
        entry.error = None;
        entry.control = None;
    }
    shared.persist_locked(&state);
    drop(state);
    shared.bump(Ctr::ServeEvictions, evicted);
    shared.transition.notify_all();
}

fn finish_failed(shared: &Arc<Shared>, id: &str, error: &str) {
    let mut state = lock(&shared.state);
    if let Some(entry) = state.jobs.get_mut(id) {
        entry.state = JobState::Failed;
        entry.error = Some(error.to_owned());
        entry.control = None;
    }
    shared.persist_locked(&state);
    drop(state);
    shared.transition.notify_all();
}

fn requeue_for_restart(shared: &Arc<Shared>, id: &str) {
    let mut state = lock(&shared.state);
    if let Some(entry) = state.jobs.get_mut(id) {
        entry.state = JobState::Queued;
        entry.control = None;
        entry.progress = None;
    }
    state.queue.push_back(id.to_owned());
    shared.persist_locked(&state);
    drop(state);
    shared.transition.notify_all();
}

// ---------------------------------------------------------------------
// HTTP front end
// ---------------------------------------------------------------------

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.stopping() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let reply = match read_request(&mut stream) {
        Ok((method, path, body)) => {
            shared.bump(Ctr::ServeRequests, 1);
            route(shared, &method, &path, &body)
        }
        Err(e) => error_reply(400, &e.to_string()),
    };
    let _ = stream.write_all(reply.as_bytes());
    let _ = stream.flush();
}

/// Reads one HTTP/1.1 request: request line, headers (only
/// `Content-Length` is honored), body.
fn read_request(stream: &mut TcpStream) -> Result<(String, String, String), DcfbError> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| DcfbError::protocol(format!("read request: {e}")))?;
        if n == 0 {
            return Err(DcfbError::protocol(
                "connection closed mid-request".to_owned(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > 64 << 10 {
            return Err(DcfbError::protocol("request headers too large".to_owned()));
        }
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| DcfbError::protocol("empty request line".to_owned()))?
        .to_owned();
    let path = parts
        .next()
        .ok_or_else(|| DcfbError::protocol(format!("bad request line {request_line:?}")))?
        .to_owned();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| DcfbError::protocol("bad Content-Length".to_owned()))?;
            }
        }
    }
    if content_length > 1 << 20 {
        return Err(DcfbError::protocol("request body too large".to_owned()));
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| DcfbError::protocol(format!("read body: {e}")))?;
        if n == 0 {
            return Err(DcfbError::protocol("connection closed mid-body".to_owned()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body)
        .map_err(|_| DcfbError::protocol("request body is not UTF-8".to_owned()))?;
    Ok((method, path, body))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn http_reply(status: u16, reason: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

fn ok_reply(body: &str) -> String {
    http_reply(200, "OK", body)
}

fn error_reply(status: u16, message: &str) -> String {
    let reason = match status {
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let mut w = ObjectWriter::new();
    w.str_field("error", message);
    http_reply(status, reason, &w.finish())
}

fn route(shared: &Arc<Shared>, method: &str, path: &str, body: &str) -> String {
    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path, ""),
    };
    match (method, path) {
        ("GET", "/healthz") => {
            let mut w = ObjectWriter::new();
            w.bool_field("ok", true);
            ok_reply(&w.finish())
        }
        ("POST", "/v1/jobs") => handle_submit(shared, body),
        ("GET", "/v1/stats") => handle_stats(shared),
        ("POST", "/v1/shutdown") => {
            shared.begin_shutdown(false);
            let mut w = ObjectWriter::new();
            w.bool_field("ok", true);
            ok_reply(&w.finish())
        }
        ("GET", _) if path.starts_with("/v1/jobs/") => {
            let rest = &path["/v1/jobs/".len()..];
            match rest.split_once('/') {
                None => handle_status(shared, rest),
                Some((id, "progress")) => handle_progress(shared, id, query),
                Some((id, "result")) => handle_result(shared, id),
                Some(_) => error_reply(404, &format!("no route {path}")),
            }
        }
        _ => error_reply(404, &format!("no route {method} {path}")),
    }
}

fn submit_reply(id: &str, state: JobState, cached: bool, coalesced: bool) -> String {
    let mut w = ObjectWriter::new();
    w.str_field("job", id)
        .str_field("state", state.name())
        .bool_field("cached", cached)
        .bool_field("coalesced", coalesced);
    ok_reply(&w.finish())
}

fn handle_submit(shared: &Arc<Shared>, body: &str) -> String {
    if shared.stopping() {
        return error_reply(503, "server shutting down");
    }
    let spec = match JobSpec::from_json(body) {
        Ok(s) => s,
        Err(e) => return error_reply(400, &e.to_string()),
    };
    if let Err(e) = resolve_spec(&spec) {
        return error_reply(400, &e.to_string());
    }
    let id = spec.digest();
    let mut state = lock(&shared.state);
    // 1. Memoized: answer from cache, no work scheduled.
    if state.cache.get(&id).is_some() {
        let evicted = state.cache.take_evictions();
        if let Some(entry) = state.jobs.get_mut(&id) {
            entry.state = JobState::Done;
        } else {
            let mut entry = JobEntry::queued(spec);
            entry.state = JobState::Done;
            state.jobs.insert(id.clone(), entry);
        }
        drop(state);
        shared.bump(Ctr::ServeCacheHits, 1);
        shared.bump(Ctr::ServeEvictions, evicted);
        return submit_reply(&id, JobState::Done, true, false);
    }
    let evicted = state.cache.take_evictions();
    // 2. In flight: coalesce onto the queued/running job.
    if let Some(entry) = state.jobs.get(&id) {
        if !entry.state.is_terminal() {
            let job_state = entry.state;
            drop(state);
            shared.bump(Ctr::ServeCoalesced, 1);
            shared.bump(Ctr::ServeEvictions, evicted);
            return submit_reply(&id, job_state, false, true);
        }
    }
    // 3. Terminal but unusable (result evicted, or failed): re-queue,
    //    subject to the same queue bound as a fresh submission.
    if state.queue.len() >= shared.opts.queue_limit {
        drop(state);
        shared.bump(Ctr::ServeEvictions, evicted);
        return error_reply(
            503,
            &format!("queue full ({} jobs waiting)", shared.opts.queue_limit),
        );
    }
    let entry = state
        .jobs
        .entry(id.clone())
        .or_insert_with(|| JobEntry::queued(spec));
    entry.state = JobState::Queued;
    entry.error = None;
    entry.progress = None;
    entry.control = None;
    state.queue.push_back(id.clone());
    shared.persist_locked(&state);
    drop(state);
    shared.bump(Ctr::ServeEvictions, evicted);
    shared.wake.notify_one();
    submit_reply(&id, JobState::Queued, false, false)
}

fn status_body(id: &str, entry: &JobEntry) -> String {
    let mut w = ObjectWriter::new();
    w.str_field("job", id)
        .str_field("state", entry.state.name())
        .u64_field("instrs", entry.instrs())
        .str_field("phase", entry.phase());
    if let Some(error) = &entry.error {
        w.str_field("error", error);
    }
    w.finish()
}

fn handle_status(shared: &Arc<Shared>, id: &str) -> String {
    let state = lock(&shared.state);
    match state.jobs.get(id) {
        Some(entry) => ok_reply(&status_body(id, entry)),
        None => error_reply(404, &format!("unknown job {id}")),
    }
}

/// Long-poll: replies as soon as the job's retired-instruction count
/// moves past `since`, the job goes terminal, the server shuts down,
/// or `wait_ms` elapses.
fn handle_progress(shared: &Arc<Shared>, id: &str, query: &str) -> String {
    let mut since = 0u64;
    let mut wait_ms = 0u64;
    for pair in query.split('&') {
        if let Some((k, v)) = pair.split_once('=') {
            match k {
                "since" => since = v.parse().unwrap_or(0),
                "wait_ms" => wait_ms = v.parse().unwrap_or(0),
                _ => {}
            }
        }
    }
    let deadline = Instant::now() + Duration::from_millis(wait_ms.min(10_000));
    let mut state = lock(&shared.state);
    loop {
        let Some(entry) = state.jobs.get(id) else {
            return error_reply(404, &format!("unknown job {id}"));
        };
        let moved = entry.instrs() > since;
        if entry.state.is_terminal() || moved || shared.stopping() {
            return ok_reply(&status_body(id, entry));
        }
        let now = Instant::now();
        if now >= deadline {
            return ok_reply(&status_body(id, entry));
        }
        // Progress cells advance without notifying; wake periodically
        // to re-read them, and immediately on state transitions.
        let step = (deadline - now).min(Duration::from_millis(10));
        state = match shared.transition.wait_timeout(state, step) {
            Ok((g, _)) => g,
            Err(poisoned) => poisoned.into_inner().0,
        };
    }
}

fn handle_result(shared: &Arc<Shared>, id: &str) -> String {
    let mut state = lock(&shared.state);
    let Some(entry) = state.jobs.get(id) else {
        return error_reply(404, &format!("unknown job {id}"));
    };
    match entry.state {
        JobState::Done => {}
        JobState::Failed => {
            let detail = entry.error.clone().unwrap_or_default();
            return error_reply(409, &format!("job {id} failed: {detail}"));
        }
        _ => return error_reply(409, &format!("job {id} not finished")),
    }
    match state.cache.get(id) {
        Some((json_text, digest)) => {
            let evicted = state.cache.take_evictions();
            drop(state);
            shared.bump(Ctr::ServeEvictions, evicted);
            let mut w = ObjectWriter::new();
            w.str_field("job", id)
                .str_field("digest", &digest)
                .str_field("report", &json_text);
            ok_reply(&w.finish())
        }
        None => {
            let evicted = state.cache.take_evictions();
            drop(state);
            shared.bump(Ctr::ServeEvictions, evicted);
            error_reply(409, &format!("result for job {id} evicted; resubmit"))
        }
    }
}

fn handle_stats(shared: &Arc<Shared>) -> String {
    let state = lock(&shared.state);
    let counters = lock(&shared.counters);
    let mut w = ObjectWriter::new();
    for ctr in [
        Ctr::ServeRequests,
        Ctr::ServeCacheHits,
        Ctr::ServeCoalesced,
        Ctr::ServeEvictions,
    ] {
        w.u64_field(ctr.name(), counters.get(ctr));
    }
    w.u64_field("executed", shared.executed.load(Ordering::Relaxed))
        .u64_field("cache_bytes", state.cache.bytes() as u64)
        .u64_field("cache_entries", state.cache.len() as u64)
        .u64_field("queued", state.count(JobState::Queued))
        .u64_field("running", state.count(JobState::Running))
        .u64_field("done", state.count(JobState::Done))
        .u64_field("failed", state.count(JobState::Failed))
        .u64_field("workers", shared.worker_count as u64);
    ok_reply(&w.finish())
}
