//! Server-side job state and its crash-safe persistence.
//!
//! The whole job table persists through the bench checkpoint machinery
//! (flat JSON object of strings) under a `schema` marker plus one
//! `job:<id>` entry per job, each holding a flat-JSON record of the
//! spec, its state, and — once done — the rendered result and its
//! digest. The file is rewritten on every state transition, so a
//! server killed at any instant loses at most the in-flight
//! transition; recovery reads leniently (the same salvage rules as the
//! experiment checkpoint) and re-queues every job that was queued or
//! running when the process died.

use crate::cache::ResultCache;
use dcfb_bench::checkpoint::Checkpoint;
use dcfb_errors::DcfbError;
use dcfb_sdk::json::{self, ObjectWriter};
use dcfb_sdk::wire::{JobSpec, JobState};
use dcfb_sim::machine::RunControl;
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Schema marker written into every persisted state file.
pub const SERVE_STATE_SCHEMA: &str = "dcfb-serve-state-v1";

/// One job the server knows about.
#[derive(Clone, Debug)]
pub struct JobEntry {
    /// The submitted spec.
    pub spec: JobSpec,
    /// Life-cycle state.
    pub state: JobState,
    /// Terminal failure diagnostic.
    pub error: Option<String>,
    /// Live progress cell, present while running.
    pub progress: Option<Arc<AtomicU64>>,
    /// The running attempt's control, for shutdown cancellation.
    pub control: Option<RunControl>,
}

impl JobEntry {
    /// A freshly queued entry for `spec`.
    pub fn queued(spec: JobSpec) -> Self {
        JobEntry {
            spec,
            state: JobState::Queued,
            error: None,
            progress: None,
            control: None,
        }
    }

    /// The instruction count the running attempt last published.
    pub fn instrs(&self) -> u64 {
        self.progress
            .as_ref()
            .map(|p| p.load(std::sync::atomic::Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// The coarse phase reported on the status endpoints.
    pub fn phase(&self) -> &'static str {
        match self.state {
            JobState::Queued => "queued",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Running => {
                if self.instrs() < self.spec.warmup {
                    "warmup"
                } else {
                    "measure"
                }
            }
        }
    }
}

/// Everything behind the server's one state mutex: the job table, the
/// FIFO queue of job ids awaiting a worker, and the result cache.
#[derive(Debug)]
pub struct ServerState {
    /// Jobs by id (the spec digest).
    pub jobs: HashMap<String, JobEntry>,
    /// Ids waiting for a worker, submission order.
    pub queue: VecDeque<String>,
    /// Memoized results.
    pub cache: ResultCache,
}

impl ServerState {
    /// An empty state with the given cache byte budget.
    pub fn new(cache_budget: usize) -> Self {
        ServerState {
            jobs: HashMap::new(),
            queue: VecDeque::new(),
            cache: ResultCache::new(cache_budget),
        }
    }

    /// Jobs currently in `state`.
    pub fn count(&self, state: JobState) -> u64 {
        self.jobs.values().filter(|e| e.state == state).count() as u64
    }

    /// Renders the whole job table as a checkpoint document.
    pub fn to_checkpoint(&self) -> Checkpoint {
        let mut cp = Checkpoint::new();
        cp.put("schema", SERVE_STATE_SCHEMA);
        let mut ids: Vec<&String> = self.jobs.keys().collect();
        ids.sort();
        for id in ids {
            if let Some(entry) = self.jobs.get(id) {
                cp.put(&format!("job:{id}"), &render_record(id, entry, &self.cache));
            }
        }
        cp
    }

    /// Persists the job table to `path` (no-op when `path` is `None`).
    ///
    /// # Errors
    ///
    /// Returns [`DcfbError::Io`] on filesystem failure.
    pub fn persist(&self, path: Option<&Path>) -> Result<(), DcfbError> {
        match path {
            Some(p) => self.to_checkpoint().save(p),
            None => Ok(()),
        }
    }

    /// Rebuilds state from a persisted file: done jobs repopulate the
    /// result cache (rendered form only), failed jobs keep their
    /// diagnostic, and jobs that were queued or running when the
    /// server died are re-queued. Returns the lenient-load salvage
    /// reason, if the file was damaged.
    ///
    /// # Errors
    ///
    /// Returns [`DcfbError::Io`] when the file exists but cannot be
    /// read.
    pub fn recover(path: &Path, cache_budget: usize) -> Result<(Self, Option<String>), DcfbError> {
        let (cp, warn) = Checkpoint::load_lenient(path)?;
        let mut state = ServerState::new(cache_budget);
        for (key, value) in cp.entries() {
            let Some(_) = key.strip_prefix("job:") else {
                continue;
            };
            // A record that fails to parse is dropped, like the lenient
            // reader drops a torn tail entry.
            let Ok(record) = json::parse_object(value) else {
                continue;
            };
            let Ok(spec) = JobSpec::from_object(&record) else {
                continue;
            };
            let id = spec.digest();
            let recorded = json::opt_str(&record, "state").unwrap_or_default();
            let mut entry = JobEntry::queued(spec);
            match JobState::parse(&recorded) {
                Ok(JobState::Done) => {
                    let result = json::opt_str(&record, "result");
                    let digest = json::opt_str(&record, "digest");
                    if let (Some(result), Some(digest)) = (result, digest) {
                        entry.state = JobState::Done;
                        state.cache.insert(&id, result, digest, None);
                    } else {
                        // Done but the result record is torn: redo it.
                        state.queue.push_back(id.clone());
                    }
                }
                Ok(JobState::Failed) => {
                    entry.state = JobState::Failed;
                    entry.error = Some(
                        json::opt_str(&record, "error")
                            .unwrap_or_else(|| "unrecorded failure".to_owned()),
                    );
                }
                // Queued, running, or unparseable: the work was not
                // finished — run it (again).
                _ => {
                    state.queue.push_back(id.clone());
                }
            }
            state.jobs.insert(id, entry);
        }
        Ok((state, warn))
    }
}

/// Renders one job's persistent record (flat JSON, stored as a string
/// value inside the checkpoint object).
fn render_record(id: &str, entry: &JobEntry, cache: &ResultCache) -> String {
    let mut w = ObjectWriter::new();
    w.str_field("workload", &entry.spec.workload)
        .str_field("method", &entry.spec.method)
        .u64_field("warmup", entry.spec.warmup)
        .u64_field("measure", entry.spec.measure)
        .u64_field("seed", entry.spec.seed)
        .str_field("state", entry.state.name());
    if let Some(error) = &entry.error {
        w.str_field("error", error);
    }
    if entry.state == JobState::Done {
        if let Some((json_text, digest)) = cache.peek(id) {
            w.str_field("digest", digest).str_field("result", json_text);
        }
    }
    w.finish()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> JobSpec {
        JobSpec {
            workload: "Web Search".to_owned(),
            method: "Baseline".to_owned(),
            warmup: 100,
            measure: 400,
            seed,
        }
    }

    #[test]
    fn roundtrips_every_state_through_a_file() {
        let dir = std::env::temp_dir().join("dcfb-serve-state-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let mut state = ServerState::new(1 << 20);

        let done = spec(1);
        let done_id = done.digest();
        let mut e = JobEntry::queued(done);
        e.state = JobState::Done;
        state.jobs.insert(done_id.clone(), e);
        state
            .cache
            .insert(&done_id, "{\"cycles\":9}".to_owned(), "dg".to_owned(), None);

        let failed = spec(2);
        let failed_id = failed.digest();
        let mut e = JobEntry::queued(failed);
        e.state = JobState::Failed;
        e.error = Some("boom \"quoted\"".to_owned());
        state.jobs.insert(failed_id.clone(), e);

        let running = spec(3);
        let running_id = running.digest();
        let mut e = JobEntry::queued(running);
        e.state = JobState::Running;
        state.jobs.insert(running_id.clone(), e);

        let queued = spec(4);
        let queued_id = queued.digest();
        state
            .jobs
            .insert(queued_id.clone(), JobEntry::queued(queued));
        state.queue.push_back(queued_id.clone());

        state.persist(Some(&path)).unwrap();
        let (mut back, warn) = ServerState::recover(&path, 1 << 20).unwrap();
        assert!(warn.is_none());
        assert_eq!(back.jobs.len(), 4);
        assert_eq!(back.jobs[&done_id].state, JobState::Done);
        assert_eq!(
            back.cache.get(&done_id).unwrap(),
            ("{\"cycles\":9}".to_owned(), "dg".to_owned())
        );
        assert_eq!(back.jobs[&failed_id].state, JobState::Failed);
        assert_eq!(
            back.jobs[&failed_id].error.as_deref(),
            Some("boom \"quoted\"")
        );
        // Running and queued both come back as queued work.
        assert_eq!(back.jobs[&running_id].state, JobState::Queued);
        assert_eq!(back.jobs[&queued_id].state, JobState::Queued);
        let mut queued_ids: Vec<String> = back.queue.iter().cloned().collect();
        queued_ids.sort();
        let mut want = vec![running_id, queued_id];
        want.sort();
        assert_eq!(queued_ids, want);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_recovers_empty_and_damage_is_salvaged() {
        let dir = std::env::temp_dir().join("dcfb-serve-state-test-2");
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("absent.json");
        let (state, warn) = ServerState::recover(&missing, 1024).unwrap();
        assert!(state.jobs.is_empty());
        assert!(warn.is_none());

        // A file truncated mid-write salvages the complete prefix:
        // tearing the tail loses at most the last record.
        let mut full = ServerState::new(1024);
        for seed in [9, 10] {
            let s = spec(seed);
            let id = s.digest();
            full.jobs.insert(id.clone(), JobEntry::queued(s));
            full.queue.push_back(id);
        }
        let text = full.to_checkpoint().to_json();
        let torn = dir.join("torn.json");
        std::fs::write(&torn, &text[..text.len() - 4]).unwrap();
        let (back, warn) = ServerState::recover(&torn, 1024).unwrap();
        assert!(warn.is_some());
        assert_eq!(back.jobs.len(), 1, "the complete first record survives");
        std::fs::remove_file(&torn).unwrap();
    }

    #[test]
    fn phase_tracks_progress_cell() {
        let s = spec(5);
        let mut e = JobEntry::queued(s);
        assert_eq!(e.phase(), "queued");
        e.state = JobState::Running;
        let cell = Arc::new(AtomicU64::new(0));
        e.progress = Some(Arc::clone(&cell));
        assert_eq!(e.phase(), "warmup");
        cell.store(250, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(e.phase(), "measure");
        e.state = JobState::Done;
        assert_eq!(e.phase(), "done");
    }
}
