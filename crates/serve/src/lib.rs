//! # dcfb-serve
//!
//! Simulation-as-a-service: the long-lived job server behind
//! `dcfb serve`. It accepts [`dcfb_sdk::JobSpec`] submissions over a
//! hand-rolled HTTP/1.1 + flat-JSON protocol, runs them through the
//! supervised worker pool (deadlines, retries, quarantine), memoizes
//! results in a digest-keyed LRU cache under a byte budget, coalesces
//! duplicate in-flight submissions, streams per-job progress through
//! the simulator's [`dcfb_sim::RunControl`] hook, and persists its job
//! table through the bench checkpoint machinery so a killed server
//! resumes queued and running jobs on restart.
//!
//! Module map:
//!
//! * [`cache`] — the memoized result cache (LRU, byte budget,
//!   digest integrity check on every hit);
//! * [`state`] — the job table, its life cycle, and crash-safe
//!   persistence/recovery;
//! * [`server`] — the listener, router, submission semantics, and the
//!   worker pool;
//! * [`benchmix`] — the small replayed job mix measured by
//!   `dcfb bench-sweep` (schema v5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmix;
pub mod cache;
pub mod server;
pub mod state;

pub use benchmix::measure_serve_mix;
pub use cache::ResultCache;
pub use server::{render_report, ServeOptions, Server};
pub use state::{JobEntry, ServerState, SERVE_STATE_SCHEMA};
