//! The memoized result cache: rendered reports keyed by job digest,
//! LRU-evicted under a byte budget, integrity-checked on every hit.

use dcfb_sim::metrics::SimReport;
use std::collections::HashMap;

/// One memoized result.
#[derive(Clone, Debug)]
struct CacheEntry {
    /// The rendered report JSON served to clients.
    json: String,
    /// `SimReport::digest()` of the result.
    digest: String,
    /// The report itself, kept for the integrity check. Entries
    /// recovered from a checkpoint carry only the rendered form.
    report: Option<SimReport>,
    /// LRU stamp: larger = more recently used.
    stamp: u64,
}

impl CacheEntry {
    fn bytes(&self) -> usize {
        self.json.len() + self.digest.len()
    }
}

/// A digest-keyed LRU cache of rendered [`SimReport`]s with a byte
/// budget.
///
/// Every hit re-derives the stored report's digest and compares it to
/// the digest recorded at insertion — a mismatch means the value no
/// longer is what the simulation produced, so the entry is dropped
/// (counted as an eviction) and the lookup misses. The most recent
/// insertion always survives, even when it alone exceeds the budget:
/// serving the result that was just computed beats strict accounting.
#[derive(Debug)]
pub struct ResultCache {
    budget: usize,
    entries: HashMap<String, CacheEntry>,
    clock: u64,
    pending_evictions: u64,
}

impl ResultCache {
    /// An empty cache with the given byte budget.
    pub fn new(budget: usize) -> Self {
        ResultCache {
            budget,
            entries: HashMap::new(),
            clock: 0,
            pending_evictions: 0,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rendered bytes currently held (JSON + digest).
    pub fn bytes(&self) -> usize {
        self.entries.values().map(CacheEntry::bytes).sum()
    }

    /// Evictions (budget pressure + integrity drops) since the last
    /// call; resets the pending count. The server folds this into the
    /// `serve_evictions` counter.
    pub fn take_evictions(&mut self) -> u64 {
        std::mem::take(&mut self.pending_evictions)
    }

    /// Memoizes a result under `id`, evicting least-recently-used
    /// entries while the cache is over budget.
    pub fn insert(&mut self, id: &str, json: String, digest: String, report: Option<SimReport>) {
        self.clock += 1;
        self.entries.insert(
            id.to_owned(),
            CacheEntry {
                json,
                digest,
                report,
                stamp: self.clock,
            },
        );
        while self.bytes() > self.budget && self.entries.len() > 1 {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
                self.pending_evictions += 1;
            } else {
                break;
            }
        }
    }

    /// Looks up `id`, refreshing its LRU stamp. Returns the rendered
    /// `(json, digest)` pair, or `None` on miss — including the case
    /// where the stored report fails its digest integrity check (the
    /// entry is dropped and counted as an eviction).
    pub fn get(&mut self, id: &str) -> Option<(String, String)> {
        let ok = match self.entries.get(id) {
            None => return None,
            Some(e) => e.report.as_ref().is_none_or(|r| r.digest() == e.digest),
        };
        if !ok {
            self.entries.remove(id);
            self.pending_evictions += 1;
            return None;
        }
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(id).map(|e| {
            e.stamp = clock;
            (e.json.clone(), e.digest.clone())
        })
    }

    /// Like [`ResultCache::get`] but without refreshing the LRU stamp
    /// or integrity-checking — used by the persister, which must not
    /// perturb eviction order.
    pub fn peek(&self, id: &str) -> Option<(&str, &str)> {
        self.entries
            .get(id)
            .map(|e| (e.json.as_str(), e.digest.as_str()))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn report(cycles: u64) -> SimReport {
        SimReport {
            cycles,
            ..SimReport::default()
        }
    }

    #[test]
    fn hits_refresh_lru_and_misses_are_none() {
        let mut c = ResultCache::new(1 << 20);
        let r = report(10);
        c.insert("a", "{\"x\":1}".to_owned(), r.digest(), Some(r));
        assert_eq!(c.len(), 1);
        let (json, digest) = c.get("a").unwrap();
        assert_eq!(json, "{\"x\":1}");
        assert!(!digest.is_empty());
        assert!(c.get("b").is_none());
        assert_eq!(c.take_evictions(), 0);
    }

    #[test]
    fn evicts_least_recently_used_under_budget() {
        // Each entry is ~40 bytes of json + digest; budget fits two.
        let mut c = ResultCache::new(80);
        c.insert("a", "x".repeat(30), "d".repeat(8), None);
        c.insert("b", "x".repeat(30), "d".repeat(8), None);
        // Touch "a" so "b" is the LRU victim.
        assert!(c.get("a").is_some());
        c.insert("c", "x".repeat(30), "d".repeat(8), None);
        assert_eq!(c.take_evictions(), 1);
        assert!(c.get("b").is_none());
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
    }

    #[test]
    fn oversized_newest_entry_survives_alone() {
        let mut c = ResultCache::new(10);
        c.insert("small", "ok".to_owned(), "d".to_owned(), None);
        c.insert("huge", "x".repeat(1000), "d".to_owned(), None);
        // The older entry went; the fresh oversized one is served.
        assert_eq!(c.take_evictions(), 1);
        assert!(c.get("huge").is_some());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn integrity_mismatch_drops_the_entry() {
        let mut c = ResultCache::new(1 << 20);
        let r = report(10);
        c.insert("a", "{}".to_owned(), "not-the-digest".to_owned(), Some(r));
        assert!(c.get("a").is_none());
        assert_eq!(c.take_evictions(), 1);
        assert!(c.is_empty());
        // Recovered entries (no report) are trusted as-is.
        c.insert("b", "{}".to_owned(), "recovered".to_owned(), None);
        assert!(c.get("b").is_some());
    }
}
