//! The served job mix measured by `dcfb bench-sweep` (schema v5).
//!
//! A small, fixed mix — two methods crossed with two workloads, every
//! unique spec submitted twice — runs through a real in-process
//! [`Server`] on an ephemeral port: submissions travel the HTTP
//! protocol, the queue, the worker pool, and the memoizing cache
//! exactly as a remote client's would. The repeat submissions land in
//! the cache (or coalesce onto in-flight work), so the expected hit
//! fraction is about one half by construction; throughput counts
//! submissions resolved per wall-clock second, end to end.

use crate::server::{ServeOptions, Server};
use dcfb_bench::ServeMixMeasurement;
use dcfb_errors::DcfbError;
use dcfb_sdk::{Client, JobSpec};
use std::time::Instant;

/// Methods in the replayed mix: the paper baseline plus the headline
/// discontinuity prefetcher.
const MIX_METHODS: [&str; 2] = ["Baseline", "SN4L+Dis+BTB"];

/// Workloads in the replayed mix (a CDN-style and a search trace).
const MIX_WORKLOADS: [&str; 2] = ["Media Streaming", "Web Search"];

/// Runs the bench-sweep serve mix at the given per-job scale and
/// returns the measurement recorded in `BENCH_sweep.json`.
///
/// # Errors
///
/// Returns [`DcfbError::Io`] when the ephemeral listener cannot bind
/// and [`DcfbError::Protocol`] when the protocol round-trip fails;
/// simulation errors surface as the failing job's typed error.
pub fn measure_serve_mix(warmup: u64, measure: u64) -> Result<ServeMixMeasurement, DcfbError> {
    let mut server = Server::spawn(ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        state_path: None,
        ..ServeOptions::default()
    })?;
    let client = Client::new(server.local_addr().to_string());

    let mut specs = Vec::new();
    for method in MIX_METHODS {
        for workload in MIX_WORKLOADS {
            specs.push(JobSpec {
                workload: workload.to_owned(),
                method: method.to_owned(),
                warmup,
                measure,
                seed: dcfb_bench::runs::TRACE_SEED,
            });
        }
    }

    let started = Instant::now();
    let mut submits = 0u64;
    // First pass: submit every unique spec and wait for its result, so
    // the second pass is guaranteed to find either a cached result or
    // nothing in flight (making the hit fraction deterministic).
    for spec in &specs {
        let reply = client.submit(spec)?;
        submits += 1;
        client.wait(&reply.job)?;
    }
    let mut hits = 0u64;
    for spec in &specs {
        let reply = client.submit(spec)?;
        submits += 1;
        if reply.cached {
            hits += 1;
        }
        client.wait(&reply.job)?;
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);

    client.shutdown()?;
    server.wait();

    Ok(ServeMixMeasurement {
        submit_jobs: submits,
        cache_hit_frac: hits as f64 / submits as f64,
        jobs_per_sec: submits as f64 / elapsed,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn tiny_mix_measures_and_hits_cache() {
        let m = measure_serve_mix(50, 200).unwrap();
        assert_eq!(m.submit_jobs, 8);
        // The whole second pass is served from cache.
        assert!((m.cache_hit_frac - 0.5).abs() < 1e-9, "{m:?}");
        assert!(m.jobs_per_sec > 0.0 && m.jobs_per_sec.is_finite());
    }
}
