#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use dcfb_sim::{SimConfig, Simulator};
use dcfb_trace::IsaMode;
use dcfb_workloads::{all_workloads, Walker};
use std::sync::Arc;

#[test]
#[ignore]
fn btb_pressure() {
    for w in all_workloads().into_iter().take(3) {
        let image = w.image(IsaMode::Fixed4);
        let mut cfg = SimConfig::for_method("Baseline").unwrap();
        cfg.warmup_instrs = 500_000;
        cfg.measure_instrs = 1_000_000;
        let mut sim = Simulator::new(cfg, Arc::clone(&image));
        let mut walker = Walker::new(Arc::clone(&image), 7);
        let r = sim.run(&mut walker);
        println!(
            "{:16} btb_lookups={} miss_ratio={:.3} stall_btb={} stall_l1i={} stall_red={} cycles={}",
            w.name, r.btb.lookups, r.btb.miss_ratio(), r.stall_btb, r.stall_l1i, r.stall_redirect, r.cycles
        );
    }
}
