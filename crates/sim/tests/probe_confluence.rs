#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use dcfb_sim::{SimConfig, Simulator};
use dcfb_trace::IsaMode;
use dcfb_workloads::{ProgramImage, Walker, WorkloadParams};
use std::sync::Arc;

#[test]
#[ignore]
fn probe() {
    let params = WorkloadParams {
        functions: 500,
        root_functions: 32,
        zipf_s: 0.9,
        ..WorkloadParams::default()
    };
    let image = Arc::new(ProgramImage::build(&params, 3, IsaMode::Fixed4));
    for m in [
        "Baseline",
        "NL",
        "N4L",
        "Confluence",
        "SN4L",
        "SN4L+Dis",
        "SN4L+Dis+BTB",
        "Boomerang",
        "Shotgun",
    ] {
        let mut cfg = SimConfig::for_method(m).unwrap();
        cfg.warmup_instrs = 60_000;
        cfg.measure_instrs = 120_000;
        cfg.l1i = dcfb_cache::CacheConfig::from_kib(8, 8);
        let mut sim = Simulator::new(cfg, Arc::clone(&image));
        let mut w = Walker::new(Arc::clone(&image), 5);
        let r = sim.run(&mut w);
        println!(
            "{m:14} ipc={:.3} mpki={:.1} seq={} disc={} ext={} stalls: l1i={} btb={} red={} ftq={} cmal={:.2} pf_fills={} useless_ev={}",
            r.ipc(), r.l1i_mpki(), r.seq_misses, r.disc_misses, r.external_requests,
            r.stall_l1i, r.stall_btb, r.stall_redirect, r.stall_empty_ftq, r.cmal(),
            r.l1i.prefetch_fills, r.l1i.useless_prefetch_evictions,
        );
    }
}
