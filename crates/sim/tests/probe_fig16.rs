#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use dcfb_sim::{SimConfig, Simulator};
use dcfb_trace::IsaMode;
use dcfb_workloads::{all_workloads, Walker};
use std::sync::Arc;

#[test]
#[ignore]
fn fig16() {
    let methods = [
        "SN4L+Dis+BTB",
        "Shotgun",
        "Confluence",
        "SN4L",
        "SN4L+Dis",
        "N4L",
    ];
    println!(
        "{:16} {:>8} {:>13} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "workload", "base", "SN4L+Dis+BTB", "Shotgun", "Confl", "SN4L", "S+Dis", "N4L"
    );
    let mut sums = vec![0.0; methods.len()];
    for w in all_workloads() {
        let image = w.image(IsaMode::Fixed4);
        let run = |method: &str| {
            let mut cfg = SimConfig::for_method(method).unwrap();
            cfg.warmup_instrs = 500_000;
            cfg.measure_instrs = 1_000_000;
            let mut sim = Simulator::new(cfg, Arc::clone(&image));
            let mut walker = Walker::new(Arc::clone(&image), 7);
            sim.run(&mut walker)
        };
        let base = run("Baseline");
        let mut row = format!("{:16} {:8.3}", w.name, base.ipc());
        for (i, m) in methods.iter().enumerate() {
            let r = run(m);
            let sp = r.ipc() / base.ipc();
            sums[i] += sp.ln();
            row += &format!(" {:8.3}", sp);
        }
        println!("{row}");
    }
    let n = all_workloads().len() as f64;
    let mut row = format!("{:16} {:8}", "GEOMEAN", "");
    for s in &sums {
        row += &format!(" {:8.3}", (s / n).exp());
    }
    println!("{row}");
}
