#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use dcfb_trace::{InstrStream, IsaMode};
use dcfb_workloads::{all_workloads, Walker};
use std::collections::HashSet;
use std::sync::Arc;

#[test]
#[ignore]
fn footprint() {
    for w in all_workloads().into_iter().take(3) {
        let image = w.image(IsaMode::Fixed4);
        let mut walker = Walker::new(Arc::clone(&image), 7);
        // Skip warmup region
        for _ in 0..500_000 {
            walker.next_instr();
        }
        let mut window = HashSet::new();
        let mut total = HashSet::new();
        let mut windows = vec![];
        for i in 0..1_000_000u64 {
            let b = walker.next_instr().unwrap().block();
            window.insert(b);
            total.insert(b);
            if (i + 1) % 100_000 == 0 {
                windows.push(window.len());
                window.clear();
            }
        }
        println!(
            "{:16} per-100K-instr blocks: {:?}  1M-total: {} ({} KB) txns={}",
            w.name,
            windows,
            total.len(),
            total.len() * 64 / 1024,
            walker.transactions(),
        );
    }
}
