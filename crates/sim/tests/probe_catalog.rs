#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use dcfb_sim::{SimConfig, Simulator};
use dcfb_trace::IsaMode;
use dcfb_workloads::{all_workloads, Walker};
use std::sync::Arc;

#[test]
#[ignore]
fn catalog() {
    for w in all_workloads() {
        let image = w.image(IsaMode::Fixed4);
        let mut cfg = SimConfig::for_method("Baseline").unwrap();
        cfg.warmup_instrs = 500_000;
        cfg.measure_instrs = 1_000_000;
        let mut sim = Simulator::new(cfg, Arc::clone(&image));
        let mut walker = Walker::new(Arc::clone(&image), 7);
        let r = sim.run(&mut walker);
        let fe = r.frontend_stalls() as f64 / r.cycles as f64;
        println!(
            "{:16} ipc={:.3} mpki={:5.1} seq_frac={:.2} fe_stall={:.2} red_frac={:.2} code_kb={}",
            w.name,
            r.ipc(),
            r.l1i_mpki(),
            r.seq_miss_fraction(),
            fe,
            r.stall_redirect as f64 / r.cycles as f64,
            image.code_bytes() / 1024,
        );
    }
}
