//! # dcfb-sim
//!
//! The cycle-approximate, trace-driven frontend simulator used to
//! reproduce every experiment in "Divide and Conquer Frontend
//! Bottleneck" (ISCA 2020).
//!
//! The simulator models one core of the paper's 16-core CMP (Table III):
//! a 3-wide frontend fed by a 32 KB L1i (4-cycle load-to-use, 2 ports,
//! 32 MSHRs), a 2 K-entry BTB with TAGE direction prediction and a RAS,
//! an FTQ-decoupled fetch engine for the BTB-directed prefetchers, and
//! the shared-LLC/NoC/memory model of `dcfb-uncore`. The backend is
//! idealized (the paper's metrics are all frontend-bound); wrong-path
//! effects appear as redirect penalties plus bounded wrong-path fetch
//! traffic.
//!
//! Two frontend drivers share the machine (see [`machine`]):
//!
//! * the conventional decoupled frontend used by the baseline, the
//!   sequential/discontinuity prefetchers, SN4L+Dis+BTB, Confluence,
//!   and registry compositions of them;
//! * the BTB-directed driver that runs Boomerang or Shotgun ahead of
//!   fetch through the FTQ.
//!
//! Both implement the `machine::FrontendDriver` trait, so the per-cycle
//! loop is written once; methods are constructed through the
//! `dcfb-prefetch` method registry.
//!
//! [`analysis`] hosts the timing-free trace analyses behind Figs. 2 and
//! 6–9; [`experiment`] packages warmup + measurement + baselines for
//! the figure/table binaries in `dcfb-bench`.

//! # Examples
//!
//! Run the paper's prefetcher against the baseline on a small custom
//! workload:
//!
//! ```
//! use dcfb_sim::{run_workload, SimConfig};
//! use dcfb_workloads::{Workload, WorkloadParams};
//!
//! let workload = Workload {
//!     name: "demo",
//!     params: WorkloadParams {
//!         name: "demo".to_owned(),
//!         functions: 120,
//!         root_functions: 8,
//!         ..WorkloadParams::default()
//!     },
//!     image_seed: 1,
//! };
//! let mut cfg = SimConfig::for_method("SN4L+Dis+BTB").unwrap();
//! cfg.warmup_instrs = 10_000;
//! cfg.measure_instrs = 20_000;
//! let result = run_workload(&workload, cfg, 42);
//! assert_eq!(result.report.instrs, 20_000);
//! assert!(result.speedup() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod config;
pub mod experiment;
pub mod machine;
pub mod metrics;
pub mod shard;

pub use config::{PrefetcherKind, SimConfig};
pub use experiment::{
    geomean, run_config, run_config_profiled, run_multi_seed, run_resolved, run_resolved_profiled,
    run_resolved_workload, run_workload, ExperimentResult, Measurement,
};
pub use machine::{RunControl, Simulator};
pub use metrics::{SimReport, StallKind};
pub use shard::{
    merge_reports, plan_shards, record_stream, record_trace, run_shard, run_sharded,
    run_sharded_resolved, shard_stream, ShardOptions, ShardPlan, ShardSpec, ShardedRun,
    SliceStream,
};
