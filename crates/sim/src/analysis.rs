//! Timing-free trace analyses behind the paper's motivation figures.
//!
//! These passes replay a trace against a functional L1i model and
//! measure structural properties of the workload:
//!
//! * [`sequential_miss_fraction`] — Fig. 2 (65–80 % of L1i misses are
//!   sequential),
//! * [`pattern_predictability`] — Fig. 6 (the 4-subsequent-block access
//!   pattern repeats with ≈ 92 % accuracy),
//! * [`discontinuity_stability`] — Fig. 7 (≈ 80 % of per-block
//!   discontinuities are caused by the same branch as last time),
//! * [`branch_footprint_coverage`] — Fig. 8 (uncovered branches vs.
//!   branches stored per BF),
//! * [`bf_per_set_coverage`] — Fig. 9 (uncovered BFs vs. BF slots per
//!   LLC set).

use dcfb_cache::{CacheConfig, LineFlags, SetAssocCache};
use dcfb_trace::{block_of, Block, Instr, InstrStream};
use dcfb_workloads::ProgramImage;
use fxhash::FxHashMap;

/// Replays `stream` (up to `limit` instructions) against a functional
/// L1i and returns `(sequential_misses, discontinuity_misses)`.
///
/// A miss is *sequential* when its block is spatially right after the
/// last accessed block (§IV).
pub fn sequential_miss_fraction<S: InstrStream>(
    stream: &mut S,
    l1i: CacheConfig,
    limit: u64,
) -> (u64, u64) {
    let mut cache = SetAssocCache::new(l1i);
    let mut prev: Option<Block> = None;
    let mut seq = 0;
    let mut disc = 0;
    let mut n = 0;
    while n < limit {
        let Some(i) = stream.next_instr() else { break };
        n += 1;
        let block = i.block();
        if prev == Some(block) {
            continue;
        }
        if !cache.demand_access(block) {
            if prev == Some(block.wrapping_sub(1)) {
                seq += 1;
            } else {
                disc += 1;
            }
            cache.fill(block, LineFlags::demand_instruction());
        }
        prev = Some(block);
    }
    (seq, disc)
}

/// Fig. 6: for each block, from insertion to eviction, record which of
/// the four subsequent blocks are accessed; compare each generation's
/// pattern with the previous one. Returns the fraction of pattern bits
/// that repeat.
pub fn pattern_predictability<S: InstrStream>(stream: &mut S, l1i: CacheConfig, limit: u64) -> f64 {
    let mut cache = SetAssocCache::new(l1i);
    // Live pattern per resident block, last completed pattern per block.
    let mut live: FxHashMap<Block, u8> = FxHashMap::default();
    let mut last: FxHashMap<Block, u8> = FxHashMap::default();
    let mut matches = 0u64;
    let mut total = 0u64;
    let mut prev: Option<Block> = None;
    let mut n = 0;
    while n < limit {
        let Some(i) = stream.next_instr() else { break };
        n += 1;
        let block = i.block();
        if prev == Some(block) {
            continue;
        }
        prev = Some(block);
        // Mark this block in the live pattern of its four predecessors.
        for d in 1..=4u64 {
            let anchor = block.wrapping_sub(d);
            if let Some(p) = live.get_mut(&anchor) {
                *p |= 1 << (d - 1);
            }
        }
        if !cache.demand_access(block) {
            if let Some(ev) = cache.fill(block, LineFlags::demand_instruction()) {
                if let Some(pattern) = live.remove(&ev.block) {
                    if let Some(prior) = last.insert(ev.block, pattern) {
                        total += 4;
                        let differing = ((pattern ^ prior) & 0xF).count_ones();
                        matches += u64::from(4 - differing);
                    }
                }
            }
            live.insert(block, 0);
        }
    }
    if total == 0 {
        0.0
    } else {
        matches as f64 / total as f64
    }
}

/// Fig. 7: for each block, compare the branch (by pc) that caused
/// consecutive discontinuities out of that block. Returns the fraction
/// of discontinuities caused by the same branch as the previous one
/// from the same block.
pub fn discontinuity_stability<S: InstrStream>(stream: &mut S, limit: u64) -> f64 {
    let mut last_branch_from: FxHashMap<Block, u64> = FxHashMap::default();
    let mut same = 0u64;
    let mut total = 0u64;
    let mut prev_instr: Option<Instr> = None;
    let mut n = 0;
    while n < limit {
        let Some(i) = stream.next_instr() else { break };
        n += 1;
        if let Some(p) = prev_instr {
            if p.redirects() && block_of(p.pc) != i.block() {
                // A discontinuity out of p's block into i's block.
                let from = block_of(p.pc);
                if let Some(prev_pc) = last_branch_from.insert(from, p.pc) {
                    total += 1;
                    same += u64::from(prev_pc == p.pc);
                }
            }
        }
        prev_instr = Some(i);
    }
    if total == 0 {
        0.0
    } else {
        same as f64 / total as f64
    }
}

/// Fig. 8: the fraction of *static* branches left uncovered when each
/// block's branch footprint stores only `per_bf` offsets. Returns the
/// uncovered fraction in `[0, 1]`.
pub fn branch_footprint_coverage(image: &ProgramImage, per_bf: usize) -> f64 {
    let mut covered = 0usize;
    let mut total = 0usize;
    let mut block = block_of(dcfb_workloads::image::IMAGE_BASE);
    let end_block = block_of(image.end());
    while block <= end_block {
        let branches = image
            .block_slice(block)
            .iter()
            .filter(|i| i.kind.is_branch())
            .count();
        total += branches;
        covered += branches.min(per_bf);
        block += 1;
    }
    if total == 0 {
        0.0
    } else {
        1.0 - covered as f64 / total as f64
    }
}

/// Fig. 9: replays the instruction-block stream into an LLC-shaped set
/// mapping and measures the fraction of *distinct instruction blocks
/// per set* beyond `bf_slots` — i.e. footprints that would not fit in
/// the BF-holder. Returns the uncovered fraction in `[0, 1]`.
pub fn bf_per_set_coverage<S: InstrStream>(
    stream: &mut S,
    llc_sets: usize,
    bf_slots: usize,
    limit: u64,
) -> f64 {
    assert!(
        llc_sets.is_power_of_two(),
        "LLC sets must be a power of two"
    );
    // LRU-ish per-set tracking of instruction blocks with a bounded
    // window per set (models which BFs compete for slots).
    let mut sets: FxHashMap<usize, Vec<Block>> = FxHashMap::default();
    let mut covered = 0u64;
    let mut total = 0u64;
    let mut prev: Option<Block> = None;
    let mut n = 0;
    while n < limit {
        let Some(i) = stream.next_instr() else { break };
        n += 1;
        let block = i.block();
        if prev == Some(block) {
            continue;
        }
        prev = Some(block);
        let set = (block as usize) & (llc_sets - 1);
        let v = sets.entry(set).or_default();
        total += 1;
        if let Some(pos) = v.iter().position(|&b| b == block) {
            // MRU update.
            let b = v.remove(pos);
            v.insert(0, b);
            covered += 1;
        } else {
            v.insert(0, block);
            // A BF lookup succeeds if the block ranks within the
            // BF-holder's capacity; new blocks always displace LRU.
            if v.len() <= bf_slots {
                covered += 1;
            }
            if v.len() > 16 {
                v.pop();
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        1.0 - covered as f64 / total as f64
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use dcfb_trace::IsaMode;
    use dcfb_workloads::{Walker, WorkloadParams};
    use std::sync::Arc;

    fn image() -> Arc<ProgramImage> {
        let params = WorkloadParams {
            functions: 80,
            root_functions: 8,
            ..WorkloadParams::default()
        };
        Arc::new(ProgramImage::build(&params, 21, IsaMode::Fixed4))
    }

    #[test]
    fn sequential_misses_dominate() {
        let mut w = Walker::new(image(), 1);
        let (seq, disc) = sequential_miss_fraction(&mut w, CacheConfig::l1i(), 600_000);
        assert!(seq + disc > 100, "too few misses: {seq}+{disc}");
        let frac = seq as f64 / (seq + disc) as f64;
        // The paper's Fig. 2 band is 65-80 %; allow generous slack for
        // the small test image.
        assert!((0.4..0.95).contains(&frac), "seq fraction {frac}");
    }

    #[test]
    fn patterns_are_predictable() {
        let mut w = Walker::new(image(), 2);
        // Small cache so the test image generates enough evictions to
        // complete pattern generations.
        let small = CacheConfig::from_kib(8, 8);
        let p = pattern_predictability(&mut w, small, 1_000_000);
        assert!(p > 0.6, "pattern predictability {p}");
        assert!(p <= 1.0);
    }

    #[test]
    fn discontinuities_are_stable() {
        let mut w = Walker::new(image(), 3);
        let s = discontinuity_stability(&mut w, 600_000);
        assert!(s > 0.5, "stability {s}");
        assert!(s <= 1.0);
    }

    #[test]
    fn four_branches_cover_almost_all() {
        let img = image();
        let none = branch_footprint_coverage(&img, 0);
        let one = branch_footprint_coverage(&img, 1);
        let four = branch_footprint_coverage(&img, 4);
        let sixteen = branch_footprint_coverage(&img, 16);
        assert!(none > one && one > four, "{none} {one} {four}");
        assert!(four < 0.10, "4-branch BF leaves {four} uncovered");
        assert!(sixteen < 1e-9);
    }

    #[test]
    fn bf_slots_sweep_is_monotonic() {
        let img = image();
        let mut last = 1.0;
        for slots in [1usize, 2, 3, 4] {
            let mut w = Walker::new(Arc::clone(&img), 4);
            let uncovered = bf_per_set_coverage(&mut w, 2048, slots, 400_000);
            assert!(
                uncovered <= last + 1e-9,
                "slots {slots}: {uncovered} > {last}"
            );
            last = uncovered;
        }
        assert!(last < 0.2, "4 BF slots leave {last} uncovered");
    }

    // --- Ground-truth fixtures: tiny hand-built streams where the
    // --- expected Fig. 2/6/7 fractions are computable by hand.

    use dcfb_trace::{InstrKind, VecTrace, BLOCK_BYTES};

    /// One non-branch instruction at the base of `block`.
    fn step(block: Block) -> Instr {
        Instr::other(block * BLOCK_BYTES, 4)
    }

    #[test]
    fn seq_miss_ground_truth() {
        // Cold misses in order: 10 (disc: no predecessor), 11, 12, 13
        // (seq), a jump to 50 (disc), 51, 52 (seq). A second
        // instruction inside block 12 and a re-access of the cached
        // block 11 must not add misses.
        let mut instrs: Vec<Instr> = [10u64, 11, 12].iter().map(|&b| step(b)).collect();
        instrs.push(Instr::other(12 * BLOCK_BYTES + 4, 4));
        instrs.extend([13u64, 50, 51, 52].iter().map(|&b| step(b)));
        instrs.push(step(11));
        let mut t = VecTrace::new(instrs.clone());
        assert_eq!(
            sequential_miss_fraction(&mut t, CacheConfig::l1i(), 1_000),
            (5, 2)
        );
        // The limit truncates the stream: only blocks 10, 11, 12 run.
        let mut t = VecTrace::new(instrs);
        assert_eq!(
            sequential_miss_fraction(&mut t, CacheConfig::l1i(), 3),
            (2, 1)
        );
    }

    #[test]
    fn pattern_predictability_is_one_for_a_periodic_loop() {
        // 20 blocks cycling through a 16-line fully-associative cache:
        // LRU thrash misses on every access, and the periodic stream
        // makes every generation of every block identical, so every
        // compared pattern bit repeats.
        let instrs: Vec<Instr> = (0..8).flat_map(|_| (0u64..20).map(step)).collect();
        let mut t = VecTrace::new(instrs);
        let tiny = CacheConfig { sets: 1, ways: 16 };
        let p = pattern_predictability(&mut t, tiny, u64::MAX);
        assert!((p - 1.0).abs() < 1e-12, "{p}");
    }

    #[test]
    fn pattern_predictability_counts_changed_bits() {
        // Direct-mapped, 16 sets. Each round touches block 0, then one
        // of its four successors (alternating +1 / +2), then a fresh
        // evictor block ≡ 0 (mod 16) that ends block 0's generation.
        // Consecutive generations therefore differ in exactly 2 of 4
        // pattern bits; the one-shot evictor blocks never complete a
        // second generation and contribute nothing.
        let mut instrs = Vec::new();
        for round in 0u64..6 {
            instrs.push(step(0));
            instrs.push(step(1 + round % 2));
            instrs.push(step(32 + 16 * round));
        }
        let mut t = VecTrace::new(instrs);
        let dm = CacheConfig { sets: 16, ways: 1 };
        let p = pattern_predictability(&mut t, dm, u64::MAX);
        assert!((p - 0.5).abs() < 1e-12, "{p}");
    }

    #[test]
    fn discontinuity_stability_is_one_for_a_steady_loop() {
        // One branch per block ever causes the discontinuity, so after
        // the first sighting every repeat matches. A not-taken
        // conditional and an intra-block jump must not register.
        let mut instrs = Vec::new();
        for _ in 0..5 {
            instrs.push(Instr::branch(0x40, 4, InstrKind::Jump, 0x140));
            instrs.push(Instr::other(0x140, 4));
            instrs.push(Instr::branch(
                0x144,
                4,
                InstrKind::CondBranch { taken: false },
                0x180,
            ));
            instrs.push(Instr::branch(0x148, 4, InstrKind::Jump, 0x160));
            instrs.push(Instr::other(0x160, 4));
            instrs.push(Instr::branch(0x164, 4, InstrKind::Jump, 0x40));
        }
        let mut t = VecTrace::new(instrs);
        let s = discontinuity_stability(&mut t, u64::MAX);
        assert!((s - 1.0).abs() < 1e-12, "{s}");
    }

    #[test]
    fn discontinuity_stability_tracks_the_last_branch_exactly() {
        // Branches out of block 1 follow the pc pattern A,A,B repeated
        // three times; consecutive-pair agreement is exactly 3/8. Every
        // round detours through a fresh block, so the way back never
        // repeats a (block, branch) pair and contributes nothing.
        let (a, b) = (0x40u64, 0x48u64);
        let mut instrs = Vec::new();
        for (round, &pc) in [a, a, b, a, a, b, a, a, b].iter().enumerate() {
            let detour = (100 + round as u64) * BLOCK_BYTES;
            instrs.push(Instr::branch(pc, 4, InstrKind::Jump, detour));
            instrs.push(Instr::other(detour, 4));
            instrs.push(Instr::branch(detour + 4, 4, InstrKind::Jump, a));
        }
        instrs.push(Instr::other(a, 4));
        let mut t = VecTrace::new(instrs);
        let s = discontinuity_stability(&mut t, u64::MAX);
        assert!((s - 3.0 / 8.0).abs() < 1e-12, "{s}");
    }

    #[test]
    fn empty_stream_edge_cases() {
        let mut empty = dcfb_trace::VecTrace::default();
        assert_eq!(
            sequential_miss_fraction(&mut empty, CacheConfig::l1i(), 100),
            (0, 0)
        );
        let mut empty = dcfb_trace::VecTrace::default();
        assert_eq!(
            pattern_predictability(&mut empty, CacheConfig::l1i(), 10),
            0.0
        );
        let mut empty = dcfb_trace::VecTrace::default();
        assert_eq!(discontinuity_stability(&mut empty, 10), 0.0);
        let mut empty = dcfb_trace::VecTrace::default();
        assert_eq!(bf_per_set_coverage(&mut empty, 64, 2, 10), 0.0);
    }
}
