//! Shard planning: slicing one measurement window into K contiguous
//! time slices, each with a warmup-overlap prefix.
//!
//! The measured window of `measure` instructions is cut into K
//! contiguous slices (the first `measure % K` slices get one extra
//! instruction). Shard 0 keeps the run's full global warmup, so a
//! single-shard plan consumes exactly the same instruction sequence as
//! a sequential run. Every later shard is given a warmup-overlap
//! prefix: up to `overlap` instructions taken from the trace
//! immediately before its slice, replayed to warm SeqTable/DisTable/
//! RLU/BTB/predictor state but excluded from measurement. The prefix
//! is clamped to the instructions that actually precede the slice, so
//! an overlap longer than a shard (or longer than the whole preceding
//! trace) degrades gracefully to "warm on everything before me".

/// One contiguous slice of a recorded trace: `warmup` warm-only
/// instructions starting at trace offset `start`, followed by
/// `measure` measured instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Position of this shard in the plan (0-based, time order).
    pub index: usize,
    /// Offset into the recorded trace where this shard's stream begins
    /// (the first warmup instruction).
    pub start: u64,
    /// Warm-only prefix instructions (excluded from measurement).
    pub warmup: u64,
    /// Measured instructions.
    pub measure: u64,
}

impl ShardSpec {
    /// Total instructions this shard consumes from the trace.
    pub fn total_instrs(&self) -> u64 {
        self.warmup + self.measure
    }

    /// Exclusive end offset of this shard's stream in the trace.
    pub fn end(&self) -> u64 {
        self.start + self.total_instrs()
    }
}

/// A complete slicing of one run into shards.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// The shards, in time order. Degenerate (zero-measure) slices are
    /// dropped, so this can be shorter than `requested`.
    pub shards: Vec<ShardSpec>,
    /// The run's global warmup window.
    pub warmup: u64,
    /// The run's global measurement window.
    pub measure: u64,
    /// Shard count the caller asked for.
    pub requested: usize,
    /// Warmup-overlap prefix length applied to shards after the first.
    pub overlap: u64,
}

impl ShardPlan {
    /// Trace length (instructions) the plan replays: global warmup plus
    /// the measured window. Every shard's stream lies inside it.
    pub fn trace_instrs(&self) -> u64 {
        self.warmup + self.measure
    }
}

/// Plans a `shards`-way slicing of a `warmup`+`measure` run with the
/// given warmup-`overlap` prefix for shards after the first.
///
/// `shards == 0` is treated as 1. When `measure < shards` the surplus
/// slices would measure nothing; they are dropped rather than planned
/// (a shard must measure at least one instruction), so K greater than
/// the trace length degenerates to one shard per instruction.
pub fn plan_shards(warmup: u64, measure: u64, shards: usize, overlap: u64) -> ShardPlan {
    let requested = shards.max(1);
    let k = requested as u64;
    let base = measure / k;
    let rem = measure % k;
    let mut specs = Vec::with_capacity(requested.min(measure.max(1) as usize));
    // Cumulative measured instructions handed to earlier shards; shard
    // i's slice starts at trace offset `warmup + consumed`.
    let mut consumed = 0u64;
    for i in 0..requested {
        let len = base + u64::from((i as u64) < rem);
        if len == 0 {
            continue;
        }
        let spec = if specs.is_empty() {
            // The first shard replays the run's global warmup so a
            // single-shard plan is instruction-for-instruction the
            // sequential run.
            ShardSpec {
                index: 0,
                start: 0,
                warmup,
                measure: len,
            }
        } else {
            // Later shards warm on up to `overlap` instructions taken
            // from immediately before their slice; at least one so the
            // simulator's non-empty-warmup invariant holds, at most
            // everything that precedes the slice.
            let preceding = warmup + consumed;
            let warm = overlap.max(1).min(preceding);
            ShardSpec {
                index: specs.len(),
                start: preceding - warm,
                warmup: warm,
                measure: len,
            }
        };
        specs.push(spec);
        consumed += len;
    }
    ShardPlan {
        shards: specs,
        warmup,
        measure,
        requested,
        overlap,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_matches_sequential_window() {
        let plan = plan_shards(1_000, 4_000, 1, 250);
        assert_eq!(plan.shards.len(), 1);
        let s = plan.shards[0];
        assert_eq!(s.start, 0);
        assert_eq!(s.warmup, 1_000);
        assert_eq!(s.measure, 4_000);
        assert_eq!(s.end(), plan.trace_instrs());
    }

    #[test]
    fn slices_are_contiguous_and_cover_the_window() {
        let plan = plan_shards(1_000, 10_001, 4, 300);
        assert_eq!(plan.shards.len(), 4);
        let mut measured = 0;
        for (i, s) in plan.shards.iter().enumerate() {
            assert_eq!(s.index, i);
            // Slice begins exactly where the previous one ended.
            assert_eq!(s.start + s.warmup, plan.warmup + measured);
            assert!(s.end() <= plan.trace_instrs());
            measured += s.measure;
        }
        assert_eq!(measured, 10_001);
        // First remainder shard got the extra instruction.
        assert_eq!(plan.shards[0].measure, 2_501);
        assert_eq!(plan.shards[3].measure, 2_500);
        // Later shards warm on exactly the requested overlap.
        assert_eq!(plan.shards[1].warmup, 300);
    }

    #[test]
    fn more_shards_than_instructions_drops_empty_slices() {
        let plan = plan_shards(50, 3, 8, 10);
        assert_eq!(plan.requested, 8);
        assert_eq!(plan.shards.len(), 3);
        for s in &plan.shards {
            assert_eq!(s.measure, 1);
        }
    }

    #[test]
    fn overlap_longer_than_preceding_trace_is_clamped() {
        let plan = plan_shards(100, 1_000, 4, 1_000_000);
        for s in &plan.shards[1..] {
            // Clamped to everything before the slice: starts at 0.
            assert_eq!(s.start, 0);
            assert_eq!(s.warmup + s.measure, s.end());
        }
        assert_eq!(plan.shards[1].warmup, 100 + 250);
    }

    #[test]
    fn zero_overlap_still_warms_one_instruction() {
        let plan = plan_shards(500, 400, 2, 0);
        assert_eq!(plan.shards[1].warmup, 1);
    }

    #[test]
    fn zero_shards_is_one() {
        let plan = plan_shards(10, 20, 0, 5);
        assert_eq!(plan.requested, 1);
        assert_eq!(plan.shards.len(), 1);
    }
}
