//! Sharded time-slice execution: split one run's measured window into
//! K contiguous slices, simulate the slices concurrently, and stitch
//! the per-shard [`SimReport`]s into one merged report.
//!
//! The paper's observation — the frontend bottleneck decomposes into
//! independent categories — applies to the simulator itself: a
//! trace-driven run decomposes into time slices. The workload's
//! dynamic stream is recorded once (it is deterministic in the trace
//! seed), each shard replays its slice behind a warmup-overlap prefix
//! that warms SeqTable/DisTable/RLU/BTB/predictor state without being
//! measured, and the per-shard reports merge by summing event counts
//! (see [`merge_reports`]).
//!
//! A one-shard plan replays exactly the sequential instruction
//! sequence, so `shards = 1` is byte-identical to a sequential run —
//! the conformance suite pins that for every registry method. With
//! K > 1 the overlap prefix only approximates the long history a
//! sequential run carries into each slice, so merged counters differ
//! within small validated tolerances (recorded next to the exact
//! goldens in `golden_digests.txt`).

mod merge;
mod plan;

pub use merge::merge_reports;
pub use plan::{plan_shards, ShardPlan, ShardSpec};

use crate::config::SimConfig;
use crate::machine::Simulator;
use crate::metrics::SimReport;
use dcfb_errors::DcfbError;
use dcfb_trace::{Instr, InstrStream};
use dcfb_workloads::{ProgramImage, ResolvedWorkload, Walker};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// How a sharded run is split and scheduled.
#[derive(Clone, Copy, Debug)]
pub struct ShardOptions {
    /// Number of time slices to cut the measured window into.
    pub shards: usize,
    /// Warmup-overlap prefix for shards after the first; `None` uses a
    /// quarter of the run's global warmup window.
    pub warmup_overlap: Option<u64>,
    /// Worker threads simulating shards concurrently; 0 or 1 runs the
    /// shards on the calling thread.
    pub jobs: usize,
}

impl ShardOptions {
    /// Options for a `shards`-way run with the default overlap, one
    /// worker per shard.
    pub fn new(shards: usize) -> Self {
        ShardOptions {
            shards,
            warmup_overlap: None,
            jobs: shards,
        }
    }

    /// The effective warmup-overlap prefix for a run with the given
    /// global warmup window.
    pub fn overlap_for(&self, warmup_instrs: u64) -> u64 {
        self.warmup_overlap.unwrap_or(warmup_instrs / 4).max(1)
    }

    /// Rejects shard options that a run could only honor by silently
    /// clamping: zero shards, or a warmup overlap reaching past the
    /// measured-window start (overlap > warmup). Full-warmup overlap
    /// (overlap == warmup) stays valid — it is the conformance suite's
    /// K=3 operating point.
    ///
    /// # Errors
    ///
    /// Returns [`DcfbError::Config`] naming the offending knob.
    pub fn validate(&self, warmup_instrs: u64) -> Result<(), DcfbError> {
        if self.shards == 0 {
            return Err(DcfbError::Config("--shards must be at least 1".to_owned()));
        }
        if let Some(overlap) = self.warmup_overlap {
            if overlap > warmup_instrs {
                return Err(DcfbError::Config(format!(
                    "--warmup-overlap {overlap} reaches past the measured-window \
                     start (warmup is {warmup_instrs} instructions)"
                )));
            }
        }
        Ok(())
    }
}

/// A sharded run's results: the stitched report, the per-shard reports
/// it was merged from (time order), and the plan that produced them.
#[derive(Clone, Debug)]
pub struct ShardedRun {
    /// The stitched whole-window report.
    pub merged: SimReport,
    /// Per-shard reports, in time order.
    pub per_shard: Vec<SimReport>,
    /// The slicing that was executed.
    pub plan: ShardPlan,
}

/// A replay cursor over a borrowed slice of recorded instructions.
#[derive(Clone, Debug)]
pub struct SliceStream<'a> {
    instrs: &'a [Instr],
    pos: usize,
}

impl<'a> SliceStream<'a> {
    /// A cursor positioned at the start of `instrs`.
    pub fn new(instrs: &'a [Instr]) -> Self {
        SliceStream { instrs, pos: 0 }
    }
}

impl InstrStream for SliceStream<'_> {
    fn next_instr(&mut self) -> Option<Instr> {
        let i = self.instrs.get(self.pos).copied();
        if i.is_some() {
            self.pos += 1;
        }
        i
    }
}

/// Records the first `total` instructions of the workload's dynamic
/// stream. The walker is deterministic in `trace_seed`, so the
/// recording equals what a sequential run would consume.
pub fn record_trace(image: &Arc<ProgramImage>, trace_seed: u64, total: u64) -> Vec<Instr> {
    let mut walker = Walker::new(Arc::clone(image), trace_seed);
    record_stream(&mut walker, total)
}

/// Records the first `total` instructions of any stream — the
/// source-agnostic form of [`record_trace`] used by registry-resolved
/// runs (mixes, imported traces). Stops early if the stream drains.
pub fn record_stream<S: InstrStream + ?Sized>(stream: &mut S, total: u64) -> Vec<Instr> {
    let mut instrs = Vec::with_capacity(total as usize);
    for _ in 0..total {
        match stream.next_instr() {
            Some(i) => instrs.push(i),
            None => break,
        }
    }
    instrs
}

/// The slice of `trace` a shard replays (warmup prefix + measured
/// window), clamped to the recorded length.
pub fn shard_stream<'a>(trace: &'a [Instr], spec: &ShardSpec) -> SliceStream<'a> {
    let start = (spec.start as usize).min(trace.len());
    let end = (spec.end() as usize).min(trace.len());
    SliceStream::new(&trace[start..end])
}

/// Simulates one shard: a fresh machine warmed on `spec.warmup`
/// instructions from `stream`, then measured for `spec.measure`.
///
/// Generic over the stream so callers can interpose fault injection or
/// trace wrappers (the chaos campaign does).
///
/// # Errors
///
/// Returns [`DcfbError::Config`] if the shard window fails
/// [`SimConfig::validate`].
pub fn run_shard<S: InstrStream>(
    cfg: &SimConfig,
    image: &Arc<ProgramImage>,
    spec: &ShardSpec,
    stream: &mut S,
) -> Result<SimReport, DcfbError> {
    let mut shard_cfg = cfg.clone();
    shard_cfg.warmup_instrs = spec.warmup;
    shard_cfg.measure_instrs = spec.measure;
    let mut sim = Simulator::try_new(shard_cfg, Arc::clone(image))?;
    Ok(sim.run(stream))
}

/// Runs `cfg` on `image` sliced into `opts.shards` time shards and
/// stitches the result.
///
/// # Errors
///
/// Returns [`DcfbError::Config`] for an invalid configuration and
/// [`DcfbError::Run`] if a shard worker dies without reporting.
pub fn run_sharded(
    cfg: &SimConfig,
    image: &Arc<ProgramImage>,
    trace_seed: u64,
    opts: &ShardOptions,
) -> Result<ShardedRun, DcfbError> {
    cfg.validate()?;
    opts.validate(cfg.warmup_instrs)?;
    let overlap = opts.overlap_for(cfg.warmup_instrs);
    let plan = plan_shards(cfg.warmup_instrs, cfg.measure_instrs, opts.shards, overlap);
    let trace = record_trace(image, trace_seed, plan.trace_instrs());
    let per_shard = run_planned(cfg, image, &plan, &trace, opts.jobs)?;
    let merged = merge_reports(&per_shard).ok_or_else(|| run_error(cfg, image, "empty plan"))?;
    Ok(ShardedRun {
        merged,
        per_shard,
        plan,
    })
}

/// Runs `cfg` on a registry-resolved workload source sliced into
/// `opts.shards` time shards and stitches the result — the
/// source-agnostic form of [`run_sharded`]. The dynamic stream
/// (walker, tenant mix, or trace replay) is recorded once, so the
/// slicing is bit-identical at any `jobs` count, and a one-shard plan
/// replays exactly what a sequential [`crate::run_resolved`] consumes.
///
/// # Errors
///
/// Returns [`DcfbError::Config`] for an invalid configuration and
/// [`DcfbError::Run`] if a shard worker dies without reporting.
pub fn run_sharded_resolved(
    cfg: &SimConfig,
    resolved: &ResolvedWorkload,
    trace_seed: u64,
    opts: &ShardOptions,
) -> Result<ShardedRun, DcfbError> {
    cfg.validate()?;
    opts.validate(cfg.warmup_instrs)?;
    let overlap = opts.overlap_for(cfg.warmup_instrs);
    let plan = plan_shards(cfg.warmup_instrs, cfg.measure_instrs, opts.shards, overlap);
    let mut source = resolved.stream(trace_seed);
    let trace = record_stream(source.as_mut(), plan.trace_instrs());
    let code = resolved.code();
    let run_one = |spec: &ShardSpec, stream: &mut SliceStream<'_>| {
        let mut shard_cfg = cfg.clone();
        shard_cfg.warmup_instrs = spec.warmup;
        shard_cfg.measure_instrs = spec.measure;
        let mut sim = Simulator::try_with_code(
            shard_cfg,
            Arc::clone(&code),
            resolved.start_pc(),
            resolved.name().to_owned(),
        )?;
        Ok(sim.run(stream))
    };
    let dead = |message: String| DcfbError::Run {
        workload: resolved.name().to_owned(),
        method: cfg.prefetcher.name().into_owned(),
        message,
    };
    let per_shard = run_planned_with(&plan, &trace, opts.jobs, &run_one, &dead)?;
    let merged = merge_reports(&per_shard).ok_or_else(|| dead("empty plan".to_owned()))?;
    Ok(ShardedRun {
        merged,
        per_shard,
        plan,
    })
}

fn run_error(cfg: &SimConfig, image: &Arc<ProgramImage>, message: &str) -> DcfbError {
    DcfbError::Run {
        workload: image.params().name.clone(),
        method: cfg.prefetcher.name().into_owned(),
        message: message.to_owned(),
    }
}

/// Simulates every shard of `plan` over the recorded `trace`, on the
/// calling thread (`jobs <= 1`) or a scoped worker pool.
fn run_planned(
    cfg: &SimConfig,
    image: &Arc<ProgramImage>,
    plan: &ShardPlan,
    trace: &[Instr],
    jobs: usize,
) -> Result<Vec<SimReport>, DcfbError> {
    let run_one =
        |spec: &ShardSpec, stream: &mut SliceStream<'_>| run_shard(cfg, image, spec, stream);
    let dead = |message: String| run_error(cfg, image, &message);
    run_planned_with(plan, trace, jobs, &run_one, &dead)
}

/// The shared shard executor: runs `run_one` over every shard of
/// `plan`, on the calling thread (`jobs <= 1`) or a scoped worker
/// pool. Results land in time order regardless of completion order.
fn run_planned_with<F>(
    plan: &ShardPlan,
    trace: &[Instr],
    jobs: usize,
    run_one: &F,
    dead: &dyn Fn(String) -> DcfbError,
) -> Result<Vec<SimReport>, DcfbError>
where
    F: Fn(&ShardSpec, &mut SliceStream<'_>) -> Result<SimReport, DcfbError> + Sync,
{
    let n = plan.shards.len();
    if jobs <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for spec in &plan.shards {
            let mut stream = shard_stream(trace, spec);
            out.push(run_one(spec, &mut stream)?);
        }
        return Ok(out);
    }
    // The same shape as the bench worker pool: an atomic work index
    // over the shard list, one slot per shard so results land in time
    // order regardless of which worker finished first.
    let slots: Vec<Mutex<Option<Result<SimReport, DcfbError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let spec = &plan.shards[i];
                let mut stream = shard_stream(trace, spec);
                let res = run_one(spec, &mut stream);
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(res);
                }
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner() {
            Ok(Some(res)) => out.push(res?),
            _ => return Err(dead(format!("shard {i}/{n} worker died without reporting"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::experiment::run_config;
    use dcfb_workloads::{Workload, WorkloadParams};

    fn tiny_workload() -> Workload {
        Workload {
            name: "shard-tiny",
            params: WorkloadParams {
                name: "shard-tiny".to_owned(),
                functions: 40,
                root_functions: 4,
                ..WorkloadParams::default()
            },
            image_seed: 9,
        }
    }

    fn tiny_cfg(method: &str) -> SimConfig {
        let mut cfg = SimConfig::for_method(method).unwrap();
        cfg.warmup_instrs = 4_000;
        cfg.measure_instrs = 12_000;
        cfg
    }

    #[test]
    fn one_shard_is_byte_identical_to_sequential() {
        for method in ["Baseline", "SN4L+Dis+BTB", "Shotgun"] {
            let cfg = tiny_cfg(method);
            let sequential = run_config(&tiny_workload(), cfg.clone(), 7);
            let image = tiny_workload().image(cfg.isa);
            let sharded = run_sharded(&cfg, &image, 7, &ShardOptions::new(1)).unwrap();
            assert_eq!(
                sharded.merged.digest(),
                sequential.digest(),
                "K=1 shard diverged from sequential for {method}"
            );
            assert_eq!(sharded.per_shard.len(), 1);
        }
    }

    #[test]
    fn recorded_trace_matches_walker_consumption() {
        let cfg = tiny_cfg("Baseline");
        let image = tiny_workload().image(cfg.isa);
        let trace = record_trace(&image, 7, 16_000);
        assert_eq!(trace.len(), 16_000);
        // Replaying the recording reproduces the sequential run.
        let plan = plan_shards(4_000, 12_000, 1, 1_000);
        let mut stream = shard_stream(&trace, &plan.shards[0]);
        let replayed = run_shard(&cfg, &image, &plan.shards[0], &mut stream).unwrap();
        let sequential = run_config(&tiny_workload(), cfg, 7);
        assert_eq!(replayed.digest(), sequential.digest());
    }

    #[test]
    fn sharded_run_measures_the_exact_window() {
        let cfg = tiny_cfg("SN4L+Dis+BTB");
        let image = tiny_workload().image(cfg.isa);
        for k in [2usize, 3, 5] {
            let run = run_sharded(&cfg, &image, 7, &ShardOptions::new(k)).unwrap();
            assert_eq!(run.per_shard.len(), k);
            assert_eq!(run.merged.instrs, cfg.measure_instrs);
            let measured: u64 = run.per_shard.iter().map(|r| r.instrs).sum();
            assert_eq!(measured, cfg.measure_instrs);
            assert!(run.merged.cycles > 0);
        }
    }

    #[test]
    fn sharded_run_is_deterministic_across_job_counts() {
        let cfg = tiny_cfg("Shotgun");
        let image = tiny_workload().image(cfg.isa);
        let serial = run_sharded(
            &cfg,
            &image,
            7,
            &ShardOptions {
                shards: 4,
                warmup_overlap: Some(2_000),
                jobs: 1,
            },
        )
        .unwrap();
        let parallel = run_sharded(
            &cfg,
            &image,
            7,
            &ShardOptions {
                shards: 4,
                warmup_overlap: Some(2_000),
                jobs: 4,
            },
        )
        .unwrap();
        assert_eq!(serial.merged.digest(), parallel.merged.digest());
    }

    #[test]
    fn more_shards_than_instructions_degenerates_cleanly() {
        let mut cfg = tiny_cfg("Baseline");
        cfg.measure_instrs = 5;
        let image = tiny_workload().image(cfg.isa);
        let run = run_sharded(&cfg, &image, 7, &ShardOptions::new(64)).unwrap();
        assert_eq!(run.per_shard.len(), 5);
        assert_eq!(run.merged.instrs, 5);
    }

    #[test]
    fn overlap_longer_than_a_shard_still_measures_exactly() {
        let cfg = tiny_cfg("SN4L+Dis+BTB");
        let image = tiny_workload().image(cfg.isa);
        let run = run_sharded(
            &cfg,
            &image,
            7,
            &ShardOptions {
                shards: 6,
                // Full-warmup overlap: far longer than the
                // 2 000-instruction slices, the longest still valid.
                warmup_overlap: Some(4_000),
                jobs: 2,
            },
        )
        .unwrap();
        assert_eq!(run.merged.instrs, cfg.measure_instrs);
        // Every later shard warmed on the full requested overlap (the
        // preceding trace is always at least `warmup` long).
        for s in &run.plan.shards[1..] {
            assert_eq!(s.warmup, 4_000);
        }
    }

    #[test]
    fn invalid_shard_options_are_typed_config_errors() {
        let cfg = tiny_cfg("Baseline");
        let image = tiny_workload().image(cfg.isa);
        let zero = ShardOptions {
            shards: 0,
            warmup_overlap: None,
            jobs: 1,
        };
        assert!(matches!(
            run_sharded(&cfg, &image, 7, &zero),
            Err(DcfbError::Config { .. })
        ));
        let past_window = ShardOptions {
            shards: 2,
            // One past the measured-window start (warmup is 4 000).
            warmup_overlap: Some(4_001),
            jobs: 1,
        };
        assert!(matches!(
            run_sharded(&cfg, &image, 7, &past_window),
            Err(DcfbError::Config { .. })
        ));
        // Full-warmup overlap stays valid: the conformance K=3 point.
        ShardOptions {
            shards: 2,
            warmup_overlap: Some(4_000),
            jobs: 1,
        }
        .validate(4_000)
        .unwrap();
    }

    #[test]
    fn resolved_synthetic_sharded_matches_legacy_path() {
        let cfg = tiny_cfg("SN4L+Dis+BTB");
        let resolved = dcfb_workloads::resolve_workload("Web (Apache)", cfg.isa).unwrap();
        let w = dcfb_workloads::workload("Web (Apache)").unwrap();
        let image = w.image(cfg.isa);
        let legacy = run_sharded(&cfg, &image, 7, &ShardOptions::new(2)).unwrap();
        let via = run_sharded_resolved(&cfg, &resolved, 7, &ShardOptions::new(2)).unwrap();
        assert_eq!(via.merged.digest(), legacy.merged.digest());
    }

    #[test]
    fn mix_is_bit_identical_across_jobs_and_exact_at_one_shard() {
        let cfg = tiny_cfg("SN4L+Dis+BTB");
        let resolved =
            dcfb_workloads::resolve_workload("mix:Web (Apache)+Web Search,quantum=700", cfg.isa)
                .unwrap();
        let sequential = crate::experiment::run_resolved(&resolved, cfg.clone(), 7).unwrap();
        let one = run_sharded_resolved(&cfg, &resolved, 7, &ShardOptions::new(1)).unwrap();
        assert_eq!(
            one.merged.digest(),
            sequential.digest(),
            "mix K=1 shard diverged from sequential"
        );
        let opts = |jobs| ShardOptions {
            shards: 3,
            warmup_overlap: Some(1_000),
            jobs,
        };
        let serial = run_sharded_resolved(&cfg, &resolved, 7, &opts(1)).unwrap();
        let parallel = run_sharded_resolved(&cfg, &resolved, 7, &opts(4)).unwrap();
        assert_eq!(serial.merged.digest(), parallel.merged.digest());
    }

    #[test]
    fn shard_boundary_mid_discontinuity_chain_keeps_counts_exact() {
        // Cut the window at every offset in a short span: wherever the
        // boundary lands relative to call/return chains, the stitched
        // report must measure the exact window with sane counters.
        let mut cfg = tiny_cfg("SN4L+Dis+BTB");
        let image = tiny_workload().image(cfg.isa);
        for measure in 11_997..12_003 {
            cfg.measure_instrs = measure;
            let run = run_sharded(
                &cfg,
                &image,
                7,
                &ShardOptions {
                    shards: 3,
                    warmup_overlap: Some(1_500),
                    jobs: 1,
                },
            )
            .unwrap();
            assert_eq!(run.merged.instrs, measure);
            let total = run.merged.seq_misses + run.merged.disc_misses;
            assert!(total >= run.merged.l1i.demand_misses);
        }
    }
}
