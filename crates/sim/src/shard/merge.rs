//! Stitching per-shard [`SimReport`]s into one merged report.

use crate::metrics::SimReport;

/// Merges per-shard reports (in time order) into one report covering
/// the whole measured window. Returns `None` on an empty slice.
///
/// Event counts sum; nested stat blocks accumulate through their
/// `absorb` methods; branch accuracy becomes the instruction-weighted
/// mean; metadata storage is a capacity, not an event count, so it
/// merges as the maximum. A single report merges to an exact clone, so
/// a one-shard run digests byte-identically to a sequential run.
pub fn merge_reports(reports: &[SimReport]) -> Option<SimReport> {
    let (first, rest) = reports.split_first()?;
    if rest.is_empty() {
        return Some(first.clone());
    }
    let mut merged = first.clone();
    let mut accuracy_weight = first.branch_accuracy * first.instrs as f64;
    for r in rest {
        merged.cycles += r.cycles;
        merged.instrs += r.instrs;
        merged.l1i.absorb(&r.l1i);
        merged.seq_misses += r.seq_misses;
        merged.disc_misses += r.disc_misses;
        merged.stall_l1i += r.stall_l1i;
        merged.stall_btb += r.stall_btb;
        merged.stall_redirect += r.stall_redirect;
        merged.stall_empty_ftq += r.stall_empty_ftq;
        merged.cmal_covered += r.cmal_covered;
        merged.cmal_total += r.cmal_total;
        merged.late_prefetches += r.late_prefetches;
        merged.uncovered_misses += r.uncovered_misses;
        merged.cache_lookups += r.cache_lookups;
        merged.external_requests += r.external_requests;
        merged.uncore.absorb(&r.uncore);
        merged.btb.absorb(&r.btb);
        if let (Some(a), Some(b)) = (merged.shotgun_btb.as_mut(), r.shotgun_btb.as_ref()) {
            a.absorb(b);
        }
        if let (Some(a), Some(b)) = (merged.shotgun.as_mut(), r.shotgun.as_ref()) {
            a.absorb(b);
        }
        merged.storage_bits = merged.storage_bits.max(r.storage_bits);
        accuracy_weight += r.branch_accuracy * r.instrs as f64;
        merged.dropped_prefetches += r.dropped_prefetches;
        merged.buffer_hits += r.buffer_hits;
    }
    if merged.instrs > 0 {
        merged.branch_accuracy = accuracy_weight / merged.instrs as f64;
    }
    Some(merged)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn shard(cycles: u64, instrs: u64, accuracy: f64) -> SimReport {
        SimReport {
            method: "m".to_owned(),
            workload: "w".to_owned(),
            cycles,
            instrs,
            branch_accuracy: accuracy,
            ..SimReport::default()
        }
    }

    #[test]
    fn empty_input_merges_to_none() {
        assert!(merge_reports(&[]).is_none());
    }

    #[test]
    fn single_report_is_an_exact_clone() {
        let mut r = shard(100, 50, 0.937);
        r.storage_bits = 1234;
        r.cmal_covered = 1.5;
        let merged = merge_reports(std::slice::from_ref(&r)).unwrap();
        assert_eq!(merged.digest(), r.digest());
    }

    #[test]
    fn counters_sum_and_accuracy_weights_by_instrs() {
        let mut a = shard(1_000, 600, 0.9);
        a.stall_l1i = 10;
        a.l1i.demand_misses = 7;
        a.storage_bits = 100;
        let mut b = shard(2_000, 400, 0.6);
        b.stall_l1i = 30;
        b.l1i.demand_misses = 5;
        b.storage_bits = 80;
        let merged = merge_reports(&[a, b]).unwrap();
        assert_eq!(merged.cycles, 3_000);
        assert_eq!(merged.instrs, 1_000);
        assert_eq!(merged.stall_l1i, 40);
        assert_eq!(merged.l1i.demand_misses, 12);
        // Capacity, not an event count: max, not sum.
        assert_eq!(merged.storage_bits, 100);
        // (0.9 * 600 + 0.6 * 400) / 1000
        assert!((merged.branch_accuracy - 0.78).abs() < 1e-12);
    }

    #[test]
    fn labels_come_from_the_first_shard() {
        let a = shard(1, 1, 1.0);
        let b = shard(1, 1, 1.0);
        let merged = merge_reports(&[a, b]).unwrap();
        assert_eq!(merged.method, "m");
        assert_eq!(merged.workload, "w");
    }
}
