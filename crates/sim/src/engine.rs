//! The cycle-approximate frontend timing engine.
//!
//! Two drivers share one [`Machine`]:
//!
//! * the **conventional decoupled frontend** (baseline, NL/NXL, SN4L,
//!   Dis, SN4L+Dis(+BTB), conventional discontinuity, Confluence):
//!   fetch follows the trace; taken branches need a BTB hit to redirect
//!   without a bubble; direction comes from TAGE and return targets
//!   from the RAS; prefetchers observe L1i events and pump their queues
//!   once per cycle;
//! * the **BTB-directed frontend** (Boomerang, Shotgun): the discovery
//!   engine runs ahead of fetch filling the FTQ, fetch consumes FTQ
//!   regions and verifies them against the trace, and FTQ starvation
//!   surfaces as the empty-FTQ stalls of Table I.
//!
//! Timing simplifications (documented in DESIGN.md): the backend is
//! ideal beyond its 3-wide width; L1i hit latency is fully pipelined;
//! stall periods are advanced in bulk with the prefetcher ticked up to
//! 16 times per stall; wrong-path execution is modeled as redirect
//! penalties plus bounded wrong-path block fetches that consume
//! bandwidth without polluting the L1i.

use crate::config::{PrefetcherKind, SimConfig};
use crate::metrics::SimReport;
use dcfb_cache::{Completion, LineFlags, MshrFile, MshrOutcome, PrefetchBuffer, SetAssocCache};
use dcfb_errors::DcfbError;
use dcfb_frontend::{
    BranchClass, Btb, BtbEntry, Ftq, Predecoder, ReturnAddressStack, Tage, TageConfig,
};
use dcfb_prefetch::{
    Boomerang, BtbPrefetchBuffer, Confluence, Dis, DisTable, DiscontinuityPrefetcher,
    InstrPrefetcher, NextLine, PrefetchContext, RecentInstrs, RunaheadContext, SeqTable, Shotgun,
    Sn4l, Sn4lDisBtb,
};
use dcfb_telemetry::{
    Ctr, CycleSample, Hist, PfSource, RunMeta, RunTelemetry, StallKind as TelemetryStall,
    TelemetryConfig, TelemetryReport,
};
use dcfb_trace::{block_of, Addr, Block, CodeMemory, Instr, InstrKind, InstrStream};
use dcfb_uncore::Uncore;
use dcfb_workloads::ProgramImage;
use fxhash::FxHashMap;
use std::sync::Arc;

/// Counters accumulated while running (reset after warmup).
#[derive(Clone, Debug, Default)]
struct RawStats {
    cycles: u64,
    instrs: u64,
    seq_misses: u64,
    disc_misses: u64,
    stall_l1i: u64,
    stall_btb: u64,
    stall_redirect: u64,
    stall_empty_ftq: u64,
    cmal_covered: f64,
    cmal_total: f64,
    late_prefetches: u64,
    uncovered_misses: u64,
    dropped_prefetches: u64,
    /// Demand misses absorbed by the prefetch buffer (re-credited as
    /// hits in the report).
    buffer_hits: u64,
}

/// The machine state shared by both frontend drivers. Implements the
/// prefetcher-facing context traits.
struct Machine {
    cycle: u64,
    l1i: SetAssocCache,
    pf_buffer: Option<PrefetchBuffer>,
    mshr: MshrFile,
    uncore: Uncore,
    btb: Btb,
    btb_buffer: BtbPrefetchBuffer,
    tage: Tage,
    ras: ReturnAddressStack,
    predecoder: Predecoder,
    code: Arc<dyn CodeMemory + Send + Sync>,
    workload_name: String,
    recent: RecentInstrs,
    prev_demand_block: Option<Block>,
    /// Latency of completed prefetches still resident (CMAL accounting).
    /// FxHash: touched on every prefetch fill/evict/demand hit.
    prefetch_latency: FxHashMap<Block, u64>,
    /// Pre-decode results per static block. Valid only for
    /// self-describing encodings (Fixed4), where a block always decodes
    /// the same way; variable-length decoding depends on the DV-LLC's
    /// current branch footprint and is never cached.
    predecode_cache: FxHashMap<Block, Arc<[BtbEntry]>>,
    /// Reused per-cycle scratch for MSHR completions.
    fill_scratch: Vec<Completion>,
    perfect_l1i: bool,
    stats: RawStats,
    tage_predictions: u64,
    tage_correct: u64,
    /// The telemetry recorder, present only when
    /// [`SimConfig::telemetry`] is set. Every instrumentation site
    /// below guards on this option, so the off-mode cost is one
    /// never-taken branch per site.
    telem: Option<Box<RunTelemetry>>,
}

impl Machine {
    fn new(
        cfg: &SimConfig,
        code: Arc<dyn CodeMemory + Send + Sync>,
        workload_name: String,
    ) -> Self {
        Machine {
            cycle: 0,
            l1i: SetAssocCache::new(cfg.l1i),
            pf_buffer: cfg
                .use_prefetch_buffer
                .then(|| PrefetchBuffer::new(cfg.prefetch_buffer_entries)),
            mshr: MshrFile::new(cfg.mshrs),
            uncore: Uncore::new(cfg.uncore.clone()),
            btb: Btb::new(cfg.btb),
            btb_buffer: BtbPrefetchBuffer::paper_sized(),
            tage: Tage::new(TageConfig::default()),
            ras: ReturnAddressStack::new(32),
            predecoder: Predecoder::new(cfg.isa),
            code,
            workload_name,
            recent: RecentInstrs::default(),
            prev_demand_block: None,
            prefetch_latency: FxHashMap::default(),
            predecode_cache: FxHashMap::default(),
            fill_scratch: Vec::new(),
            perfect_l1i: cfg.perfect_l1i,
            stats: RawStats::default(),
            tage_predictions: 0,
            tage_correct: 0,
            telem: cfg
                .telemetry
                .then(|| Box::new(RunTelemetry::new(TelemetryConfig::default()))),
        }
    }

    /// Pre-decodes `block`, supplying a branch footprint from the
    /// DV-LLC in variable-length mode. Fixed-width decodes are served
    /// from a per-block cache: the program image is static, so a block
    /// only ever decodes one way, and hot blocks are re-decoded by the
    /// prefetchers thousands of times per run.
    fn predecode_block(&mut self, block: Block) -> Arc<[BtbEntry]> {
        if self.predecoder.isa().self_describing_boundaries() {
            if let Some(cached) = self.predecode_cache.get(&block) {
                return Arc::clone(cached);
            }
            let code = Arc::clone(&self.code);
            let branches: Arc<[BtbEntry]> =
                self.predecoder.decode(&code, block, None).branches.into();
            self.predecode_cache.insert(block, Arc::clone(&branches));
            branches
        } else {
            let code = Arc::clone(&self.code);
            let bf = self.uncore.dvllc_mut().and_then(|dv| dv.bf_lookup(block));
            self.predecoder
                .decode(&code, block, bf.as_ref())
                .branches
                .into()
        }
    }

    /// Sends a fetch/prefetch below the L1i, allocating an MSHR.
    /// Returns the completion cycle, or `None` if the MSHRs are full.
    fn request_below(&mut self, block: Block, source: PfSource, extra: u64) -> Option<u64> {
        let is_prefetch = source.is_prefetch();
        if self.mshr.is_full() {
            self.stats.dropped_prefetches += u64::from(is_prefetch);
            if is_prefetch {
                if let Some(t) = self.telem.as_deref_mut() {
                    t.pf_dropped();
                }
            }
            return None;
        }
        let res = self.uncore.access(self.cycle, block, is_prefetch, true);
        let ready = res.ready_at + extra;
        match self.mshr.allocate(block, self.cycle, ready, source) {
            MshrOutcome::Allocated => {
                if is_prefetch {
                    if let Some(t) = self.telem.as_deref_mut() {
                        t.pf_issued(block, source);
                    }
                }
                Some(ready)
            }
            MshrOutcome::Merged { ready_at, .. } => Some(ready_at),
            MshrOutcome::Full => None,
        }
    }

    /// Drains completed fetches into the L1i (or prefetch buffer),
    /// firing fill/evict hooks on `pf`.
    fn drain_fills(&mut self, mut pf: Option<&mut (dyn InstrPrefetcher + 'static)>) {
        let mut done = std::mem::take(&mut self.fill_scratch);
        self.mshr.drain_ready_into(self.cycle, &mut done);
        for &c in &done {
            let into_buffer = c.is_prefetch && !c.demand_waiting && self.pf_buffer.is_some();
            if into_buffer {
                let displaced = self
                    .pf_buffer
                    .as_mut()
                    .expect("buffer checked")
                    .insert(c.block, c.source);
                if let Some(t) = self.telem.as_deref_mut() {
                    t.pf_fill(c.block, c.ready_at - c.issued_at);
                    if let Some((evicted, _)) = displaced {
                        t.pf_evict_unused(evicted);
                    }
                }
            } else {
                let flags = if c.is_prefetch && !c.demand_waiting {
                    LineFlags::prefetched_instruction()
                } else {
                    LineFlags::demand_instruction()
                };
                if c.is_prefetch {
                    self.prefetch_latency
                        .insert(c.block, c.ready_at - c.issued_at);
                    if !c.demand_waiting {
                        if let Some(t) = self.telem.as_deref_mut() {
                            t.pf_fill(c.block, c.ready_at - c.issued_at);
                        }
                    }
                }
                let evicted = self.l1i.fill(c.block, flags);
                if let Some(ev) = evicted {
                    self.prefetch_latency.remove(&ev.block);
                    if ev.flags.prefetched && !ev.flags.demanded {
                        if let Some(t) = self.telem.as_deref_mut() {
                            t.pf_evict_unused(ev.block);
                        }
                    }
                    if let Some(p) = pf.as_deref_mut() {
                        p.on_evict(self, ev.block, ev.flags.prefetched && !ev.flags.demanded);
                    }
                }
                // In variable-length mode, deposit the block's branch
                // footprint alongside it in the DV-LLC (§V-D).
                if !self.predecoder.isa().self_describing_boundaries() {
                    let instrs = self.code.instrs_in_block(c.block);
                    let (bf, _) = dcfb_cache::BranchFootprint::from_block(&instrs);
                    if let Some(dv) = self.uncore.dvllc_mut() {
                        dv.insert_bf(c.block, bf);
                    }
                }
            }
            if let Some(p) = pf.as_deref_mut() {
                p.on_fill(self, c.block, c.is_prefetch && !c.demand_waiting);
            }
        }
        self.fill_scratch = done;
    }

    /// Outcome of a demand access.
    fn demand(&mut self, block: Block) -> DemandOutcome {
        if self.perfect_l1i {
            // Every access hits: install the block before looking up.
            if !self.l1i.contains(block) {
                self.l1i.fill(block, LineFlags::demand_instruction());
            }
            self.l1i.demand_access(block);
            return DemandOutcome::Hit {
                was_prefetched: false,
            };
        }
        self.stats_note_demand(block);
        if let Some(t) = self.telem.as_deref_mut() {
            t.add(Ctr::DemandAccesses, 1);
        }
        if self.l1i.demand_access(block) {
            let was_pref = self.prefetch_latency.remove(&block).map(|lat| {
                self.stats.cmal_covered += lat as f64;
                self.stats.cmal_total += lat as f64;
            });
            if let Some(t) = self.telem.as_deref_mut() {
                t.add(Ctr::DemandHits, 1);
                if was_pref.is_some() {
                    t.pf_hit(block);
                }
            }
            return DemandOutcome::Hit {
                was_prefetched: was_pref.is_some(),
            };
        }
        // Prefetch buffer (when configured) is checked in parallel.
        if let Some(buf) = self.pf_buffer.as_mut() {
            if buf.take(block).is_some() {
                // Move into the cache; a fully covered miss.
                self.l1i.fill(block, LineFlags::demand_instruction());
                // Buffer fills' latency is not tracked per block;
                // count a representative full coverage.
                let lat = 30.0;
                self.stats.cmal_covered += lat;
                self.stats.cmal_total += lat;
                self.stats.buffer_hits += 1;
                if let Some(t) = self.telem.as_deref_mut() {
                    t.add(Ctr::BufferHits, 1);
                    t.pf_hit(block);
                }
                return DemandOutcome::Hit {
                    was_prefetched: true,
                };
            }
        }
        self.classify_miss(block, false);
        if let Some(t) = self.telem.as_deref_mut() {
            t.add(Ctr::DemandMisses, 1);
            t.pf_demand_miss(block);
        }
        // In flight already?
        if let Some(ready) = self.mshr.ready_at(block) {
            let is_pref = self.mshr.is_prefetch(block).unwrap_or(false);
            // Merge as a demand.
            self.mshr
                .allocate(block, self.cycle, ready, PfSource::Demand);
            if is_pref {
                self.stats.late_prefetches += 1;
                if let Some(t) = self.telem.as_deref_mut() {
                    t.pf_late(block);
                }
            }
            if let Some(t) = self.telem.as_deref_mut() {
                t.observe(Hist::MissLatency, ready.saturating_sub(self.cycle));
            }
            return DemandOutcome::Miss {
                ready_at: ready,
                had_prefetch: is_pref,
            };
        }
        self.stats.uncovered_misses += 1;
        if let Some(t) = self.telem.as_deref_mut() {
            t.add(Ctr::UncoveredMisses, 1);
        }
        match self.request_below(block, PfSource::Demand, 0) {
            Some(ready) => {
                if let Some(t) = self.telem.as_deref_mut() {
                    t.observe(Hist::MissLatency, ready.saturating_sub(self.cycle));
                }
                DemandOutcome::Miss {
                    ready_at: ready,
                    had_prefetch: false,
                }
            }
            None => {
                // MSHRs full for a demand: retry next cycle.
                DemandOutcome::Retry
            }
        }
    }

    fn stats_note_demand(&mut self, _block: Block) {}

    fn classify_miss(&mut self, block: Block, _buffer_hit: bool) {
        let ctr = match self.prev_demand_block {
            Some(prev) if block == prev + 1 => {
                self.stats.seq_misses += 1;
                Ctr::SeqMisses
            }
            Some(prev) if block == prev => return,
            _ => {
                self.stats.disc_misses += 1;
                Ctr::DiscMisses
            }
        };
        if let Some(t) = self.telem.as_deref_mut() {
            t.add(ctr, 1);
        }
    }

    /// CMAL accounting for a late (in-flight) prefetch resolved at
    /// `ready`: the fraction of the original latency that prefetching
    /// already covered when the demand arrived.
    fn account_late_prefetch(&mut self, block: Block, ready: u64) {
        // The MSHR entry knows issue time only until drained; derive
        // covered cycles from issue metadata if still present.
        if let Some(issued_ready) = self.mshr.ready_at(block) {
            let _ = issued_ready;
        }
        let total_guess = 34.0_f64.max((ready.saturating_sub(self.cycle)) as f64 + 1.0);
        let remaining = ready.saturating_sub(self.cycle) as f64;
        let covered = (total_guess - remaining).max(0.0);
        self.stats.cmal_covered += covered;
        self.stats.cmal_total += total_guess;
    }

    fn note_tage(&mut self, correct: bool) {
        self.tage_predictions += 1;
        self.tage_correct += u64::from(correct);
    }
}

enum DemandOutcome {
    Hit { was_prefetched: bool },
    Miss { ready_at: u64, had_prefetch: bool },
    Retry,
}

impl PrefetchContext for Machine {
    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn l1i_lookup(&mut self, block: Block) -> bool {
        self.l1i.probe(block)
            || self.mshr.contains(block)
            || self.pf_buffer.as_ref().is_some_and(|b| b.contains(block))
    }

    fn issue_prefetch(&mut self, block: Block, source: PfSource, extra_delay: u64) {
        self.request_below(block, source, extra_delay);
    }

    fn predecode(&mut self, block: Block) -> Arc<[BtbEntry]> {
        self.predecode_block(block)
    }

    fn decode_branch_at(&mut self, block: Block, byte_offset: u32) -> Option<BtbEntry> {
        let code = Arc::clone(&self.code);
        let entry = self.predecoder.decode_at(&code, block, byte_offset)?;
        Some(entry)
    }

    fn btb_target(&mut self, pc: Addr) -> Option<Addr> {
        if self.btb.contains(pc) {
            self.btb.lookup(pc).map(|e| e.target)
        } else {
            None
        }
    }

    fn fill_btb_buffer(&mut self, block: Block, branches: Arc<[BtbEntry]>) {
        if branches.is_empty() {
            return; // the buffer ignores empty sets; don't count a fill
        }
        let displaced = self.btb_buffer.fill(block, branches);
        if let Some(t) = self.telem.as_deref_mut() {
            t.btbpf_fill(block, displaced);
        }
    }
}

impl RunaheadContext for Machine {
    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn predict_cond(&mut self, pc: Addr) -> bool {
        self.tage.predict(pc)
    }

    fn ras_push(&mut self, ret: Addr) {
        self.ras.push(ret);
    }

    fn ras_pop(&mut self) -> Option<Addr> {
        self.ras.pop()
    }

    fn l1i_lookup(&mut self, block: Block) -> bool {
        PrefetchContext::l1i_lookup(self, block)
    }

    fn issue_prefetch(&mut self, block: Block, source: PfSource, extra_delay: u64) {
        PrefetchContext::issue_prefetch(self, block, source, extra_delay);
    }

    fn block_present(&self, block: Block) -> bool {
        self.l1i.contains(block)
    }

    fn predecode(&mut self, block: Block) -> Arc<[BtbEntry]> {
        self.predecode_block(block)
    }
}

enum Frontend {
    Conventional(Option<Box<dyn InstrPrefetcher>>),
    Boomerang(Box<Boomerang>, Ftq),
    Shotgun(Box<Shotgun>, Ftq),
}

/// The trace-driven frontend simulator.
pub struct Simulator {
    cfg: SimConfig,
    machine: Machine,
    frontend: Frontend,
    /// One-instruction lookahead from the trace.
    pending: Option<Instr>,
    /// Current FTQ region being fetched (BTB-directed mode).
    region: Option<dcfb_frontend::FtqEntry>,
    /// Consecutive empty-FTQ cycles (drives the core-side recovery
    /// redirect when the discovery engine cannot make progress).
    empty_streak: u64,
    /// Architectural return-address stack (BTB-directed mode): used to
    /// repair the speculative RAS after a squash.
    arch_ras: Vec<Addr>,
    /// Retire-side clock of the decoupled-core model: each retired
    /// instruction costs `1 / backend_ipc` cycles, but can never retire
    /// before it was fetched. Fetch may run ahead by at most a ROB's
    /// worth of work; the measured execution time is the retire clock.
    retire_clock: f64,
    /// Retire clock at the start of the measurement window.
    retire_mark: f64,
}

impl Simulator {
    /// Creates a simulator over a synthetic program `image`, after
    /// [`SimConfig::validate`]-checking `cfg`.
    ///
    /// This is the entry point for callers handling untrusted
    /// configuration (the CLI, sweep scripts); it reports a bad config
    /// as [`DcfbError::Config`] instead of panicking mid-run.
    pub fn try_new(cfg: SimConfig, image: Arc<ProgramImage>) -> Result<Self, DcfbError> {
        cfg.validate()?;
        Ok(Simulator::new(cfg, image))
    }

    /// Fallible variant of [`Simulator::with_code`]: validates `cfg`
    /// first.
    pub fn try_with_code(
        cfg: SimConfig,
        code: Arc<dyn CodeMemory + Send + Sync>,
        start_pc: Addr,
        workload_name: String,
    ) -> Result<Self, DcfbError> {
        cfg.validate()?;
        Ok(Simulator::with_code(cfg, code, start_pc, workload_name))
    }

    /// Creates a simulator over a synthetic program `image`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`]. Use
    /// [`Simulator::try_new`] when the configuration is untrusted.
    pub fn new(cfg: SimConfig, image: Arc<ProgramImage>) -> Self {
        let start_pc = image.functions()[0].entry;
        let name = image.params().name.clone();
        Simulator::with_code(cfg, image, start_pc, name)
    }

    /// Creates a simulator over any [`CodeMemory`] — e.g. a
    /// [`dcfb_trace::RecordedCode`] reconstructed from an external
    /// trace. `start_pc` seeds the BTB-directed discovery engines;
    /// `workload_name` labels the report.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`].
    pub fn with_code(
        cfg: SimConfig,
        code: Arc<dyn CodeMemory + Send + Sync>,
        start_pc: Addr,
        workload_name: String,
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        let machine = Machine::new(&cfg, code, workload_name);
        let frontend = match &cfg.prefetcher {
            PrefetcherKind::None => Frontend::Conventional(None),
            PrefetcherKind::NextLine(d) => {
                Frontend::Conventional(Some(Box::new(NextLine::new(*d))))
            }
            PrefetcherKind::Sn4l { seq_entries } => Frontend::Conventional(Some(Box::new(
                Sn4l::with_table(SeqTable::new(*seq_entries)),
            ))),
            PrefetcherKind::Dis { dis_entries, tag } => Frontend::Conventional(Some(Box::new(
                Dis::with_table(DisTable::new(*dis_entries, *tag, cfg.isa.dis_offset_bits())),
            ))),
            PrefetcherKind::Sn4lDis(c) => {
                // §V-D: a variable-length ISA needs byte offsets in the
                // DisTable (6 bits) instead of instruction slots.
                let mut c = c.clone();
                c.dis_offset_bits = cfg.isa.dis_offset_bits();
                Frontend::Conventional(Some(Box::new(Sn4lDisBtb::new(c))))
            }
            PrefetcherKind::Discontinuity => {
                Frontend::Conventional(Some(Box::new(DiscontinuityPrefetcher::paper_baseline())))
            }
            PrefetcherKind::Confluence(c) => {
                Frontend::Conventional(Some(Box::new(Confluence::new(*c))))
            }
            PrefetcherKind::Boomerang { btb_entries } => Frontend::Boomerang(
                Box::new(Boomerang::new(*btb_entries, start_pc)),
                Ftq::new(cfg.ftq_entries),
            ),
            PrefetcherKind::Shotgun(sc) => Frontend::Shotgun(
                Box::new(Shotgun::new(*sc, start_pc)),
                Ftq::new(cfg.ftq_entries),
            ),
        };
        Simulator {
            cfg,
            machine,
            frontend,
            pending: None,
            region: None,
            empty_streak: 0,
            arch_ras: Vec::with_capacity(32),
            retire_clock: 0.0,
            retire_mark: 0.0,
        }
    }

    /// Runs warmup then measurement over `stream`, returning the
    /// measured report.
    pub fn run<S: InstrStream>(&mut self, stream: &mut S) -> SimReport {
        self.run_instrs(stream, self.cfg.warmup_instrs);
        self.reset_measurement();
        self.run_instrs(stream, self.cfg.measure_instrs);
        self.report()
    }

    /// Sustainable retire rate of the backend (server workloads are
    /// data-bound well below the 3-wide width; Table III's 128-entry
    /// ROB is what lets fetch run ahead and hide instruction misses).
    pub(crate) const BACKEND_IPC: f64 = 0.75;
    /// How far fetch may run ahead of retire (ROB capacity in cycles of
    /// backend work).
    const ROB_CYCLES: f64 = 128.0 / Self::BACKEND_IPC;

    #[inline]
    fn note_retired(&mut self) {
        let fetched_at = self.machine.cycle as f64;
        self.retire_clock = (self.retire_clock + 1.0 / Self::BACKEND_IPC).max(fetched_at);
        // ROB backpressure: fetch cannot lead retire by more than the
        // window; stall fetch (backend-bound, not a frontend stall).
        let min_fetch = self.retire_clock - Self::ROB_CYCLES;
        if (self.machine.cycle as f64) < min_fetch {
            let target = min_fetch.ceil() as u64;
            self.machine.stats.cycles += target - self.machine.cycle;
            self.machine.cycle = target;
        }
    }

    /// Builds the per-cycle telemetry sample from current machine and
    /// frontend state. Only called when telemetry is on.
    fn cycle_sample(&self) -> CycleSample {
        let (ftq_occ, rlu) = match &self.frontend {
            Frontend::Conventional(pf) => (None, pf.as_ref().and_then(|p| p.rlu_counters())),
            Frontend::Boomerang(_, ftq) | Frontend::Shotgun(_, ftq) => {
                (Some(ftq.len() as u64), None)
            }
        };
        let m = &self.machine;
        let btb = m.btb.stats();
        CycleSample {
            cycle: m.cycle,
            instrs: m.stats.instrs,
            demand_misses: m.l1i.stats().demand_misses,
            btb_lookups: btb.lookups,
            btb_hits: btb.hits,
            rlu_lookups: rlu.map_or(0, |(l, _)| l),
            rlu_hits: rlu.map_or(0, |(_, h)| h),
            ftq_occupancy: ftq_occ,
            mshr_occupancy: m.mshr.occupancy() as u64,
        }
    }

    /// Per-cycle telemetry sample; with telemetry off this is a single
    /// never-taken branch.
    fn telemetry_tick(&mut self) {
        if self.machine.telem.is_none() {
            return;
        }
        let s = self.cycle_sample();
        if let Some(t) = self.machine.telem.as_deref_mut() {
            t.tick(&s);
        }
    }

    /// Detaches the telemetry recorder (if the run was configured with
    /// [`SimConfig::telemetry`]) and finalizes it into an exportable
    /// report: metrics document, time series, and trace events. After
    /// this call the simulator records no further telemetry.
    pub fn take_telemetry(&mut self) -> Option<TelemetryReport> {
        let final_sample = self.cycle_sample();
        let telem = self.machine.telem.take()?;
        let r = self.report();
        let meta = RunMeta {
            workload: r.workload,
            method: r.method,
            cycles: r.cycles,
            instrs: r.instrs,
        };
        Some(telem.finalize(&meta, &final_sample))
    }

    fn reset_measurement(&mut self) {
        self.retire_clock = self.retire_clock.max(self.machine.cycle as f64);
        self.retire_mark = self.retire_clock;
        if let Some(t) = self.machine.telem.as_deref_mut() {
            t.reset();
        }
        self.machine.stats = RawStats::default();
        self.machine.l1i.reset_stats();
        self.machine.uncore.reset_stats();
        self.machine.btb.reset_stats();
        self.machine.tage_predictions = 0;
        self.machine.tage_correct = 0;
        if let Frontend::Shotgun(s, _) = &mut self.frontend {
            s.reset_btb_stats();
        }
    }

    /// Runs until `limit` further instructions retire (or the stream
    /// ends).
    pub fn run_instrs<S: InstrStream>(&mut self, stream: &mut S, limit: u64) {
        let target = self.machine.stats.instrs + limit;
        while self.machine.stats.instrs < target {
            if self.pending.is_none() {
                self.pending = stream.next_instr();
                if self.pending.is_none() {
                    break;
                }
            }
            match &mut self.frontend {
                Frontend::Conventional(_) => self.step_conventional(stream, target),
                Frontend::Boomerang(..) | Frontend::Shotgun(..) => {
                    self.step_directed(stream, target)
                }
            }
        }
    }

    /// Builds the measured report.
    pub fn report(&self) -> SimReport {
        let m = &self.machine;
        // Execution time is the retire clock (decoupled-core model);
        // fall back to fetch cycles if nothing retired.
        let retire_cycles = (self.retire_clock.max(m.cycle as f64) - self.retire_mark) as u64;
        // Re-credit prefetch-buffer absorptions as hits.
        let mut l1i_stats = m.l1i.stats();
        l1i_stats.demand_misses -= m.stats.buffer_hits.min(l1i_stats.demand_misses);
        l1i_stats.demand_hits += m.stats.buffer_hits;
        let mut r = SimReport {
            method: self.cfg.prefetcher.name(),
            workload: m.workload_name.clone(),
            cycles: retire_cycles.max(1),
            instrs: m.stats.instrs,
            l1i: l1i_stats,
            seq_misses: m.stats.seq_misses,
            disc_misses: m.stats.disc_misses,
            stall_l1i: m.stats.stall_l1i,
            stall_btb: m.stats.stall_btb,
            stall_redirect: m.stats.stall_redirect,
            stall_empty_ftq: m.stats.stall_empty_ftq,
            cmal_covered: m.stats.cmal_covered,
            cmal_total: m.stats.cmal_total,
            late_prefetches: m.stats.late_prefetches,
            uncovered_misses: m.stats.uncovered_misses,
            cache_lookups: l1i_stats.demand_accesses + l1i_stats.probes,
            external_requests: m.uncore.stats().requests,
            uncore: m.uncore.stats(),
            btb: m.btb.stats(),
            shotgun_btb: None,
            shotgun: None,
            storage_bits: 0,
            branch_accuracy: if m.tage_predictions == 0 {
                0.0
            } else {
                m.tage_correct as f64 / m.tage_predictions as f64
            },
            dropped_prefetches: m.stats.dropped_prefetches,
            buffer_hits: m.stats.buffer_hits,
        };
        match &self.frontend {
            Frontend::Conventional(Some(p)) => r.storage_bits = p.storage_bits(),
            Frontend::Conventional(None) => {}
            Frontend::Boomerang(b, _) => r.storage_bits = b.storage_bits(),
            Frontend::Shotgun(s, _) => {
                r.storage_bits = s.storage_bits();
                r.shotgun_btb = Some(s.btb_stats());
                r.shotgun = Some(s.stats());
            }
        }
        r
    }

    // ---- conventional driver ----

    fn step_conventional<S: InstrStream>(&mut self, stream: &mut S, target: u64) {
        self.machine.cycle += 1;
        self.machine.stats.cycles += 1;
        self.telemetry_tick();
        if let Frontend::Conventional(pf) = &mut self.frontend {
            self.machine.drain_fills(pf.as_deref_mut());
        }
        let mut dispatched = 0u32;
        while dispatched < self.cfg.fetch_width && self.machine.stats.instrs < target {
            if self.pending.is_none() {
                self.pending = stream.next_instr();
            }
            let Some(instr) = self.pending else { break };
            let block = instr.block();
            // Block transition -> demand access.
            if self.machine.prev_demand_block != Some(block) {
                let hit = self.demand_with_hooks(block);
                match hit {
                    DemandOutcome::Hit { .. } => {}
                    DemandOutcome::Miss {
                        ready_at,
                        had_prefetch,
                    } => {
                        if had_prefetch {
                            self.machine.account_late_prefetch(block, ready_at);
                        }
                        self.stall(ready_at, StallCause::L1i);
                        return;
                    }
                    DemandOutcome::Retry => {
                        self.stall(self.machine.cycle + 1, StallCause::L1i);
                        return;
                    }
                }
                self.machine.prev_demand_block = Some(block);
            }
            // Consume the instruction.
            self.pending = None;
            self.machine.stats.instrs += 1;
            self.note_retired();
            dispatched += 1;
            self.machine.recent.push(instr);
            if instr.kind.is_branch() {
                let stallish = self.handle_branch_conventional(&instr);
                if stallish {
                    return;
                }
                if instr.redirects() {
                    // At most one taken branch per fetch group.
                    break;
                }
            }
        }
        if let Frontend::Conventional(Some(pf)) = &mut self.frontend {
            pf.tick(&mut self.machine);
        }
    }

    fn demand_with_hooks(&mut self, block: Block) -> DemandOutcome {
        let outcome = self.machine.demand(block);
        let (hit, was_pref) = match outcome {
            DemandOutcome::Hit { was_prefetched } => (true, was_prefetched),
            _ => (false, false),
        };
        if let Frontend::Conventional(Some(pf)) = &mut self.frontend {
            let recent = self.machine.recent;
            pf.on_demand(&mut self.machine, block, hit, was_pref, &recent);
        }
        outcome
    }

    /// Handles a branch at fetch in the conventional frontend. Returns
    /// `true` if the step should end (stall scheduled).
    fn handle_branch_conventional(&mut self, i: &Instr) -> bool {
        let taken = i.redirects();
        // Direction prediction for conditionals.
        let mut mispredicted = false;
        if let InstrKind::CondBranch { taken: actual } = i.kind {
            let pred = self.machine.tage.predict(i.pc);
            self.machine.tage.update(i.pc, actual);
            self.machine.note_tage(pred == actual);
            if pred != actual {
                mispredicted = true;
            }
        }
        // Target prediction / BTB.
        let mut btb_bubble = false;
        if taken && !self.cfg.perfect_btb {
            let hit = self.machine.btb.lookup(i.pc);
            match hit {
                Some(e) => match i.kind {
                    InstrKind::Return => {
                        let pred = self.machine.ras.pop();
                        if pred != Some(i.target) {
                            mispredicted = true;
                        }
                    }
                    InstrKind::IndirectCall | InstrKind::IndirectJump => {
                        if e.target != i.target {
                            mispredicted = true;
                            self.machine.btb.insert(BtbEntry {
                                pc: i.pc,
                                target: i.target,
                                class: e.class,
                            });
                        }
                    }
                    _ => {}
                },
                None => {
                    // BTB miss on a taken branch: check the BTB prefetch
                    // buffer first (§V-C), otherwise pay the
                    // decode-detect bubble.
                    if let Some(branches) = self.machine.btb_buffer.take_for(i.pc) {
                        if let Some(t) = self.machine.telem.as_deref_mut() {
                            t.btbpf_hit(block_of(i.pc));
                        }
                        for b in branches.iter() {
                            let class = b.class;
                            let target = if b.target != 0 { b.target } else { i.target };
                            self.machine.btb.insert(BtbEntry {
                                pc: b.pc,
                                target,
                                class,
                            });
                        }
                        if matches!(i.kind, InstrKind::Return) {
                            let _ = self.machine.ras.pop();
                        }
                    } else {
                        btb_bubble = true;
                        if let Some(t) = self.machine.telem.as_deref_mut() {
                            t.btbpf_demand_miss(block_of(i.pc));
                        }
                        self.machine.btb.insert(BtbEntry {
                            pc: i.pc,
                            target: i.target,
                            class: class_of(i.kind),
                        });
                        if matches!(i.kind, InstrKind::Return) {
                            let _ = self.machine.ras.pop();
                        }
                    }
                }
            }
        } else if taken && self.cfg.perfect_btb && matches!(i.kind, InstrKind::Return) {
            let _ = self.machine.ras.pop();
        }
        if i.kind.is_call() {
            self.machine.ras.push(i.fallthrough());
        }
        if mispredicted {
            self.wrong_path_traffic(i);
            let until = self.machine.cycle + self.cfg.mispredict_penalty;
            self.stall(until, StallCause::Redirect);
            return true;
        }
        if btb_bubble {
            let until = self.machine.cycle + self.cfg.btb_miss_penalty;
            self.stall(until, StallCause::Btb);
            return true;
        }
        false
    }

    /// Bounded wrong-path fetches past a mispredicted branch: they
    /// consume external bandwidth and NoC/LLC capacity but are squashed
    /// before polluting the L1i.
    fn wrong_path_traffic(&mut self, i: &Instr) {
        let wrong_start = if i.redirects() {
            i.fallthrough() // predicted not-taken path
        } else {
            i.target // predicted taken path
        };
        let base = block_of(wrong_start);
        for k in 0..u64::from(self.cfg.wrong_path_blocks) {
            let b = base + k;
            if !self.machine.l1i.contains(b) && !self.machine.mshr.contains(b) {
                let _ = self
                    .machine
                    .uncore
                    .access(self.machine.cycle, b, false, true);
            }
        }
    }

    /// Advances to `until`, attributing stall cycles and pumping the
    /// prefetcher/discovery engines while waiting.
    fn stall(&mut self, until: u64, cause: StallCause) {
        let from = self.machine.cycle;
        if until <= from {
            return;
        }
        let span = until - from;
        if let Some(t) = self.machine.telem.as_deref_mut() {
            let kind = match cause {
                StallCause::L1i => TelemetryStall::L1i,
                StallCause::Btb => TelemetryStall::Btb,
                StallCause::Redirect => TelemetryStall::Redirect,
            };
            t.stall(kind, from, until);
        }
        match cause {
            StallCause::L1i => self.machine.stats.stall_l1i += span,
            // Squashes (undetected taken branches, mispredictions)
            // restart the pipeline: the backend refills for ~penalty
            // cycles and retires nothing, so the cost is visible at the
            // retire clock no matter how much fetch-ahead was buffered.
            StallCause::Btb => {
                self.machine.stats.stall_btb += span;
                self.retire_clock += span as f64;
            }
            StallCause::Redirect => {
                self.machine.stats.stall_redirect += span;
                self.retire_clock += span as f64;
            }
        }
        self.machine.stats.cycles += span;
        // Pump background engines a bounded number of times during the
        // stall, then jump the clock.
        let resume = self.machine.cycle;
        let pumps = span.min(16);
        for k in 0..pumps {
            self.machine.cycle = resume + k + 1;
            match &mut self.frontend {
                Frontend::Conventional(Some(pf)) => {
                    self.machine
                        .drain_fills(Some(pf.as_mut() as &mut dyn InstrPrefetcher));
                    pf.tick(&mut self.machine);
                }
                Frontend::Conventional(None) => self.machine.drain_fills(None),
                Frontend::Boomerang(b, ftq) => {
                    self.machine.drain_fills(None);
                    b.advance(&mut self.machine, ftq);
                }
                Frontend::Shotgun(s, ftq) => {
                    self.machine.drain_fills(None);
                    s.advance(&mut self.machine, ftq);
                }
            }
        }
        self.machine.cycle = until;
    }

    // ---- BTB-directed driver ----

    fn step_directed<S: InstrStream>(&mut self, stream: &mut S, target: u64) {
        self.machine.cycle += 1;
        self.machine.stats.cycles += 1;
        self.telemetry_tick();
        self.machine.drain_fills(None);
        // Discovery runs every cycle.
        match &mut self.frontend {
            Frontend::Boomerang(b, ftq) => b.advance(&mut self.machine, ftq),
            Frontend::Shotgun(s, ftq) => s.advance(&mut self.machine, ftq),
            Frontend::Conventional(_) => unreachable!("directed step"),
        }
        // Fetch from the current region / FTQ.
        let mut dispatched = 0u32;
        while dispatched < self.cfg.fetch_width && self.machine.stats.instrs < target {
            if self.pending.is_none() {
                self.pending = stream.next_instr();
            }
            let Some(instr) = self.pending else { break };
            if self.region.is_none() {
                let popped = match &mut self.frontend {
                    Frontend::Boomerang(_, ftq) | Frontend::Shotgun(_, ftq) => ftq.pop(),
                    Frontend::Conventional(_) => None,
                };
                match popped {
                    Some(r) => {
                        self.empty_streak = 0;
                        if r.start != instr.pc {
                            // The discovery engine went down the wrong
                            // path: redirect it to reality.
                            self.redirect(instr.pc);
                            let until = self.machine.cycle + self.cfg.mispredict_penalty;
                            self.stall(until, StallCause::Redirect);
                            return;
                        }
                        self.region = Some(r);
                    }
                    None => {
                        // Empty FTQ: the §III pathology. When the
                        // discovery engine cannot recover on its own —
                        // parked on an unknown indirect target, or its
                        // reactive-fill request was dropped — the core
                        // makes "forward progress one block at a time":
                        // it fetches directly until the blocking branch
                        // resolves at execute, then redirects discovery
                        // to the resolved target.
                        self.empty_streak += 1;
                        let (parked, lost_fill) = match &self.frontend {
                            Frontend::Boomerang(b, _) => (
                                b.is_parked(),
                                b.stalled_block().is_some_and(|blk| {
                                    !self.machine.mshr.contains(blk)
                                        && !self.machine.l1i.contains(blk)
                                }),
                            ),
                            Frontend::Shotgun(s, _) => (
                                s.is_parked(),
                                s.stalled_block().is_some_and(|blk| {
                                    !self.machine.mshr.contains(blk)
                                        && !self.machine.l1i.contains(blk)
                                }),
                            ),
                            Frontend::Conventional(_) => (false, false),
                        };
                        if parked || lost_fill || self.empty_streak > 64 {
                            self.empty_streak = 0;
                            self.direct_fetch_fallback(stream, target, &mut dispatched);
                        } else if dispatched == 0 {
                            self.machine.stats.stall_empty_ftq += 1;
                            if let Some(t) = self.machine.telem.as_deref_mut() {
                                t.add(Ctr::StallEmptyFtqCycles, 1);
                            }
                        }
                        return;
                    }
                }
            }
            let region = self.region.expect("region set above");
            let block = instr.block();
            if self.machine.prev_demand_block != Some(block) {
                match self.machine.demand(block) {
                    DemandOutcome::Hit { .. } => {}
                    DemandOutcome::Miss {
                        ready_at,
                        had_prefetch,
                    } => {
                        if had_prefetch {
                            self.machine.account_late_prefetch(block, ready_at);
                        }
                        self.stall(ready_at, StallCause::L1i);
                        return;
                    }
                    DemandOutcome::Retry => {
                        self.stall(self.machine.cycle + 1, StallCause::L1i);
                        return;
                    }
                }
                self.machine.prev_demand_block = Some(block);
            }
            // Consume.
            self.pending = None;
            self.machine.stats.instrs += 1;
            self.note_retired();
            dispatched += 1;
            self.machine.recent.push(instr);
            // Retire-side learning + direction training. `would_predict`
            // captures what a history-current predictor says at consume
            // time — the accuracy a real speculatively-updated BPU
            // achieves, which our history-stale discovery pass cannot.
            let mut would_predict_correctly = false;
            if let InstrKind::CondBranch { taken } = instr.kind {
                let pred = self.machine.tage.predict(instr.pc);
                self.machine.tage.update(instr.pc, taken);
                self.machine.note_tage(pred == taken);
                would_predict_correctly = pred == taken;
            }
            // Architectural RAS (for speculative-RAS repair on squash).
            if instr.kind.is_call() {
                if self.arch_ras.len() == 32 {
                    self.arch_ras.remove(0);
                }
                self.arch_ras.push(instr.fallthrough());
            } else if matches!(instr.kind, InstrKind::Return) {
                let expected = self.arch_ras.pop();
                would_predict_correctly = expected == Some(instr.target);
            }
            match &mut self.frontend {
                Frontend::Boomerang(b, _) => b.on_retire(&instr),
                Frontend::Shotgun(s, _) => s.on_retire(&instr),
                Frontend::Conventional(_) => unreachable!(),
            }
            // Region end?
            if instr.pc >= region.end {
                self.region = None;
                let actual_next = instr.next_pc();
                if actual_next != region.next {
                    self.redirect(actual_next);
                    // Genuine mispredicts (a history-current BPU would
                    // also have been wrong) pay the full squash; mere
                    // discovery drift — the runahead pass predicting
                    // with stale history or an unrepaired RAS — is a
                    // cheap FTQ resteer, as in hardware where the BPU
                    // checkpoints history and the FTQ entry carries the
                    // correct prediction.
                    let penalty = if would_predict_correctly {
                        2
                    } else {
                        self.wrong_path_traffic(&instr);
                        self.cfg.mispredict_penalty
                    };
                    let until = self.machine.cycle + penalty;
                    self.stall(until, StallCause::Redirect);
                    return;
                }
                if instr.redirects() {
                    break; // one taken branch per cycle
                }
            }
        }
    }

    /// Fetches directly from the trace while the discovery engine is
    /// wedged, redirecting it at the first resolved control transfer.
    fn direct_fetch_fallback<S: InstrStream>(
        &mut self,
        stream: &mut S,
        target: u64,
        dispatched: &mut u32,
    ) {
        while *dispatched < self.cfg.fetch_width && self.machine.stats.instrs < target {
            if self.pending.is_none() {
                self.pending = stream.next_instr();
            }
            let Some(instr) = self.pending else { return };
            let block = instr.block();
            if self.machine.prev_demand_block != Some(block) {
                match self.machine.demand(block) {
                    DemandOutcome::Hit { .. } => {}
                    DemandOutcome::Miss {
                        ready_at,
                        had_prefetch,
                    } => {
                        if had_prefetch {
                            self.machine.account_late_prefetch(block, ready_at);
                        }
                        self.stall(ready_at, StallCause::L1i);
                        return;
                    }
                    DemandOutcome::Retry => {
                        self.stall(self.machine.cycle + 1, StallCause::L1i);
                        return;
                    }
                }
                self.machine.prev_demand_block = Some(block);
            }
            self.pending = None;
            self.machine.stats.instrs += 1;
            self.note_retired();
            *dispatched += 1;
            self.machine.recent.push(instr);
            if let InstrKind::CondBranch { taken } = instr.kind {
                let pred = self.machine.tage.predict(instr.pc);
                self.machine.tage.update(instr.pc, taken);
                self.machine.note_tage(pred == taken);
            }
            if instr.kind.is_call() {
                if self.arch_ras.len() == 32 {
                    self.arch_ras.remove(0);
                }
                self.arch_ras.push(instr.fallthrough());
            } else if matches!(instr.kind, InstrKind::Return) {
                let _ = self.arch_ras.pop();
            }
            match &mut self.frontend {
                Frontend::Boomerang(b, _) => b.on_retire(&instr),
                Frontend::Shotgun(s, _) => s.on_retire(&instr),
                Frontend::Conventional(_) => {}
            }
            if instr.redirects() {
                // The blocking branch resolved at execute: restart
                // discovery at the resolved target and charge the
                // resolution bubble.
                self.redirect(instr.next_pc());
                let until = self.machine.cycle + self.cfg.btb_miss_penalty;
                self.stall(until, StallCause::Btb);
                return;
            }
        }
    }

    fn redirect(&mut self, pc: Addr) {
        self.region = None;
        match &mut self.frontend {
            Frontend::Boomerang(b, ftq) => b.redirect(pc, ftq),
            Frontend::Shotgun(s, ftq) => s.redirect(pc, ftq),
            Frontend::Conventional(_) => {}
        }
        // Repair the speculative RAS from architectural state.
        self.machine.ras.clear();
        for &ret in &self.arch_ras {
            self.machine.ras.push(ret);
        }
    }
}

enum StallCause {
    L1i,
    Btb,
    Redirect,
}

fn class_of(kind: InstrKind) -> BranchClass {
    match kind {
        InstrKind::CondBranch { .. } => BranchClass::Conditional,
        InstrKind::Jump => BranchClass::Jump,
        InstrKind::Call => BranchClass::Call,
        InstrKind::IndirectJump => BranchClass::IndirectJump,
        InstrKind::IndirectCall => BranchClass::IndirectCall,
        InstrKind::Return => BranchClass::Return,
        InstrKind::Other => unreachable!("non-branch"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcfb_trace::IsaMode;
    use dcfb_workloads::WorkloadParams;

    fn tiny_image() -> Arc<ProgramImage> {
        // Large enough that the dynamic hot set thrashes the shrunken
        // test L1i (the paper's phenomena need instruction-bound
        // workloads).
        let params = WorkloadParams {
            functions: 500,
            root_functions: 32,
            zipf_s: 0.9,
            ..WorkloadParams::default()
        };
        Arc::new(ProgramImage::build(&params, 3, IsaMode::Fixed4))
    }

    fn quick_cfg(method: &str) -> SimConfig {
        let mut cfg = SimConfig::for_method(method).expect("method");
        cfg.warmup_instrs = 60_000;
        cfg.measure_instrs = 120_000;
        // The tiny test image must still thrash the L1i for the paper's
        // phenomena to appear, so shrink the cache instead of growing
        // the image (keeps tests fast).
        cfg.l1i = dcfb_cache::CacheConfig::from_kib(8, 8);
        cfg
    }

    fn run(method: &str) -> SimReport {
        let image = tiny_image();
        let mut sim = Simulator::new(quick_cfg(method), Arc::clone(&image));
        let mut walker = dcfb_workloads::Walker::new(image, 5);
        sim.run(&mut walker)
    }

    #[test]
    fn baseline_runs_and_reports() {
        let r = run("Baseline");
        assert_eq!(r.instrs, 120_000);
        assert!(r.cycles > 0);
        let ipc = r.ipc();
        assert!(ipc > 0.1 && ipc <= 3.0, "ipc {ipc}");
        assert!(r.l1i.demand_misses > 0, "workload must thrash the L1i");
        assert!(r.frontend_stalls() > 0);
    }

    #[test]
    fn nl_reduces_misses_vs_baseline() {
        let base = run("Baseline");
        let nl = run("NL");
        assert!(
            nl.miss_coverage_over(&base) > 0.2,
            "NL coverage {}",
            nl.miss_coverage_over(&base)
        );
        assert!(nl.ipc() > base.ipc(), "NL should speed up");
    }

    #[test]
    fn n8l_uses_much_more_bandwidth() {
        let base = run("Baseline");
        let n8 = run("N8L");
        assert!(
            n8.bandwidth_over(&base) > 2.0,
            "N8L bandwidth {}",
            n8.bandwidth_over(&base)
        );
    }

    #[test]
    fn sn4l_issues_less_traffic_than_n4l() {
        let n4 = run("N4L");
        let sn4 = run("SN4L");
        let base = run("Baseline");
        assert!(
            sn4.bandwidth_over(&base) < n4.bandwidth_over(&base),
            "SN4L {} vs N4L {}",
            sn4.bandwidth_over(&base),
            n4.bandwidth_over(&base)
        );
    }

    #[test]
    fn full_system_beats_baseline() {
        let base = run("Baseline");
        let full = run("SN4L+Dis+BTB");
        assert!(
            full.speedup_over(&base) > 1.02,
            "speedup {}",
            full.speedup_over(&base)
        );
        assert!(
            full.fscr_over(&base) > 0.1,
            "fscr {}",
            full.fscr_over(&base)
        );
    }

    #[test]
    fn directed_frontends_run() {
        for m in ["Boomerang", "Shotgun"] {
            let r = run(m);
            assert_eq!(r.instrs, 120_000, "{m}");
            assert!(r.ipc() > 0.1, "{m} ipc {}", r.ipc());
        }
    }

    #[test]
    fn shotgun_reports_split_btb_stats() {
        let r = run("Shotgun");
        let s = r.shotgun_btb.expect("shotgun split-BTB stats");
        assert!(s.u_lookups > 0);
        let e = r.shotgun.expect("shotgun engine stats");
        assert!(e.dyn_uncond > 0, "no unconditional branches retired");
        let fmr = e.footprint_miss_ratio();
        assert!((0.0..=1.0).contains(&fmr), "fmr {fmr}");
    }

    #[test]
    fn perfect_l1i_removes_l1i_stalls() {
        let image = tiny_image();
        let mut cfg = quick_cfg("Baseline");
        cfg.perfect_l1i = true;
        let mut sim = Simulator::new(cfg, Arc::clone(&image));
        let mut walker = dcfb_workloads::Walker::new(image, 5);
        let r = sim.run(&mut walker);
        assert_eq!(r.stall_l1i, 0);
        assert_eq!(r.l1i.demand_misses, 0);
        let base = run("Baseline");
        assert!(r.ipc() > base.ipc());
    }

    #[test]
    fn perfect_btb_removes_btb_stalls() {
        let image = tiny_image();
        let mut cfg = quick_cfg("Baseline");
        cfg.perfect_l1i = true;
        cfg.perfect_btb = true;
        let mut sim = Simulator::new(cfg, Arc::clone(&image));
        let mut walker = dcfb_workloads::Walker::new(image, 5);
        let r = sim.run(&mut walker);
        assert_eq!(r.stall_btb, 0);
        assert_eq!(r.frontend_stalls(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run("SN4L+Dis+BTB");
        let b = run("SN4L+Dis+BTB");
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.l1i.demand_misses, b.l1i.demand_misses);
        assert_eq!(a.external_requests, b.external_requests);
    }

    #[test]
    fn confluence_covers_misses() {
        let base = run("Baseline");
        let conf = run("Confluence");
        assert!(
            conf.miss_coverage_over(&base) > 0.3,
            "coverage {}",
            conf.miss_coverage_over(&base)
        );
    }

    #[test]
    fn prefetch_buffer_mode_absorbs_misses() {
        // The Fig. 5 methodology: NXL prefetches land in a 64-entry
        // buffer instead of the cache; demand misses that hit the
        // buffer are re-credited as hits.
        let image = tiny_image();
        let mut cfg = quick_cfg("N4L");
        cfg.use_prefetch_buffer = true;
        let mut sim = Simulator::new(cfg, Arc::clone(&image));
        let mut walker = dcfb_workloads::Walker::new(Arc::clone(&image), 5);
        let buffered = sim.run(&mut walker);
        let direct = run("N4L");
        // Both configurations must cover misses; the buffered one keeps
        // useless prefetches out of the cache entirely.
        assert!(buffered.l1i_mpki() < run("Baseline").l1i_mpki());
        assert_eq!(direct.method, "N4L");
        assert!(buffered.l1i.useless_prefetch_evictions <= direct.l1i.useless_prefetch_evictions);
    }

    #[test]
    fn variable_isa_simulation_runs_with_dvllc() {
        let params = WorkloadParams {
            functions: 300,
            root_functions: 12,
            ..WorkloadParams::default()
        };
        let image = Arc::new(ProgramImage::build(&params, 9, IsaMode::Variable));
        let mut cfg = quick_cfg("SN4L+Dis+BTB");
        cfg.isa = IsaMode::Variable;
        cfg.uncore.dvllc = true;
        let mut sim = Simulator::new(cfg, Arc::clone(&image));
        let mut walker = dcfb_workloads::Walker::new(image, 5);
        let r = sim.run(&mut walker);
        assert_eq!(r.instrs, 120_000);
        assert!(r.ipc() > 0.1);
    }

    #[test]
    fn exhausted_stream_ends_the_run() {
        let image = tiny_image();
        let mut cfg = quick_cfg("Baseline");
        cfg.warmup_instrs = 1_000;
        cfg.measure_instrs = u64::MAX; // more than the trace offers
        let mut walker = dcfb_workloads::Walker::new(Arc::clone(&image), 5);
        let trace = dcfb_trace::VecTrace::capture(&mut walker, 5_000);
        let mut sim = Simulator::new(cfg, Arc::clone(&image));
        let mut replay = trace.replay();
        let r = sim.run(&mut replay);
        assert_eq!(r.instrs, 4_000, "measured = total - warmup");
    }

    #[test]
    fn wrong_path_traffic_consumes_bandwidth() {
        // Wrong-path fetches must show up below the L1i but never
        // pollute it: external requests exceed fills.
        let r = run("Baseline");
        assert!(r.stall_redirect > 0, "no mispredicts in test workload?");
        assert!(
            r.external_requests > r.l1i.fills,
            "wrong-path traffic missing: ext {} vs fills {}",
            r.external_requests,
            r.l1i.fills
        );
    }

    #[test]
    fn ipc_never_exceeds_backend_rate_when_frontend_is_perfect() {
        let image = tiny_image();
        let mut cfg = quick_cfg("Baseline");
        cfg.perfect_l1i = true;
        cfg.perfect_btb = true;
        let mut sim = Simulator::new(cfg, Arc::clone(&image));
        let mut walker = dcfb_workloads::Walker::new(image, 5);
        let r = sim.run(&mut walker);
        // The decoupled-core model caps sustained IPC at the backend
        // rate (plus redirect effects pulling it below).
        assert!(r.ipc() <= Simulator::BACKEND_IPC + 1e-9, "ipc {}", r.ipc());
    }

    #[test]
    fn telemetry_off_by_default_and_detachable() {
        let image = tiny_image();
        let mut sim = Simulator::new(quick_cfg("SN4L"), Arc::clone(&image));
        let mut walker = dcfb_workloads::Walker::new(image, 5);
        sim.run(&mut walker);
        assert!(sim.take_telemetry().is_none(), "telemetry must default off");
    }

    #[test]
    fn telemetry_does_not_perturb_the_run() {
        let plain = run("SN4L+Dis+BTB");
        let image = tiny_image();
        let mut cfg = quick_cfg("SN4L+Dis+BTB");
        cfg.telemetry = true;
        let mut sim = Simulator::new(cfg, Arc::clone(&image));
        let mut walker = dcfb_workloads::Walker::new(image, 5);
        let observed = sim.run(&mut walker);
        assert_eq!(observed.cycles, plain.cycles);
        assert_eq!(observed.l1i.demand_misses, plain.l1i.demand_misses);
        assert_eq!(observed.external_requests, plain.external_requests);
    }

    #[test]
    fn telemetry_classifies_every_issued_prefetch() {
        let image = tiny_image();
        let mut cfg = quick_cfg("SN4L+Dis+BTB");
        cfg.telemetry = true;
        let mut sim = Simulator::new(cfg, Arc::clone(&image));
        let mut walker = dcfb_workloads::Walker::new(image, 5);
        let r = sim.run(&mut walker);
        let report = sim.take_telemetry().expect("telemetry enabled");
        report.doc.validate().expect("schema + sum invariant");
        // A second take returns nothing.
        assert!(sim.take_telemetry().is_none());
        // The run context matches the simulation report.
        assert_eq!(report.doc.instrs, r.instrs);
        assert_eq!(report.doc.method, "SN4L+Dis+BTB");
        // Per-source: the four classes account for every issue.
        let mut issued_total = 0;
        for row in &report.doc.timeliness {
            assert_eq!(
                row.accurate + row.late + row.early_evicted + row.useless,
                row.issued,
                "{} classes must sum to issued",
                row.source
            );
            issued_total += row.issued;
        }
        assert!(issued_total > 0, "the full system must issue prefetches");
        // The proactive engine's first-level streams are attributed.
        assert!(
            report
                .doc
                .timeliness
                .iter()
                .any(|t| t.source == "sn4l" && t.accurate > 0),
            "SN4L should land accurate prefetches: {:?}",
            report.doc.timeliness
        );
        // BTB prefetching is on in the full system.
        assert!(
            report.doc.timeliness.iter().any(|t| t.source == "btb_pf"),
            "BTB-prefetch rows missing"
        );
        // Counters cross-check the simulation report.
        assert_eq!(report.doc.counter("seq_misses"), Some(r.seq_misses));
        assert_eq!(report.doc.counter("disc_misses"), Some(r.disc_misses));
        assert_eq!(
            report.doc.counter("uncovered_misses"),
            Some(r.uncovered_misses)
        );
        assert_eq!(report.doc.counter("stall_l1i_cycles"), Some(r.stall_l1i));
        // Time series covers the measured instructions.
        let series_instrs: u64 = report.doc.series.iter().map(|row| row[2]).sum();
        assert_eq!(series_instrs, r.instrs, "windows must partition the run");
        // Trace export is valid JSON.
        let trace = report.chrome_trace();
        dcfb_telemetry::JsonValue::parse(&trace).expect("valid Chrome trace JSON");
    }

    #[test]
    fn telemetry_tracks_directed_frontend_ftq() {
        let image = tiny_image();
        let mut cfg = quick_cfg("Boomerang");
        cfg.telemetry = true;
        let mut sim = Simulator::new(cfg, Arc::clone(&image));
        let mut walker = dcfb_workloads::Walker::new(image, 5);
        sim.run(&mut walker);
        let report = sim.take_telemetry().expect("telemetry enabled");
        report.doc.validate().expect("valid doc");
        // FTQ occupancy is only observable on the directed frontend.
        let ftq = report
            .doc
            .histograms
            .iter()
            .find(|h| h.name == "ftq_occupancy")
            .expect("ftq histogram");
        assert!(ftq.count > 0, "directed frontend must sample the FTQ");
        let row = report
            .doc
            .timeliness
            .iter()
            .find(|t| t.source == "boomerang")
            .expect("boomerang prefetches");
        assert_eq!(
            row.accurate + row.late + row.early_evicted + row.useless,
            row.issued
        );
    }

    #[test]
    fn telemetry_buffer_mode_attributes_buffer_hits() {
        let image = tiny_image();
        let mut cfg = quick_cfg("N4L");
        cfg.use_prefetch_buffer = true;
        cfg.telemetry = true;
        let mut sim = Simulator::new(cfg, Arc::clone(&image));
        let mut walker = dcfb_workloads::Walker::new(image, 5);
        let r = sim.run(&mut walker);
        assert!(r.buffer_hits > 0, "buffer must absorb misses");
        let report = sim.take_telemetry().expect("telemetry enabled");
        report.doc.validate().expect("valid doc");
        assert_eq!(report.doc.counter("buffer_hits"), Some(r.buffer_hits));
        let row = report
            .doc
            .timeliness
            .iter()
            .find(|t| t.source == "next_line")
            .expect("next-line prefetches");
        assert!(row.accurate > 0, "buffer hits must count as accurate");
    }

    #[test]
    fn cmal_is_a_sane_fraction() {
        for m in ["NL", "N4L", "SN4L"] {
            let r = run(m);
            let c = r.cmal();
            assert!((0.0..=1.0).contains(&c), "{m} cmal {c}");
            assert!(r.cmal_total > 0.0, "{m} had no prefetched misses");
        }
    }
}
