//! Experiment packaging: build a workload once, run methods against it,
//! and compare to the no-prefetcher baseline.

use crate::config::SimConfig;
use crate::machine::Simulator;
use crate::metrics::SimReport;
use dcfb_errors::DcfbError;
use dcfb_telemetry::TelemetryReport;
use dcfb_workloads::{ResolvedWorkload, Walker, Workload};
use std::sync::Arc;

/// A method's measured report paired with the matching baseline.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// The method's report.
    pub report: SimReport,
    /// The no-prefetcher baseline on the same workload/seed.
    pub baseline: SimReport,
}

impl ExperimentResult {
    /// Speedup over the baseline (Fig. 16/17).
    pub fn speedup(&self) -> f64 {
        self.report.speedup_over(&self.baseline)
    }

    /// Frontend stall-cycle reduction (Fig. 15).
    pub fn fscr(&self) -> f64 {
        self.report.fscr_over(&self.baseline)
    }

    /// Miss coverage (Fig. 11-style).
    pub fn coverage(&self) -> f64 {
        self.report.miss_coverage_over(&self.baseline)
    }

    /// External bandwidth relative to the baseline (Fig. 5).
    pub fn bandwidth(&self) -> f64 {
        self.report.bandwidth_over(&self.baseline)
    }

    /// Cache lookups relative to the baseline (Fig. 14).
    pub fn lookups(&self) -> f64 {
        self.report.lookups_over(&self.baseline)
    }

    /// Average LLC latency relative to the baseline (Fig. 5).
    pub fn llc_latency(&self) -> f64 {
        self.report.llc_latency_over(&self.baseline)
    }
}

/// Runs `cfg` on `workload` with the given trace seed.
///
/// The program image is built once; the walker replays deterministically
/// from `trace_seed`.
pub fn run_config(workload: &Workload, cfg: SimConfig, trace_seed: u64) -> SimReport {
    let image = workload.image(cfg.isa);
    let mut sim = Simulator::new(cfg, Arc::clone(&image));
    let mut walker = Walker::new(image, trace_seed);
    sim.run(&mut walker)
}

/// Runs `cfg` on `workload` with telemetry recording forced on,
/// returning the simulation report paired with the finalized
/// telemetry export (metrics document, time series, trace events).
///
/// This is the engine behind `dcfb profile`. Note that telemetry
/// recording does not change simulated behavior — only host time.
pub fn run_config_profiled(
    workload: &Workload,
    mut cfg: SimConfig,
    trace_seed: u64,
) -> (SimReport, TelemetryReport) {
    cfg.telemetry = true;
    let image = workload.image(cfg.isa);
    let mut sim = Simulator::new(cfg, Arc::clone(&image));
    let mut walker = Walker::new(image, trace_seed);
    let report = sim.run(&mut walker);
    // Infallible: `cfg.telemetry` was forced on above and this is the
    // first (only) take.
    #[allow(clippy::expect_used)]
    let telemetry = sim.take_telemetry().expect("telemetry was enabled above");
    (report, telemetry)
}

/// Runs `cfg` on a registry-resolved workload source with the given
/// trace seed.
///
/// For synthetic sources this is digest-identical to [`run_config`]:
/// the resolved code memory is the same `Arc<ProgramImage>`, the start
/// pc and workload name are derived exactly as `Simulator::new` does,
/// and the stream is the same seeded [`Walker`]. The
/// `invariant/workload-source` conformance check pins that equivalence
/// for every registry method.
///
/// # Errors
///
/// Returns [`DcfbError::Config`] if `cfg` fails validation.
pub fn run_resolved(
    resolved: &ResolvedWorkload,
    cfg: SimConfig,
    trace_seed: u64,
) -> Result<SimReport, DcfbError> {
    let mut sim = Simulator::try_with_code(
        cfg,
        resolved.code(),
        resolved.start_pc(),
        resolved.name().to_owned(),
    )?;
    let mut stream = resolved.stream(trace_seed);
    Ok(sim.run(&mut stream))
}

/// [`run_resolved`] with telemetry recording forced on — the resolved
/// counterpart of [`run_config_profiled`].
///
/// # Errors
///
/// Returns [`DcfbError::Config`] if `cfg` fails validation.
pub fn run_resolved_profiled(
    resolved: &ResolvedWorkload,
    mut cfg: SimConfig,
    trace_seed: u64,
) -> Result<(SimReport, TelemetryReport), DcfbError> {
    cfg.telemetry = true;
    let mut sim = Simulator::try_with_code(
        cfg,
        resolved.code(),
        resolved.start_pc(),
        resolved.name().to_owned(),
    )?;
    let mut stream = resolved.stream(trace_seed);
    let report = sim.run(&mut stream);
    // Infallible: `cfg.telemetry` was forced on above and this is the
    // first (only) take.
    #[allow(clippy::expect_used)]
    let telemetry = sim.take_telemetry().expect("telemetry was enabled above");
    Ok((report, telemetry))
}

/// Runs a method *and* the baseline on a resolved source (same seed)
/// and pairs the results — the registry counterpart of
/// [`run_workload`].
///
/// # Errors
///
/// Returns [`DcfbError::Config`] if `cfg` fails validation.
pub fn run_resolved_workload(
    resolved: &ResolvedWorkload,
    cfg: SimConfig,
    trace_seed: u64,
) -> Result<ExperimentResult, DcfbError> {
    let mut base_cfg = SimConfig::baseline();
    base_cfg.warmup_instrs = cfg.warmup_instrs;
    base_cfg.measure_instrs = cfg.measure_instrs;
    base_cfg.isa = cfg.isa;
    let baseline = run_resolved(resolved, base_cfg, trace_seed)?;
    let report = run_resolved(resolved, cfg, trace_seed)?;
    Ok(ExperimentResult { report, baseline })
}

/// Runs a method *and* the baseline on `workload` (same seed) and pairs
/// the results.
pub fn run_workload(workload: &Workload, cfg: SimConfig, trace_seed: u64) -> ExperimentResult {
    let mut base_cfg = SimConfig::baseline();
    base_cfg.warmup_instrs = cfg.warmup_instrs;
    base_cfg.measure_instrs = cfg.measure_instrs;
    base_cfg.isa = cfg.isa;
    let baseline = run_config(workload, base_cfg, trace_seed);
    let report = run_config(workload, cfg, trace_seed);
    ExperimentResult { report, baseline }
}

/// A multi-seed measurement with a confidence interval, mirroring the
/// paper's SimFlex sampling methodology ("95 % confidence level and a
/// confidence interval of less than 4 %", §VI-C).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Measurement {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95 % confidence interval.
    pub ci95: f64,
    /// Number of samples.
    pub n: usize,
}

impl Measurement {
    /// Computes mean and 95 % CI from samples (normal approximation;
    /// the paper's methodology likewise assumes approximate normality
    /// of sampled means).
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "no samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Measurement { mean, ci95: 0.0, n };
        }
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let sem = (var / n as f64).sqrt();
        Measurement {
            mean,
            ci95: 1.96 * sem,
            n,
        }
    }

    /// Relative CI half-width (`ci95 / mean`), the paper's "< 4 %"
    /// criterion.
    pub fn relative_ci(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.ci95 / self.mean.abs()
        }
    }
}

/// Runs a method over `seeds` trace seeds and summarizes the speedups
/// over per-seed baselines.
pub fn run_multi_seed(workload: &Workload, cfg: &SimConfig, seeds: &[u64]) -> Measurement {
    assert!(!seeds.is_empty(), "no seeds");
    let speedups: Vec<f64> = seeds
        .iter()
        .map(|&s| run_workload(workload, cfg.clone(), s).speedup())
        .collect();
    Measurement::from_samples(&speedups)
}

/// Geometric mean, the standard summary for speedups.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut product = 1.0f64;
    let mut n = 0u32;
    for v in values {
        product *= v.max(1e-12);
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        product.powf(1.0 / f64::from(n))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use dcfb_workloads::WorkloadParams;

    fn tiny_workload() -> Workload {
        Workload {
            name: "tiny",
            params: WorkloadParams {
                name: "tiny".to_owned(),
                functions: 40,
                root_functions: 6,
                ..WorkloadParams::default()
            },
            image_seed: 9,
        }
    }

    fn quick(method: &str) -> SimConfig {
        let mut cfg = SimConfig::for_method(method).unwrap();
        cfg.warmup_instrs = 50_000;
        cfg.measure_instrs = 100_000;
        cfg
    }

    #[test]
    fn paired_run_shares_workload() {
        let w = tiny_workload();
        let res = run_workload(&w, quick("NL"), 1);
        assert_eq!(res.report.workload, res.baseline.workload);
        assert_eq!(res.baseline.method, "Baseline");
        assert_eq!(res.report.method, "NL");
        assert!(res.speedup() > 0.9);
    }

    #[test]
    fn geomean_properties() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
        assert!((geomean([3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_statistics() {
        let m = Measurement::from_samples(&[1.0, 1.1, 0.9, 1.0]);
        assert!((m.mean - 1.0).abs() < 1e-12);
        assert!(m.ci95 > 0.0);
        assert_eq!(m.n, 4);
        assert!(m.relative_ci() < 0.2);
        let single = Measurement::from_samples(&[2.5]);
        assert_eq!(single.ci95, 0.0);
        assert_eq!(single.mean, 2.5);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn measurement_rejects_empty() {
        let _ = Measurement::from_samples(&[]);
    }

    #[test]
    fn multi_seed_runs_are_tight() {
        let w = tiny_workload();
        let m = run_multi_seed(&w, &quick("NL"), &[1, 2, 3]);
        assert_eq!(m.n, 3);
        assert!(m.mean > 0.9, "mean speedup {}", m.mean);
        // Same workload family: seeds should agree within a loose CI.
        assert!(m.relative_ci() < 0.25, "relative CI {}", m.relative_ci());
    }

    #[test]
    fn run_config_is_deterministic() {
        let w = tiny_workload();
        let a = run_config(&w, quick("SN4L"), 7);
        let b = run_config(&w, quick("SN4L"), 7);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.l1i.demand_misses, b.l1i.demand_misses);
    }
}
