//! Simulation metrics: the quantities the paper's figures report.

use dcfb_cache::CacheStats;
use dcfb_frontend::{BtbStats, ShotgunBtbStats};
use dcfb_prefetch::shotgun::ShotgunStats;
use dcfb_uncore::UncoreStats;

/// Why the frontend delivered no instructions in a cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StallKind {
    /// Waiting for a demanded instruction block (L1i miss).
    L1iMiss,
    /// BTB-miss bubble (taken branch undiscovered at fetch).
    BtbMiss,
    /// Pipeline redirect after a misprediction.
    Redirect,
    /// BTB-directed frontend drained its FTQ (Table I).
    EmptyFtq,
}

/// Everything measured during one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Method display name.
    pub method: String,
    /// Workload display name.
    pub workload: String,
    /// Measured cycles.
    pub cycles: u64,
    /// Measured retired instructions.
    pub instrs: u64,
    /// L1i cache statistics.
    pub l1i: CacheStats,
    /// Demand misses whose block was sequential after the previous
    /// demanded block.
    pub seq_misses: u64,
    /// Demand misses caused by control-flow discontinuities.
    pub disc_misses: u64,
    /// Stall cycles by cause.
    pub stall_l1i: u64,
    /// BTB-miss bubble cycles.
    pub stall_btb: u64,
    /// Redirect (misprediction) cycles.
    pub stall_redirect: u64,
    /// Empty-FTQ cycles (BTB-directed frontends only).
    pub stall_empty_ftq: u64,
    /// CMAL numerator: miss-latency cycles covered by prefetching.
    pub cmal_covered: f64,
    /// CMAL denominator: total miss-latency cycles of prefetched
    /// blocks.
    pub cmal_total: f64,
    /// Demand misses that found their block already in flight from a
    /// prefetch (late prefetches).
    pub late_prefetches: u64,
    /// Demand misses with no prefetch in flight at all.
    pub uncovered_misses: u64,
    /// Total L1i lookups: demand accesses + prefetcher probes (Fig. 14).
    pub cache_lookups: u64,
    /// Requests sent below the L1i (fetch + prefetch): the "external
    /// bandwidth" of Fig. 5.
    pub external_requests: u64,
    /// Uncore statistics (latency, queueing, hits).
    pub uncore: UncoreStats,
    /// Conventional BTB statistics.
    pub btb: BtbStats,
    /// Shotgun split-BTB statistics, when applicable.
    pub shotgun_btb: Option<ShotgunBtbStats>,
    /// Shotgun engine statistics (incl. the retire-side Fig. 1
    /// footprint-miss accounting), when applicable.
    pub shotgun: Option<ShotgunStats>,
    /// Prefetcher metadata storage, in bits.
    pub storage_bits: u64,
    /// Conditional-branch direction accuracy.
    pub branch_accuracy: f64,
    /// Prefetches dropped (MSHRs full / queue overflow).
    pub dropped_prefetches: u64,
    /// Demand misses absorbed by the prefetch buffer (already
    /// re-credited as hits in `l1i`; kept separately so the JSON
    /// output can surface the absorption count).
    pub buffer_hits: u64,
}

impl SimReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }

    /// Speedup over a baseline run of the same workload.
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        if baseline.ipc() == 0.0 {
            0.0
        } else {
            self.ipc() / baseline.ipc()
        }
    }

    /// Frontend-induced stall cycles (L1i + BTB + empty-FTQ; redirects
    /// are mispredictions, which every method pays).
    pub fn frontend_stalls(&self) -> u64 {
        self.stall_l1i + self.stall_btb + self.stall_empty_ftq
    }

    /// Frontend Stall Cycle Reduction vs. a baseline (Fig. 15): the
    /// fraction of the baseline's frontend stalls this method removed.
    pub fn fscr_over(&self, baseline: &SimReport) -> f64 {
        let base = baseline.frontend_stalls() as f64;
        if base == 0.0 {
            return 0.0;
        }
        // Normalize per instruction in case cycle counts differ.
        let base_rate = base / baseline.instrs.max(1) as f64;
        let self_rate = self.frontend_stalls() as f64 / self.instrs.max(1) as f64;
        1.0 - (self_rate / base_rate)
    }

    /// Covered memory access latency (Fig. 4/13): the fraction of
    /// miss-latency cycles of prefetched blocks hidden by the
    /// prefetcher.
    pub fn cmal(&self) -> f64 {
        if self.cmal_total == 0.0 {
            0.0
        } else {
            self.cmal_covered / self.cmal_total
        }
    }

    /// L1i demand-miss coverage vs. a baseline: the fraction of the
    /// baseline's misses (per instruction) this method eliminated.
    pub fn miss_coverage_over(&self, baseline: &SimReport) -> f64 {
        let base = baseline.l1i.demand_misses as f64 / baseline.instrs.max(1) as f64;
        if base == 0.0 {
            return 0.0;
        }
        let own = self.l1i.demand_misses as f64 / self.instrs.max(1) as f64;
        1.0 - own / base
    }

    /// Fraction of demand misses that were sequential.
    pub fn seq_miss_fraction(&self) -> f64 {
        let total = self.seq_misses + self.disc_misses;
        if total == 0 {
            0.0
        } else {
            self.seq_misses as f64 / total as f64
        }
    }

    /// External bandwidth relative to a baseline (Fig. 5), normalized
    /// per instruction.
    pub fn bandwidth_over(&self, baseline: &SimReport) -> f64 {
        let base = baseline.external_requests as f64 / baseline.instrs.max(1) as f64;
        if base == 0.0 {
            return 0.0;
        }
        (self.external_requests as f64 / self.instrs.max(1) as f64) / base
    }

    /// Cache lookups relative to a baseline (Fig. 14), normalized per
    /// instruction.
    pub fn lookups_over(&self, baseline: &SimReport) -> f64 {
        let base = baseline.cache_lookups as f64 / baseline.instrs.max(1) as f64;
        if base == 0.0 {
            return 0.0;
        }
        (self.cache_lookups as f64 / self.instrs.max(1) as f64) / base
    }

    /// Average LLC access latency relative to a baseline (Fig. 5).
    pub fn llc_latency_over(&self, baseline: &SimReport) -> f64 {
        if baseline.uncore.avg_latency() == 0.0 {
            return 0.0;
        }
        self.uncore.avg_latency() / baseline.uncore.avg_latency()
    }

    /// Fraction of measured cycles stalled on an empty FTQ (Table I).
    pub fn empty_ftq_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stall_empty_ftq as f64 / self.cycles as f64
        }
    }

    /// A comparable digest of the whole report; identical digests mean
    /// two runs produced bit-identical results. Used by the replay
    /// determinism checks (bench sweep, conformance invariants).
    pub fn digest(&self) -> String {
        format!("{self:?}")
    }

    /// L1i misses per kilo-instruction.
    pub fn l1i_mpki(&self) -> f64 {
        if self.instrs == 0 {
            0.0
        } else {
            self.l1i.demand_misses as f64 * 1000.0 / self.instrs as f64
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn report(cycles: u64, instrs: u64) -> SimReport {
        SimReport {
            cycles,
            instrs,
            ..SimReport::default()
        }
    }

    #[test]
    fn ipc_and_speedup() {
        let base = report(2000, 1000);
        let fast = report(1000, 1000);
        assert!((base.ipc() - 0.5).abs() < 1e-12);
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fscr_normalizes_per_instruction() {
        let mut base = report(1000, 1000);
        base.stall_l1i = 400;
        let mut good = report(700, 1000);
        good.stall_l1i = 100;
        assert!((good.fscr_over(&base) - 0.75).abs() < 1e-12);
        // A method with MORE stalls has negative FSCR.
        let mut bad = report(1500, 1000);
        bad.stall_l1i = 600;
        assert!(bad.fscr_over(&base) < 0.0);
    }

    #[test]
    fn cmal_edges() {
        let mut r = report(1, 1);
        assert_eq!(r.cmal(), 0.0);
        r.cmal_covered = 88.0;
        r.cmal_total = 100.0;
        assert!((r.cmal() - 0.88).abs() < 1e-12);
    }

    #[test]
    fn miss_coverage() {
        let mut base = report(1000, 1000);
        base.l1i.demand_misses = 100;
        let mut m = report(1000, 1000);
        m.l1i.demand_misses = 30;
        assert!((m.miss_coverage_over(&base) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn seq_fraction() {
        let mut r = report(1, 1);
        r.seq_misses = 75;
        r.disc_misses = 25;
        assert!((r.seq_miss_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_and_lookups_relative() {
        let mut base = report(1000, 1000);
        base.external_requests = 100;
        base.cache_lookups = 1000;
        let mut m = report(1000, 1000);
        m.external_requests = 720;
        m.cache_lookups = 1500;
        assert!((m.bandwidth_over(&base) - 7.2).abs() < 1e-12);
        assert!((m.lookups_over(&base) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_ftq_fraction_and_mpki() {
        let mut r = report(10_000, 5_000);
        r.stall_empty_ftq = 1_313;
        r.l1i.demand_misses = 250;
        assert!((r.empty_ftq_fraction() - 0.1313).abs() < 1e-12);
        assert!((r.l1i_mpki() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let z = SimReport::default();
        assert_eq!(z.ipc(), 0.0);
        assert_eq!(z.cmal(), 0.0);
        assert_eq!(z.seq_miss_fraction(), 0.0);
        assert_eq!(z.empty_ftq_fraction(), 0.0);
        assert_eq!(z.fscr_over(&z), 0.0);
        assert_eq!(z.speedup_over(&z), 0.0);
    }
}
