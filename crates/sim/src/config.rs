//! Simulation configuration (Table III defaults).

use dcfb_cache::CacheConfig;
use dcfb_errors::DcfbError;
use dcfb_frontend::{BtbConfig, ShotgunBtbConfig};
use dcfb_prefetch::{ConfluenceConfig, Sn4lDisConfig, TagPolicy};
use dcfb_trace::IsaMode;
use dcfb_uncore::UncoreConfig;

/// Which prefetcher drives the frontend.
#[derive(Clone, Debug)]
pub enum PrefetcherKind {
    /// No instruction/BTB prefetcher (the speedup baseline).
    None,
    /// Next-X-line sequential prefetcher.
    NextLine(u32),
    /// SN4L alone (Fig. 17's second bar).
    Sn4l {
        /// SeqTable entries (16 K in the paper; swept in Fig. 11).
        seq_entries: usize,
    },
    /// The standalone Dis prefetcher (Fig. 13).
    Dis {
        /// DisTable entries.
        dis_entries: usize,
        /// DisTable tagging policy.
        tag: TagPolicy,
    },
    /// The combined proactive engine; `btb` selects SN4L+Dis vs
    /// SN4L+Dis+BTB.
    Sn4lDis(Sn4lDisConfig),
    /// The conventional discontinuity prefetcher baseline.
    Discontinuity,
    /// Confluence = SHIFT + a 16 K-entry BTB (set `btb` accordingly!).
    Confluence(ConfluenceConfig),
    /// Boomerang (BTB-directed driver).
    Boomerang {
        /// BB-BTB entries.
        btb_entries: usize,
    },
    /// Shotgun (BTB-directed driver with the split BTB).
    Shotgun(ShotgunBtbConfig),
}

impl PrefetcherKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            PrefetcherKind::None => "Baseline".to_owned(),
            PrefetcherKind::NextLine(1) => "NL".to_owned(),
            PrefetcherKind::NextLine(d) => format!("N{d}L"),
            PrefetcherKind::Sn4l { .. } => "SN4L".to_owned(),
            PrefetcherKind::Dis { .. } => "Dis".to_owned(),
            PrefetcherKind::Sn4lDis(c) if c.btb_prefetch => "SN4L+Dis+BTB".to_owned(),
            PrefetcherKind::Sn4lDis(_) => "SN4L+Dis".to_owned(),
            PrefetcherKind::Discontinuity => "Discontinuity".to_owned(),
            PrefetcherKind::Confluence(_) => "Confluence".to_owned(),
            PrefetcherKind::Boomerang { .. } => "Boomerang".to_owned(),
            PrefetcherKind::Shotgun(_) => "Shotgun".to_owned(),
        }
    }

    /// Whether this prefetcher drives the FTQ (BTB-directed frontend).
    pub fn is_btb_directed(&self) -> bool {
        matches!(
            self,
            PrefetcherKind::Boomerang { .. } | PrefetcherKind::Shotgun(_)
        )
    }
}

/// Full machine + experiment configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Frontend width (3-wide dispatch, Table III).
    pub fetch_width: u32,
    /// L1i geometry (32 KB, 8-way).
    pub l1i: CacheConfig,
    /// MSHR entries (32).
    pub mshrs: usize,
    /// Conventional BTB (2 K entries baseline; 16 K for Confluence;
    /// swept in Fig. 18).
    pub btb: BtbConfig,
    /// Frontend bubble on a BTB miss for a taken branch (≥ 6 cycles,
    /// §VI-A).
    pub btb_miss_penalty: u64,
    /// Redirect penalty on a direction/target misprediction.
    pub mispredict_penalty: u64,
    /// Wrong-path blocks fetched past a misprediction (bandwidth
    /// pollution).
    pub wrong_path_blocks: u32,
    /// FTQ capacity for the BTB-directed driver (32).
    pub ftq_entries: usize,
    /// Hold prefetches in a 64-entry buffer next to the L1i instead of
    /// filling the cache directly (the Fig. 5 NXL methodology).
    pub use_prefetch_buffer: bool,
    /// Prefetch-buffer capacity when enabled.
    pub prefetch_buffer_entries: usize,
    /// All demand accesses hit in the L1i (Fig. 17 "Perfect L1i").
    pub perfect_l1i: bool,
    /// No BTB-miss penalties (Fig. 17 "+ BTB∞").
    pub perfect_btb: bool,
    /// The memory system below the L1i.
    pub uncore: UncoreConfig,
    /// Instruction encoding mode.
    pub isa: IsaMode,
    /// The prefetcher under test.
    pub prefetcher: PrefetcherKind,
    /// Instructions to run before statistics are reset (cache/BTB/
    /// predictor warmup).
    pub warmup_instrs: u64,
    /// Instructions measured after warmup.
    pub measure_instrs: u64,
    /// Record detailed telemetry (counters, histograms,
    /// prefetch-timeliness classification, time series, trace events).
    /// Off by default: the recorder is then never allocated and each
    /// instrumentation site costs one never-taken branch.
    pub telemetry: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            fetch_width: 3,
            l1i: CacheConfig::l1i(),
            mshrs: 32,
            btb: BtbConfig::baseline_2k(),
            btb_miss_penalty: 9,
            mispredict_penalty: 9,
            wrong_path_blocks: 2,
            ftq_entries: 32,
            use_prefetch_buffer: false,
            prefetch_buffer_entries: 64,
            perfect_l1i: false,
            perfect_btb: false,
            uncore: UncoreConfig::default(),
            isa: IsaMode::Fixed4,
            prefetcher: PrefetcherKind::None,
            warmup_instrs: 2_000_000,
            measure_instrs: 3_000_000,
            telemetry: false,
        }
    }
}

impl SimConfig {
    /// Baseline with no prefetcher.
    pub fn baseline() -> Self {
        SimConfig::default()
    }

    /// A named standard configuration for each evaluated method
    /// (§VI-D): `"NL"`, `"N2L"`, `"N4L"`, `"N8L"`, `"SN4L"`, `"Dis"`,
    /// `"SN4L+Dis"`, `"SN4L+Dis+BTB"`, `"Discontinuity"`,
    /// `"Confluence"`, `"Boomerang"`, `"Shotgun"`, `"Baseline"`.
    ///
    /// Returns `None` for unknown names.
    pub fn for_method(name: &str) -> Option<Self> {
        let mut cfg = SimConfig::default();
        cfg.prefetcher = match name {
            "Baseline" => PrefetcherKind::None,
            "NL" => PrefetcherKind::NextLine(1),
            "N2L" => PrefetcherKind::NextLine(2),
            "N4L" => PrefetcherKind::NextLine(4),
            "N8L" => PrefetcherKind::NextLine(8),
            "SN4L" => PrefetcherKind::Sn4l {
                seq_entries: 16 * 1024,
            },
            "Dis" => PrefetcherKind::Dis {
                dis_entries: 4 * 1024,
                tag: TagPolicy::Partial(4),
            },
            "SN4L+Dis" => PrefetcherKind::Sn4lDis(Sn4lDisConfig::without_btb()),
            "SN4L+Dis+BTB" => PrefetcherKind::Sn4lDis(Sn4lDisConfig::default()),
            "Discontinuity" => PrefetcherKind::Discontinuity,
            "Confluence" => {
                cfg.btb = BtbConfig::confluence_16k();
                PrefetcherKind::Confluence(ConfluenceConfig::default())
            }
            "Boomerang" => PrefetcherKind::Boomerang { btb_entries: 2048 },
            "Shotgun" => PrefetcherKind::Shotgun(ShotgunBtbConfig::default()),
            _ => return None,
        };
        Some(cfg)
    }

    /// The list of methods Fig. 16 compares.
    pub fn fig16_methods() -> [&'static str; 4] {
        ["Shotgun", "Confluence", "SN4L+Dis+BTB", "Baseline"]
    }

    /// Checks the configuration for values the simulator cannot run
    /// with, returning [`DcfbError::Config`] naming the first problem.
    ///
    /// Called by [`Simulator::try_new`](crate::Simulator::try_new) and
    /// the CLI before a run, so a bad sweep or hand-edited config fails
    /// with a one-line diagnostic (exit 3) instead of an index panic
    /// deep in a table model.
    pub fn validate(&self) -> Result<(), DcfbError> {
        fn pow2(what: &str, n: usize) -> Result<(), DcfbError> {
            if n == 0 || !n.is_power_of_two() {
                return Err(DcfbError::Config(format!(
                    "{what} must be a nonzero power of two (got {n})"
                )));
            }
            Ok(())
        }
        fn nonzero(what: &str, n: u64) -> Result<(), DcfbError> {
            if n == 0 {
                return Err(DcfbError::Config(format!("{what} must be nonzero")));
            }
            Ok(())
        }
        fn set_assoc(what: &str, entries: usize, ways: usize) -> Result<(), DcfbError> {
            nonzero(&format!("{what} ways"), ways as u64)?;
            if entries == 0 || entries % ways != 0 {
                return Err(DcfbError::Config(format!(
                    "{what} entries ({entries}) must be a nonzero multiple of ways ({ways})"
                )));
            }
            pow2(&format!("{what} sets"), entries / ways)
        }

        nonzero("fetch_width", u64::from(self.fetch_width))?;
        pow2("l1i sets", self.l1i.sets)?;
        nonzero("l1i ways", self.l1i.ways as u64)?;
        nonzero("mshrs", self.mshrs as u64)?;
        set_assoc("btb", self.btb.entries, self.btb.ways)?;
        nonzero("btb_miss_penalty", self.btb_miss_penalty)?;
        nonzero("ftq_entries", self.ftq_entries as u64)?;
        if self.use_prefetch_buffer {
            nonzero(
                "prefetch_buffer_entries",
                self.prefetch_buffer_entries as u64,
            )?;
        }
        nonzero("warmup_instrs", self.warmup_instrs)?;
        nonzero("measure_instrs", self.measure_instrs)?;

        match &self.prefetcher {
            PrefetcherKind::None | PrefetcherKind::Discontinuity => {}
            PrefetcherKind::NextLine(d) => {
                if !(1..=MAX_PREFETCH_DEGREE).contains(&(*d as usize)) {
                    return Err(DcfbError::Config(format!(
                        "next-line degree must be 1..={MAX_PREFETCH_DEGREE} (got {d})"
                    )));
                }
            }
            PrefetcherKind::Sn4l { seq_entries } => pow2("SeqTable entries", *seq_entries)?,
            PrefetcherKind::Dis { dis_entries, .. } => pow2("DisTable entries", *dis_entries)?,
            PrefetcherKind::Sn4lDis(c) => {
                pow2("SeqTable entries", c.seq_entries)?;
                pow2("DisTable entries", c.dis_entries)?;
                nonzero("RLU entries", c.rlu_entries as u64)?;
                nonzero("queue_capacity", c.queue_capacity as u64)?;
                nonzero("max_depth", u64::from(c.max_depth))?;
            }
            PrefetcherKind::Confluence(c) => {
                nonzero("SHIFT history entries", c.history_entries as u64)?;
                if !(1..=MAX_PREFETCH_DEGREE).contains(&c.degree) {
                    return Err(DcfbError::Config(format!(
                        "Confluence degree must be 1..={MAX_PREFETCH_DEGREE} (got {})",
                        c.degree
                    )));
                }
                nonzero("Confluence lookahead", c.lookahead as u64)?;
            }
            PrefetcherKind::Boomerang { btb_entries } => pow2("BB-BTB entries", *btb_entries)?,
            PrefetcherKind::Shotgun(sc) => {
                // The split BTB indexes by modulo, so sets need not be
                // powers of two — only nonzero and way-divisible.
                nonzero("shotgun ways", sc.ways as u64)?;
                for (what, entries) in [
                    ("U-BTB", sc.u_entries),
                    ("C-BTB", sc.c_entries),
                    ("RIB", sc.r_entries),
                ] {
                    if entries == 0 || entries % sc.ways != 0 {
                        return Err(DcfbError::Config(format!(
                            "{what} entries ({entries}) must be a nonzero multiple of ways ({})",
                            sc.ways
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Largest sequential prefetch degree the frontend models sensibly
/// (beyond this, a degree sweep stops resembling the paper's Fig. 4).
pub const MAX_PREFETCH_DEGREE: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_iii() {
        let c = SimConfig::default();
        assert_eq!(c.fetch_width, 3);
        assert_eq!(c.l1i.size_kib(), 32);
        assert_eq!(c.mshrs, 32);
        assert_eq!(c.btb.entries, 2048);
        assert!(c.btb_miss_penalty >= 6);
        assert_eq!(c.mispredict_penalty, 9);
    }

    #[test]
    fn method_names_resolve() {
        for m in [
            "Baseline",
            "NL",
            "N2L",
            "N4L",
            "N8L",
            "SN4L",
            "Dis",
            "SN4L+Dis",
            "SN4L+Dis+BTB",
            "Discontinuity",
            "Confluence",
            "Boomerang",
            "Shotgun",
        ] {
            let cfg = SimConfig::for_method(m).unwrap_or_else(|| panic!("{m} missing"));
            assert_eq!(cfg.prefetcher.name(), m, "name mismatch for {m}");
        }
        assert!(SimConfig::for_method("bogus").is_none());
    }

    #[test]
    fn confluence_gets_the_16k_btb() {
        let cfg = SimConfig::for_method("Confluence").unwrap();
        assert_eq!(cfg.btb.entries, 16 * 1024);
    }

    #[test]
    fn every_standard_method_validates() {
        for m in [
            "Baseline",
            "NL",
            "N8L",
            "SN4L",
            "Dis",
            "SN4L+Dis",
            "SN4L+Dis+BTB",
            "Discontinuity",
            "Confluence",
            "Boomerang",
            "Shotgun",
        ] {
            SimConfig::for_method(m)
                .unwrap()
                .validate()
                .unwrap_or_else(|e| panic!("{m}: {e}"));
        }
    }

    #[test]
    fn validate_rejects_bad_table_sizes() {
        let mut cfg = SimConfig::default();
        cfg.l1i.sets = 65; // not a power of two
        assert!(matches!(cfg.validate(), Err(DcfbError::Config(_))));

        let mut cfg = SimConfig::default();
        cfg.btb.entries = 2047; // sets not a power of two
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::default();
        cfg.prefetcher = PrefetcherKind::Sn4l { seq_entries: 3000 };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_windows() {
        let mut cfg = SimConfig::default();
        cfg.warmup_instrs = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::default();
        cfg.measure_instrs = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::default();
        cfg.ftq_entries = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::default();
        cfg.mshrs = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_bounds_prefetch_degree() {
        let mut cfg = SimConfig::default();
        cfg.prefetcher = PrefetcherKind::NextLine(0);
        assert!(cfg.validate().is_err());
        cfg.prefetcher = PrefetcherKind::NextLine(MAX_PREFETCH_DEGREE as u32 + 1);
        assert!(cfg.validate().is_err());
        cfg.prefetcher = PrefetcherKind::NextLine(MAX_PREFETCH_DEGREE as u32);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_diagnostics_name_the_field() {
        let mut cfg = SimConfig::default();
        cfg.warmup_instrs = 0;
        let msg = cfg.validate().unwrap_err().to_string();
        assert!(msg.contains("warmup_instrs"), "{msg}");
        assert!(!msg.contains('\n'), "one-line diagnostic expected: {msg}");
    }

    #[test]
    fn btb_directed_classification() {
        assert!(SimConfig::for_method("Shotgun")
            .unwrap()
            .prefetcher
            .is_btb_directed());
        assert!(SimConfig::for_method("Boomerang")
            .unwrap()
            .prefetcher
            .is_btb_directed());
        assert!(!SimConfig::for_method("SN4L+Dis+BTB")
            .unwrap()
            .prefetcher
            .is_btb_directed());
    }
}
