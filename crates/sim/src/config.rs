//! Simulation configuration (Table III defaults).
//!
//! Method names resolve through the `dcfb-prefetch` method registry
//! ([`dcfb_prefetch::registry`]): one row per evaluated method carrying
//! its display name, its [`PrefetcherKind`], and any machine overrides
//! (e.g. Confluence's 16 K-entry BTB). [`SimConfig::for_method`] is the
//! single entry point; adding a method — including a config-only
//! composition of existing prefetchers — means adding one registry row.

use dcfb_cache::CacheConfig;
use dcfb_errors::DcfbError;
use dcfb_frontend::BtbConfig;
use dcfb_trace::IsaMode;
use dcfb_uncore::UncoreConfig;

pub use dcfb_prefetch::PrefetcherKind;

/// Full machine + experiment configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Frontend width (3-wide dispatch, Table III).
    pub fetch_width: u32,
    /// L1i geometry (32 KB, 8-way).
    pub l1i: CacheConfig,
    /// MSHR entries (32).
    pub mshrs: usize,
    /// Conventional BTB (2 K entries baseline; 16 K for Confluence;
    /// swept in Fig. 18).
    pub btb: BtbConfig,
    /// Frontend bubble on a BTB miss for a taken branch (≥ 6 cycles,
    /// §VI-A).
    pub btb_miss_penalty: u64,
    /// Redirect penalty on a direction/target misprediction.
    pub mispredict_penalty: u64,
    /// Wrong-path blocks fetched past a misprediction (bandwidth
    /// pollution).
    pub wrong_path_blocks: u32,
    /// FTQ capacity for the BTB-directed driver (32).
    pub ftq_entries: usize,
    /// Hold prefetches in a 64-entry buffer next to the L1i instead of
    /// filling the cache directly (the Fig. 5 NXL methodology).
    pub use_prefetch_buffer: bool,
    /// Prefetch-buffer capacity when enabled.
    pub prefetch_buffer_entries: usize,
    /// All demand accesses hit in the L1i (Fig. 17 "Perfect L1i").
    pub perfect_l1i: bool,
    /// No BTB-miss penalties (Fig. 17 "+ BTB∞").
    pub perfect_btb: bool,
    /// The memory system below the L1i.
    pub uncore: UncoreConfig,
    /// Instruction encoding mode.
    pub isa: IsaMode,
    /// The prefetcher under test.
    pub prefetcher: PrefetcherKind,
    /// Instructions to run before statistics are reset (cache/BTB/
    /// predictor warmup).
    pub warmup_instrs: u64,
    /// Instructions measured after warmup.
    pub measure_instrs: u64,
    /// Record detailed telemetry (counters, histograms,
    /// prefetch-timeliness classification, time series, trace events).
    /// Off by default: the recorder is then never allocated and each
    /// instrumentation site costs one never-taken branch.
    pub telemetry: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            fetch_width: 3,
            l1i: CacheConfig::l1i(),
            mshrs: 32,
            btb: BtbConfig::baseline_2k(),
            btb_miss_penalty: 9,
            mispredict_penalty: 9,
            wrong_path_blocks: 2,
            ftq_entries: 32,
            use_prefetch_buffer: false,
            prefetch_buffer_entries: 64,
            perfect_l1i: false,
            perfect_btb: false,
            uncore: UncoreConfig::default(),
            isa: IsaMode::Fixed4,
            prefetcher: PrefetcherKind::None,
            warmup_instrs: 2_000_000,
            measure_instrs: 3_000_000,
            telemetry: false,
        }
    }
}

impl SimConfig {
    /// Baseline with no prefetcher.
    pub fn baseline() -> Self {
        SimConfig::default()
    }

    /// The standard configuration for a named method, resolved through
    /// the method registry (§VI-D): `"Baseline"`, `"NL"`/`"N2L"`/
    /// `"N4L"`/`"N8L"`, `"SN4L"`, `"Dis"`, `"SN4L+Dis"`,
    /// `"SN4L+Dis+BTB"`, `"Discontinuity"`, `"Confluence"`,
    /// `"Boomerang"`, `"Shotgun"`, plus registry compositions such as
    /// `"N2L+Dis"`. [`dcfb_prefetch::method_names`] lists them all.
    ///
    /// Returns `None` for unknown names.
    pub fn for_method(name: &str) -> Option<Self> {
        let row = dcfb_prefetch::find_method(name)?;
        let mut cfg = SimConfig {
            prefetcher: row.kind(),
            ..SimConfig::default()
        };
        if let Some(btb) = row.btb_override() {
            cfg.btb = btb;
        }
        Some(cfg)
    }

    /// The methods Fig. 16 compares, in registry order.
    pub fn fig16_methods() -> Vec<&'static str> {
        dcfb_prefetch::registry()
            .iter()
            .filter(|row| row.fig16)
            .map(|row| row.name)
            .collect()
    }

    /// Checks the configuration for values the simulator cannot run
    /// with, returning [`DcfbError::Config`] naming the first problem.
    ///
    /// Called by [`Simulator::try_new`](crate::Simulator::try_new) and
    /// the CLI before a run, so a bad sweep or hand-edited config fails
    /// with a one-line diagnostic (exit 3) instead of an index panic
    /// deep in a table model.
    pub fn validate(&self) -> Result<(), DcfbError> {
        fn pow2(what: &str, n: usize) -> Result<(), DcfbError> {
            if n == 0 || !n.is_power_of_two() {
                return Err(DcfbError::Config(format!(
                    "{what} must be a nonzero power of two (got {n})"
                )));
            }
            Ok(())
        }
        fn nonzero(what: &str, n: u64) -> Result<(), DcfbError> {
            if n == 0 {
                return Err(DcfbError::Config(format!("{what} must be nonzero")));
            }
            Ok(())
        }
        fn set_assoc(what: &str, entries: usize, ways: usize) -> Result<(), DcfbError> {
            nonzero(&format!("{what} ways"), ways as u64)?;
            if entries == 0 || !entries.is_multiple_of(ways) {
                return Err(DcfbError::Config(format!(
                    "{what} entries ({entries}) must be a nonzero multiple of ways ({ways})"
                )));
            }
            pow2(&format!("{what} sets"), entries / ways)
        }
        fn check_prefetcher(p: &PrefetcherKind) -> Result<(), DcfbError> {
            match p {
                PrefetcherKind::None | PrefetcherKind::Discontinuity => Ok(()),
                PrefetcherKind::NextLine(d) => {
                    if !(1..=MAX_PREFETCH_DEGREE).contains(&(*d as usize)) {
                        return Err(DcfbError::Config(format!(
                            "next-line degree must be 1..={MAX_PREFETCH_DEGREE} (got {d})"
                        )));
                    }
                    Ok(())
                }
                PrefetcherKind::Sn4l { seq_entries } => pow2("SeqTable entries", *seq_entries),
                PrefetcherKind::Dis { dis_entries, .. } => pow2("DisTable entries", *dis_entries),
                PrefetcherKind::Sn4lDis(c) => {
                    pow2("SeqTable entries", c.seq_entries)?;
                    pow2("DisTable entries", c.dis_entries)?;
                    nonzero("RLU entries", c.rlu_entries as u64)?;
                    nonzero("queue_capacity", c.queue_capacity as u64)?;
                    nonzero("max_depth", u64::from(c.max_depth))
                }
                PrefetcherKind::Confluence(c) => {
                    nonzero("SHIFT history entries", c.history_entries as u64)?;
                    if !(1..=MAX_PREFETCH_DEGREE).contains(&c.degree) {
                        return Err(DcfbError::Config(format!(
                            "Confluence degree must be 1..={MAX_PREFETCH_DEGREE} (got {})",
                            c.degree
                        )));
                    }
                    nonzero("Confluence lookahead", c.lookahead as u64)
                }
                PrefetcherKind::Boomerang { btb_entries } => pow2("BB-BTB entries", *btb_entries),
                PrefetcherKind::Shotgun(sc) => {
                    // The split BTB indexes by modulo, so sets need not be
                    // powers of two — only nonzero and way-divisible.
                    nonzero("shotgun ways", sc.ways as u64)?;
                    for (what, entries) in [
                        ("U-BTB", sc.u_entries),
                        ("C-BTB", sc.c_entries),
                        ("RIB", sc.r_entries),
                    ] {
                        if entries == 0 || entries % sc.ways != 0 {
                            return Err(DcfbError::Config(format!(
                                "{what} entries ({entries}) must be a nonzero multiple of ways ({})",
                                sc.ways
                            )));
                        }
                    }
                    Ok(())
                }
                PrefetcherKind::Composed { label, parts } => {
                    if parts.is_empty() {
                        return Err(DcfbError::Config(format!(
                            "composition {label} has no parts"
                        )));
                    }
                    for part in parts {
                        if matches!(part, PrefetcherKind::Composed { .. }) {
                            return Err(DcfbError::Config(format!(
                                "composition {label} nests another composition"
                            )));
                        }
                        if part.is_btb_directed() {
                            return Err(DcfbError::Config(format!(
                                "composition {label} includes BTB-directed engine {}",
                                part.name()
                            )));
                        }
                        check_prefetcher(part)?;
                    }
                    Ok(())
                }
            }
        }

        nonzero("fetch_width", u64::from(self.fetch_width))?;
        pow2("l1i sets", self.l1i.sets)?;
        nonzero("l1i ways", self.l1i.ways as u64)?;
        nonzero("mshrs", self.mshrs as u64)?;
        set_assoc("btb", self.btb.entries, self.btb.ways)?;
        nonzero("btb_miss_penalty", self.btb_miss_penalty)?;
        nonzero("ftq_entries", self.ftq_entries as u64)?;
        if self.use_prefetch_buffer {
            nonzero(
                "prefetch_buffer_entries",
                self.prefetch_buffer_entries as u64,
            )?;
        }
        nonzero("warmup_instrs", self.warmup_instrs)?;
        nonzero("measure_instrs", self.measure_instrs)?;
        check_prefetcher(&self.prefetcher)
    }
}

/// Largest sequential prefetch degree the frontend models sensibly
/// (beyond this, a degree sweep stops resembling the paper's Fig. 4).
pub const MAX_PREFETCH_DEGREE: usize = 64;

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_iii() {
        let c = SimConfig::default();
        assert_eq!(c.fetch_width, 3);
        assert_eq!(c.l1i.size_kib(), 32);
        assert_eq!(c.mshrs, 32);
        assert_eq!(c.btb.entries, 2048);
        assert!(c.btb_miss_penalty >= 6);
        assert_eq!(c.mispredict_penalty, 9);
    }

    #[test]
    fn method_names_resolve() {
        for m in [
            "Baseline",
            "NL",
            "N2L",
            "N4L",
            "N8L",
            "SN4L",
            "Dis",
            "SN4L+Dis",
            "SN4L+Dis+BTB",
            "Discontinuity",
            "Confluence",
            "Boomerang",
            "Shotgun",
        ] {
            let cfg = SimConfig::for_method(m).unwrap_or_else(|| panic!("{m} missing"));
            assert_eq!(cfg.prefetcher.name(), m, "name mismatch for {m}");
        }
        assert!(SimConfig::for_method("bogus").is_none());
    }

    #[test]
    fn every_registry_method_round_trips_and_validates() {
        // The satellite invariant: registry name -> config -> display
        // label -> same name, and every row is runnable.
        for m in dcfb_prefetch::method_names() {
            let cfg = SimConfig::for_method(m).unwrap_or_else(|| panic!("{m} missing"));
            assert_eq!(cfg.prefetcher.name(), m, "round trip broke for {m}");
            cfg.validate().unwrap_or_else(|e| panic!("{m}: {e}"));
        }
    }

    #[test]
    fn fig16_methods_come_from_the_registry() {
        let methods = SimConfig::fig16_methods();
        for m in ["Baseline", "SN4L+Dis+BTB", "Confluence", "Shotgun"] {
            assert!(methods.contains(&m), "{m} missing from fig16 set");
        }
        assert_eq!(methods.len(), 4);
    }

    #[test]
    fn confluence_gets_the_16k_btb() {
        let cfg = SimConfig::for_method("Confluence").unwrap();
        assert_eq!(cfg.btb.entries, 16 * 1024);
    }

    #[test]
    fn validate_rejects_bad_table_sizes() {
        let mut cfg = SimConfig::default();
        cfg.l1i.sets = 65; // not a power of two
        assert!(matches!(cfg.validate(), Err(DcfbError::Config(_))));

        let mut cfg = SimConfig::default();
        cfg.btb.entries = 2047; // sets not a power of two
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::default();
        cfg.prefetcher = PrefetcherKind::Sn4l { seq_entries: 3000 };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_windows() {
        let mut cfg = SimConfig::default();
        cfg.warmup_instrs = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::default();
        cfg.measure_instrs = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::default();
        cfg.ftq_entries = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::default();
        cfg.mshrs = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_bounds_prefetch_degree() {
        let mut cfg = SimConfig::default();
        cfg.prefetcher = PrefetcherKind::NextLine(0);
        assert!(cfg.validate().is_err());
        cfg.prefetcher = PrefetcherKind::NextLine(MAX_PREFETCH_DEGREE as u32 + 1);
        assert!(cfg.validate().is_err());
        cfg.prefetcher = PrefetcherKind::NextLine(MAX_PREFETCH_DEGREE as u32);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_checks_composition_parts() {
        let mut cfg = SimConfig::default();
        cfg.prefetcher = PrefetcherKind::Composed {
            label: "bad",
            parts: vec![PrefetcherKind::NextLine(0)],
        };
        assert!(cfg.validate().is_err(), "part checks must recurse");

        cfg.prefetcher = PrefetcherKind::Composed {
            label: "bad",
            parts: vec![],
        };
        assert!(cfg.validate().is_err(), "empty composition");

        cfg.prefetcher = PrefetcherKind::Composed {
            label: "bad",
            parts: vec![PrefetcherKind::Boomerang { btb_entries: 2048 }],
        };
        assert!(cfg.validate().is_err(), "directed engines cannot compose");

        cfg.prefetcher = PrefetcherKind::Composed {
            label: "ok",
            parts: vec![PrefetcherKind::NextLine(2), PrefetcherKind::Discontinuity],
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_diagnostics_name_the_field() {
        let mut cfg = SimConfig::default();
        cfg.warmup_instrs = 0;
        let msg = cfg.validate().unwrap_err().to_string();
        assert!(msg.contains("warmup_instrs"), "{msg}");
        assert!(!msg.contains('\n'), "one-line diagnostic expected: {msg}");
    }

    #[test]
    fn btb_directed_classification() {
        assert!(SimConfig::for_method("Shotgun")
            .unwrap()
            .prefetcher
            .is_btb_directed());
        assert!(SimConfig::for_method("Boomerang")
            .unwrap()
            .prefetcher
            .is_btb_directed());
        assert!(!SimConfig::for_method("SN4L+Dis+BTB")
            .unwrap()
            .prefetcher
            .is_btb_directed());
    }
}
