//! Simulation configuration (Table III defaults).

use dcfb_cache::CacheConfig;
use dcfb_frontend::{BtbConfig, ShotgunBtbConfig};
use dcfb_prefetch::{ConfluenceConfig, Sn4lDisConfig, TagPolicy};
use dcfb_trace::IsaMode;
use dcfb_uncore::UncoreConfig;

/// Which prefetcher drives the frontend.
#[derive(Clone, Debug)]
pub enum PrefetcherKind {
    /// No instruction/BTB prefetcher (the speedup baseline).
    None,
    /// Next-X-line sequential prefetcher.
    NextLine(u32),
    /// SN4L alone (Fig. 17's second bar).
    Sn4l {
        /// SeqTable entries (16 K in the paper; swept in Fig. 11).
        seq_entries: usize,
    },
    /// The standalone Dis prefetcher (Fig. 13).
    Dis {
        /// DisTable entries.
        dis_entries: usize,
        /// DisTable tagging policy.
        tag: TagPolicy,
    },
    /// The combined proactive engine; `btb` selects SN4L+Dis vs
    /// SN4L+Dis+BTB.
    Sn4lDis(Sn4lDisConfig),
    /// The conventional discontinuity prefetcher baseline.
    Discontinuity,
    /// Confluence = SHIFT + a 16 K-entry BTB (set `btb` accordingly!).
    Confluence(ConfluenceConfig),
    /// Boomerang (BTB-directed driver).
    Boomerang {
        /// BB-BTB entries.
        btb_entries: usize,
    },
    /// Shotgun (BTB-directed driver with the split BTB).
    Shotgun(ShotgunBtbConfig),
}

impl PrefetcherKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            PrefetcherKind::None => "Baseline".to_owned(),
            PrefetcherKind::NextLine(1) => "NL".to_owned(),
            PrefetcherKind::NextLine(d) => format!("N{d}L"),
            PrefetcherKind::Sn4l { .. } => "SN4L".to_owned(),
            PrefetcherKind::Dis { .. } => "Dis".to_owned(),
            PrefetcherKind::Sn4lDis(c) if c.btb_prefetch => "SN4L+Dis+BTB".to_owned(),
            PrefetcherKind::Sn4lDis(_) => "SN4L+Dis".to_owned(),
            PrefetcherKind::Discontinuity => "Discontinuity".to_owned(),
            PrefetcherKind::Confluence(_) => "Confluence".to_owned(),
            PrefetcherKind::Boomerang { .. } => "Boomerang".to_owned(),
            PrefetcherKind::Shotgun(_) => "Shotgun".to_owned(),
        }
    }

    /// Whether this prefetcher drives the FTQ (BTB-directed frontend).
    pub fn is_btb_directed(&self) -> bool {
        matches!(
            self,
            PrefetcherKind::Boomerang { .. } | PrefetcherKind::Shotgun(_)
        )
    }
}

/// Full machine + experiment configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Frontend width (3-wide dispatch, Table III).
    pub fetch_width: u32,
    /// L1i geometry (32 KB, 8-way).
    pub l1i: CacheConfig,
    /// MSHR entries (32).
    pub mshrs: usize,
    /// Conventional BTB (2 K entries baseline; 16 K for Confluence;
    /// swept in Fig. 18).
    pub btb: BtbConfig,
    /// Frontend bubble on a BTB miss for a taken branch (≥ 6 cycles,
    /// §VI-A).
    pub btb_miss_penalty: u64,
    /// Redirect penalty on a direction/target misprediction.
    pub mispredict_penalty: u64,
    /// Wrong-path blocks fetched past a misprediction (bandwidth
    /// pollution).
    pub wrong_path_blocks: u32,
    /// FTQ capacity for the BTB-directed driver (32).
    pub ftq_entries: usize,
    /// Hold prefetches in a 64-entry buffer next to the L1i instead of
    /// filling the cache directly (the Fig. 5 NXL methodology).
    pub use_prefetch_buffer: bool,
    /// Prefetch-buffer capacity when enabled.
    pub prefetch_buffer_entries: usize,
    /// All demand accesses hit in the L1i (Fig. 17 "Perfect L1i").
    pub perfect_l1i: bool,
    /// No BTB-miss penalties (Fig. 17 "+ BTB∞").
    pub perfect_btb: bool,
    /// The memory system below the L1i.
    pub uncore: UncoreConfig,
    /// Instruction encoding mode.
    pub isa: IsaMode,
    /// The prefetcher under test.
    pub prefetcher: PrefetcherKind,
    /// Instructions to run before statistics are reset (cache/BTB/
    /// predictor warmup).
    pub warmup_instrs: u64,
    /// Instructions measured after warmup.
    pub measure_instrs: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            fetch_width: 3,
            l1i: CacheConfig::l1i(),
            mshrs: 32,
            btb: BtbConfig::baseline_2k(),
            btb_miss_penalty: 9,
            mispredict_penalty: 9,
            wrong_path_blocks: 2,
            ftq_entries: 32,
            use_prefetch_buffer: false,
            prefetch_buffer_entries: 64,
            perfect_l1i: false,
            perfect_btb: false,
            uncore: UncoreConfig::default(),
            isa: IsaMode::Fixed4,
            prefetcher: PrefetcherKind::None,
            warmup_instrs: 2_000_000,
            measure_instrs: 3_000_000,
        }
    }
}

impl SimConfig {
    /// Baseline with no prefetcher.
    pub fn baseline() -> Self {
        SimConfig::default()
    }

    /// A named standard configuration for each evaluated method
    /// (§VI-D): `"NL"`, `"N2L"`, `"N4L"`, `"N8L"`, `"SN4L"`, `"Dis"`,
    /// `"SN4L+Dis"`, `"SN4L+Dis+BTB"`, `"Discontinuity"`,
    /// `"Confluence"`, `"Boomerang"`, `"Shotgun"`, `"Baseline"`.
    ///
    /// Returns `None` for unknown names.
    pub fn for_method(name: &str) -> Option<Self> {
        let mut cfg = SimConfig::default();
        cfg.prefetcher = match name {
            "Baseline" => PrefetcherKind::None,
            "NL" => PrefetcherKind::NextLine(1),
            "N2L" => PrefetcherKind::NextLine(2),
            "N4L" => PrefetcherKind::NextLine(4),
            "N8L" => PrefetcherKind::NextLine(8),
            "SN4L" => PrefetcherKind::Sn4l {
                seq_entries: 16 * 1024,
            },
            "Dis" => PrefetcherKind::Dis {
                dis_entries: 4 * 1024,
                tag: TagPolicy::Partial(4),
            },
            "SN4L+Dis" => PrefetcherKind::Sn4lDis(Sn4lDisConfig::without_btb()),
            "SN4L+Dis+BTB" => PrefetcherKind::Sn4lDis(Sn4lDisConfig::default()),
            "Discontinuity" => PrefetcherKind::Discontinuity,
            "Confluence" => {
                cfg.btb = BtbConfig::confluence_16k();
                PrefetcherKind::Confluence(ConfluenceConfig::default())
            }
            "Boomerang" => PrefetcherKind::Boomerang { btb_entries: 2048 },
            "Shotgun" => PrefetcherKind::Shotgun(ShotgunBtbConfig::default()),
            _ => return None,
        };
        Some(cfg)
    }

    /// The list of methods Fig. 16 compares.
    pub fn fig16_methods() -> [&'static str; 4] {
        ["Shotgun", "Confluence", "SN4L+Dis+BTB", "Baseline"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_iii() {
        let c = SimConfig::default();
        assert_eq!(c.fetch_width, 3);
        assert_eq!(c.l1i.size_kib(), 32);
        assert_eq!(c.mshrs, 32);
        assert_eq!(c.btb.entries, 2048);
        assert!(c.btb_miss_penalty >= 6);
        assert_eq!(c.mispredict_penalty, 9);
    }

    #[test]
    fn method_names_resolve() {
        for m in [
            "Baseline",
            "NL",
            "N2L",
            "N4L",
            "N8L",
            "SN4L",
            "Dis",
            "SN4L+Dis",
            "SN4L+Dis+BTB",
            "Discontinuity",
            "Confluence",
            "Boomerang",
            "Shotgun",
        ] {
            let cfg = SimConfig::for_method(m).unwrap_or_else(|| panic!("{m} missing"));
            assert_eq!(cfg.prefetcher.name(), m, "name mismatch for {m}");
        }
        assert!(SimConfig::for_method("bogus").is_none());
    }

    #[test]
    fn confluence_gets_the_16k_btb() {
        let cfg = SimConfig::for_method("Confluence").unwrap();
        assert_eq!(cfg.btb.entries, 16 * 1024);
    }

    #[test]
    fn btb_directed_classification() {
        assert!(SimConfig::for_method("Shotgun")
            .unwrap()
            .prefetcher
            .is_btb_directed());
        assert!(SimConfig::for_method("Boomerang")
            .unwrap()
            .prefetcher
            .is_btb_directed());
        assert!(!SimConfig::for_method("SN4L+Dis+BTB")
            .unwrap()
            .prefetcher
            .is_btb_directed());
    }
}
