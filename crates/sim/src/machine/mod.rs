//! The cycle-approximate frontend timing machine, decomposed into
//! planes:
//!
//! * **memory plane** ([`memory`]) — L1i, MSHRs, prefetch buffer, and
//!   the uncore below them: demand accesses, fills, and the
//!   CMAL/timeliness accounting;
//! * **fetch core** ([`fetch`]) — pre-decode, TAGE bookkeeping, and
//!   wrong-path traffic past mispredictions;
//! * **prefetcher context** ([`context`]) — the [`Machine`]'s
//!   implementations of the `dcfb-prefetch` context traits, through
//!   which every prefetcher and discovery engine observes and acts on
//!   the machine;
//! * **frontend drivers** ([`driver`], [`decoupled`], [`directed`]) —
//!   the per-cycle loop is written once in [`sim`]; everything
//!   method-specific sits behind the [`FrontendDriver`] trait, with the
//!   conventional decoupled frontend and the BTB-directed (FTQ-driven)
//!   frontend as its two implementations.
//!
//! Two driver styles share one [`Machine`]:
//!
//! * the **conventional decoupled frontend** (baseline, NL/NXL, SN4L,
//!   Dis, SN4L+Dis(+BTB), conventional discontinuity, Confluence, and
//!   any registry composition of them): fetch follows the trace; taken
//!   branches need a BTB hit to redirect without a bubble; direction
//!   comes from TAGE and return targets from the RAS; prefetchers
//!   observe L1i events and pump their queues once per cycle;
//! * the **BTB-directed frontend** (Boomerang, Shotgun): the discovery
//!   engine runs ahead of fetch filling the FTQ, fetch consumes FTQ
//!   regions and verifies them against the trace, and FTQ starvation
//!   surfaces as the empty-FTQ stalls of Table I.
//!
//! Timing simplifications (documented in DESIGN.md): the backend is
//! ideal beyond its 3-wide width; L1i hit latency is fully pipelined;
//! stall periods are advanced in bulk with the prefetcher ticked up to
//! 16 times per stall; wrong-path execution is modeled as redirect
//! penalties plus bounded wrong-path block fetches that consume
//! bandwidth without polluting the L1i.

pub mod context;
pub mod decoupled;
pub mod directed;
pub mod driver;
pub mod fetch;
pub mod memory;
pub mod sim;
#[cfg(test)]
mod tests;

pub use driver::{build_driver, Consumed, FrontendDriver, Gate, StallCause};
pub use memory::DemandOutcome;
pub use sim::{RunControl, Simulator};

use crate::config::SimConfig;
use dcfb_cache::{Completion, MshrFile, PrefetchBuffer, SetAssocCache};
use dcfb_frontend::{Btb, BtbEntry, Predecoder, ReturnAddressStack, Tage, TageConfig};
use dcfb_prefetch::{BtbPrefetchBuffer, RecentInstrs};
use dcfb_telemetry::{RunTelemetry, TelemetryConfig};
use dcfb_trace::{Block, CodeMemory};
use dcfb_uncore::Uncore;
use fxhash::FxHashMap;
use std::sync::Arc;

/// Counters accumulated while running (reset after warmup).
#[derive(Clone, Debug, Default)]
pub(crate) struct RawStats {
    pub(crate) cycles: u64,
    pub(crate) instrs: u64,
    pub(crate) seq_misses: u64,
    pub(crate) disc_misses: u64,
    pub(crate) stall_l1i: u64,
    pub(crate) stall_btb: u64,
    pub(crate) stall_redirect: u64,
    pub(crate) stall_empty_ftq: u64,
    pub(crate) cmal_covered: f64,
    pub(crate) cmal_total: f64,
    pub(crate) late_prefetches: u64,
    pub(crate) uncovered_misses: u64,
    pub(crate) dropped_prefetches: u64,
    /// Demand misses absorbed by the prefetch buffer (re-credited as
    /// hits in the report).
    pub(crate) buffer_hits: u64,
}

/// The machine state shared by both frontend drivers: the memory plane
/// (L1i/MSHR/prefetch-buffer/uncore), the fetch core (BTB/TAGE/RAS/
/// pre-decode), and the run counters. Implements the prefetcher-facing
/// context traits (see [`context`]).
///
/// Drivers manipulate the machine through its plane methods; the struct
/// itself has no public surface beyond what [`FrontendDriver`]
/// implementations inside this module tree need.
pub struct Machine {
    pub(crate) cycle: u64,
    pub(crate) l1i: SetAssocCache,
    pub(crate) pf_buffer: Option<PrefetchBuffer>,
    pub(crate) mshr: MshrFile,
    pub(crate) uncore: Uncore,
    pub(crate) btb: Btb,
    pub(crate) btb_buffer: BtbPrefetchBuffer,
    pub(crate) tage: Tage,
    pub(crate) ras: ReturnAddressStack,
    pub(crate) predecoder: Predecoder,
    pub(crate) code: Arc<dyn CodeMemory + Send + Sync>,
    pub(crate) workload_name: String,
    pub(crate) recent: RecentInstrs,
    pub(crate) prev_demand_block: Option<Block>,
    /// Latency of completed prefetches still resident (CMAL accounting).
    /// FxHash: touched on every prefetch fill/evict/demand hit.
    pub(crate) prefetch_latency: FxHashMap<Block, u64>,
    /// Pre-decode results per static block. Valid only for
    /// self-describing encodings (Fixed4), where a block always decodes
    /// the same way; variable-length decoding depends on the DV-LLC's
    /// current branch footprint and is never cached.
    pub(crate) predecode_cache: FxHashMap<Block, Arc<[BtbEntry]>>,
    /// Reused per-cycle scratch for MSHR completions.
    pub(crate) fill_scratch: Vec<Completion>,
    pub(crate) perfect_l1i: bool,
    pub(crate) stats: RawStats,
    pub(crate) tage_predictions: u64,
    pub(crate) tage_correct: u64,
    /// The telemetry recorder, present only when
    /// [`SimConfig::telemetry`] is set. Every instrumentation site
    /// guards on this option, so the off-mode cost is one never-taken
    /// branch per site.
    pub(crate) telem: Option<Box<RunTelemetry>>,
}

impl Machine {
    pub(crate) fn new(
        cfg: &SimConfig,
        code: Arc<dyn CodeMemory + Send + Sync>,
        workload_name: String,
    ) -> Self {
        Machine {
            cycle: 0,
            l1i: SetAssocCache::new(cfg.l1i),
            pf_buffer: cfg
                .use_prefetch_buffer
                .then(|| PrefetchBuffer::new(cfg.prefetch_buffer_entries)),
            mshr: MshrFile::new(cfg.mshrs),
            uncore: Uncore::new(cfg.uncore.clone()),
            btb: Btb::new(cfg.btb),
            btb_buffer: BtbPrefetchBuffer::paper_sized(),
            tage: Tage::new(TageConfig::default()),
            ras: ReturnAddressStack::new(32),
            predecoder: Predecoder::new(cfg.isa),
            code,
            workload_name,
            recent: RecentInstrs::default(),
            prev_demand_block: None,
            prefetch_latency: FxHashMap::default(),
            predecode_cache: FxHashMap::default(),
            fill_scratch: Vec::new(),
            perfect_l1i: cfg.perfect_l1i,
            stats: RawStats::default(),
            tage_predictions: 0,
            tage_correct: 0,
            telem: cfg
                .telemetry
                .then(|| Box::new(RunTelemetry::new(TelemetryConfig::default()))),
        }
    }
}
