//! The [`FrontendDriver`] trait: everything method-specific about the
//! per-cycle fetch loop, factored out of the (single) loop in
//! [`sim`](super::sim).
//!
//! Each simulated cycle, [`Simulator::step`](super::Simulator) runs:
//!
//! 1. [`begin_cycle`](FrontendDriver::begin_cycle) — drain fills,
//!    advance discovery;
//! 2. per instruction, up to the fetch width:
//!    [`gate`](FrontendDriver::gate) (may the frontend fetch this
//!    instruction now?), then the shared demand access, then
//!    [`after_demand`](FrontendDriver::after_demand) (prefetcher
//!    hooks), then — once the instruction is consumed —
//!    [`consume`](FrontendDriver::consume) (branch handling,
//!    retire-side learning);
//! 3. [`end_cycle`](FrontendDriver::end_cycle) — pump prefetcher
//!    queues — unless a stall ended the cycle early.
//!
//! During a stall the loop calls [`pump`](FrontendDriver::pump) up to
//! 16 times so background engines keep working while fetch waits.

use super::decoupled::DecoupledDriver;
use super::directed::DirectedDriver;
use super::memory::DemandOutcome;
use super::Machine;
use crate::config::SimConfig;
use crate::metrics::SimReport;
use dcfb_frontend::Ftq;
use dcfb_prefetch::DriverPlan;
use dcfb_trace::{Addr, Block, Instr};

/// Why fetch is stalled (the Table I attribution).
#[derive(Clone, Copy, Debug)]
pub enum StallCause {
    /// Waiting on an instruction block below the L1i.
    L1i,
    /// A taken branch missed the BTB: decode-detect bubble.
    Btb,
    /// A squash: misprediction or discovery-engine resteer.
    Redirect,
}

/// What [`FrontendDriver::gate`] decided about fetching the next
/// instruction this cycle.
pub enum Gate {
    /// Fetch may proceed with this instruction.
    Proceed,
    /// Nothing fetchable this cycle (e.g. the FTQ is empty); end the
    /// cycle normally.
    EndCycle,
    /// The driver scheduled a stall (e.g. an FTQ-region mismatch forced
    /// a resteer); end the cycle via the stall path.
    Stall {
        /// Cycle the stall ends.
        until: u64,
        /// Attribution of the stalled cycles.
        cause: StallCause,
    },
}

/// What [`FrontendDriver::consume`] decided after an instruction
/// retired through the frontend.
pub enum Consumed {
    /// Keep fetching within this cycle's group.
    Continue,
    /// End this fetch group (at most one taken branch per group) but
    /// finish the cycle normally.
    EndGroup,
    /// The instruction triggered a stall (misprediction, BTB bubble,
    /// discovery resteer); end the cycle via the stall path.
    Stall {
        /// Cycle the stall ends.
        until: u64,
        /// Attribution of the stalled cycles.
        cause: StallCause,
    },
}

/// One frontend style: the method-specific half of the per-cycle loop.
///
/// Two production implementations exist — the conventional decoupled
/// frontend ([`decoupled`](super::decoupled)) and the BTB-directed
/// frontend ([`directed`](super::directed)) — plus mock drivers in the
/// test suite. The shared loop owns cycle counting, the demand access,
/// retire accounting, and stall bookkeeping; drivers own everything
/// else.
pub trait FrontendDriver {
    /// Start-of-cycle work: drain MSHR fills and advance any discovery
    /// engine. Runs exactly once per simulated cycle.
    fn begin_cycle(&mut self, m: &mut Machine);

    /// Decides whether `instr` may be fetched now (`dispatched`
    /// instructions already went this cycle). The BTB-directed driver
    /// pops and verifies FTQ regions here.
    fn gate(&mut self, m: &mut Machine, cfg: &SimConfig, instr: &Instr, dispatched: u32) -> Gate;

    /// Observes the demand access for `block` (called for every
    /// outcome, including misses and retries). The decoupled driver
    /// feeds its prefetcher's `on_demand` hook from here.
    fn after_demand(&mut self, m: &mut Machine, block: Block, outcome: &DemandOutcome);

    /// Handles a just-consumed instruction: branch prediction, BTB
    /// maintenance, retire-side learning, and redirect/squash
    /// decisions.
    fn consume(&mut self, m: &mut Machine, cfg: &SimConfig, instr: &Instr) -> Consumed;

    /// End-of-cycle work for cycles that did not stall (the decoupled
    /// driver pumps its prefetcher queues once here).
    fn end_cycle(&mut self, m: &mut Machine);

    /// One background pump while fetch is stalled: drain fills and tick
    /// the prefetcher / advance discovery. The loop bounds this to at
    /// most 16 pumps per stall.
    fn pump(&mut self, m: &mut Machine);

    /// Runs `pumps` background pumps for a stall that began at cycle
    /// `resume`, advancing `m.cycle` one cycle per pump. Equivalent to
    /// calling [`pump`](FrontendDriver::pump) in a loop; production
    /// drivers override it to hoist per-pump dispatch (the prefetcher
    /// `Option` check, the virtual call itself) out of the stall loop.
    fn pump_batch(&mut self, m: &mut Machine, resume: u64, pumps: u64) {
        for k in 0..pumps {
            m.cycle = resume + k + 1;
            self.pump(m);
        }
    }

    /// Telemetry sample: (FTQ occupancy if this driver has an FTQ, RLU
    /// lookup/hit counters if its prefetcher exposes them).
    fn sample(&self) -> (Option<u64>, Option<(u64, u64)>);

    /// Called when measurement starts (after warmup) so drivers can
    /// reset engine-local statistics.
    fn on_reset(&mut self) {}

    /// Contributes driver-specific fields (metadata storage, Shotgun's
    /// split-BTB statistics) to the finished report.
    fn finish_report(&self, r: &mut SimReport);
}

/// Builds the [`FrontendDriver`] for `cfg.prefetcher` via the method
/// registry's [`DriverPlan`].
pub fn build_driver(cfg: &SimConfig, start_pc: Addr) -> Box<dyn FrontendDriver> {
    match cfg.prefetcher.build(cfg.isa, start_pc) {
        DriverPlan::Decoupled(pf) => Box::new(DecoupledDriver::new(pf)),
        DriverPlan::Directed(engine) => {
            Box::new(DirectedDriver::new(engine, Ftq::new(cfg.ftq_entries)))
        }
    }
}
