//! The trace-driven simulator: the single per-cycle loop shared by
//! every frontend driver, plus warmup/measurement orchestration, the
//! decoupled-core retire model, stall accounting, and report assembly.

use super::driver::{build_driver, Consumed, FrontendDriver, Gate, StallCause};
use super::memory::DemandOutcome;
use super::{Machine, RawStats};
use crate::config::SimConfig;
use crate::metrics::SimReport;
use dcfb_errors::DcfbError;
use dcfb_telemetry::{
    CycleSample, RunMeta, RunTelemetry, StallKind as TelemetryStall, TelemetryReport,
};
use dcfb_trace::{Addr, CodeMemory, Instr, InstrStream};
use dcfb_workloads::ProgramImage;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Cooperative run control for supervised execution: a cancel token
/// any thread may arm (a wall-clock watchdog, a shutdown signal) plus
/// an optional instruction budget, both checked once per simulated
/// cycle by [`Simulator::run_instrs`]. A simulator with no control
/// attached behaves bit-for-bit as before — the golden digests pin
/// this.
///
/// Cloning shares the cancel token, so the supervisor keeps one handle
/// while the worker runs with the other.
#[derive(Clone, Debug, Default)]
pub struct RunControl {
    cancel: Arc<AtomicBool>,
    budget_instrs: Option<u64>,
    /// Optional shared progress cell: the per-cycle control check
    /// publishes the lifetime retired-instruction count into it, so an
    /// observer (the `dcfb serve` long-poll endpoint) can stream
    /// progress without touching the simulator. `None` costs nothing.
    progress: Option<Arc<AtomicU64>>,
}

impl RunControl {
    /// A control with no budget; only [`RunControl::cancel`] can stop
    /// the run.
    pub fn new() -> Self {
        RunControl::default()
    }

    /// A control that stops the run once `n` instructions have retired
    /// across the whole run (warmup + measurement). This is the
    /// deterministic deadline: the same budget interrupts the same run
    /// at the same instruction on every host.
    pub fn with_budget(n: u64) -> Self {
        RunControl {
            cancel: Arc::new(AtomicBool::new(false)),
            budget_instrs: Some(n),
            progress: None,
        }
    }

    /// Attaches a progress cell and returns the shared handle. Every
    /// subsequent per-cycle check stores the lifetime retired count
    /// into the cell (relaxed), so readers see a recent — not
    /// cycle-exact — value. Publishing progress never changes simulated
    /// behavior; the golden digests pin this.
    pub fn observe_progress(&mut self) -> Arc<AtomicU64> {
        let cell = self
            .progress
            .get_or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Arc::clone(cell)
    }

    /// Arms the cancel token. Safe from any thread; the simulator
    /// observes it at its next per-cycle check.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether the cancel token has been armed.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// The instruction budget, if one was set.
    pub fn budget_instrs(&self) -> Option<u64> {
        self.budget_instrs
    }

    /// Whether a run that has retired `instrs` instructions must stop.
    /// Also publishes `instrs` to the progress cell, when one is
    /// attached — this is the per-cycle hook `dcfb serve` streams from.
    pub fn should_stop(&self, instrs: u64) -> bool {
        if let Some(cell) = &self.progress {
            cell.store(instrs, Ordering::Relaxed);
        }
        self.budget_instrs.is_some_and(|b| instrs >= b) || self.is_cancelled()
    }
}

/// The trace-driven frontend simulator.
pub struct Simulator {
    cfg: SimConfig,
    machine: Machine,
    driver: Box<dyn FrontendDriver>,
    /// One-instruction lookahead from the trace.
    pending: Option<Instr>,
    /// Retire-side clock of the decoupled-core model: each retired
    /// instruction costs `1 / backend_ipc` cycles, but can never retire
    /// before it was fetched. Fetch may run ahead by at most a ROB's
    /// worth of work; the measured execution time is the retire clock.
    retire_clock: f64,
    /// Retire clock at the start of the measurement window.
    retire_mark: f64,
    /// Instructions retired before the current measurement window
    /// (`stats.instrs` resets at the warmup/measure boundary; the
    /// lifetime count `instrs_base + stats.instrs` is what instruction
    /// budgets are charged against).
    instrs_base: u64,
    /// Cooperative cancellation, when a supervisor attached one.
    control: Option<RunControl>,
    /// Whether a [`RunControl`] stopped a `run_instrs` loop early.
    interrupted: bool,
    /// Telemetry sampling stride: the per-cycle sampler runs once
    /// every this many cycles (1 when telemetry is off or unsampled).
    telem_stride: u64,
    /// Cycles since the last telemetry sample; primed to `stride - 1`
    /// at construction and at the warmup/measure boundary so the first
    /// cycle of each window is sampled (keeping the recorder's
    /// cumulative-difference window series exact).
    telem_phase: u64,
}

impl Simulator {
    /// Creates a simulator over a synthetic program `image`, after
    /// [`SimConfig::validate`]-checking `cfg`.
    ///
    /// This is the entry point for callers handling untrusted
    /// configuration (the CLI, sweep scripts); it reports a bad config
    /// as [`DcfbError::Config`] instead of panicking mid-run.
    pub fn try_new(cfg: SimConfig, image: Arc<ProgramImage>) -> Result<Self, DcfbError> {
        cfg.validate()?;
        Ok(Simulator::new(cfg, image))
    }

    /// Fallible variant of [`Simulator::with_code`]: validates `cfg`
    /// first.
    pub fn try_with_code(
        cfg: SimConfig,
        code: Arc<dyn CodeMemory + Send + Sync>,
        start_pc: Addr,
        workload_name: String,
    ) -> Result<Self, DcfbError> {
        cfg.validate()?;
        Ok(Simulator::with_code(cfg, code, start_pc, workload_name))
    }

    /// Creates a simulator over a synthetic program `image`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`]. Use
    /// [`Simulator::try_new`] when the configuration is untrusted.
    pub fn new(cfg: SimConfig, image: Arc<ProgramImage>) -> Self {
        let start_pc = image.functions()[0].entry;
        let name = image.params().name.clone();
        Simulator::with_code(cfg, image, start_pc, name)
    }

    /// Creates a simulator over any [`CodeMemory`] — e.g. a
    /// [`dcfb_trace::RecordedCode`] reconstructed from an external
    /// trace. `start_pc` seeds the BTB-directed discovery engines;
    /// `workload_name` labels the report.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`].
    #[allow(clippy::panic)] // documented contract; try_with_code is the checked path
    pub fn with_code(
        cfg: SimConfig,
        code: Arc<dyn CodeMemory + Send + Sync>,
        start_pc: Addr,
        workload_name: String,
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        let driver = build_driver(&cfg, start_pc);
        Simulator::assemble(cfg, code, workload_name, driver)
    }

    /// Creates a simulator with an explicit [`FrontendDriver`],
    /// bypassing the method registry. This is the seam the driver test
    /// suite uses to exercise the shared per-cycle loop with a mock
    /// driver; `cfg.prefetcher` only labels the report.
    ///
    /// # Errors
    ///
    /// Returns [`DcfbError::Config`] if `cfg` fails
    /// [`SimConfig::validate`].
    pub fn try_with_driver(
        cfg: SimConfig,
        code: Arc<dyn CodeMemory + Send + Sync>,
        workload_name: String,
        driver: Box<dyn FrontendDriver>,
    ) -> Result<Self, DcfbError> {
        cfg.validate()?;
        Ok(Simulator::assemble(cfg, code, workload_name, driver))
    }

    fn assemble(
        cfg: SimConfig,
        code: Arc<dyn CodeMemory + Send + Sync>,
        workload_name: String,
        driver: Box<dyn FrontendDriver>,
    ) -> Self {
        let machine = Machine::new(&cfg, code, workload_name);
        let telem_stride = machine
            .telem
            .as_deref()
            .map_or(1, RunTelemetry::sample_every);
        Simulator {
            cfg,
            machine,
            driver,
            pending: None,
            retire_clock: 0.0,
            retire_mark: 0.0,
            instrs_base: 0,
            control: None,
            interrupted: false,
            telem_stride,
            telem_phase: telem_stride.saturating_sub(1),
        }
    }

    /// Attaches cooperative run control: the per-cycle loop checks
    /// `control` between cycles and stops (setting
    /// [`Simulator::interrupted`]) once its budget is exhausted or its
    /// cancel token armed. Attaching a fresh default control changes
    /// nothing about the run.
    pub fn attach_control(&mut self, control: RunControl) {
        self.control = Some(control);
    }

    /// Whether an attached [`RunControl`] stopped a run early.
    pub fn interrupted(&self) -> bool {
        self.interrupted
    }

    /// Instructions retired over the simulator's lifetime (warmup +
    /// measurement) — the count instruction budgets are charged
    /// against.
    pub fn instrs_retired(&self) -> u64 {
        self.instrs_base + self.machine.stats.instrs
    }

    /// Runs warmup then measurement over `stream`, returning the
    /// measured report.
    pub fn run<S: InstrStream>(&mut self, stream: &mut S) -> SimReport {
        self.run_instrs(stream, self.cfg.warmup_instrs);
        self.reset_measurement();
        self.run_instrs(stream, self.cfg.measure_instrs);
        self.report()
    }

    /// Sustainable retire rate of the backend (server workloads are
    /// data-bound well below the 3-wide width; Table III's 128-entry
    /// ROB is what lets fetch run ahead and hide instruction misses).
    pub(crate) const BACKEND_IPC: f64 = 0.75;
    /// How far fetch may run ahead of retire (ROB capacity in cycles of
    /// backend work).
    const ROB_CYCLES: f64 = 128.0 / Self::BACKEND_IPC;

    #[inline]
    fn note_retired(&mut self) {
        let fetched_at = self.machine.cycle as f64;
        self.retire_clock = (self.retire_clock + 1.0 / Self::BACKEND_IPC).max(fetched_at);
        // ROB backpressure: fetch cannot lead retire by more than the
        // window; stall fetch (backend-bound, not a frontend stall).
        let min_fetch = self.retire_clock - Self::ROB_CYCLES;
        if (self.machine.cycle as f64) < min_fetch {
            let target = min_fetch.ceil() as u64;
            self.machine.stats.cycles += target - self.machine.cycle;
            self.machine.cycle = target;
        }
    }

    /// Builds the per-cycle telemetry sample from current machine and
    /// driver state. Only called when telemetry is on.
    fn cycle_sample(&self) -> CycleSample {
        let (ftq_occ, rlu) = self.driver.sample();
        let m = &self.machine;
        let btb = m.btb.stats();
        CycleSample {
            cycle: m.cycle,
            instrs: m.stats.instrs,
            demand_misses: m.l1i.stats().demand_misses,
            btb_lookups: btb.lookups,
            btb_hits: btb.hits,
            rlu_lookups: rlu.map_or(0, |(l, _)| l),
            rlu_hits: rlu.map_or(0, |(_, h)| h),
            ftq_occupancy: ftq_occ,
            mshr_occupancy: m.mshr.occupancy() as u64,
        }
    }

    /// Per-cycle telemetry sample; with telemetry off this is a single
    /// never-taken branch. With telemetry on, the (comparatively
    /// expensive) machine/driver state sample is built only once per
    /// sampling stride; the recorder weights each observation by the
    /// stride so occupancy statistics still estimate per-cycle totals.
    fn telemetry_tick(&mut self) {
        if self.machine.telem.is_none() {
            return;
        }
        self.telem_phase += 1;
        if self.telem_phase < self.telem_stride {
            return;
        }
        self.telem_phase = 0;
        let s = self.cycle_sample();
        if let Some(t) = self.machine.telem.as_deref_mut() {
            t.tick(&s);
        }
    }

    /// Detaches the telemetry recorder (if the run was configured with
    /// [`SimConfig::telemetry`]) and finalizes it into an exportable
    /// report: metrics document, time series, and trace events. After
    /// this call the simulator records no further telemetry.
    pub fn take_telemetry(&mut self) -> Option<TelemetryReport> {
        let final_sample = self.cycle_sample();
        let telem = self.machine.telem.take()?;
        let r = self.report();
        let meta = RunMeta {
            workload: r.workload,
            method: r.method,
            cycles: r.cycles,
            instrs: r.instrs,
        };
        Some(telem.finalize(&meta, &final_sample))
    }

    fn reset_measurement(&mut self) {
        self.retire_clock = self.retire_clock.max(self.machine.cycle as f64);
        self.retire_mark = self.retire_clock;
        if let Some(t) = self.machine.telem.as_deref_mut() {
            t.reset();
        }
        // Re-prime the sampler so the first measured cycle is sampled:
        // the recorder's first post-reset tick re-snaps its cumulative
        // counters at the measurement-window start.
        self.telem_phase = self.telem_stride.saturating_sub(1);
        self.instrs_base += self.machine.stats.instrs;
        self.machine.stats = RawStats::default();
        self.machine.l1i.reset_stats();
        self.machine.uncore.reset_stats();
        self.machine.btb.reset_stats();
        self.machine.tage_predictions = 0;
        self.machine.tage_correct = 0;
        self.driver.on_reset();
    }

    /// Runs until `limit` further instructions retire (or the stream
    /// ends, or an attached [`RunControl`] stops the run).
    pub fn run_instrs<S: InstrStream>(&mut self, stream: &mut S, limit: u64) {
        let target = self.machine.stats.instrs + limit;
        while self.machine.stats.instrs < target {
            // Cooperative cancellation: one per-cycle check against the
            // instruction budget / cancel token. With no control
            // attached this is a single never-taken branch.
            if let Some(ctl) = &self.control {
                if ctl.should_stop(self.instrs_base + self.machine.stats.instrs) {
                    self.interrupted = true;
                    break;
                }
            }
            if self.pending.is_none() {
                self.pending = stream.next_instr();
                if self.pending.is_none() {
                    break;
                }
            }
            self.step(stream, target);
        }
    }

    /// Builds the measured report.
    pub fn report(&self) -> SimReport {
        let m = &self.machine;
        // Execution time is the retire clock (decoupled-core model);
        // fall back to fetch cycles if nothing retired.
        let retire_cycles = (self.retire_clock.max(m.cycle as f64) - self.retire_mark) as u64;
        // Re-credit prefetch-buffer absorptions as hits.
        let mut l1i_stats = m.l1i.stats();
        l1i_stats.demand_misses -= m.stats.buffer_hits.min(l1i_stats.demand_misses);
        l1i_stats.demand_hits += m.stats.buffer_hits;
        let mut r = SimReport {
            method: self.cfg.prefetcher.name().into_owned(),
            workload: m.workload_name.clone(),
            cycles: retire_cycles.max(1),
            instrs: m.stats.instrs,
            l1i: l1i_stats,
            seq_misses: m.stats.seq_misses,
            disc_misses: m.stats.disc_misses,
            stall_l1i: m.stats.stall_l1i,
            stall_btb: m.stats.stall_btb,
            stall_redirect: m.stats.stall_redirect,
            stall_empty_ftq: m.stats.stall_empty_ftq,
            cmal_covered: m.stats.cmal_covered,
            cmal_total: m.stats.cmal_total,
            late_prefetches: m.stats.late_prefetches,
            uncovered_misses: m.stats.uncovered_misses,
            cache_lookups: l1i_stats.demand_accesses + l1i_stats.probes,
            external_requests: m.uncore.stats().requests,
            uncore: m.uncore.stats(),
            btb: m.btb.stats(),
            shotgun_btb: None,
            shotgun: None,
            storage_bits: 0,
            branch_accuracy: if m.tage_predictions == 0 {
                0.0
            } else {
                m.tage_correct as f64 / m.tage_predictions as f64
            },
            dropped_prefetches: m.stats.dropped_prefetches,
            buffer_hits: m.stats.buffer_hits,
        };
        self.driver.finish_report(&mut r);
        r
    }

    // ---- the shared per-cycle loop ----

    /// One simulated cycle: begin-cycle driver work, then fetch up to
    /// `fetch_width` instructions gated and post-processed by the
    /// driver, then end-of-cycle driver work (unless a stall ended the
    /// cycle early).
    fn step<S: InstrStream>(&mut self, stream: &mut S, target: u64) {
        self.machine.cycle += 1;
        self.machine.stats.cycles += 1;
        self.telemetry_tick();
        self.driver.begin_cycle(&mut self.machine);
        let mut dispatched = 0u32;
        while dispatched < self.cfg.fetch_width && self.machine.stats.instrs < target {
            if self.pending.is_none() {
                self.pending = stream.next_instr();
            }
            let Some(instr) = self.pending else { break };
            match self
                .driver
                .gate(&mut self.machine, &self.cfg, &instr, dispatched)
            {
                Gate::Proceed => {}
                Gate::EndCycle => break,
                Gate::Stall { until, cause } => {
                    self.stall(until, cause);
                    return;
                }
            }
            let block = instr.block();
            // Block transition -> demand access.
            if self.machine.prev_demand_block != Some(block) {
                let outcome = self.machine.demand(block);
                self.driver.after_demand(&mut self.machine, block, &outcome);
                match outcome {
                    DemandOutcome::Hit { .. } => {}
                    DemandOutcome::Miss {
                        ready_at,
                        had_prefetch,
                    } => {
                        if had_prefetch {
                            self.machine.account_late_prefetch(block, ready_at);
                        }
                        self.stall(ready_at, StallCause::L1i);
                        return;
                    }
                    DemandOutcome::Retry => {
                        self.stall(self.machine.cycle + 1, StallCause::L1i);
                        return;
                    }
                }
                self.machine.prev_demand_block = Some(block);
            }
            // Consume the instruction.
            self.pending = None;
            self.machine.stats.instrs += 1;
            self.note_retired();
            dispatched += 1;
            self.machine.recent.push(instr);
            match self.driver.consume(&mut self.machine, &self.cfg, &instr) {
                Consumed::Continue => {}
                Consumed::EndGroup => break,
                Consumed::Stall { until, cause } => {
                    self.stall(until, cause);
                    return;
                }
            }
        }
        self.driver.end_cycle(&mut self.machine);
    }

    /// Advances to `until`, attributing stall cycles and pumping the
    /// prefetcher/discovery engines while waiting.
    fn stall(&mut self, until: u64, cause: StallCause) {
        let from = self.machine.cycle;
        if until <= from {
            return;
        }
        let span = until - from;
        if let Some(t) = self.machine.telem.as_deref_mut() {
            let kind = match cause {
                StallCause::L1i => TelemetryStall::L1i,
                StallCause::Btb => TelemetryStall::Btb,
                StallCause::Redirect => TelemetryStall::Redirect,
            };
            t.stall(kind, from, until);
        }
        match cause {
            StallCause::L1i => self.machine.stats.stall_l1i += span,
            // Squashes (undetected taken branches, mispredictions)
            // restart the pipeline: the backend refills for ~penalty
            // cycles and retires nothing, so the cost is visible at the
            // retire clock no matter how much fetch-ahead was buffered.
            StallCause::Btb => {
                self.machine.stats.stall_btb += span;
                self.retire_clock += span as f64;
            }
            StallCause::Redirect => {
                self.machine.stats.stall_redirect += span;
                self.retire_clock += span as f64;
            }
        }
        self.machine.stats.cycles += span;
        // Pump background engines a bounded number of times during the
        // stall, then jump the clock.
        let resume = self.machine.cycle;
        let pumps = span.min(16);
        self.driver.pump_batch(&mut self.machine, resume, pumps);
        self.machine.cycle = until;
    }
}
