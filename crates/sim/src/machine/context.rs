//! The [`Machine`]'s implementations of the prefetcher-facing context
//! traits: [`PrefetchContext`] for the L1i-event-driven prefetchers and
//! [`RunaheadContext`] for the BTB-directed discovery engines.

use super::Machine;
use dcfb_frontend::BtbEntry;
use dcfb_prefetch::{PrefetchContext, RunaheadContext};
use dcfb_telemetry::PfSource;
use dcfb_trace::{Addr, Block};
use std::sync::Arc;

impl PrefetchContext for Machine {
    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn l1i_lookup(&mut self, block: Block) -> bool {
        self.l1i.probe(block)
            || self.mshr.contains(block)
            || self.pf_buffer.as_ref().is_some_and(|b| b.contains(block))
    }

    fn issue_prefetch(&mut self, block: Block, source: PfSource, extra_delay: u64) {
        self.request_below(block, source, extra_delay);
    }

    fn predecode(&mut self, block: Block) -> Arc<[BtbEntry]> {
        self.predecode_block(block)
    }

    fn decode_branch_at(&mut self, block: Block, byte_offset: u32) -> Option<BtbEntry> {
        let code = Arc::clone(&self.code);
        let entry = self.predecoder.decode_at(&code, block, byte_offset)?;
        Some(entry)
    }

    fn btb_target(&mut self, pc: Addr) -> Option<Addr> {
        if self.btb.contains(pc) {
            self.btb.lookup(pc).map(|e| e.target)
        } else {
            None
        }
    }

    fn fill_btb_buffer(&mut self, block: Block, branches: Arc<[BtbEntry]>) {
        if branches.is_empty() {
            return; // the buffer ignores empty sets; don't count a fill
        }
        let displaced = self.btb_buffer.fill(block, branches);
        if let Some(t) = self.telem.as_deref_mut() {
            t.btbpf_fill(block, displaced);
        }
    }
}

impl RunaheadContext for Machine {
    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn predict_cond(&mut self, pc: Addr) -> bool {
        self.tage.predict(pc)
    }

    fn ras_push(&mut self, ret: Addr) {
        self.ras.push(ret);
    }

    fn ras_pop(&mut self) -> Option<Addr> {
        self.ras.pop()
    }

    fn l1i_lookup(&mut self, block: Block) -> bool {
        PrefetchContext::l1i_lookup(self, block)
    }

    fn issue_prefetch(&mut self, block: Block, source: PfSource, extra_delay: u64) {
        PrefetchContext::issue_prefetch(self, block, source, extra_delay);
    }

    fn block_present(&self, block: Block) -> bool {
        self.l1i.contains(block)
    }

    fn predecode(&mut self, block: Block) -> Arc<[BtbEntry]> {
        self.predecode_block(block)
    }
}
