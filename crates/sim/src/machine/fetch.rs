//! The fetch core: pre-decode (with the Fixed4 per-block cache and the
//! DV-LLC footprint path), TAGE accuracy bookkeeping, and the bounded
//! wrong-path traffic model.

use super::Machine;
use dcfb_frontend::{BranchClass, BtbEntry};
use dcfb_trace::{block_of, Block, Instr, InstrKind};
use std::sync::Arc;

impl Machine {
    /// Pre-decodes `block`, supplying a branch footprint from the
    /// DV-LLC in variable-length mode. Fixed-width decodes are served
    /// from a per-block cache: the program image is static, so a block
    /// only ever decodes one way, and hot blocks are re-decoded by the
    /// prefetchers thousands of times per run.
    pub(crate) fn predecode_block(&mut self, block: Block) -> Arc<[BtbEntry]> {
        if self.predecoder.isa().self_describing_boundaries() {
            if let Some(cached) = self.predecode_cache.get(&block) {
                return Arc::clone(cached);
            }
            let code = Arc::clone(&self.code);
            let branches: Arc<[BtbEntry]> =
                self.predecoder.decode(&code, block, None).branches.into();
            self.predecode_cache.insert(block, Arc::clone(&branches));
            branches
        } else {
            let code = Arc::clone(&self.code);
            let bf = self.uncore.dvllc_mut().and_then(|dv| dv.bf_lookup(block));
            self.predecoder
                .decode(&code, block, bf.as_ref())
                .branches
                .into()
        }
    }

    pub(crate) fn note_tage(&mut self, correct: bool) {
        self.tage_predictions += 1;
        self.tage_correct += u64::from(correct);
    }

    /// Bounded wrong-path fetches past a mispredicted branch: they
    /// consume external bandwidth and NoC/LLC capacity but are squashed
    /// before polluting the L1i.
    pub(crate) fn wrong_path_traffic(&mut self, i: &Instr, wrong_path_blocks: u32) {
        let wrong_start = if i.redirects() {
            i.fallthrough() // predicted not-taken path
        } else {
            i.target // predicted taken path
        };
        let base = block_of(wrong_start);
        for k in 0..u64::from(wrong_path_blocks) {
            let b = base + k;
            if !self.l1i.contains(b) && !self.mshr.contains(b) {
                let _ = self.uncore.access(self.cycle, b, false, true);
            }
        }
    }
}

pub(crate) fn class_of(kind: InstrKind) -> BranchClass {
    match kind {
        InstrKind::CondBranch { .. } => BranchClass::Conditional,
        InstrKind::Jump => BranchClass::Jump,
        InstrKind::Call => BranchClass::Call,
        InstrKind::IndirectJump => BranchClass::IndirectJump,
        InstrKind::IndirectCall => BranchClass::IndirectCall,
        InstrKind::Return => BranchClass::Return,
        InstrKind::Other => unreachable!("non-branch"),
    }
}
