//! The BTB-directed frontend driver: a discovery engine (Boomerang or
//! Shotgun) runs ahead of fetch filling the FTQ; fetch consumes FTQ
//! regions and verifies them against the trace. FTQ starvation is the
//! §III pathology — when discovery cannot recover on its own, the core
//! falls back to fetching directly, one block at a time, until the
//! blocking branch resolves.

use super::driver::{Consumed, FrontendDriver, Gate, StallCause};
use super::memory::DemandOutcome;
use super::Machine;
use crate::config::SimConfig;
use crate::metrics::SimReport;
use dcfb_frontend::{Ftq, FtqEntry};
use dcfb_prefetch::DiscoveryEngine;
use dcfb_telemetry::Ctr;
use dcfb_trace::{Addr, Block, Instr, InstrKind};

/// The BTB-directed frontend (Boomerang, Shotgun).
pub(crate) struct DirectedDriver {
    engine: Box<dyn DiscoveryEngine>,
    ftq: Ftq,
    /// Current FTQ region being fetched.
    region: Option<FtqEntry>,
    /// Consecutive empty-FTQ cycles (drives the core-side recovery
    /// redirect when the discovery engine cannot make progress).
    empty_streak: u64,
    /// Architectural return-address stack: used to repair the
    /// speculative RAS after a squash.
    arch_ras: Vec<Addr>,
    /// Direct-fetch fallback engaged for the rest of this cycle (the
    /// discovery engine is wedged; reset every `begin_cycle`).
    fallback: bool,
}

impl DirectedDriver {
    pub(crate) fn new(engine: Box<dyn DiscoveryEngine>, ftq: Ftq) -> Self {
        DirectedDriver {
            engine,
            ftq,
            region: None,
            empty_streak: 0,
            arch_ras: Vec::with_capacity(32),
            fallback: false,
        }
    }

    /// Squashes discovery: restart at `pc` and repair the speculative
    /// RAS from architectural state.
    fn redirect(&mut self, m: &mut Machine, pc: Addr) {
        self.region = None;
        self.engine.redirect(pc, &mut self.ftq);
        m.ras.clear();
        for &ret in &self.arch_ras {
            m.ras.push(ret);
        }
    }

    /// Tracks calls/returns on the architectural RAS (capacity 32,
    /// oldest entry dropped on overflow).
    fn arch_ras_note(&mut self, instr: &Instr) -> Option<Addr> {
        if instr.kind.is_call() {
            if self.arch_ras.len() == 32 {
                self.arch_ras.remove(0);
            }
            self.arch_ras.push(instr.fallthrough());
            None
        } else if matches!(instr.kind, InstrKind::Return) {
            self.arch_ras.pop()
        } else {
            None
        }
    }
}

impl FrontendDriver for DirectedDriver {
    fn begin_cycle(&mut self, m: &mut Machine) {
        self.fallback = false;
        m.drain_fills(None);
        // Discovery runs every cycle.
        self.engine.advance(m, &mut self.ftq);
    }

    fn gate(&mut self, m: &mut Machine, cfg: &SimConfig, instr: &Instr, dispatched: u32) -> Gate {
        if self.fallback || self.region.is_some() {
            return Gate::Proceed;
        }
        match self.ftq.pop() {
            Some(r) => {
                self.empty_streak = 0;
                if r.start != instr.pc {
                    // The discovery engine went down the wrong path:
                    // redirect it to reality.
                    self.redirect(m, instr.pc);
                    return Gate::Stall {
                        until: m.cycle + cfg.mispredict_penalty,
                        cause: StallCause::Redirect,
                    };
                }
                self.region = Some(r);
                Gate::Proceed
            }
            None => {
                // Empty FTQ: the §III pathology. When the discovery
                // engine cannot recover on its own — parked on an
                // unknown indirect target, or its reactive-fill request
                // was dropped — the core makes "forward progress one
                // block at a time": it fetches directly until the
                // blocking branch resolves at execute, then redirects
                // discovery to the resolved target.
                self.empty_streak += 1;
                let parked = self.engine.is_parked();
                let lost_fill = self
                    .engine
                    .stalled_block()
                    .is_some_and(|blk| !m.mshr.contains(blk) && !m.l1i.contains(blk));
                if parked || lost_fill || self.empty_streak > 64 {
                    self.empty_streak = 0;
                    self.fallback = true;
                    Gate::Proceed
                } else {
                    if dispatched == 0 {
                        m.stats.stall_empty_ftq += 1;
                        if let Some(t) = m.telem.as_deref_mut() {
                            t.add(Ctr::StallEmptyFtqCycles, 1);
                        }
                    }
                    Gate::EndCycle
                }
            }
        }
    }

    fn after_demand(&mut self, _m: &mut Machine, _block: Block, _outcome: &DemandOutcome) {}

    fn consume(&mut self, m: &mut Machine, cfg: &SimConfig, instr: &Instr) -> Consumed {
        if self.fallback {
            // Direct-fetch fallback: train predictors and retire-side
            // learning, then restart discovery at the first resolved
            // control transfer.
            if let InstrKind::CondBranch { taken } = instr.kind {
                let pred = m.tage.predict(instr.pc);
                m.tage.update(instr.pc, taken);
                m.note_tage(pred == taken);
            }
            let _ = self.arch_ras_note(instr);
            self.engine.on_retire(instr);
            if instr.redirects() {
                // The blocking branch resolved at execute: restart
                // discovery at the resolved target and charge the
                // resolution bubble.
                self.redirect(m, instr.next_pc());
                return Consumed::Stall {
                    until: m.cycle + cfg.btb_miss_penalty,
                    cause: StallCause::Btb,
                };
            }
            return Consumed::Continue;
        }
        // Retire-side learning + direction training. `would_predict`
        // captures what a history-current predictor says at consume
        // time — the accuracy a real speculatively-updated BPU
        // achieves, which our history-stale discovery pass cannot.
        let mut would_predict_correctly = false;
        if let InstrKind::CondBranch { taken } = instr.kind {
            let pred = m.tage.predict(instr.pc);
            m.tage.update(instr.pc, taken);
            m.note_tage(pred == taken);
            would_predict_correctly = pred == taken;
        }
        // Architectural RAS (for speculative-RAS repair on squash).
        if matches!(instr.kind, InstrKind::Return) {
            let expected = self.arch_ras_note(instr);
            would_predict_correctly = expected == Some(instr.target);
        } else {
            let _ = self.arch_ras_note(instr);
        }
        self.engine.on_retire(instr);
        // Region end?
        if let Some(region) = self.region {
            if instr.pc >= region.end {
                self.region = None;
                let actual_next = instr.next_pc();
                if actual_next != region.next {
                    self.redirect(m, actual_next);
                    // Genuine mispredicts (a history-current BPU would
                    // also have been wrong) pay the full squash; mere
                    // discovery drift — the runahead pass predicting
                    // with stale history or an unrepaired RAS — is a
                    // cheap FTQ resteer, as in hardware where the BPU
                    // checkpoints history and the FTQ entry carries the
                    // correct prediction.
                    let penalty = if would_predict_correctly {
                        2
                    } else {
                        m.wrong_path_traffic(instr, cfg.wrong_path_blocks);
                        cfg.mispredict_penalty
                    };
                    return Consumed::Stall {
                        until: m.cycle + penalty,
                        cause: StallCause::Redirect,
                    };
                }
                if instr.redirects() {
                    return Consumed::EndGroup; // one taken branch per cycle
                }
            }
        }
        Consumed::Continue
    }

    fn end_cycle(&mut self, _m: &mut Machine) {}

    fn pump(&mut self, m: &mut Machine) {
        m.drain_fills(None);
        self.engine.advance(m, &mut self.ftq);
    }

    fn pump_batch(&mut self, m: &mut Machine, resume: u64, pumps: u64) {
        // Same work as `pump` in a loop, dispatched once per stall
        // instead of once per pump.
        for k in 0..pumps {
            m.cycle = resume + k + 1;
            m.drain_fills(None);
            self.engine.advance(m, &mut self.ftq);
        }
    }

    fn sample(&self) -> (Option<u64>, Option<(u64, u64)>) {
        (Some(self.ftq.len() as u64), None)
    }

    fn on_reset(&mut self) {
        self.engine.reset_btb_stats();
    }

    fn finish_report(&self, r: &mut SimReport) {
        r.storage_bits = self.engine.storage_bits();
        if let Some((btb, stats)) = self.engine.shotgun_split_stats() {
            r.shotgun_btb = Some(btb);
            r.shotgun = Some(stats);
        }
    }
}
