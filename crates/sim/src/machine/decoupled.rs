//! The conventional decoupled frontend driver: fetch follows the
//! trace, taken branches need a BTB hit to avoid a decode-detect
//! bubble, and an optional [`InstrPrefetcher`] observes L1i events.

use super::driver::{Consumed, FrontendDriver, Gate, StallCause};
use super::fetch::class_of;
use super::memory::DemandOutcome;
use super::Machine;
use crate::config::SimConfig;
use crate::metrics::SimReport;
use dcfb_frontend::BtbEntry;
use dcfb_prefetch::InstrPrefetcher;
use dcfb_trace::{block_of, Block, Instr, InstrKind};

/// The conventional decoupled frontend (baseline, NL/NXL, SN4L, Dis,
/// SN4L+Dis(+BTB), conventional discontinuity, Confluence, and registry
/// compositions of them).
pub(crate) struct DecoupledDriver {
    pf: Option<Box<dyn InstrPrefetcher>>,
}

impl DecoupledDriver {
    pub(crate) fn new(pf: Option<Box<dyn InstrPrefetcher>>) -> Self {
        DecoupledDriver { pf }
    }

    /// Handles a branch at fetch. Returns the loop decision: a stall
    /// (misprediction or BTB bubble), the end of the fetch group (taken
    /// branch), or keep going.
    fn handle_branch(&mut self, m: &mut Machine, cfg: &SimConfig, i: &Instr) -> Consumed {
        let taken = i.redirects();
        // Direction prediction for conditionals.
        let mut mispredicted = false;
        if let InstrKind::CondBranch { taken: actual } = i.kind {
            let pred = m.tage.predict(i.pc);
            m.tage.update(i.pc, actual);
            m.note_tage(pred == actual);
            if pred != actual {
                mispredicted = true;
            }
        }
        // Target prediction / BTB.
        let mut btb_bubble = false;
        if taken && !cfg.perfect_btb {
            let hit = m.btb.lookup(i.pc);
            match hit {
                Some(e) => match i.kind {
                    InstrKind::Return => {
                        let pred = m.ras.pop();
                        if pred != Some(i.target) {
                            mispredicted = true;
                        }
                    }
                    InstrKind::IndirectCall | InstrKind::IndirectJump if e.target != i.target => {
                        mispredicted = true;
                        m.btb.insert(BtbEntry {
                            pc: i.pc,
                            target: i.target,
                            class: e.class,
                        });
                    }
                    _ => {}
                },
                None => {
                    // BTB miss on a taken branch: check the BTB prefetch
                    // buffer first (§V-C), otherwise pay the
                    // decode-detect bubble.
                    if let Some(branches) = m.btb_buffer.take_for(i.pc) {
                        if let Some(t) = m.telem.as_deref_mut() {
                            t.btbpf_hit(block_of(i.pc));
                        }
                        for b in branches.iter() {
                            let class = b.class;
                            let target = if b.target != 0 { b.target } else { i.target };
                            m.btb.insert(BtbEntry {
                                pc: b.pc,
                                target,
                                class,
                            });
                        }
                        if matches!(i.kind, InstrKind::Return) {
                            let _ = m.ras.pop();
                        }
                    } else {
                        btb_bubble = true;
                        if let Some(t) = m.telem.as_deref_mut() {
                            t.btbpf_demand_miss(block_of(i.pc));
                        }
                        m.btb.insert(BtbEntry {
                            pc: i.pc,
                            target: i.target,
                            class: class_of(i.kind),
                        });
                        if matches!(i.kind, InstrKind::Return) {
                            let _ = m.ras.pop();
                        }
                    }
                }
            }
        } else if taken && cfg.perfect_btb && matches!(i.kind, InstrKind::Return) {
            let _ = m.ras.pop();
        }
        if i.kind.is_call() {
            m.ras.push(i.fallthrough());
        }
        if mispredicted {
            m.wrong_path_traffic(i, cfg.wrong_path_blocks);
            return Consumed::Stall {
                until: m.cycle + cfg.mispredict_penalty,
                cause: StallCause::Redirect,
            };
        }
        if btb_bubble {
            return Consumed::Stall {
                until: m.cycle + cfg.btb_miss_penalty,
                cause: StallCause::Btb,
            };
        }
        if taken {
            // At most one taken branch per fetch group.
            return Consumed::EndGroup;
        }
        Consumed::Continue
    }
}

impl FrontendDriver for DecoupledDriver {
    fn begin_cycle(&mut self, m: &mut Machine) {
        m.drain_fills(self.pf.as_deref_mut());
    }

    fn gate(&mut self, _m: &mut Machine, _cfg: &SimConfig, _instr: &Instr, _d: u32) -> Gate {
        Gate::Proceed
    }

    fn after_demand(&mut self, m: &mut Machine, block: Block, outcome: &DemandOutcome) {
        let (hit, was_pref) = match outcome {
            DemandOutcome::Hit { was_prefetched } => (true, *was_prefetched),
            _ => (false, false),
        };
        if let Some(pf) = &mut self.pf {
            let recent = m.recent;
            pf.on_demand(m, block, hit, was_pref, &recent);
        }
    }

    fn consume(&mut self, m: &mut Machine, cfg: &SimConfig, instr: &Instr) -> Consumed {
        if instr.kind.is_branch() {
            self.handle_branch(m, cfg, instr)
        } else {
            Consumed::Continue
        }
    }

    fn end_cycle(&mut self, m: &mut Machine) {
        if let Some(pf) = &mut self.pf {
            pf.tick(m);
        }
    }

    fn pump(&mut self, m: &mut Machine) {
        m.drain_fills(self.pf.as_deref_mut());
        if let Some(pf) = &mut self.pf {
            pf.tick(m);
        }
    }

    fn pump_batch(&mut self, m: &mut Machine, resume: u64, pumps: u64) {
        // Same work as `pump` in a loop, with the prefetcher `Option`
        // resolved once for the whole stall instead of twice per pump.
        if let Some(pf) = self.pf.as_deref_mut() {
            for k in 0..pumps {
                m.cycle = resume + k + 1;
                m.drain_fills(Some(&mut *pf));
                pf.tick(m);
            }
        } else {
            for k in 0..pumps {
                m.cycle = resume + k + 1;
                m.drain_fills(None);
            }
        }
    }

    fn sample(&self) -> (Option<u64>, Option<(u64, u64)>) {
        (None, self.pf.as_ref().and_then(|p| p.rlu_counters()))
    }

    fn finish_report(&self, r: &mut SimReport) {
        if let Some(pf) = &self.pf {
            r.storage_bits = pf.storage_bits();
        }
    }
}
