//! Simulator tests: end-to-end method runs ported from the original
//! monolithic engine, plus mock-driver tests that exercise the shared
//! per-cycle loop in isolation.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use super::{Consumed, DemandOutcome, FrontendDriver, Gate, Machine, Simulator, StallCause};
use crate::config::SimConfig;
use crate::metrics::SimReport;
use dcfb_trace::{Block, Instr, IsaMode};
use dcfb_workloads::{ProgramImage, WorkloadParams};
use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

fn tiny_image() -> Arc<ProgramImage> {
    // Large enough that the dynamic hot set thrashes the shrunken
    // test L1i (the paper's phenomena need instruction-bound
    // workloads).
    let params = WorkloadParams {
        functions: 500,
        root_functions: 32,
        zipf_s: 0.9,
        ..WorkloadParams::default()
    };
    Arc::new(ProgramImage::build(&params, 3, IsaMode::Fixed4))
}

fn quick_cfg(method: &str) -> SimConfig {
    let mut cfg = SimConfig::for_method(method).expect("method");
    cfg.warmup_instrs = 60_000;
    cfg.measure_instrs = 120_000;
    // The tiny test image must still thrash the L1i for the paper's
    // phenomena to appear, so shrink the cache instead of growing
    // the image (keeps tests fast).
    cfg.l1i = dcfb_cache::CacheConfig::from_kib(8, 8);
    cfg
}

fn run(method: &str) -> SimReport {
    let image = tiny_image();
    let mut sim = Simulator::new(quick_cfg(method), Arc::clone(&image));
    let mut walker = dcfb_workloads::Walker::new(image, 5);
    sim.run(&mut walker)
}

#[test]
fn baseline_runs_and_reports() {
    let r = run("Baseline");
    assert_eq!(r.instrs, 120_000);
    assert!(r.cycles > 0);
    let ipc = r.ipc();
    assert!(ipc > 0.1 && ipc <= 3.0, "ipc {ipc}");
    assert!(r.l1i.demand_misses > 0, "workload must thrash the L1i");
    assert!(r.frontend_stalls() > 0);
}

#[test]
fn nl_reduces_misses_vs_baseline() {
    let base = run("Baseline");
    let nl = run("NL");
    assert!(
        nl.miss_coverage_over(&base) > 0.2,
        "NL coverage {}",
        nl.miss_coverage_over(&base)
    );
    assert!(nl.ipc() > base.ipc(), "NL should speed up");
}

#[test]
fn n8l_uses_much_more_bandwidth() {
    let base = run("Baseline");
    let n8 = run("N8L");
    assert!(
        n8.bandwidth_over(&base) > 2.0,
        "N8L bandwidth {}",
        n8.bandwidth_over(&base)
    );
}

#[test]
fn sn4l_issues_less_traffic_than_n4l() {
    let n4 = run("N4L");
    let sn4 = run("SN4L");
    let base = run("Baseline");
    assert!(
        sn4.bandwidth_over(&base) < n4.bandwidth_over(&base),
        "SN4L {} vs N4L {}",
        sn4.bandwidth_over(&base),
        n4.bandwidth_over(&base)
    );
}

#[test]
fn full_system_beats_baseline() {
    let base = run("Baseline");
    let full = run("SN4L+Dis+BTB");
    assert!(
        full.speedup_over(&base) > 1.02,
        "speedup {}",
        full.speedup_over(&base)
    );
    assert!(
        full.fscr_over(&base) > 0.1,
        "fscr {}",
        full.fscr_over(&base)
    );
}

#[test]
fn directed_frontends_run() {
    for m in ["Boomerang", "Shotgun"] {
        let r = run(m);
        assert_eq!(r.instrs, 120_000, "{m}");
        assert!(r.ipc() > 0.1, "{m} ipc {}", r.ipc());
    }
}

#[test]
fn shotgun_reports_split_btb_stats() {
    let r = run("Shotgun");
    let s = r.shotgun_btb.expect("shotgun split-BTB stats");
    assert!(s.u_lookups > 0);
    let e = r.shotgun.expect("shotgun engine stats");
    assert!(e.dyn_uncond > 0, "no unconditional branches retired");
    let fmr = e.footprint_miss_ratio();
    assert!((0.0..=1.0).contains(&fmr), "fmr {fmr}");
}

#[test]
fn perfect_l1i_removes_l1i_stalls() {
    let image = tiny_image();
    let mut cfg = quick_cfg("Baseline");
    cfg.perfect_l1i = true;
    let mut sim = Simulator::new(cfg, Arc::clone(&image));
    let mut walker = dcfb_workloads::Walker::new(image, 5);
    let r = sim.run(&mut walker);
    assert_eq!(r.stall_l1i, 0);
    assert_eq!(r.l1i.demand_misses, 0);
    let base = run("Baseline");
    assert!(r.ipc() > base.ipc());
}

#[test]
fn perfect_btb_removes_btb_stalls() {
    let image = tiny_image();
    let mut cfg = quick_cfg("Baseline");
    cfg.perfect_l1i = true;
    cfg.perfect_btb = true;
    let mut sim = Simulator::new(cfg, Arc::clone(&image));
    let mut walker = dcfb_workloads::Walker::new(image, 5);
    let r = sim.run(&mut walker);
    assert_eq!(r.stall_btb, 0);
    assert_eq!(r.frontend_stalls(), 0);
}

#[test]
fn deterministic_given_seed() {
    let a = run("SN4L+Dis+BTB");
    let b = run("SN4L+Dis+BTB");
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.l1i.demand_misses, b.l1i.demand_misses);
    assert_eq!(a.external_requests, b.external_requests);
}

#[test]
fn confluence_covers_misses() {
    let base = run("Baseline");
    let conf = run("Confluence");
    assert!(
        conf.miss_coverage_over(&base) > 0.3,
        "coverage {}",
        conf.miss_coverage_over(&base)
    );
}

#[test]
fn prefetch_buffer_mode_absorbs_misses() {
    // The Fig. 5 methodology: NXL prefetches land in a 64-entry
    // buffer instead of the cache; demand misses that hit the
    // buffer are re-credited as hits.
    let image = tiny_image();
    let mut cfg = quick_cfg("N4L");
    cfg.use_prefetch_buffer = true;
    let mut sim = Simulator::new(cfg, Arc::clone(&image));
    let mut walker = dcfb_workloads::Walker::new(Arc::clone(&image), 5);
    let buffered = sim.run(&mut walker);
    let direct = run("N4L");
    // Both configurations must cover misses; the buffered one keeps
    // useless prefetches out of the cache entirely.
    assert!(buffered.l1i_mpki() < run("Baseline").l1i_mpki());
    assert_eq!(direct.method, "N4L");
    assert!(buffered.l1i.useless_prefetch_evictions <= direct.l1i.useless_prefetch_evictions);
}

#[test]
fn variable_isa_simulation_runs_with_dvllc() {
    let params = WorkloadParams {
        functions: 300,
        root_functions: 12,
        ..WorkloadParams::default()
    };
    let image = Arc::new(ProgramImage::build(&params, 9, IsaMode::Variable));
    let mut cfg = quick_cfg("SN4L+Dis+BTB");
    cfg.isa = IsaMode::Variable;
    cfg.uncore.dvllc = true;
    let mut sim = Simulator::new(cfg, Arc::clone(&image));
    let mut walker = dcfb_workloads::Walker::new(image, 5);
    let r = sim.run(&mut walker);
    assert_eq!(r.instrs, 120_000);
    assert!(r.ipc() > 0.1);
}

#[test]
fn exhausted_stream_ends_the_run() {
    let image = tiny_image();
    let mut cfg = quick_cfg("Baseline");
    cfg.warmup_instrs = 1_000;
    cfg.measure_instrs = u64::MAX; // more than the trace offers
    let mut walker = dcfb_workloads::Walker::new(Arc::clone(&image), 5);
    let trace = dcfb_trace::VecTrace::capture(&mut walker, 5_000);
    let mut sim = Simulator::new(cfg, Arc::clone(&image));
    let mut replay = trace.replay();
    let r = sim.run(&mut replay);
    assert_eq!(r.instrs, 4_000, "measured = total - warmup");
}

#[test]
fn wrong_path_traffic_consumes_bandwidth() {
    // Wrong-path fetches must show up below the L1i but never
    // pollute it: external requests exceed fills.
    let r = run("Baseline");
    assert!(r.stall_redirect > 0, "no mispredicts in test workload?");
    assert!(
        r.external_requests > r.l1i.fills,
        "wrong-path traffic missing: ext {} vs fills {}",
        r.external_requests,
        r.l1i.fills
    );
}

#[test]
fn ipc_never_exceeds_backend_rate_when_frontend_is_perfect() {
    let image = tiny_image();
    let mut cfg = quick_cfg("Baseline");
    cfg.perfect_l1i = true;
    cfg.perfect_btb = true;
    let mut sim = Simulator::new(cfg, Arc::clone(&image));
    let mut walker = dcfb_workloads::Walker::new(image, 5);
    let r = sim.run(&mut walker);
    // The decoupled-core model caps sustained IPC at the backend
    // rate (plus redirect effects pulling it below).
    assert!(r.ipc() <= Simulator::BACKEND_IPC + 1e-9, "ipc {}", r.ipc());
}

#[test]
fn telemetry_off_by_default_and_detachable() {
    let image = tiny_image();
    let mut sim = Simulator::new(quick_cfg("SN4L"), Arc::clone(&image));
    let mut walker = dcfb_workloads::Walker::new(image, 5);
    sim.run(&mut walker);
    assert!(sim.take_telemetry().is_none(), "telemetry must default off");
}

#[test]
fn telemetry_does_not_perturb_the_run() {
    let plain = run("SN4L+Dis+BTB");
    let image = tiny_image();
    let mut cfg = quick_cfg("SN4L+Dis+BTB");
    cfg.telemetry = true;
    let mut sim = Simulator::new(cfg, Arc::clone(&image));
    let mut walker = dcfb_workloads::Walker::new(image, 5);
    let observed = sim.run(&mut walker);
    assert_eq!(observed.cycles, plain.cycles);
    assert_eq!(observed.l1i.demand_misses, plain.l1i.demand_misses);
    assert_eq!(observed.external_requests, plain.external_requests);
}

#[test]
fn telemetry_classifies_every_issued_prefetch() {
    let image = tiny_image();
    let mut cfg = quick_cfg("SN4L+Dis+BTB");
    cfg.telemetry = true;
    let mut sim = Simulator::new(cfg, Arc::clone(&image));
    let mut walker = dcfb_workloads::Walker::new(image, 5);
    let r = sim.run(&mut walker);
    let report = sim.take_telemetry().expect("telemetry enabled");
    report.doc.validate().expect("schema + sum invariant");
    // A second take returns nothing.
    assert!(sim.take_telemetry().is_none());
    // The run context matches the simulation report.
    assert_eq!(report.doc.instrs, r.instrs);
    assert_eq!(report.doc.method, "SN4L+Dis+BTB");
    // Per-source: the four classes account for every issue.
    let mut issued_total = 0;
    for row in &report.doc.timeliness {
        assert_eq!(
            row.accurate + row.late + row.early_evicted + row.useless,
            row.issued,
            "{} classes must sum to issued",
            row.source
        );
        issued_total += row.issued;
    }
    assert!(issued_total > 0, "the full system must issue prefetches");
    // The proactive engine's first-level streams are attributed.
    assert!(
        report
            .doc
            .timeliness
            .iter()
            .any(|t| t.source == "sn4l" && t.accurate > 0),
        "SN4L should land accurate prefetches: {:?}",
        report.doc.timeliness
    );
    // BTB prefetching is on in the full system.
    assert!(
        report.doc.timeliness.iter().any(|t| t.source == "btb_pf"),
        "BTB-prefetch rows missing"
    );
    // Counters cross-check the simulation report.
    assert_eq!(report.doc.counter("seq_misses"), Some(r.seq_misses));
    assert_eq!(report.doc.counter("disc_misses"), Some(r.disc_misses));
    assert_eq!(
        report.doc.counter("uncovered_misses"),
        Some(r.uncovered_misses)
    );
    assert_eq!(report.doc.counter("stall_l1i_cycles"), Some(r.stall_l1i));
    // Time series covers the measured instructions.
    let series_instrs: u64 = report.doc.series.iter().map(|row| row[2]).sum();
    assert_eq!(series_instrs, r.instrs, "windows must partition the run");
    // Trace export is valid JSON.
    let trace = report.chrome_trace();
    dcfb_telemetry::JsonValue::parse(&trace).expect("valid Chrome trace JSON");
}

#[test]
fn telemetry_tracks_directed_frontend_ftq() {
    let image = tiny_image();
    let mut cfg = quick_cfg("Boomerang");
    cfg.telemetry = true;
    let mut sim = Simulator::new(cfg, Arc::clone(&image));
    let mut walker = dcfb_workloads::Walker::new(image, 5);
    sim.run(&mut walker);
    let report = sim.take_telemetry().expect("telemetry enabled");
    report.doc.validate().expect("valid doc");
    // FTQ occupancy is only observable on the directed frontend.
    let ftq = report
        .doc
        .histograms
        .iter()
        .find(|h| h.name == "ftq_occupancy")
        .expect("ftq histogram");
    assert!(ftq.count > 0, "directed frontend must sample the FTQ");
    let row = report
        .doc
        .timeliness
        .iter()
        .find(|t| t.source == "boomerang")
        .expect("boomerang prefetches");
    assert_eq!(
        row.accurate + row.late + row.early_evicted + row.useless,
        row.issued
    );
}

#[test]
fn telemetry_buffer_mode_attributes_buffer_hits() {
    let image = tiny_image();
    let mut cfg = quick_cfg("N4L");
    cfg.use_prefetch_buffer = true;
    cfg.telemetry = true;
    let mut sim = Simulator::new(cfg, Arc::clone(&image));
    let mut walker = dcfb_workloads::Walker::new(image, 5);
    let r = sim.run(&mut walker);
    assert!(r.buffer_hits > 0, "buffer must absorb misses");
    let report = sim.take_telemetry().expect("telemetry enabled");
    report.doc.validate().expect("valid doc");
    assert_eq!(report.doc.counter("buffer_hits"), Some(r.buffer_hits));
    let row = report
        .doc
        .timeliness
        .iter()
        .find(|t| t.source == "next_line")
        .expect("next-line prefetches");
    assert!(row.accurate > 0, "buffer hits must count as accurate");
}

#[test]
fn cmal_is_a_sane_fraction() {
    for m in ["NL", "N4L", "SN4L"] {
        let r = run(m);
        let c = r.cmal();
        assert!((0.0..=1.0).contains(&c), "{m} cmal {c}");
        assert!(r.cmal_total > 0.0, "{m} had no prefetched misses");
    }
}

// ---- mock-driver tests: the shared loop in isolation ----

/// Shared observation log for the mock driver (the simulator owns the
/// driver, so the test reads through an `Rc`).
#[derive(Default)]
struct MockLog {
    pumps: Cell<u64>,
    /// Longest consecutive run of `pump` calls (i.e. most pumps the
    /// loop granted within a single stall).
    max_pump_run: Cell<u64>,
    cur_pump_run: Cell<u64>,
    begin_cycles: Cell<u64>,
    end_cycles: Cell<u64>,
}

impl MockLog {
    fn break_pump_run(&self) {
        self.cur_pump_run.set(0);
    }
}

/// A minimal [`FrontendDriver`]: no prefetcher, no branch handling.
/// It injects one `Gate`-side redirect stall, one empty cycle, and one
/// `Consumed`-side BTB stall at fixed points so the test can check the
/// shared loop's stall attribution, retire-clock penalties, and the
/// 16-pumps-per-stall budget.
struct MockDriver {
    log: Rc<MockLog>,
    gate_calls: u64,
    consume_calls: u64,
}

const MOCK_REDIRECT_SPAN: u64 = 40;
const MOCK_BTB_SPAN: u64 = 5;
/// Gate/consume call counts at which the mock injects its events. Every
/// consumed instruction takes at least one gate call, so with a 100-
/// instruction warmup these all land inside the measurement window
/// (where the report's stall counters accumulate).
const MOCK_GATE_STALL_AT: u64 = 200;
const MOCK_CONSUME_STALL_AT: u64 = 300;
const MOCK_END_GROUP_AT: u64 = 305;

impl FrontendDriver for MockDriver {
    fn begin_cycle(&mut self, m: &mut Machine) {
        self.log.break_pump_run();
        self.log.begin_cycles.set(self.log.begin_cycles.get() + 1);
        m.drain_fills(None);
    }

    fn gate(&mut self, m: &mut Machine, _cfg: &SimConfig, _instr: &Instr, dispatched: u32) -> Gate {
        self.log.break_pump_run();
        self.gate_calls += 1;
        match self.gate_calls {
            MOCK_GATE_STALL_AT => Gate::Stall {
                until: m.cycle + MOCK_REDIRECT_SPAN,
                cause: StallCause::Redirect,
            },
            c if c == MOCK_GATE_STALL_AT + 1 => {
                assert_eq!(dispatched, 0, "fresh cycle after a Gate stall");
                Gate::EndCycle
            }
            _ => Gate::Proceed,
        }
    }

    fn after_demand(&mut self, _m: &mut Machine, _block: Block, _outcome: &DemandOutcome) {}

    fn consume(&mut self, m: &mut Machine, _cfg: &SimConfig, _instr: &Instr) -> Consumed {
        self.log.break_pump_run();
        self.consume_calls += 1;
        match self.consume_calls {
            MOCK_CONSUME_STALL_AT => Consumed::Stall {
                until: m.cycle + MOCK_BTB_SPAN,
                cause: StallCause::Btb,
            },
            MOCK_END_GROUP_AT => Consumed::EndGroup,
            _ => Consumed::Continue,
        }
    }

    fn end_cycle(&mut self, _m: &mut Machine) {
        self.log.break_pump_run();
        self.log.end_cycles.set(self.log.end_cycles.get() + 1);
    }

    fn pump(&mut self, m: &mut Machine) {
        let run = self.log.cur_pump_run.get() + 1;
        self.log.cur_pump_run.set(run);
        if run > self.log.max_pump_run.get() {
            self.log.max_pump_run.set(run);
        }
        self.log.pumps.set(self.log.pumps.get() + 1);
        m.drain_fills(None);
    }

    fn sample(&self) -> (Option<u64>, Option<(u64, u64)>) {
        (None, None)
    }

    fn finish_report(&self, _r: &mut SimReport) {}
}

#[test]
fn mock_driver_exercises_the_shared_loop() {
    let image = tiny_image();
    let mut cfg = quick_cfg("Baseline");
    cfg.warmup_instrs = 100;
    cfg.measure_instrs = 5_000;
    let log = Rc::new(MockLog::default());
    let driver = Box::new(MockDriver {
        log: Rc::clone(&log),
        gate_calls: 0,
        consume_calls: 0,
    });
    let name = image.params().name.clone();
    let code: Arc<dyn dcfb_trace::CodeMemory + Send + Sync> = Arc::clone(&image) as _;
    let mut sim = Simulator::try_with_driver(cfg, code, name, driver).expect("valid config");
    let mut walker = dcfb_workloads::Walker::new(image, 5);
    let r = sim.run(&mut walker);

    // The loop ran to the instruction target with no real frontend.
    assert_eq!(r.instrs, 5_000);
    // Stall attribution comes straight from the driver's decisions:
    // the mock is the only source of redirect and BTB stalls.
    assert_eq!(r.stall_redirect, MOCK_REDIRECT_SPAN);
    assert_eq!(r.stall_btb, MOCK_BTB_SPAN);
    assert!(r.stall_l1i > 0, "demand misses still stall the loop");
    // Redirect/BTB stalls restart the backend: both spans must be
    // visible in the retire-clock execution time, which can otherwise
    // not beat the backend rate.
    let floor = (5_000.0 / Simulator::BACKEND_IPC) as u64 + MOCK_REDIRECT_SPAN + MOCK_BTB_SPAN;
    assert!(r.cycles >= floor, "cycles {} < floor {floor}", r.cycles);
    // The pump budget: at most 16 pumps per stall, and the 40-cycle
    // redirect stall must have been granted exactly 16.
    assert_eq!(log.max_pump_run.get(), 16);
    assert!(log.pumps.get() >= 16 + MOCK_BTB_SPAN);
    // begin/end pair up only on cycles that did not end in a stall.
    assert!(log.begin_cycles.get() > log.end_cycles.get());
    assert!(
        log.end_cycles.get() > 0,
        "EndCycle path must complete cycles"
    );
}
