//! The memory plane: demand accesses against the L1i and prefetch
//! buffer, MSHR allocation toward the uncore, fill draining, and the
//! miss-classification / CMAL accounting that feeds the report.

use super::Machine;
use dcfb_cache::LineFlags;
use dcfb_cache::MshrOutcome;
use dcfb_prefetch::InstrPrefetcher;
use dcfb_telemetry::{Ctr, Hist, PfSource};
use dcfb_trace::Block;

/// Outcome of a demand access against the memory plane.
pub enum DemandOutcome {
    /// The block was resident (in the L1i or prefetch buffer).
    Hit {
        /// Whether a prefetch brought the block in.
        was_prefetched: bool,
    },
    /// The block is on its way; fetch stalls until `ready_at`.
    Miss {
        /// Cycle the fill completes.
        ready_at: u64,
        /// Whether an in-flight prefetch already covered part of the
        /// latency (a *late* prefetch).
        had_prefetch: bool,
    },
    /// The MSHRs were full even for a demand: retry next cycle.
    Retry,
}

impl Machine {
    /// Sends a fetch/prefetch below the L1i, allocating an MSHR.
    /// Returns the completion cycle, or `None` if the MSHRs are full.
    pub(crate) fn request_below(
        &mut self,
        block: Block,
        source: PfSource,
        extra: u64,
    ) -> Option<u64> {
        let is_prefetch = source.is_prefetch();
        if self.mshr.is_full() {
            self.stats.dropped_prefetches += u64::from(is_prefetch);
            if is_prefetch {
                if let Some(t) = self.telem.as_deref_mut() {
                    t.pf_dropped();
                }
            }
            return None;
        }
        let res = self.uncore.access(self.cycle, block, is_prefetch, true);
        let ready = res.ready_at + extra;
        match self.mshr.allocate(block, self.cycle, ready, source) {
            MshrOutcome::Allocated => {
                if is_prefetch {
                    if let Some(t) = self.telem.as_deref_mut() {
                        t.pf_issued(block, source);
                    }
                }
                Some(ready)
            }
            MshrOutcome::Merged { ready_at, .. } => Some(ready_at),
            MshrOutcome::Full => None,
        }
    }

    /// Drains completed fetches into the L1i (or prefetch buffer),
    /// firing fill/evict hooks on `pf`.
    pub(crate) fn drain_fills(&mut self, mut pf: Option<&mut (dyn InstrPrefetcher + 'static)>) {
        let mut done = std::mem::take(&mut self.fill_scratch);
        self.mshr.drain_ready_into(self.cycle, &mut done);
        for &c in &done {
            // An undemanded prefetch lands in the side buffer when one
            // is configured; `buffered` is `Some(displaced)` exactly in
            // that case.
            let buffered = if c.is_prefetch && !c.demand_waiting {
                self.pf_buffer
                    .as_mut()
                    .map(|buf| buf.insert(c.block, c.source))
            } else {
                None
            };
            if let Some(displaced) = buffered {
                if let Some(t) = self.telem.as_deref_mut() {
                    t.pf_fill(c.block, c.ready_at - c.issued_at);
                    if let Some((evicted, _)) = displaced {
                        t.pf_evict_unused(evicted);
                    }
                }
            } else {
                let flags = if c.is_prefetch && !c.demand_waiting {
                    LineFlags::prefetched_instruction()
                } else {
                    LineFlags::demand_instruction()
                };
                if c.is_prefetch {
                    self.prefetch_latency
                        .insert(c.block, c.ready_at - c.issued_at);
                    if !c.demand_waiting {
                        if let Some(t) = self.telem.as_deref_mut() {
                            t.pf_fill(c.block, c.ready_at - c.issued_at);
                        }
                    }
                }
                let evicted = self.l1i.fill(c.block, flags);
                if let Some(ev) = evicted {
                    self.prefetch_latency.remove(&ev.block);
                    if ev.flags.prefetched && !ev.flags.demanded {
                        if let Some(t) = self.telem.as_deref_mut() {
                            t.pf_evict_unused(ev.block);
                        }
                    }
                    if let Some(p) = pf.as_deref_mut() {
                        p.on_evict(self, ev.block, ev.flags.prefetched && !ev.flags.demanded);
                    }
                }
                // In variable-length mode, deposit the block's branch
                // footprint alongside it in the DV-LLC (§V-D).
                if !self.predecoder.isa().self_describing_boundaries() {
                    let instrs = self.code.instrs_in_block(c.block);
                    let (bf, _) = dcfb_cache::BranchFootprint::from_block(&instrs);
                    if let Some(dv) = self.uncore.dvllc_mut() {
                        dv.insert_bf(c.block, bf);
                    }
                }
            }
            if let Some(p) = pf.as_deref_mut() {
                p.on_fill(self, c.block, c.is_prefetch && !c.demand_waiting);
            }
        }
        self.fill_scratch = done;
    }

    /// Outcome of a demand access.
    pub(crate) fn demand(&mut self, block: Block) -> DemandOutcome {
        if self.perfect_l1i {
            // Every access hits: install the block before looking up.
            if !self.l1i.contains(block) {
                self.l1i.fill(block, LineFlags::demand_instruction());
            }
            self.l1i.demand_access(block);
            return DemandOutcome::Hit {
                was_prefetched: false,
            };
        }
        self.stats_note_demand(block);
        if let Some(t) = self.telem.as_deref_mut() {
            t.add(Ctr::DemandAccesses, 1);
        }
        if self.l1i.demand_access(block) {
            let was_pref = self.prefetch_latency.remove(&block).map(|lat| {
                self.stats.cmal_covered += lat as f64;
                self.stats.cmal_total += lat as f64;
            });
            if let Some(t) = self.telem.as_deref_mut() {
                t.add(Ctr::DemandHits, 1);
                if was_pref.is_some() {
                    t.pf_hit(block);
                }
            }
            return DemandOutcome::Hit {
                was_prefetched: was_pref.is_some(),
            };
        }
        // Prefetch buffer (when configured) is checked in parallel.
        if let Some(buf) = self.pf_buffer.as_mut() {
            if buf.take(block).is_some() {
                // Move into the cache; a fully covered miss.
                self.l1i.fill(block, LineFlags::demand_instruction());
                // Buffer fills' latency is not tracked per block;
                // count a representative full coverage.
                let lat = 30.0;
                self.stats.cmal_covered += lat;
                self.stats.cmal_total += lat;
                self.stats.buffer_hits += 1;
                if let Some(t) = self.telem.as_deref_mut() {
                    t.add(Ctr::BufferHits, 1);
                    t.pf_hit(block);
                }
                return DemandOutcome::Hit {
                    was_prefetched: true,
                };
            }
        }
        self.classify_miss(block, false);
        if let Some(t) = self.telem.as_deref_mut() {
            t.add(Ctr::DemandMisses, 1);
            t.pf_demand_miss(block);
        }
        // In flight already?
        if let Some(ready) = self.mshr.ready_at(block) {
            let is_pref = self.mshr.is_prefetch(block).unwrap_or(false);
            // Merge as a demand.
            self.mshr
                .allocate(block, self.cycle, ready, PfSource::Demand);
            if is_pref {
                self.stats.late_prefetches += 1;
                if let Some(t) = self.telem.as_deref_mut() {
                    t.pf_late(block);
                }
            }
            if let Some(t) = self.telem.as_deref_mut() {
                t.observe(Hist::MissLatency, ready.saturating_sub(self.cycle));
            }
            return DemandOutcome::Miss {
                ready_at: ready,
                had_prefetch: is_pref,
            };
        }
        self.stats.uncovered_misses += 1;
        if let Some(t) = self.telem.as_deref_mut() {
            t.add(Ctr::UncoveredMisses, 1);
        }
        match self.request_below(block, PfSource::Demand, 0) {
            Some(ready) => {
                if let Some(t) = self.telem.as_deref_mut() {
                    t.observe(Hist::MissLatency, ready.saturating_sub(self.cycle));
                }
                DemandOutcome::Miss {
                    ready_at: ready,
                    had_prefetch: false,
                }
            }
            None => {
                // MSHRs full for a demand: retry next cycle.
                DemandOutcome::Retry
            }
        }
    }

    fn stats_note_demand(&mut self, _block: Block) {}

    fn classify_miss(&mut self, block: Block, _buffer_hit: bool) {
        let ctr = match self.prev_demand_block {
            Some(prev) if block == prev + 1 => {
                self.stats.seq_misses += 1;
                Ctr::SeqMisses
            }
            Some(prev) if block == prev => return,
            _ => {
                self.stats.disc_misses += 1;
                Ctr::DiscMisses
            }
        };
        if let Some(t) = self.telem.as_deref_mut() {
            t.add(ctr, 1);
        }
    }

    /// CMAL accounting for a late (in-flight) prefetch resolved at
    /// `ready`: the fraction of the original latency that prefetching
    /// already covered when the demand arrived.
    pub(crate) fn account_late_prefetch(&mut self, block: Block, ready: u64) {
        // The MSHR entry knows issue time only until drained; derive
        // covered cycles from issue metadata if still present.
        if let Some(issued_ready) = self.mshr.ready_at(block) {
            let _ = issued_ready;
        }
        let total_guess = 34.0_f64.max((ready.saturating_sub(self.cycle)) as f64 + 1.0);
        let remaining = ready.saturating_sub(self.cycle) as f64;
        let covered = (total_guess - remaining).max(0.0);
        self.stats.cmal_covered += covered;
        self.stats.cmal_total += total_guess;
    }
}
