//! End-to-end simulator throughput: simulated instructions per second
//! for the main frontend configurations.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dcfb_sim::{SimConfig, Simulator};
use dcfb_trace::IsaMode;
use dcfb_workloads::{ProgramImage, Walker, WorkloadParams};
use std::sync::Arc;

const INSTRS: u64 = 100_000;

fn image() -> Arc<ProgramImage> {
    let params = WorkloadParams {
        name: "simbench".to_owned(),
        functions: 600,
        root_functions: 16,
        ..WorkloadParams::default()
    };
    Arc::new(ProgramImage::build(&params, 7, IsaMode::Fixed4))
}

fn bench_simulation(c: &mut Criterion) {
    let image = image();
    let mut g = c.benchmark_group("simulated_instructions");
    g.sample_size(10);
    g.throughput(Throughput::Elements(INSTRS));
    for method in ["Baseline", "N4L", "SN4L+Dis+BTB", "Shotgun", "Confluence"] {
        g.bench_function(method, |b| {
            b.iter_batched(
                || {
                    let mut cfg = SimConfig::for_method(method).expect("method");
                    // Minimal warmup: we benchmark steady-state
                    // throughput, but the config requires nonzero.
                    cfg.warmup_instrs = 1;
                    cfg.measure_instrs = INSTRS;
                    (
                        Simulator::new(cfg, Arc::clone(&image)),
                        Walker::new(Arc::clone(&image), 3),
                    )
                },
                |(mut sim, mut walker)| black_box(sim.run(&mut walker)),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
