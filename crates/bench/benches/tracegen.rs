//! Throughput of the workload substrate: image construction and trace
//! synthesis (the simulator's input side).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dcfb_trace::{InstrStream, IsaMode};
use dcfb_workloads::{ProgramImage, Walker, WorkloadParams};
use std::sync::Arc;

fn params(functions: usize) -> WorkloadParams {
    WorkloadParams {
        name: format!("bench-{functions}"),
        functions,
        root_functions: 16.min(functions),
        ..WorkloadParams::default()
    }
}

fn bench_image_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("image_build");
    g.sample_size(10);
    for functions in [200usize, 800] {
        g.bench_function(format!("{functions}_functions"), |b| {
            let p = params(functions);
            b.iter(|| black_box(ProgramImage::build(&p, 7, IsaMode::Fixed4)))
        });
    }
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let image = Arc::new(ProgramImage::build(&params(400), 7, IsaMode::Fixed4));
    let mut g = c.benchmark_group("trace_generation");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("100k_instrs", |b| {
        b.iter_batched(
            || Walker::new(Arc::clone(&image), 9),
            |mut w| {
                for _ in 0..100_000 {
                    black_box(w.next_instr());
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_predecode(c: &mut Criterion) {
    let image = Arc::new(ProgramImage::build(&params(400), 7, IsaMode::Fixed4));
    let mut pre = dcfb_frontend::Predecoder::new(IsaMode::Fixed4);
    let first = dcfb_trace::block_of(image.functions()[1].entry);
    let mut i = 0u64;
    c.bench_function("predecode_block", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(pre.decode(&*image, first + (i % 512), None))
        })
    });
}

criterion_group!(
    benches,
    bench_image_build,
    bench_trace_generation,
    bench_predecode
);
criterion_main!(benches);
