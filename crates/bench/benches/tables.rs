//! Microbenchmarks for the paper's metadata structures: the hardware
//! argument is that SeqTable/DisTable/RLU are trivially cheap
//! direct-mapped lookups (Table II's "search complexity" row); these
//! benches quantify the software model's cost per operation.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dcfb_frontend::{BranchClass, Btb, BtbConfig, BtbEntry};
use dcfb_prefetch::{BtbPrefetchBuffer, DisTable, Rlu, SeqTable, TagPolicy};

fn bench_seqtable(c: &mut Criterion) {
    let mut table = SeqTable::paper_sized();
    for b in 0..4096u64 {
        if b % 3 == 0 {
            table.reset(b);
        }
    }
    let mut i = 0u64;
    c.bench_function("seqtable_lookup", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9);
            black_box(table.is_useful(black_box(i)))
        })
    });
    c.bench_function("seqtable_update", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9);
            if i & 1 == 0 {
                table.set(i);
            } else {
                table.reset(i);
            }
        })
    });
}

fn bench_distable(c: &mut Criterion) {
    let mut table = DisTable::new(4096, TagPolicy::Partial(4), 4);
    for b in 0..2048u64 {
        table.record(b * 3, (b % 16) as u8);
    }
    let mut i = 0u64;
    c.bench_function("distable_lookup", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9);
            black_box(table.lookup(black_box(i)))
        })
    });
}

fn bench_rlu(c: &mut Criterion) {
    let mut rlu = Rlu::new(8);
    let mut i = 0u64;
    c.bench_function("rlu_check_insert", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            // Mix of repeats (i % 4) and fresh blocks.
            black_box(rlu.check_insert(black_box(i % 12)))
        })
    });
}

fn bench_btb(c: &mut Criterion) {
    let mut btb = Btb::new(BtbConfig::baseline_2k());
    for k in 0..2048u64 {
        btb.insert(BtbEntry {
            pc: 0x40_0000 + k * 12,
            target: 0x80_0000 + k * 4,
            class: BranchClass::Conditional,
        });
    }
    let mut i = 0u64;
    c.bench_function("btb_lookup_2k", |b| {
        b.iter(|| {
            i = i.wrapping_add(12);
            black_box(btb.lookup(black_box(0x40_0000 + (i % (2048 * 12)))))
        })
    });
}

fn bench_btb_buffer(c: &mut Criterion) {
    let mut buf = BtbPrefetchBuffer::paper_sized();
    let entries: Vec<BtbEntry> = (0..4)
        .map(|k| BtbEntry {
            pc: 100 * 64 + k * 8,
            target: 0x1000 + k,
            class: BranchClass::Conditional,
        })
        .collect();
    let mut i = 0u64;
    c.bench_function("btb_prefetch_buffer_fill_take", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let block = 100 + (i % 64);
            let mut e = entries.clone();
            for x in &mut e {
                x.pc = block * 64 + (x.pc % 64);
            }
            buf.fill(block, e.into());
            black_box(buf.take_for(block * 64))
        })
    });
}

criterion_group!(
    benches,
    bench_seqtable,
    bench_distable,
    bench_rlu,
    bench_btb,
    bench_btb_buffer
);
criterion_main!(benches);
