//! Event-handling throughput of each prefetcher: demand hooks plus
//! queue pumping, against a scripted context (no timing model).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dcfb_prefetch::context::MockContext;
use dcfb_prefetch::{
    Confluence, DiscontinuityPrefetcher, InstrPrefetcher, NextLine, RecentInstrs, Sn4l, Sn4lDisBtb,
};

/// A synthetic demand-block pattern: mostly sequential runs with a
/// discontinuity every eight blocks.
fn block_at(i: u64) -> u64 {
    let run = i / 8;
    let off = i % 8;
    run * 131 + off
}

fn drive(c: &mut Criterion, name: &str, mut make: impl FnMut() -> Box<dyn InstrPrefetcher>) {
    let mut g = c.benchmark_group("prefetcher_events");
    g.throughput(Throughput::Elements(1));
    g.bench_function(name, |b| {
        let mut pf = make();
        let mut ctx = MockContext::default();
        let recent = RecentInstrs::default();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let block = block_at(i);
            let hit = !i.is_multiple_of(3);
            pf.on_demand(&mut ctx, black_box(block), hit, false, &recent);
            pf.tick(&mut ctx);
            if ctx.issued.len() > 1024 {
                ctx.issued.clear();
                ctx.lookups.clear();
                ctx.resident.clear();
            }
        })
    });
    g.finish();
}

fn bench_prefetchers(c: &mut Criterion) {
    drive(c, "nl", || Box::new(NextLine::new(1)));
    drive(c, "n4l", || Box::new(NextLine::new(4)));
    drive(c, "sn4l", || Box::new(Sn4l::paper_sized()));
    drive(c, "sn4l_dis_btb", || Box::new(Sn4lDisBtb::paper_sized()));
    drive(c, "discontinuity", || {
        Box::new(DiscontinuityPrefetcher::paper_baseline())
    });
    drive(c, "confluence", || Box::new(Confluence::paper_sized()));
}

criterion_group!(benches, bench_prefetchers);
criterion_main!(benches);
