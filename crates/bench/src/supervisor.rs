//! Supervised job execution: every unit of work runs inside a
//! [`JobEnvelope`] carrying a deadline, and the [`Supervisor`] wraps
//! each attempt with crash isolation, bounded retry under a
//! deterministic exponential-backoff-with-jitter schedule, and a
//! quarantine list keyed by configuration digest.
//!
//! Design rules:
//!
//! * **Deterministic deadlines.** [`Deadline::Instrs`] charges an
//!   instruction budget against the simulator's lifetime retire count —
//!   the same budget interrupts the same run at the same instruction on
//!   every host. [`Deadline::Wall`] arms a watchdog thread that flips
//!   the attempt's [`RunControl`] cancel token; it exists for
//!   production batches, and tests never depend on it firing at a
//!   particular point.
//! * **Deterministic backoff.** The jitter is a pure function of
//!   `(seed, job id, attempt)` via splitmix64 — no wall clock, no
//!   global RNG. The recorded schedule (in units) is what tests assert;
//!   the actual sleep is `schedule ×` [`SupervisorOptions::unit`],
//!   which is zero in tests.
//! * **The pool always drains.** A panicking, failing, or timed-out
//!   attempt never takes down the sweep: the job retries or
//!   quarantines, and the report enumerates every submitted job exactly
//!   once (`completed + retried + quarantined == submitted`).
//! * **Fault-free parity.** The default runner replicates
//!   [`crate::runs::run`] exactly (cached image, fixed trace seed), and
//!   attaching a default [`RunControl`] changes nothing about a run, so
//!   a fault-free supervised sweep is byte-identical to the unsupervised
//!   one.

use crate::runs::{self, TRACE_SEED};
use crate::sweep::parallel_map_jobs;
use dcfb_errors::{panic_message, DcfbError};
use dcfb_sim::{RunControl, SimReport, Simulator};
use dcfb_telemetry::{CounterSet, Ctr};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// splitmix64: the same mixer the trace fault injector uses, so every
/// seeded decision in the repo derives randomness the same way.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Folds a string into a 64-bit key (splitmix over each byte).
fn hash_str(s: &str) -> u64 {
    let mut h = 0u64;
    for b in s.as_bytes() {
        h = splitmix64(h ^ u64::from(*b));
    }
    h
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// When a supervised attempt must be cancelled.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Deadline {
    /// No deadline; only external cancellation stops the attempt.
    #[default]
    Unbounded,
    /// Cancel once this many instructions have retired across the whole
    /// run (warmup + measurement). Deterministic across hosts.
    Instrs(u64),
    /// Cancel after this much wall-clock time (watchdog thread).
    Wall(Duration),
}

impl Deadline {
    /// Human-readable form used in [`DcfbError::Timeout`] diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Deadline::Unbounded => "unbounded".to_owned(),
            Deadline::Instrs(n) => format!("instruction budget {n}"),
            Deadline::Wall(d) => format!("wall clock {:.3}s", d.as_secs_f64()),
        }
    }
}

/// One unit of supervised work: a `(workload-source, method)` pair plus
/// the deadline its attempts run under. The workload is any spec the
/// workload-source registry accepts — a synthetic name, a `mix:`
/// interleaving, or a `trace:` replay — so every source is supervisable
/// and quarantinable.
#[derive(Clone, Debug)]
pub struct JobEnvelope {
    /// The workload-source spec to simulate.
    pub workload: String,
    /// Registry method name.
    pub method: String,
    /// Per-attempt deadline.
    pub deadline: Deadline,
}

impl JobEnvelope {
    /// An envelope with the supervisor's default deadline.
    pub fn new(workload: impl Into<String>, method: &str) -> JobEnvelope {
        JobEnvelope {
            workload: workload.into(),
            method: method.to_owned(),
            deadline: Deadline::Unbounded,
        }
    }

    /// Stable job identifier: `method/workload`.
    pub fn id(&self) -> String {
        format!("{}/{}", self.method, self.workload)
    }

    /// 16-hex-digit digest of the job's effective configuration — the
    /// quarantine key. Two jobs that would run the same simulation
    /// share a digest, so quarantining one config quarantines every
    /// resubmission of it.
    pub fn config_digest(&self) -> String {
        let cfg = runs::try_method_config(&self.method)
            .map(|c| format!("{c:?}"))
            .unwrap_or_else(|e| format!("invalid:{e}"));
        let h = hash_str(&format!("{}|{}|{cfg}", self.method, self.workload));
        format!("{h:016x}")
    }
}

/// Exponential backoff parameters, in abstract units (the supervisor's
/// [`SupervisorOptions::unit`] converts units to real time).
#[derive(Clone, Copy, Debug)]
pub struct BackoffPolicy {
    /// Delay after the first failure, in units.
    pub base_units: u64,
    /// Multiplier per further failure.
    pub factor: u64,
    /// Upper bound on the un-jittered delay.
    pub cap_units: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_units: 1,
            factor: 2,
            cap_units: 60,
        }
    }
}

impl BackoffPolicy {
    /// The delay (in units) before retry number `attempt` (0-based: the
    /// delay after the first failure is `attempt == 0`). Deterministic:
    /// exponential growth capped at `cap_units`, with jitter drawn from
    /// `[exp/2, exp]` by splitmix64 over `(seed, job_key, attempt)`.
    pub fn delay_units(&self, seed: u64, job_key: u64, attempt: u32) -> u64 {
        let mut exp = self.base_units.max(1);
        for _ in 0..attempt {
            exp = exp.saturating_mul(self.factor.max(1)).min(self.cap_units);
        }
        exp = exp.min(self.cap_units).max(1);
        let half = exp / 2;
        let r = splitmix64(seed ^ job_key.rotate_left(17) ^ u64::from(attempt));
        half + r % (exp - half + 1)
    }
}

/// Supervisor tuning knobs.
#[derive(Clone, Debug)]
pub struct SupervisorOptions {
    /// Attempts per job before quarantine (≥ 1).
    pub max_attempts: u32,
    /// Backoff schedule between attempts.
    pub backoff: BackoffPolicy,
    /// Seed for the backoff jitter.
    pub seed: u64,
    /// Real duration of one backoff unit. `Duration::ZERO` in tests:
    /// the schedule is still computed and recorded, but nothing sleeps.
    pub unit: Duration,
    /// Deadline applied to jobs whose envelope says
    /// [`Deadline::Unbounded`].
    pub default_deadline: Deadline,
    /// Worker threads (0 = the sweep default from `DCFB_JOBS`).
    pub jobs: usize,
}

impl Default for SupervisorOptions {
    fn default() -> Self {
        SupervisorOptions {
            max_attempts: 3,
            backoff: BackoffPolicy::default(),
            seed: TRACE_SEED,
            unit: Duration::from_millis(50),
            default_deadline: Deadline::Unbounded,
            jobs: 0,
        }
    }
}

/// One attempt's context, handed to the runner: the attempt index and
/// the [`RunControl`] the runner must honor (attach it to the
/// simulator, or poll it in its own loop).
#[derive(Clone, Debug)]
pub struct Attempt {
    /// 0-based attempt number.
    pub index: u32,
    /// Cooperative cancellation for this attempt (budget and/or
    /// watchdog already armed by the supervisor).
    pub control: RunControl,
}

/// How a supervised job ended.
#[derive(Clone, Debug)]
pub enum JobOutcome<T> {
    /// Some attempt produced a value.
    Completed(T),
    /// Every attempt failed (or the config was already quarantined).
    Quarantined(DcfbError),
}

/// Summary status of a job record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Completed on the first attempt.
    Completed,
    /// Completed, but only after at least one retry.
    Retried,
    /// Quarantined (exhausted retries, or skipped as already
    /// quarantined).
    Quarantined,
}

impl JobStatus {
    /// Lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::Retried => "retried",
            JobStatus::Quarantined => "quarantined",
        }
    }
}

/// The full per-job audit trail.
#[derive(Clone, Debug)]
pub struct JobRecord<T> {
    /// `method/workload`.
    pub id: String,
    /// Configuration digest (quarantine key).
    pub config_digest: String,
    /// Attempts actually executed (0 for a quarantine skip).
    pub attempts: u32,
    /// Backoff delays (in units) slept between attempts, in order.
    pub backoff_units: Vec<u64>,
    /// Attempts cancelled at their deadline.
    pub timeouts: u32,
    /// Final outcome.
    pub outcome: JobOutcome<T>,
}

impl<T> JobRecord<T> {
    /// Summary status.
    pub fn status(&self) -> JobStatus {
        match &self.outcome {
            JobOutcome::Completed(_) if self.attempts <= 1 => JobStatus::Completed,
            JobOutcome::Completed(_) => JobStatus::Retried,
            JobOutcome::Quarantined(_) => JobStatus::Quarantined,
        }
    }

    /// The produced value, if the job completed.
    pub fn value(&self) -> Option<&T> {
        match &self.outcome {
            JobOutcome::Completed(v) => Some(v),
            JobOutcome::Quarantined(_) => None,
        }
    }
}

/// What a supervised batch produced: one record per submitted job (in
/// submission order) plus the supervision counters.
#[derive(Clone, Debug)]
pub struct SupervisionReport<T> {
    /// Per-job records, in submission order.
    pub records: Vec<JobRecord<T>>,
    /// Retry/timeout/quarantine counters for this batch.
    pub counters: CounterSet,
}

impl<T> SupervisionReport<T> {
    /// Jobs submitted.
    pub fn submitted(&self) -> usize {
        self.records.len()
    }

    /// Jobs with a given status.
    pub fn count(&self, status: JobStatus) -> usize {
        self.records.iter().filter(|r| r.status() == status).count()
    }

    /// The drain invariant: every submitted job is accounted for as
    /// completed, retried, or quarantined.
    pub fn accounted(&self) -> bool {
        self.count(JobStatus::Completed)
            + self.count(JobStatus::Retried)
            + self.count(JobStatus::Quarantined)
            == self.submitted()
    }
}

/// A watchdog thread armed for one wall-clock deadline: cancels the
/// attempt's [`RunControl`] if the deadline passes before
/// [`Watchdog::disarm`] is called.
struct Watchdog {
    done: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    fn arm(control: &RunControl, after: Duration) -> Watchdog {
        let done = Arc::new((Mutex::new(false), Condvar::new()));
        let shared = Arc::clone(&done);
        let ctl = control.clone();
        let handle = std::thread::spawn(move || {
            let (flag, cv) = &*shared;
            let mut finished = lock(flag);
            let deadline = std::time::Instant::now() + after;
            loop {
                if *finished {
                    return;
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    ctl.cancel();
                    return;
                }
                finished = match cv.wait_timeout(finished, deadline - now) {
                    Ok((g, _)) => g,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        });
        Watchdog {
            done,
            handle: Some(handle),
        }
    }

    fn disarm(mut self) {
        {
            let (flag, cv) = &*self.done;
            *lock(flag) = true;
            cv.notify_all();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Quarantine record for one configuration digest.
#[derive(Clone, Debug)]
struct QuarantineEntry {
    job: String,
    failures: u32,
    last_error: String,
}

/// The supervisor: owns the quarantine list (which persists across
/// [`Supervisor::run_with`] calls, so a resubmitted bad config is
/// skipped instead of re-failed) and executes batches through the
/// shared parallel worker pool.
pub struct Supervisor {
    opts: SupervisorOptions,
    quarantine: Mutex<HashMap<String, QuarantineEntry>>,
}

impl Supervisor {
    /// A supervisor with the given options.
    pub fn new(opts: SupervisorOptions) -> Supervisor {
        Supervisor {
            opts,
            quarantine: Mutex::new(HashMap::new()),
        }
    }

    /// The configured options.
    pub fn options(&self) -> &SupervisorOptions {
        &self.opts
    }

    /// Digests currently quarantined, sorted.
    pub fn quarantined_digests(&self) -> Vec<String> {
        let mut v: Vec<String> = lock(&self.quarantine).keys().cloned().collect();
        v.sort_unstable();
        v
    }

    /// Runs the default simulation (identical to [`crate::runs::run`]:
    /// registry-resolved source, cached image for synthetic names, fixed
    /// trace seed) for every envelope.
    pub fn run(&self, jobs: Vec<JobEnvelope>) -> SupervisionReport<SimReport> {
        self.run_with(jobs, |env, attempt| {
            let cfg = runs::try_method_config(&env.method)?;
            let resolved = runs::resolved_for(&env.workload, cfg.isa)?;
            let mut sim = Simulator::try_with_code(
                cfg,
                resolved.code(),
                resolved.start_pc(),
                resolved.name().to_owned(),
            )?;
            sim.attach_control(attempt.control.clone());
            let mut stream = resolved.stream(TRACE_SEED);
            let report = sim.run(&mut stream);
            if sim.interrupted() {
                return Err(DcfbError::Timeout {
                    workload: env.workload.clone(),
                    method: env.method.clone(),
                    deadline: self.effective_deadline(env).describe(),
                });
            }
            Ok(report)
        })
    }

    fn effective_deadline(&self, env: &JobEnvelope) -> Deadline {
        match env.deadline {
            Deadline::Unbounded => self.opts.default_deadline,
            d => d,
        }
    }

    /// Runs `runner` for every envelope under full supervision:
    /// parallel execution (submission-order results), per-attempt crash
    /// isolation and deadlines, deterministic backoff between attempts,
    /// and quarantine after [`SupervisorOptions::max_attempts`]
    /// failures.
    ///
    /// The runner receives the envelope and the attempt context; it
    /// must honor [`Attempt::control`] (attach it to the simulator) for
    /// deadlines to take effect, and should report a cancelled run as
    /// [`DcfbError::Timeout`].
    pub fn run_with<T, F>(&self, jobs: Vec<JobEnvelope>, runner: F) -> SupervisionReport<T>
    where
        T: Send,
        F: Fn(&JobEnvelope, &Attempt) -> Result<T, DcfbError> + Sync,
    {
        let workers = if self.opts.jobs == 0 {
            crate::sweep::jobs()
        } else {
            self.opts.jobs
        };
        let records = parallel_map_jobs(jobs, workers, |env| self.supervise_one(env, &runner));
        let mut counters = CounterSet::new();
        for rec in &records {
            counters.add(Ctr::JobRetries, u64::from(rec.attempts.saturating_sub(1)));
            counters.add(Ctr::JobTimeouts, u64::from(rec.timeouts));
            if rec.status() == JobStatus::Quarantined {
                counters.add(Ctr::JobQuarantines, 1);
            }
        }
        SupervisionReport { records, counters }
    }

    fn supervise_one<T, F>(&self, env: &JobEnvelope, runner: &F) -> JobRecord<T>
    where
        F: Fn(&JobEnvelope, &Attempt) -> Result<T, DcfbError> + Sync,
    {
        let id = env.id();
        let digest = env.config_digest();
        if let Some(entry) = lock(&self.quarantine).get(&digest).cloned() {
            return JobRecord {
                id: id.clone(),
                config_digest: digest.clone(),
                attempts: 0,
                backoff_units: Vec::new(),
                timeouts: 0,
                outcome: JobOutcome::Quarantined(DcfbError::Quarantined {
                    job: format!("{id} (skipped; first quarantined as {})", entry.job),
                    config_digest: digest,
                    failures: entry.failures,
                    last_error: entry.last_error,
                }),
            };
        }
        let deadline = self.effective_deadline(env);
        let job_key = hash_str(&id);
        let max_attempts = self.opts.max_attempts.max(1);
        let mut backoff_units = Vec::new();
        let mut timeouts = 0u32;
        let mut last_error = String::new();
        for attempt_idx in 0..max_attempts {
            let control = match deadline {
                Deadline::Instrs(n) => RunControl::with_budget(n),
                _ => RunControl::new(),
            };
            let watchdog = match deadline {
                Deadline::Wall(d) => Some(Watchdog::arm(&control, d)),
                _ => None,
            };
            let attempt = Attempt {
                index: attempt_idx,
                control,
            };
            let result = catch_unwind(AssertUnwindSafe(|| runner(env, &attempt)));
            if let Some(w) = watchdog {
                w.disarm();
            }
            match result {
                Ok(Ok(value)) => {
                    return JobRecord {
                        id,
                        config_digest: digest,
                        attempts: attempt_idx + 1,
                        backoff_units,
                        timeouts,
                        outcome: JobOutcome::Completed(value),
                    };
                }
                Ok(Err(e)) => {
                    if matches!(e, DcfbError::Timeout { .. }) {
                        timeouts += 1;
                    }
                    last_error = e.to_string();
                }
                Err(payload) => {
                    last_error = format!("panicked: {}", panic_message(payload.as_ref()));
                }
            }
            if attempt_idx + 1 < max_attempts {
                let units = self
                    .opts
                    .backoff
                    .delay_units(self.opts.seed, job_key, attempt_idx);
                backoff_units.push(units);
                if !self.opts.unit.is_zero() {
                    std::thread::sleep(self.opts.unit.saturating_mul(units.min(3600) as u32));
                }
            }
        }
        lock(&self.quarantine).insert(
            digest.clone(),
            QuarantineEntry {
                job: id.clone(),
                failures: max_attempts,
                last_error: last_error.clone(),
            },
        );
        JobRecord {
            id: id.clone(),
            config_digest: digest.clone(),
            attempts: max_attempts,
            backoff_units,
            timeouts,
            outcome: JobOutcome::Quarantined(DcfbError::Quarantined {
                job: id,
                config_digest: digest,
                failures: max_attempts,
                last_error,
            }),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn test_opts() -> SupervisorOptions {
        SupervisorOptions {
            unit: Duration::ZERO,
            jobs: 2,
            ..SupervisorOptions::default()
        }
    }

    fn small_env(method: &str) -> JobEnvelope {
        JobEnvelope::new(runs::workloads()[0].name, method)
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let p = BackoffPolicy {
            base_units: 2,
            factor: 3,
            cap_units: 40,
        };
        let key = hash_str("SN4L/gauss");
        let a: Vec<u64> = (0..6).map(|i| p.delay_units(42, key, i)).collect();
        let b: Vec<u64> = (0..6).map(|i| p.delay_units(42, key, i)).collect();
        assert_eq!(a, b, "same seed/job/attempt must give the same delay");
        // Jitter stays inside [exp/2, exp] for the capped exponential.
        let mut exp = 2u64;
        for (i, d) in a.iter().enumerate() {
            assert!(*d >= exp / 2 && *d <= exp, "attempt {i}: {d} vs exp {exp}");
            exp = (exp * 3).min(40);
        }
        // A different seed or job perturbs the schedule.
        let c: Vec<u64> = (0..6).map(|i| p.delay_units(43, key, i)).collect();
        let d: Vec<u64> = (0..6)
            .map(|i| p.delay_units(42, hash_str("other/job"), i))
            .collect();
        assert!(a != c || a != d, "jitter must depend on seed and job");
    }

    #[test]
    fn transient_failure_retries_then_completes() {
        let sup = Supervisor::new(test_opts());
        let calls = AtomicU32::new(0);
        let report = sup.run_with(vec![small_env("Baseline")], |_, attempt| {
            calls.fetch_add(1, Ordering::SeqCst);
            if attempt.index == 0 {
                panic!("injected transient fault");
            }
            Ok::<u32, DcfbError>(7)
        });
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        let rec = &report.records[0];
        assert_eq!(rec.status(), JobStatus::Retried);
        assert_eq!(rec.attempts, 2);
        assert_eq!(rec.backoff_units.len(), 1);
        assert_eq!(rec.value(), Some(&7));
        assert_eq!(report.counters.get(Ctr::JobRetries), 1);
        assert_eq!(report.counters.get(Ctr::JobQuarantines), 0);
        assert!(report.accounted());
    }

    #[test]
    fn permanent_failure_quarantines_after_max_attempts() {
        let sup = Supervisor::new(test_opts());
        let calls = AtomicU32::new(0);
        let env = small_env("Baseline");
        let report = sup.run_with(vec![env.clone()], |_, _| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err::<u32, DcfbError>(DcfbError::Run {
                workload: "w".into(),
                method: "m".into(),
                message: "injected permanent fault".into(),
            })
        });
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        let rec = &report.records[0];
        assert_eq!(rec.status(), JobStatus::Quarantined);
        assert_eq!(rec.attempts, 3);
        assert_eq!(rec.backoff_units.len(), 2);
        match &rec.outcome {
            JobOutcome::Quarantined(DcfbError::Quarantined {
                failures,
                last_error,
                config_digest,
                ..
            }) => {
                assert_eq!(*failures, 3);
                assert!(last_error.contains("injected permanent fault"));
                assert_eq!(config_digest, &env.config_digest());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(report.counters.get(Ctr::JobQuarantines), 1);
        assert_eq!(report.counters.get(Ctr::JobRetries), 2);
        // Resubmitting the same config skips straight to quarantine
        // without running (the quarantine list persists).
        let report2 = sup.run_with(vec![env], |_, _| Ok::<u32, DcfbError>(1));
        assert_eq!(calls.load(Ordering::SeqCst), 3, "skipped, not re-run");
        assert_eq!(report2.records[0].attempts, 0);
        assert_eq!(report2.records[0].status(), JobStatus::Quarantined);
        assert_eq!(report2.counters.get(Ctr::JobQuarantines), 1);
        assert_eq!(sup.quarantined_digests().len(), 1);
    }

    #[test]
    fn instr_deadline_cancels_mid_simulation() {
        // A budget far below warmup interrupts the run mid-simulation;
        // the supervisor classifies it as a timeout and, with every
        // attempt timing out, quarantines the job.
        let mut opts = test_opts();
        opts.max_attempts = 2;
        let sup = Supervisor::new(opts);
        let mut env = small_env("Baseline");
        env.deadline = Deadline::Instrs(5_000);
        let report = sup.run(vec![env]);
        let rec = &report.records[0];
        assert_eq!(rec.status(), JobStatus::Quarantined);
        assert_eq!(rec.timeouts, 2);
        assert_eq!(report.counters.get(Ctr::JobTimeouts), 2);
        match &rec.outcome {
            JobOutcome::Quarantined(DcfbError::Quarantined { last_error, .. }) => {
                assert!(last_error.contains("timed out"), "{last_error}");
                assert!(last_error.contains("instruction budget"), "{last_error}");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn fault_free_supervised_run_matches_unsupervised() {
        // Jobs-parity: with no faults, the supervised pool produces
        // byte-identical reports to the plain runner, in submission
        // order, at any worker count.
        let w = runs::workloads()[0].clone();
        let methods = ["Baseline", "SN4L"];
        let expected: Vec<String> = methods
            .iter()
            .map(|m| format!("{:?}", runs::run(&w, runs::method_config(m))))
            .collect();
        for jobs in [1, 2] {
            let mut opts = test_opts();
            opts.jobs = jobs;
            let sup = Supervisor::new(opts);
            let report = sup.run(
                methods
                    .iter()
                    .map(|m| JobEnvelope::new(w.name, m))
                    .collect(),
            );
            assert!(report.accounted());
            assert_eq!(report.count(JobStatus::Completed), methods.len());
            let got: Vec<String> = report
                .records
                .iter()
                .map(|r| format!("{:?}", r.value().unwrap()))
                .collect();
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn wall_deadline_watchdog_cancels() {
        // The watchdog path: an attempt that spins on its control until
        // cancelled is stopped by a short wall deadline. The test only
        // depends on the cancel arriving, not on when.
        let mut opts = test_opts();
        opts.max_attempts = 1;
        let sup = Supervisor::new(opts);
        let mut env = small_env("Baseline");
        env.deadline = Deadline::Wall(Duration::from_millis(20));
        let report = sup.run_with(vec![env.clone()], |env, attempt| {
            while !attempt.control.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err::<u32, DcfbError>(DcfbError::Timeout {
                workload: env.workload.clone(),
                method: env.method.clone(),
                deadline: env.deadline.describe(),
            })
        });
        let rec = &report.records[0];
        assert_eq!(rec.status(), JobStatus::Quarantined);
        assert_eq!(rec.timeouts, 1);
    }

    #[test]
    fn envelope_identity() {
        let env = small_env("SN4L");
        assert_eq!(env.id(), format!("SN4L/{}", env.workload));
        let d = env.config_digest();
        assert_eq!(d.len(), 16);
        assert_eq!(d, env.config_digest(), "digest is stable");
        assert_ne!(d, small_env("NL").config_digest());
    }
}
