//! Batch-run checkpointing for `all_experiments`.
//!
//! A [`Checkpoint`] is an ordered map from figure id to its rendered
//! markdown, persisted as a flat JSON object of strings
//! (`{"fig01": "…", …}`). Completed figures are saved after each one
//! finishes; a later invocation with `DCFB_RESUME=1` loads the file and
//! skips everything already present, so a batch killed halfway (or one
//! with a crashing figure) does not redo hours of simulation.
//!
//! The format uses no external dependencies: the writer escapes the
//! JSON string subset it needs, and the reader parses exactly that
//! shape (an object whose keys and values are strings), rejecting
//! anything else. Checkpoints written by a different build are safe to
//! load — worst case the markdown is regenerated.
//!
//! Mirroring the trace v2 strict/lenient split, there are two readers:
//! [`Checkpoint::from_json`] rejects any damage (the safe default for
//! untrusted files), while [`Checkpoint::from_json_lenient`] salvages
//! every complete `"figure": "markdown"` entry before the first syntax
//! problem — so a checkpoint truncated by a mid-write kill costs only
//! the torn tail entry, not the whole batch's progress.

use dcfb_errors::DcfbError;
use std::path::{Path, PathBuf};

/// Environment variable enabling resume from a checkpoint.
pub const RESUME_ENV: &str = "DCFB_RESUME";

/// Environment variable overriding the checkpoint file location.
pub const CHECKPOINT_PATH_ENV: &str = "DCFB_CHECKPOINT";

/// The default checkpoint location.
pub const DEFAULT_CHECKPOINT_PATH: &str = "target/all_experiments.checkpoint.json";

/// Completed (figure id → markdown) results of a batch run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Checkpoint {
    entries: Vec<(String, String)>,
}

impl Checkpoint {
    /// An empty checkpoint.
    pub fn new() -> Self {
        Checkpoint::default()
    }

    /// The checkpoint path from the environment (or the default).
    pub fn default_path() -> PathBuf {
        std::env::var_os(CHECKPOINT_PATH_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(DEFAULT_CHECKPOINT_PATH))
    }

    /// Whether `DCFB_RESUME=1` is set.
    pub fn resume_requested() -> bool {
        std::env::var(RESUME_ENV).is_ok_and(|v| v == "1")
    }

    /// Number of completed figures recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has completed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every `(id, value)` entry, in insertion order. The serve crate
    /// scans this to recover its job records on restart.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// The markdown recorded for `id`, if that figure completed.
    pub fn get(&self, id: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == id)
            .map(|(_, v)| v.as_str())
    }

    /// Records (or replaces) the markdown for `id`.
    pub fn put(&mut self, id: &str, markdown: &str) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| k == id) {
            slot.1 = markdown.to_owned();
        } else {
            self.entries.push((id.to_owned(), markdown.to_owned()));
        }
    }

    /// Serializes to the flat JSON object format.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.entries.iter().enumerate() {
            out.push_str("  ");
            escape_into(k, &mut out);
            out.push_str(": ");
            escape_into(v, &mut out);
            if i + 1 < self.entries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push('}');
        out
    }

    /// Parses the flat JSON object format.
    ///
    /// # Errors
    ///
    /// Returns [`DcfbError::Config`] naming the byte offset of the
    /// first syntax problem.
    pub fn from_json(text: &str) -> Result<Self, DcfbError> {
        Parser::new(text).object()
    }

    /// Parses the flat JSON object format leniently: every complete
    /// `"key": "value"` entry before the first syntax problem is
    /// salvaged. Returns the salvaged checkpoint plus the one-line
    /// reason parsing stopped early (`None` for an undamaged file).
    pub fn from_json_lenient(text: &str) -> (Self, Option<String>) {
        let mut p = Parser::new(text);
        let mut cp = Checkpoint::new();
        let reason = p.object_into(&mut cp).err().map(|e| e.to_string());
        (cp, reason)
    }

    /// Writes the checkpoint to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns [`DcfbError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), DcfbError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| DcfbError::io(dir.display().to_string(), &e))?;
            }
        }
        std::fs::write(path, self.to_json())
            .map_err(|e| DcfbError::io(path.display().to_string(), &e))
    }

    /// Loads a checkpoint from `path`. A missing file is an empty
    /// checkpoint (nothing completed yet); a malformed one is an error,
    /// not silently discarded progress.
    ///
    /// # Errors
    ///
    /// Returns [`DcfbError::Io`] on read failure (other than
    /// not-found) and [`DcfbError::Config`] on malformed JSON.
    pub fn load(path: &Path) -> Result<Self, DcfbError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Checkpoint::new());
            }
            Err(e) => return Err(DcfbError::io(path.display().to_string(), &e)),
        };
        Checkpoint::from_json(&text)
    }

    /// Loads a checkpoint from `path` leniently: a truncated or corrupt
    /// file yields the salvageable prefix plus the reason, instead of
    /// discarding all recorded progress. A missing file is an empty
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`DcfbError::Io`] on read failure other than not-found
    /// (damage is salvaged, but an unreadable file is still an error).
    pub fn load_lenient(path: &Path) -> Result<(Self, Option<String>), DcfbError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((Checkpoint::new(), None));
            }
            Err(e) => return Err(DcfbError::io(path.display().to_string(), &e)),
        };
        Ok(Checkpoint::from_json_lenient(&text))
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parser for exactly the object-of-strings subset this module
/// writes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> DcfbError {
        DcfbError::Config(format!(
            "malformed checkpoint JSON at byte {}: {what}",
            self.pos
        ))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\r' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), DcfbError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn object(&mut self) -> Result<Checkpoint, DcfbError> {
        let mut cp = Checkpoint::new();
        self.object_into(&mut cp)?;
        Ok(cp)
    }

    /// Parses the object into `cp` entry by entry. Each complete
    /// `"key": "value"` pair is recorded before the separator after it
    /// is examined, so on error `cp` holds exactly the salvageable
    /// prefix — the strict path discards it, the lenient path keeps it.
    fn object_into(&mut self, cp: &mut Checkpoint) -> Result<(), DcfbError> {
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
        } else {
            loop {
                let key = self.string()?;
                self.expect(b':')?;
                let value = self.string()?;
                cp.put(&key, &value);
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected ',' or '}'")),
                }
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing data"));
        }
        Ok(())
    }

    fn string(&mut self) -> Result<String, DcfbError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("bad \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b => {
                    // Re-decode UTF-8 continuation bytes as written.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_plain_and_tricky_strings() {
        let mut cp = Checkpoint::new();
        cp.put("fig01", "| a | b |\n|---|---|\n| 1 | 2 |\n");
        cp.put("tab1", "quotes \" and \\ backslashes\tand tabs");
        cp.put("fig02", "unicode: §VII-D — 88% ✓");
        let json = cp.to_json();
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn put_replaces_existing_entries() {
        let mut cp = Checkpoint::new();
        cp.put("fig01", "old");
        cp.put("fig01", "new");
        assert_eq!(cp.len(), 1);
        assert_eq!(cp.get("fig01"), Some("new"));
        assert_eq!(cp.get("missing"), None);
    }

    #[test]
    fn empty_object_round_trips() {
        let cp = Checkpoint::new();
        let back = Checkpoint::from_json(&cp.to_json()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn malformed_json_is_rejected() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\": 1}",
            "{\"a\": \"b\",}",
            "{\"a\": \"b\"} trailing",
            "[\"a\"]",
            "{\"a\": \"unterminated}",
        ] {
            let err = Checkpoint::from_json(bad).unwrap_err();
            assert!(matches!(err, DcfbError::Config(_)), "{bad:?} gave {err:?}");
        }
    }

    #[test]
    fn lenient_parse_salvages_valid_prefix() {
        let mut cp = Checkpoint::new();
        cp.put("fig01", "one\ntwo");
        cp.put("fig02", "quotes \" and \\");
        cp.put("fig03", "tail");
        let json = cp.to_json();
        // Truncate at every byte offset: the salvage must never error,
        // never invent entries, and always keep a prefix of the
        // original entry list with intact values.
        for cut in 0..json.len() {
            let (got, reason) = Checkpoint::from_json_lenient(&json[..cut]);
            assert!(reason.is_some(), "truncation at {cut} reported no damage");
            assert!(got.len() <= cp.len());
            for (i, (k, v)) in got.entries.iter().enumerate() {
                assert_eq!((k, v), (&cp.entries[i].0, &cp.entries[i].1), "cut {cut}");
            }
        }
        // Cutting just past the last value's closing quote keeps all
        // three entries even though the object never closed.
        let cut = json.rfind('"').unwrap() + 1;
        let (got, reason) = Checkpoint::from_json_lenient(&json[..cut]);
        assert_eq!(got, cp);
        assert!(reason.unwrap().contains("byte"), "reason names the offset");
        // An undamaged file salvages completely with no reason.
        let (got, reason) = Checkpoint::from_json_lenient(&json);
        assert_eq!(got, cp);
        assert!(reason.is_none());
    }

    #[test]
    fn lenient_parse_of_garbage_is_empty_with_reason() {
        for bad in ["", "not json", "[\"a\"]", "{\"a\": 1}"] {
            let (got, reason) = Checkpoint::from_json_lenient(bad);
            assert!(got.is_empty(), "{bad:?}");
            assert!(reason.is_some(), "{bad:?}");
        }
    }

    #[test]
    fn load_lenient_handles_missing_and_truncated_files() {
        let (cp, reason) =
            Checkpoint::load_lenient(Path::new("/nonexistent/dcfb/checkpoint.json")).unwrap();
        assert!(cp.is_empty());
        assert!(reason.is_none());

        let dir = std::env::temp_dir().join(format!("dcfb-ckpt-lenient-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.json");
        let mut full = Checkpoint::new();
        full.put("fig01", "alpha");
        full.put("fig02", "beta");
        let json = full.to_json();
        // Cut inside the second value: only fig01 survives.
        let cut = json.find("beta").unwrap() + 2;
        std::fs::write(&path, &json[..cut]).unwrap();
        let (cp, reason) = Checkpoint::load_lenient(&path).unwrap();
        assert_eq!(cp.len(), 1);
        assert_eq!(cp.get("fig01"), Some("alpha"));
        assert!(reason.unwrap().contains("malformed checkpoint JSON"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("dcfb-checkpoint-test-{}", std::process::id()));
        let path = dir.join("nested/checkpoint.json");
        let mut cp = Checkpoint::new();
        cp.put("fig16", "## Fig 16\nspeedups\n");
        cp.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back, cp);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_loads_empty() {
        let cp = Checkpoint::load(Path::new("/nonexistent/dcfb/checkpoint.json")).unwrap();
        assert!(cp.is_empty());
    }
}
