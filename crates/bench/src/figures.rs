//! One generator per table/figure in the paper's evaluation.
//!
//! Each function runs the required simulations (at the harness scale)
//! and returns a [`Table`] whose *shape* should match the paper: who
//! wins, by roughly what factor, where the crossovers fall. Absolute
//! numbers differ — the substrate is a synthetic-trace simulator, not
//! the authors' Flexus testbed (see DESIGN.md).

use crate::runs::{
    baseline, image_for, measure_instrs, method_config, run, run_all, run_all_with_baseline,
    run_method_all, scaled, workloads, TRACE_SEED,
};
use crate::sweep::parallel_map;
use crate::table::Table;
use dcfb_frontend::ShotgunBtbConfig;
use dcfb_prefetch::{Sn4lDisConfig, TagPolicy};
use dcfb_sim::analysis;
use dcfb_sim::{PrefetcherKind, SimConfig};
use dcfb_trace::IsaMode;
use dcfb_workloads::Walker;

/// Fig. 1 — Shotgun U-BTB footprint miss ratio per workload (paper:
/// 4–31 %, worst on OLTP DB A).
pub fn fig01_footprint_miss() -> Table {
    let mut t = Table::new(
        "Fig. 1",
        "Footprint miss ratio in Shotgun's U-BTB",
        &["Workload", "Footprint miss ratio"],
    );
    for (w, rep, _) in run_method_all("Shotgun") {
        // The Shotgun runner always attaches its stats; render a
        // placeholder rather than aborting the sweep if it ever stops.
        let cell = match rep.shotgun {
            Some(sh) => Table::pct(sh.footprint_miss_ratio()),
            None => "n/a".to_owned(),
        };
        t.row(vec![w.name.to_owned(), cell]);
    }
    t.note("Paper: 4-31%, highest on OLTP (DB A).");
    t
}

/// Table I — fraction of cycles stalled on an empty FTQ in Shotgun
/// (paper: 1.6–18.9 %).
pub fn tab1_empty_ftq() -> Table {
    let mut t = Table::new(
        "Table I",
        "Empty-FTQ stall cycles in Shotgun",
        &["Workload", "Fraction of cycles"],
    );
    for (w, rep, _) in run_method_all("Shotgun") {
        t.row(vec![
            w.name.to_owned(),
            Table::pct(rep.empty_ftq_fraction()),
        ]);
    }
    t.note("Paper: 1.64% (OLTP DB B) to 18.87% (OLTP DB A).");
    t
}

/// Fig. 2 — fraction of L1i misses that are sequential (paper:
/// 65–80 %).
pub fn fig02_seq_fraction() -> Table {
    let mut t = Table::new(
        "Fig. 2",
        "Fraction of sequential cache misses (no prefetcher)",
        &["Workload", "Sequential fraction"],
    );
    for (w, rep) in parallel_map(workloads(), |w| (w.clone(), baseline(w))) {
        t.row(vec![w.name.to_owned(), Table::pct(rep.seq_miss_fraction())]);
    }
    t.note("Paper: 65-80% of L1i misses are sequential.");
    t
}

/// Fig. 3 — NL *sequential* miss coverage (paper: ≈ 63 % average).
pub fn fig03_nl_coverage() -> Table {
    let mut t = Table::new(
        "Fig. 3",
        "NL sequential miss coverage",
        &["Workload", "Sequential-miss coverage"],
    );
    let mut sum = 0.0;
    let mut n = 0.0f64;
    for (w, rep, base) in run_method_all("NL") {
        let base_rate = base.seq_misses as f64 / base.instrs.max(1) as f64;
        let own_rate = rep.seq_misses as f64 / rep.instrs.max(1) as f64;
        let coverage = if base_rate > 0.0 {
            1.0 - own_rate / base_rate
        } else {
            0.0
        };
        sum += coverage;
        n += 1.0;
        t.row(vec![w.name.to_owned(), Table::pct(coverage)]);
    }
    t.row(vec!["Average".to_owned(), Table::pct(sum / n.max(1.0))]);
    t.note("Paper: 63% average — NL's timeliness leaves ~37% of sequential misses.");
    t
}

/// Fig. 4 — CMAL for NL / N2L / N4L / N8L (paper: 65 / 80 / 88 / 85 %).
pub fn fig04_cmal_nxl() -> Table {
    let mut t = Table::new(
        "Fig. 4",
        "Covered Memory Access Latency of sequential prefetchers",
        &["Prefetcher", "CMAL (avg)"],
    );
    for method in ["NL", "N2L", "N4L", "N8L"] {
        let mut cfgd = method_config(method);
        cfgd.use_prefetch_buffer = true;
        let mut covered = 0.0;
        let mut total = 0.0;
        for (_, rep) in run_all(&cfgd) {
            covered += rep.cmal_covered;
            total += rep.cmal_total;
        }
        let cmal = if total > 0.0 { covered / total } else { 0.0 };
        t.row(vec![method.to_owned(), Table::pct(cmal)]);
    }
    t.note(
        "Paper: NL 65%, N2L 80%, N4L 88%, N8L 85% — N8L loses to N4L from self-inflicted traffic.",
    );
    t
}

/// Fig. 5 — side effects of useless prefetches: average LLC latency and
/// L1i external bandwidth vs. baseline (paper: N8L +28 % latency, 7.2×
/// bandwidth).
pub fn fig05_side_effects() -> Table {
    let mut t = Table::new(
        "Fig. 5",
        "LLC access latency and L1i external bandwidth (normalized)",
        &["Prefetcher", "LLC latency", "External bandwidth"],
    );
    for method in ["NL", "N2L", "N4L", "N8L"] {
        let mut cfgd = method_config(method);
        cfgd.use_prefetch_buffer = true;
        let mut lat = 0.0;
        let mut bw = 0.0;
        let mut n = 0.0;
        for (_, rep, base) in run_all_with_baseline(&cfgd) {
            lat += rep.llc_latency_over(&base);
            bw += rep.bandwidth_over(&base);
            n += 1.0;
        }
        t.row(vec![method.to_owned(), Table::x(lat / n), Table::x(bw / n)]);
    }
    t.note("Paper: N8L inflates LLC latency by 28% at 7.2x external bandwidth.");
    t
}

/// Fig. 6 — predictability of the 4-subsequent-block access pattern
/// (paper: ≈ 92 %).
pub fn fig06_pattern_pred() -> Table {
    let mut t = Table::new(
        "Fig. 6",
        "Predictability of the four-subsequent-block access pattern",
        &["Workload", "Prediction accuracy"],
    );
    let limit = measure_instrs();
    let rows = parallel_map(workloads(), |w| {
        let image = image_for(w, IsaMode::Fixed4);
        let mut walker = Walker::new(image, TRACE_SEED);
        let p =
            analysis::pattern_predictability(&mut walker, dcfb_cache::CacheConfig::l1i(), limit);
        (w.name.to_owned(), p)
    });
    for (name, p) in rows {
        t.row(vec![name, Table::pct(p)]);
    }
    t.note("Paper: 92% on average.");
    t
}

/// Fig. 7 — stability of the branch causing a block's discontinuity
/// (paper: 78–83 %).
pub fn fig07_branch_stability() -> Table {
    let mut t = Table::new(
        "Fig. 7",
        "Predictability of the discontinuity-causing branch",
        &["Workload", "Same-branch fraction"],
    );
    let limit = measure_instrs();
    let rows = parallel_map(workloads(), |w| {
        let image = image_for(w, IsaMode::Fixed4);
        let mut walker = Walker::new(image, TRACE_SEED);
        (
            w.name.to_owned(),
            analysis::discontinuity_stability(&mut walker, limit),
        )
    });
    for (name, s) in rows {
        t.row(vec![name, Table::pct(s)]);
    }
    t.note("Paper: 78% (Web Apache) to 83% (OLTP DB A), 80% average.");
    t
}

/// Fig. 8 — uncovered branches vs. branches per branch footprint
/// (paper: 4 offsets cover almost all branches).
pub fn fig08_bf_branches() -> Table {
    let mut t = Table::new(
        "Fig. 8",
        "Uncovered branches vs. branch-footprint capacity",
        &["Branches per BF", "Uncovered branches (avg)"],
    );
    for per_bf in [1usize, 2, 3, 4, 6, 8] {
        let covs = parallel_map(workloads(), |w| {
            analysis::branch_footprint_coverage(&image_for(w, IsaMode::Fixed4), per_bf)
        });
        let n = covs.len().max(1) as f64;
        t.row(vec![
            per_bf.to_string(),
            Table::pct(covs.iter().sum::<f64>() / n),
        ]);
    }
    t.note("Paper: storing 4 branch offsets per 64 B block covers almost all branches.");
    t
}

/// Fig. 9 — uncovered branch footprints vs. BF slots per LLC set
/// (paper: 2 → ~2 %, 3 → 0.4 %, 4 → 0.2 %).
pub fn fig09_bf_per_set() -> Table {
    let mut t = Table::new(
        "Fig. 9",
        "Uncovered branch footprints vs. BF slots per LLC set",
        &["BFs per set", "Uncovered (avg)"],
    );
    let limit = measure_instrs();
    // One core-visible LLC slice: 2 MiB / 64 B / 16 ways = 2048 sets.
    for slots in [1usize, 2, 3, 4] {
        let covs = parallel_map(workloads(), |w| {
            let image = image_for(w, IsaMode::Fixed4);
            let mut walker = Walker::new(image, TRACE_SEED);
            analysis::bf_per_set_coverage(&mut walker, 2048, slots, limit)
        });
        let n = covs.len().max(1) as f64;
        t.row(vec![
            slots.to_string(),
            Table::pct(covs.iter().sum::<f64>() / n),
        ]);
    }
    t.note("Paper: 2 slots leave ~2%, 3 leave 0.4%, 4 leave 0.2% of BFs uncovered.");
    t
}

/// Fig. 11 — miss coverage vs. SeqTable and DisTable size (paper: 16 K
/// SeqTable reaches 96 % of unlimited; 4 K DisTable reaches 97 %).
pub fn fig11_table_sizes() -> Table {
    let mut t = Table::new(
        "Fig. 11",
        "Miss coverage vs. metadata table size",
        &["Configuration", "Coverage (avg)"],
    );
    let avg_coverage = |kind: PrefetcherKind| {
        let mut cfg = scaled(SimConfig::default());
        cfg.prefetcher = kind;
        let mut sum = 0.0;
        let mut n = 0.0;
        for (_, rep, base) in run_all_with_baseline(&cfg) {
            sum += rep.miss_coverage_over(&base);
            n += 1.0;
        }
        sum / n
    };
    for entries in [2048usize, 4096, 16 * 1024, 64 * 1024] {
        let cov = avg_coverage(PrefetcherKind::Sn4l {
            seq_entries: entries,
        });
        t.row(vec![
            format!("SN4L, {}K SeqTable", entries / 1024),
            Table::pct(cov),
        ]);
    }
    let unlimited = avg_coverage(PrefetcherKind::Sn4l {
        seq_entries: 1 << 24,
    });
    t.row(vec!["SN4L, unlimited".to_owned(), Table::pct(unlimited)]);
    for entries in [1024usize, 4096, 16 * 1024] {
        let mut c = Sn4lDisConfig::without_btb();
        c.dis_entries = entries;
        let cov = avg_coverage(PrefetcherKind::Sn4lDis(c));
        t.row(vec![
            format!("SN4L+Dis, {}K DisTable", entries / 1024),
            Table::pct(cov),
        ]);
    }
    let mut c = Sn4lDisConfig::without_btb();
    c.dis_entries = 1 << 22;
    c.dis_tag = TagPolicy::Full;
    let unl = avg_coverage(PrefetcherKind::Sn4lDis(c));
    t.row(vec!["SN4L+Dis, unlimited".to_owned(), Table::pct(unl)]);
    t.note(
        "Paper: 16K-entry SeqTable gives 96% of unlimited coverage; 4K-entry DisTable gives 97%.",
    );
    t
}

/// Fig. 12 — DisTable overprediction under different tagging policies
/// (paper: tagless ≫ 4-bit partial ≈ full).
pub fn fig12_tagging() -> Table {
    let mut t = Table::new(
        "Fig. 12",
        "Overprediction of DisTable tagging policies",
        &["Policy", "Useless prefetches / 1K instr (avg)"],
    );
    for (name, tag) in [
        ("Tagless", TagPolicy::Tagless),
        ("4-bit partial", TagPolicy::Partial(4)),
        ("Full", TagPolicy::Full),
    ] {
        let mut cfg = scaled(SimConfig::default());
        cfg.prefetcher = PrefetcherKind::Dis {
            dis_entries: 4 * 1024,
            tag,
        };
        let mut sum = 0.0;
        let mut n = 0.0;
        for (_, rep) in run_all(&cfg) {
            sum += rep.l1i.useless_prefetch_evictions as f64 * 1000.0 / rep.instrs.max(1) as f64;
            n += 1.0;
        }
        t.row(vec![name.to_owned(), format!("{:.2}", sum / n)]);
    }
    t.note("Paper: the tagless table overpredicts heavily; a 4-bit partial tag nearly matches a full tag.");
    t
}

/// Fig. 13 — timeliness (CMAL) of N4L, SN4L, Dis, SN4L+Dis+BTB (paper:
/// 88 / 93 / 89 / 91 %).
pub fn fig13_timeliness() -> Table {
    let mut t = Table::new(
        "Fig. 13",
        "Timeliness (CMAL) of the proposed prefetchers",
        &["Prefetcher", "CMAL (avg)"],
    );
    for method in ["N4L", "SN4L", "Dis", "SN4L+Dis+BTB"] {
        let cfg = method_config(method);
        let mut covered = 0.0;
        let mut total = 0.0;
        for (_, rep) in run_all(&cfg) {
            covered += rep.cmal_covered;
            total += rep.cmal_total;
        }
        let cmal = if total > 0.0 { covered / total } else { 0.0 };
        t.row(vec![method.to_owned(), Table::pct(cmal)]);
    }
    t.note("Paper: N4L 88%, SN4L 93%, Dis 89%, SN4L+Dis+BTB 91%.");
    t
}

/// Fig. 14 — cache lookups normalized to no-prefetcher (RLU
/// effectiveness; paper: Confluence lowest, ours ≈ Shotgun).
pub fn fig14_lookups() -> Table {
    let mut t = Table::new(
        "Fig. 14",
        "L1i lookups, normalized to a machine with no prefetcher",
        &["Method", "Lookups (avg)"],
    );
    for method in ["N4L", "SN4L+Dis+BTB", "Shotgun", "Confluence"] {
        let mut sum = 0.0;
        let mut n = 0.0;
        for (_, rep, base) in run_method_all(method) {
            sum += rep.lookups_over(&base);
            n += 1.0;
        }
        t.row(vec![method.to_owned(), Table::x(sum / n)]);
    }
    // RLU ablation: the combined engine without an effective RLU
    // (capacity 1) versus the paper's 8-entry filter.
    for (label, rlu) in [
        ("SN4L+Dis+BTB (RLU=1)", 1usize),
        ("SN4L+Dis+BTB (RLU=8)", 8),
    ] {
        let mut c = Sn4lDisConfig::default();
        c.rlu_entries = rlu;
        let mut cfg = scaled(SimConfig::default());
        cfg.prefetcher = PrefetcherKind::Sn4lDis(c);
        let mut sum = 0.0;
        let mut n = 0.0;
        for (_, rep, base) in run_all_with_baseline(&cfg) {
            sum += rep.lookups_over(&base);
            n += 1.0;
        }
        t.row(vec![label.to_owned(), Table::x(sum / n)]);
    }
    t.note("Paper: an 8-entry RLU suffices; Confluence needs the fewest lookups; ours ≈ Shotgun.");
    t
}

/// Fig. 15 — Frontend Stall Cycle Reduction (paper: ours 61 %, Shotgun
/// 35 %, Confluence 32 %).
pub fn fig15_fscr() -> Table {
    let mut t = Table::new(
        "Fig. 15",
        "Frontend stall-cycle reduction (FSCR)",
        &["Workload", "SN4L+Dis+BTB", "Shotgun", "Confluence"],
    );
    let methods = ["SN4L+Dis+BTB", "Shotgun", "Confluence"];
    let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    // One parallel item per workload row (each runs its baseline plus
    // all three methods); rows land in workload order.
    let rows = parallel_map(workloads(), |w| {
        let base = baseline(w);
        let fscrs: Vec<f64> = methods
            .iter()
            .map(|m| run(w, method_config(m)).fscr_over(&base))
            .collect();
        (w.name.to_owned(), fscrs)
    });
    for (name, fscrs) in rows {
        let mut cells = vec![name];
        for (k, fscr) in fscrs.into_iter().enumerate() {
            per_method[k].push(fscr);
            cells.push(Table::pct(fscr));
        }
        t.row(cells);
    }
    let mut avg = vec!["Average".to_owned()];
    for v in &per_method {
        avg.push(Table::pct(v.iter().sum::<f64>() / v.len().max(1) as f64));
    }
    t.row(avg);
    t.note("Paper: SN4L+Dis+BTB 61%, Shotgun 35%, Confluence 32% on average.");
    t
}

/// Fig. 16 — speedup over the no-prefetcher baseline (paper: ours 19 %
/// avg, 7–50 %; +5 % over Shotgun, +16 % on OLTP DB A).
pub fn fig16_speedup() -> Table {
    let mut t = Table::new(
        "Fig. 16",
        "Speedup over a baseline with no instruction/BTB prefetcher",
        &["Workload", "SN4L+Dis+BTB", "Shotgun", "Confluence"],
    );
    let methods = ["SN4L+Dis+BTB", "Shotgun", "Confluence"];
    let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    let rows = parallel_map(workloads(), |w| {
        let base = baseline(w);
        let speedups: Vec<f64> = methods
            .iter()
            .map(|m| run(w, method_config(m)).speedup_over(&base))
            .collect();
        (w.name.to_owned(), speedups)
    });
    for (name, speedups) in rows {
        let mut cells = vec![name];
        for (k, s) in speedups.into_iter().enumerate() {
            per_method[k].push(s);
            cells.push(Table::x(s));
        }
        t.row(cells);
    }
    let mut avg = vec!["Geomean".to_owned()];
    for v in &per_method {
        avg.push(Table::x(dcfb_sim::experiment::geomean(v.iter().copied())));
    }
    t.row(avg);
    t.note("Paper: SN4L+Dis+BTB +19% average (range +7% Web Frontend to +50% Media Streaming), 5% over Shotgun, 16% over Shotgun on OLTP (DB A).");
    t
}

/// Fig. 17 — performance breakdown: N4L, SN4L, SN4L+Dis, SN4L+Dis+BTB,
/// Perfect L1i, Perfect L1i + BTB∞ (paper: 13/15/19/—/29 %).
pub fn fig17_breakdown() -> Table {
    let mut t = Table::new(
        "Fig. 17",
        "Performance breakdown of SN4L+Dis+BTB components",
        &["Configuration", "Speedup (geomean)"],
    );
    let speedups_for = |cfg_for: &dyn Fn() -> SimConfig| {
        let cfg = cfg_for();
        let v: Vec<f64> = run_all_with_baseline(&cfg)
            .into_iter()
            .map(|(_, rep, base)| rep.speedup_over(&base))
            .collect();
        dcfb_sim::experiment::geomean(v)
    };
    for m in ["N4L", "SN4L", "SN4L+Dis", "SN4L+Dis+BTB"] {
        let s = speedups_for(&|| method_config(m));
        t.row(vec![m.to_owned(), Table::x(s)]);
    }
    let s = speedups_for(&|| {
        let mut cfg = scaled(SimConfig::default());
        cfg.perfect_l1i = true;
        cfg
    });
    t.row(vec!["Perfect L1i".to_owned(), Table::x(s)]);
    let s = speedups_for(&|| {
        let mut cfg = scaled(SimConfig::default());
        cfg.perfect_l1i = true;
        cfg.perfect_btb = true;
        cfg
    });
    t.row(vec!["Perfect L1i + BTB inf".to_owned(), Table::x(s)]);
    t.note("Paper: SN4L +13%, SN4L+Dis +15%, SN4L+Dis+BTB +19% (close to Perfect L1i), Perfect L1i+BTBinf +29%.");
    t
}

/// Fig. 18 — speedup of SN4L+Dis+BTB over Shotgun as the BTB shrinks
/// (paper: the gap widens as BTB size decreases).
pub fn fig18_btb_sweep() -> Table {
    let mut t = Table::new(
        "Fig. 18",
        "Speedup of SN4L+Dis+BTB over Shotgun vs. BTB size",
        &["BTB scale", "Ours / Shotgun (geomean)"],
    );
    for scale in [1.0f64, 0.5, 0.25, 0.125] {
        let ratios = parallel_map(workloads(), |w| {
            let mut ours = method_config("SN4L+Dis+BTB");
            let base_entries = ours.btb.entries;
            ours.btb.entries = ((base_entries as f64 * scale) as usize).max(64) / 4 * 4;
            let mut shot = method_config("Shotgun");
            shot.prefetcher = PrefetcherKind::Shotgun(ShotgunBtbConfig::scaled(scale));
            let ours_rep = run(w, ours);
            let shot_rep = run(w, shot);
            ours_rep.ipc() / shot_rep.ipc().max(1e-9)
        });
        t.row(vec![
            format!("{:.3}x", scale),
            Table::x(dcfb_sim::experiment::geomean(ratios)),
        ]);
    }
    t.note("Paper: as the BTB shrinks (larger effective footprints), the gap over Shotgun widens.");
    t
}

/// Table II — storage overhead and qualitative comparison.
pub fn tab2_storage() -> Table {
    let mut t = Table::new(
        "Table II",
        "SN4L+Dis+BTB and prior work",
        &["Property", "SN4L+Dis+BTB", "Shotgun", "Confluence"],
    );
    use dcfb_prefetch::{Confluence, InstrPrefetcher, Sn4lDisBtb};
    let ours = Sn4lDisBtb::paper_sized();
    let shotgun = dcfb_prefetch::Shotgun::paper_sized(0);
    let confl = Confluence::paper_sized();
    let kb = |bits: u64| format!("{:.1} KB", bits as f64 / 8.0 / 1024.0);
    t.row(vec![
        "Storage overhead".to_owned(),
        kb(ours.storage_bits()),
        kb(shotgun.storage_bits()),
        kb(confl.storage_bits()),
    ]);
    t.row(vec![
        "BTB modification".to_owned(),
        "No".to_owned(),
        "Yes (U/C/RIB split)".to_owned(),
        "Yes (AirBTB)".to_owned(),
    ]);
    t.row(vec![
        "Instruction prefetch buffer".to_owned(),
        "No".to_owned(),
        "Yes (64-entry)".to_owned(),
        "No".to_owned(),
    ]);
    t.row(vec![
        "Search complexity".to_owned(),
        "Low (2 direct-mapped tables)".to_owned(),
        "High (3 BTBs + 2 CAMs)".to_owned(),
        "High (2-step LLC chase)".to_owned(),
    ]);
    t.row(vec![
        "Modularity".to_owned(),
        "Yes".to_owned(),
        "No".to_owned(),
        "No".to_owned(),
    ]);
    t.row(vec![
        "Handles very large footprints".to_owned(),
        "Yes".to_owned(),
        "No (U-BTB bound)".to_owned(),
        "Yes".to_owned(),
    ]);
    t.note("Paper: 7.6 KB (ours) vs 6 KB (Shotgun) vs >200 KB virtualized (Confluence).");
    t
}

/// §VII-J — DV-LLC impact: instruction/data hit ratios with
/// virtualization on vs. off (paper: data hit ratio drops ≤ 0.1 %).
pub fn dvllc_impact() -> Table {
    let mut t = Table::new(
        "SVII-J",
        "DV-LLC impact on LLC hit ratios (variable-length ISA)",
        &[
            "Workload",
            "Instr hit (DV)",
            "Instr hit (off)",
            "Data-side capacity cost",
        ],
    );
    let subset: Vec<_> = workloads().into_iter().take(3).collect();
    let rows = parallel_map(subset, |w| {
        let run_dv = |dvllc: bool| {
            let mut cfg = method_config("SN4L+Dis+BTB");
            cfg.isa = IsaMode::Variable;
            cfg.uncore.dvllc = dvllc;
            run(w, cfg)
        };
        let on = run_dv(true);
        let off = run_dv(false);
        let hit_on = on.uncore.llc_hits as f64 / on.uncore.requests.max(1) as f64;
        let hit_off = off.uncore.llc_hits as f64 / off.uncore.requests.max(1) as f64;
        (w.name.to_owned(), hit_on, hit_off)
    });
    for (name, hit_on, hit_off) in rows {
        t.row(vec![
            name,
            Table::pct(hit_on),
            Table::pct(hit_off),
            Table::pct((hit_off - hit_on).max(0.0)),
        ]);
    }
    t.note("Paper: instruction hit ratio unchanged; data hit ratio drops at most 0.1%.");
    t
}

/// Every generator, in paper order, for `all_experiments`.
pub fn all() -> Vec<(&'static str, fn() -> Table)> {
    vec![
        ("fig01", fig01_footprint_miss as fn() -> Table),
        ("tab1", tab1_empty_ftq),
        ("fig02", fig02_seq_fraction),
        ("fig03", fig03_nl_coverage),
        ("fig04", fig04_cmal_nxl),
        ("fig05", fig05_side_effects),
        ("fig06", fig06_pattern_pred),
        ("fig07", fig07_branch_stability),
        ("fig08", fig08_bf_branches),
        ("fig09", fig09_bf_per_set),
        ("fig11", fig11_table_sizes),
        ("fig12", fig12_tagging),
        ("fig13", fig13_timeliness),
        ("fig14", fig14_lookups),
        ("fig15", fig15_fscr),
        ("fig16", fig16_speedup),
        ("fig17", fig17_breakdown),
        ("fig18", fig18_btb_sweep),
        ("tab2", tab2_storage),
        ("dvllc", dvllc_impact),
    ]
}
