//! Regenerates the paper's fig06_pattern_pred result. See dcfb-bench's crate docs
//! for the DCFB_WARMUP / DCFB_MEASURE / DCFB_WORKLOADS scale knobs.

fn main() {
    println!("{}", dcfb_bench::figures::fig06_pattern_pred());
}
