//! Ablation study for the proactive SN4L+Dis engine's design choices
//! (the parameters §V-B fixes empirically):
//!
//! * chain-termination depth — "four is a reasonable threshold",
//! * SN1L vs. SN4L past discontinuities — "we use SN1L ... the
//!   timeliness is obtained at the cost of lower prefetch accuracy",
//! * RLU capacity — "an RLU of eight entries performs well" (Fig. 14).
//!
//! Scale knobs: DCFB_WARMUP, DCFB_MEASURE, DCFB_WORKLOADS.

use dcfb_bench::runs::{baseline, run, scaled, workloads};
use dcfb_bench::Table;
use dcfb_prefetch::Sn4lDisConfig;
use dcfb_sim::{PrefetcherKind, SimConfig};

fn sweep(label: &str, t: &mut Table, make: impl Fn() -> Sn4lDisConfig) {
    let mut cfg = scaled(SimConfig::default());
    cfg.prefetcher = PrefetcherKind::Sn4lDis(make());
    let mut speedup = Vec::new();
    let mut bw = 0.0;
    let mut covered = 0.0;
    let mut total = 0.0;
    let mut lookups = 0.0;
    let mut n = 0.0;
    for w in workloads() {
        let base = baseline(&w);
        let rep = run(&w, cfg.clone());
        speedup.push(rep.speedup_over(&base));
        bw += rep.bandwidth_over(&base);
        lookups += rep.lookups_over(&base);
        covered += rep.cmal_covered;
        total += rep.cmal_total;
        n += 1.0;
    }
    t.row(vec![
        label.to_owned(),
        Table::x(dcfb_sim::geomean(speedup)),
        Table::pct(if total > 0.0 { covered / total } else { 0.0 }),
        Table::x(bw / n),
        Table::x(lookups / n),
    ]);
}

fn main() {
    let mut t = Table::new(
        "Ablation",
        "Proactive-engine design choices (SN4L+Dis+BTB variants)",
        &[
            "Variant",
            "Speedup (geomean)",
            "CMAL",
            "Ext. bandwidth (avg)",
            "Cache lookups (avg)",
        ],
    );

    // Depth sweep.
    for depth in [0u8, 2, 4, 8] {
        sweep(&format!("chain depth {depth}"), &mut t, || Sn4lDisConfig {
            max_depth: depth,
            ..Sn4lDisConfig::default()
        });
    }
    // Deep sequential degree.
    for degree in [1u64, 2, 4] {
        let name = if degree == 1 {
            "SN1L past discontinuities (paper)"
        } else {
            ""
        };
        let label = if name.is_empty() {
            format!("SN{degree}L past discontinuities")
        } else {
            name.to_owned()
        };
        sweep(&label, &mut t, || Sn4lDisConfig {
            deep_seq_degree: degree,
            ..Sn4lDisConfig::default()
        });
    }
    // RLU capacity.
    for rlu in [1usize, 4, 8, 32] {
        sweep(&format!("RLU {rlu} entries"), &mut t, || Sn4lDisConfig {
            rlu_entries: rlu,
            ..Sn4lDisConfig::default()
        });
    }
    t.note("Paper choices: depth 4, SN1L past discontinuities, 8-entry RLU.");
    println!("{t}");
}
