//! Regenerates the paper's fig05_side_effects result. See dcfb-bench's crate docs
//! for the DCFB_WARMUP / DCFB_MEASURE / DCFB_WORKLOADS scale knobs.

fn main() {
    println!("{}", dcfb_bench::figures::fig05_side_effects());
}
