//! Regenerates the paper's fig18_btb_sweep result. See dcfb-bench's crate docs
//! for the DCFB_WARMUP / DCFB_MEASURE / DCFB_WORKLOADS scale knobs.

fn main() {
    println!("{}", dcfb_bench::figures::fig18_btb_sweep());
}
