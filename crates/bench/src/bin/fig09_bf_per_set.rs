//! Regenerates the paper's fig09_bf_per_set result. See dcfb-bench's crate docs
//! for the DCFB_WARMUP / DCFB_MEASURE / DCFB_WORKLOADS scale knobs.

fn main() {
    println!("{}", dcfb_bench::figures::fig09_bf_per_set());
}
