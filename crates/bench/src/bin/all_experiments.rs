//! Regenerates every table and figure of the paper and prints an
//! EXPERIMENTS.md-ready markdown document to stdout.
//!
//! Scale knobs: DCFB_WARMUP, DCFB_MEASURE, DCFB_WORKLOADS.

use std::time::Instant;

fn main() {
    println!("# Regenerated experiments — Divide and Conquer Frontend Bottleneck\n");
    println!(
        "Scale: warmup {} / measure {} instructions per run, {} workloads.\n",
        dcfb_bench::warmup_instrs(),
        dcfb_bench::measure_instrs(),
        dcfb_bench::workloads().len()
    );
    for (id, gen) in dcfb_bench::figures::all() {
        let t0 = Instant::now();
        let table = gen();
        eprintln!("[{id}] regenerated in {:.1}s", t0.elapsed().as_secs_f32());
        println!("{table}");
    }
}
