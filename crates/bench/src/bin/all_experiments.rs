//! Regenerates every table and figure of the paper and prints an
//! EXPERIMENTS.md-ready markdown document to stdout.
//!
//! Scale knobs: DCFB_WARMUP, DCFB_MEASURE, DCFB_WORKLOADS, DCFB_JOBS
//! (worker threads per figure sweep; the output is byte-identical for
//! every job count — results are merged in workload order and failure
//! records are sorted before printing).
//!
//! Robustness knobs:
//!
//! * Each figure runs under `catch_unwind`: a panicking figure is
//!   recorded in the failure summary at the end of the document instead
//!   of killing the batch.
//! * Completed figures are checkpointed to a JSON file
//!   (`DCFB_CHECKPOINT`, default `target/all_experiments.checkpoint.json`)
//!   after each one finishes. `DCFB_RESUME=1` reloads the file and
//!   skips everything already present — only missing/failed figures are
//!   regenerated.
//! * `DCFB_FAIL_FIGURE=<id>` injects a panic into the named figure
//!   (fault injection for the crash-isolation path itself).
//!
//! Exits 0 when every figure completed, 4 (the run-failure exit code)
//! when any figure failed.

use dcfb_bench::checkpoint::Checkpoint;
use dcfb_errors::{panic_message, EXIT_RUN_FAILURE};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

fn main() {
    let checkpoint_path = Checkpoint::default_path();
    let resume = Checkpoint::resume_requested();
    let mut checkpoint = if resume {
        // Lenient load: a checkpoint torn by a mid-write kill (or any
        // other corruption) salvages its valid prefix instead of
        // discarding all recorded progress.
        match Checkpoint::load_lenient(&checkpoint_path) {
            Ok((cp, salvage)) => {
                if let Some(reason) = salvage {
                    eprintln!(
                        "warning: checkpoint damaged ({reason}); salvaged {} complete figure(s)",
                        cp.len()
                    );
                }
                eprintln!(
                    "resuming from {} ({} figures checkpointed)",
                    checkpoint_path.display(),
                    cp.len()
                );
                cp
            }
            Err(e) => {
                eprintln!("warning: cannot resume: {e}; starting fresh");
                Checkpoint::new()
            }
        }
    } else {
        Checkpoint::new()
    };
    let fail_figure = std::env::var("DCFB_FAIL_FIGURE").ok();

    println!("# Regenerated experiments — Divide and Conquer Frontend Bottleneck\n");
    println!(
        "Scale: warmup {} / measure {} instructions per run, {} workloads.\n",
        dcfb_bench::warmup_instrs(),
        dcfb_bench::measure_instrs(),
        dcfb_bench::workloads().len()
    );

    let mut failures: Vec<(String, String)> = Vec::new();
    for (id, gen) in dcfb_bench::figures::all() {
        if let Some(md) = checkpoint.get(id) {
            eprintln!("[{id}] skipped (checkpoint)");
            println!("{md}");
            continue;
        }
        let t0 = Instant::now();
        let inject = fail_figure.as_deref() == Some(id);
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject {
                // Deliberate: this is the fault-injection knob the
                // crash-isolation tests exercise.
                #[allow(clippy::panic)]
                {
                    panic!("injected fault: DCFB_FAIL_FIGURE={id}");
                }
            }
            gen()
        }));
        match result {
            Ok(table) => {
                let md = table.to_string();
                eprintln!("[{id}] regenerated in {:.1}s", t0.elapsed().as_secs_f32());
                println!("{md}");
                checkpoint.put(id, &md);
                if let Err(e) = checkpoint.save(&checkpoint_path) {
                    eprintln!("warning: cannot write checkpoint: {e}");
                }
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                eprintln!(
                    "[{id}] FAILED after {:.1}s: {msg}",
                    t0.elapsed().as_secs_f32()
                );
                failures.push((id.to_owned(), msg));
            }
        }
        // Individual (workload, method) runs that died inside a figure
        // (but were salvaged by the run-level isolation) count too.
        // Under parallel sweeps the registry fills in completion order,
        // so sort to keep the failure summary deterministic.
        let mut run_failures = dcfb_bench::runs::take_failures();
        run_failures.sort_by(|a, b| {
            (a.workload.as_str(), a.method.as_str()).cmp(&(b.workload.as_str(), b.method.as_str()))
        });
        for rec in run_failures {
            if let dcfb_bench::runs::RunOutcome::Failed(e) = &rec.outcome {
                failures.push((
                    format!("{id}: {} on {}", rec.method, rec.workload),
                    e.to_string(),
                ));
            }
        }
    }

    if failures.is_empty() {
        eprintln!("all figures completed");
    } else {
        println!("## Failure summary\n");
        println!("| figure | error |");
        println!("| --- | --- |");
        for (id, msg) in &failures {
            println!("| {id} | {} |", msg.replace('|', "\\|"));
        }
        println!();
        eprintln!(
            "{} figure(s) failed; completed figures are checkpointed at {} — rerun with DCFB_RESUME=1 to retry only the failures",
            failures.len(),
            checkpoint_path.display()
        );
        std::process::exit(EXIT_RUN_FAILURE);
    }
}
