//! Regenerates the paper's fig14_lookups result. See dcfb-bench's crate docs
//! for the DCFB_WARMUP / DCFB_MEASURE / DCFB_WORKLOADS scale knobs.

fn main() {
    println!("{}", dcfb_bench::figures::fig14_lookups());
}
