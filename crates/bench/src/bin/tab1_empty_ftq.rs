//! Regenerates the paper's tab1_empty_ftq result. See dcfb-bench's crate docs
//! for the DCFB_WARMUP / DCFB_MEASURE / DCFB_WORKLOADS scale knobs.

fn main() {
    println!("{}", dcfb_bench::figures::tab1_empty_ftq());
}
