//! Regenerates the paper's tab2_storage result. See dcfb-bench's crate docs
//! for the DCFB_WARMUP / DCFB_MEASURE / DCFB_WORKLOADS scale knobs.

fn main() {
    println!("{}", dcfb_bench::figures::tab2_storage());
}
