//! Shared run helpers: scaled configurations, image caching, and
//! baseline caching, so regenerating all experiments stays fast.

use dcfb_errors::{panic_message, DcfbError};
use dcfb_sim::{SimConfig, SimReport, Simulator};
use dcfb_telemetry::TelemetryReport;
use dcfb_trace::IsaMode;
use dcfb_workloads::{all_workloads, ProgramImage, ResolvedWorkload, SourceSpec, Walker, Workload};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock};

/// The trace seed used by every experiment (determinism).
pub const TRACE_SEED: u64 = 0xD0_5EED;

/// Parses an environment value, reporting malformed input.
///
/// Returns the parsed value (or `default`) plus a warning message when
/// `raw` was present but not a valid `u64`. Split from [`env_u64`] so
/// the warning path is unit-testable without touching process state.
fn parse_env_u64(name: &str, raw: Option<&str>, default: u64) -> (u64, Option<String>) {
    match raw {
        None => (default, None),
        Some(v) => match v.parse() {
            Ok(n) => (n, None),
            Err(_) => (
                default,
                Some(format!(
                    "warning: ignoring malformed {name}={v:?} (expected an unsigned integer); using default {default}"
                )),
            ),
        },
    }
}

/// Reads and memoizes one environment scale knob.
///
/// Each variable is read from the process environment exactly once; the
/// parsed value (`Some` for a valid integer, `None` for absent or
/// malformed, which falls back to the caller's default) is cached for
/// the life of the process. The malformed-value warning is returned only
/// by the call that performed the first read, so a sweep running on N
/// worker threads prints it once instead of once per worker.
fn env_u64_memo(name: &str, default: u64) -> (u64, Option<String>) {
    static CACHE: OnceLock<Mutex<HashMap<String, Option<u64>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    // The first reader holds the lock across the env read, so
    // concurrent callers cannot race to a second read/warning.
    let mut guard = lock_cache(cache);
    if let Some(parsed) = guard.get(name) {
        return (parsed.unwrap_or(default), None);
    }
    let raw = std::env::var(name).ok();
    let (value, warning) = parse_env_u64(name, raw.as_deref(), default);
    // Malformed and absent both memoize as None: the default applies,
    // and per-caller defaults stay free to differ.
    let parsed = raw.as_deref().and_then(|r| r.parse().ok());
    guard.insert(name.to_owned(), parsed);
    (value, warning)
}

pub(crate) fn env_u64(name: &str, default: u64) -> u64 {
    let (value, warning) = env_u64_memo(name, default);
    if let Some(w) = warning {
        eprintln!("{w}");
    }
    value
}

/// Warmup instructions per run (`DCFB_WARMUP`, default 1 M).
pub fn warmup_instrs() -> u64 {
    env_u64("DCFB_WARMUP", 1_000_000)
}

/// Measured instructions per run (`DCFB_MEASURE`, default 2 M).
pub fn measure_instrs() -> u64 {
    env_u64("DCFB_MEASURE", 2_000_000)
}

/// The workload list, optionally truncated by `DCFB_WORKLOADS`.
pub fn workloads() -> Vec<Workload> {
    let all = all_workloads();
    let n = env_u64("DCFB_WORKLOADS", all.len() as u64) as usize;
    all.into_iter().take(n.max(1)).collect()
}

/// Applies the experiment scale to a configuration.
pub fn scaled(mut cfg: SimConfig) -> SimConfig {
    cfg.warmup_instrs = warmup_instrs();
    cfg.measure_instrs = measure_instrs();
    cfg
}

/// A scaled configuration for a named method.
///
/// # Panics
///
/// Panics on an unknown method name; use [`try_method_config`] for
/// untrusted names.
pub fn method_config(name: &str) -> SimConfig {
    match try_method_config(name) {
        Ok(cfg) => cfg,
        // Figure generators only pass the fixed method names from their
        // tables; an unknown name here is a bug in this crate, reported
        // through the same typed error the fallible path produces.
        #[allow(clippy::panic)]
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`method_config`]: reports unknown names as
/// [`DcfbError::UnknownMethod`] with the valid list.
pub fn try_method_config(name: &str) -> Result<SimConfig, DcfbError> {
    SimConfig::for_method(name)
        .map(scaled)
        .ok_or_else(|| DcfbError::UnknownMethod {
            name: name.to_owned(),
            available: dcfb_prefetch::method_names().map(str::to_owned).collect(),
        })
}

type ImageKey = (String, IsaMode);

/// A once-per-key concurrency-safe memo: the outer mutex is held only
/// long enough to fetch/insert the per-key cell, and the expensive
/// build runs inside the cell's `OnceLock`, so N workers asking for the
/// same key build it exactly once (the rest block on the cell, not on
/// the whole cache).
type KeyedOnce<K, V> = Mutex<HashMap<K, Arc<OnceLock<V>>>>;

fn once_cell_for<K: std::hash::Hash + Eq, V>(cache: &KeyedOnce<K, V>, key: K) -> Arc<OnceLock<V>> {
    Arc::clone(lock_cache(cache).entry(key).or_default())
}

fn image_cache() -> &'static KeyedOnce<ImageKey, Arc<ProgramImage>> {
    static CACHE: OnceLock<KeyedOnce<ImageKey, Arc<ProgramImage>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Locks a cache mutex, recovering from poisoning: caches hold only
/// completed values, so a panic elsewhere never leaves them torn.
fn lock_cache<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Builds (or fetches a cached) program image for `workload`.
///
/// Concurrency-safe and build-once: parallel workers asking for the
/// same workload share one `Arc<ProgramImage>`, and the image is built
/// exactly once even when several workers miss simultaneously.
pub fn image_for(workload: &Workload, isa: IsaMode) -> Arc<ProgramImage> {
    let cell = once_cell_for(image_cache(), (workload.name.to_owned(), isa));
    Arc::clone(cell.get_or_init(|| workload.image(isa)))
}

/// Resolves a workload-source spec through the registry, routing
/// synthetic names through the process-wide image cache (so supervised
/// batches and the job server share one image per workload, exactly as
/// [`run`] does). `mix:` and `trace:` specs resolve fresh each call.
///
/// # Errors
///
/// Everything [`SourceSpec::parse`] and [`SourceSpec::resolve`] report:
/// unknown names, malformed mix options, unreadable or damaged traces.
pub fn resolved_for(name: &str, isa: IsaMode) -> Result<ResolvedWorkload, DcfbError> {
    let spec = SourceSpec::parse(name)?;
    if let SourceSpec::Synthetic(n) = &spec {
        if let Some(w) = dcfb_workloads::workload(n) {
            return Ok(ResolvedWorkload::from_image(image_for(&w, isa)));
        }
    }
    spec.resolve(isa)
}

/// Runs `cfg` on `workload` (cached image, fixed trace seed).
pub fn run(workload: &Workload, cfg: SimConfig) -> SimReport {
    let image = image_for(workload, cfg.isa);
    let mut sim = Simulator::new(cfg, Arc::clone(&image));
    let mut walker = Walker::new(image, TRACE_SEED);
    sim.run(&mut walker)
}

/// [`run`] with telemetry enabled, returning the finalized metrics
/// alongside the report. Uses the cached image so timed callers measure
/// simulation throughput, not image construction.
pub fn run_profiled(workload: &Workload, mut cfg: SimConfig) -> (SimReport, TelemetryReport) {
    cfg.telemetry = true;
    let image = image_for(workload, cfg.isa);
    let mut sim = Simulator::new(cfg, Arc::clone(&image));
    let mut walker = Walker::new(image, TRACE_SEED);
    let report = sim.run(&mut walker);
    // Telemetry was enabled above, so the report is always present.
    #[allow(clippy::expect_used)]
    let telemetry = sim.take_telemetry().expect("telemetry enabled");
    (report, telemetry)
}

fn baseline_cache() -> &'static KeyedOnce<String, SimReport> {
    static CACHE: OnceLock<KeyedOnce<String, SimReport>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The no-prefetcher baseline for `workload` at the current scale
/// (cached per process; computed exactly once even under parallel
/// workers — concurrent callers block on the in-flight run instead of
/// duplicating it).
pub fn baseline(workload: &Workload) -> SimReport {
    let key = format!("{}:{}:{}", workload.name, warmup_instrs(), measure_instrs());
    let cell = once_cell_for(baseline_cache(), key);
    cell.get_or_init(|| run(workload, method_config("Baseline")))
        .clone()
}

/// How one crash-isolated run ended.
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// The simulation completed and produced a report.
    Ok(SimReport),
    /// The run failed (panicked twice, or the config was rejected).
    Failed(DcfbError),
}

impl RunOutcome {
    /// The report, if the run succeeded.
    pub fn report(&self) -> Option<&SimReport> {
        match self {
            RunOutcome::Ok(r) => Some(r),
            RunOutcome::Failed(_) => None,
        }
    }
}

/// One crash-isolated (workload, method) run and how it went.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Workload name.
    pub workload: String,
    /// Method name.
    pub method: String,
    /// What happened.
    pub outcome: RunOutcome,
    /// Whether the run only succeeded on the reduced-scale retry.
    pub retried: bool,
}

fn failure_registry() -> &'static Mutex<Vec<RunRecord>> {
    static REG: OnceLock<Mutex<Vec<RunRecord>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Drains every failure recorded by [`run_isolated`] in this process.
pub fn take_failures() -> Vec<RunRecord> {
    match failure_registry().lock() {
        Ok(mut reg) => std::mem::take(&mut *reg),
        Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
    }
}

fn record_failure(rec: RunRecord) {
    match failure_registry().lock() {
        Ok(mut reg) => reg.push(rec),
        Err(poisoned) => poisoned.into_inner().push(rec),
    }
}

fn catch_run<F>(runner: &F, workload: &Workload, cfg: SimConfig) -> Result<SimReport, String>
where
    F: Fn(&Workload, SimConfig) -> SimReport,
{
    catch_unwind(AssertUnwindSafe(|| runner(workload, cfg)))
        .map_err(|payload| panic_message(payload.as_ref()))
}

/// Runs `method` on `workload` with crash isolation: a panicking
/// simulation is caught, retried once at reduced scale (¼ warmup and
/// measure), and — if it dies again — recorded as
/// [`RunOutcome::Failed`] in the process-wide failure registry instead
/// of taking the batch down.
pub fn run_isolated(workload: &Workload, method: &str) -> RunRecord {
    run_isolated_with(workload, method, |w, cfg| run(w, cfg))
}

/// [`run_isolated`] with an injectable runner, so tests can exercise
/// the catch/retry/record machinery with deterministic failures.
fn run_isolated_with<F>(workload: &Workload, method: &str, runner: F) -> RunRecord
where
    F: Fn(&Workload, SimConfig) -> SimReport,
{
    let cfg = match try_method_config(method) {
        Ok(cfg) => cfg,
        Err(e) => {
            let rec = RunRecord {
                workload: workload.name.to_owned(),
                method: method.to_owned(),
                outcome: RunOutcome::Failed(e),
                retried: false,
            };
            record_failure(rec.clone());
            return rec;
        }
    };
    match catch_run(&runner, workload, cfg.clone()) {
        Ok(report) => RunRecord {
            workload: workload.name.to_owned(),
            method: method.to_owned(),
            outcome: RunOutcome::Ok(report),
            retried: false,
        },
        Err(first_msg) => {
            // Retry once at reduced scale: a panic from a scale-induced
            // resource blowup may pass in a smaller window.
            let mut retry_cfg = cfg;
            retry_cfg.warmup_instrs = (retry_cfg.warmup_instrs / 4).max(1);
            retry_cfg.measure_instrs = (retry_cfg.measure_instrs / 4).max(1);
            eprintln!(
                "warning: run {method} on {} panicked ({first_msg}); retrying at reduced scale",
                workload.name
            );
            match catch_run(&runner, workload, retry_cfg) {
                Ok(report) => RunRecord {
                    workload: workload.name.to_owned(),
                    method: method.to_owned(),
                    outcome: RunOutcome::Ok(report),
                    retried: true,
                },
                Err(second_msg) => {
                    let rec = RunRecord {
                        workload: workload.name.to_owned(),
                        method: method.to_owned(),
                        outcome: RunOutcome::Failed(DcfbError::Run {
                            workload: workload.name.to_owned(),
                            method: method.to_owned(),
                            message: format!(
                                "panicked at full scale ({first_msg}) and at reduced scale ({second_msg})"
                            ),
                        }),
                        retried: true,
                    };
                    record_failure(rec.clone());
                    rec
                }
            }
        }
    }
}

/// Runs a named method on every workload, yielding
/// `(workload, report, baseline)` triples.
///
/// Each run is crash-isolated via [`run_isolated`]: a run that fails
/// (even after its reduced-scale retry) is dropped from the result and
/// recorded in the failure registry ([`take_failures`]), so one broken
/// (workload, method) pair cannot take down a whole figure sweep.
pub fn run_method_all(method: &str) -> Vec<(Workload, SimReport, SimReport)> {
    crate::sweep::parallel_map(workloads(), |w| run_with_baseline(w, method))
        .into_iter()
        .flatten()
        .collect()
}

/// One `(workload, method)` job — the unit of work the parallel
/// executor schedules for [`run_method_all`].
fn run_with_baseline(w: &Workload, method: &str) -> Option<(Workload, SimReport, SimReport)> {
    // The baseline is crash-isolated too: a dead baseline drops
    // this workload from the sweep, not the whole batch.
    let wb = w.clone();
    let base = match catch_unwind(AssertUnwindSafe(move || baseline(&wb))) {
        Ok(base) => base,
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            record_failure(RunRecord {
                workload: w.name.to_owned(),
                method: "Baseline".to_owned(),
                outcome: RunOutcome::Failed(DcfbError::Run {
                    workload: w.name.to_owned(),
                    method: "Baseline".to_owned(),
                    message: msg.clone(),
                }),
                retried: false,
            });
            eprintln!(
                "warning: dropping workload {}: baseline panicked ({msg})",
                w.name
            );
            return None;
        }
    };
    let rec = run_isolated(w, method);
    match rec.outcome {
        RunOutcome::Ok(rep) => Some((w.clone(), rep, base)),
        RunOutcome::Failed(ref e) => {
            eprintln!("warning: dropping {method} on {}: {e}", w.name);
            None
        }
    }
}

/// Runs `cfg` on every workload through the parallel executor, in
/// workload order. No per-run crash isolation: a panicking run
/// propagates out of the worker pool to the figure-level `catch_unwind`
/// in `all_experiments`, exactly like the old sequential loop.
pub fn run_all(cfg: &SimConfig) -> Vec<(Workload, SimReport)> {
    crate::sweep::parallel_map(workloads(), |w| (w.clone(), run(w, cfg.clone())))
}

/// [`run_all`] plus each workload's cached baseline.
pub fn run_all_with_baseline(cfg: &SimConfig) -> Vec<(Workload, SimReport, SimReport)> {
    crate::sweep::parallel_map(workloads(), |w| {
        let rep = run(w, cfg.clone());
        (w.clone(), rep, baseline(w))
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_defaults() {
        assert!(warmup_instrs() >= 1);
        assert!(measure_instrs() >= 1);
        assert!(!workloads().is_empty());
    }

    #[test]
    fn malformed_env_values_warn_and_fall_back() {
        // Valid value parses, no warning.
        let (v, warn) = parse_env_u64("DCFB_TEST", Some("42"), 7);
        assert_eq!(v, 42);
        assert!(warn.is_none());
        // Absent value: default, no warning.
        let (v, warn) = parse_env_u64("DCFB_TEST", None, 7);
        assert_eq!(v, 7);
        assert!(warn.is_none());
        // Malformed values: default, one-line warning naming the var.
        for bad in ["2M", "-1", "1e6", "", "0x10"] {
            let (v, warn) = parse_env_u64("DCFB_TEST", Some(bad), 7);
            assert_eq!(v, 7, "{bad:?}");
            let w = warn.unwrap_or_else(|| panic!("no warning for {bad:?}"));
            assert!(w.contains("DCFB_TEST"), "{w}");
            assert!(w.contains("warning"), "{w}");
            assert!(!w.contains('\n'), "{w}");
        }
        // End-to-end through the process environment.
        std::env::set_var("DCFB_TEST_MALFORMED_U64", "not-a-number");
        assert_eq!(env_u64("DCFB_TEST_MALFORMED_U64", 13), 13);
        std::env::remove_var("DCFB_TEST_MALFORMED_U64");
    }

    #[test]
    fn env_warning_is_emitted_exactly_once_across_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // A malformed value hammered from four worker threads must
        // produce exactly one warning (the variable is read and
        // memoized on first access), not one per worker per call.
        std::env::set_var("DCFB_TEST_WARN_ONCE", "banana");
        let warnings = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..8 {
                        let (v, warn) = env_u64_memo("DCFB_TEST_WARN_ONCE", 9);
                        assert_eq!(v, 9);
                        if warn.is_some() {
                            warnings.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(warnings.load(Ordering::SeqCst), 1);
        std::env::remove_var("DCFB_TEST_WARN_ONCE");
    }

    #[test]
    fn unknown_method_is_a_typed_error() {
        let err = try_method_config("Bogus").unwrap_err();
        match err {
            DcfbError::UnknownMethod { name, available } => {
                assert_eq!(name, "Bogus");
                assert!(available.contains(&"Shotgun".to_owned()));
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(try_method_config("Baseline").is_ok());
    }

    /// Serializes the tests touching the process-wide failure registry.
    fn registry_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = lock_cache(LOCK.get_or_init(|| Mutex::new(())));
        let _ = take_failures(); // start from a clean registry
        guard
    }

    #[test]
    fn run_isolated_records_unknown_method_failure() {
        let _guard = registry_lock();
        let w = workloads()[0].clone();
        let rec = run_isolated(&w, "NoSuchMethod");
        assert!(matches!(
            rec.outcome,
            RunOutcome::Failed(DcfbError::UnknownMethod { .. })
        ));
        let failures = take_failures();
        assert!(failures
            .iter()
            .any(|f| f.method == "NoSuchMethod" && f.workload == w.name));
    }

    #[test]
    fn run_isolated_retries_at_reduced_scale() {
        let _guard = registry_lock();
        let w = workloads()[0].clone();
        let full_measure = measure_instrs();
        // Panics at full scale, succeeds once the retry shrinks the
        // window — mimicking a scale-induced resource blowup.
        let rec = run_isolated_with(&w, "Baseline", |_, cfg| {
            assert!(cfg.measure_instrs >= 1);
            if cfg.measure_instrs >= full_measure {
                panic!("injected fault: too big");
            }
            SimReport::default()
        });
        assert!(rec.retried);
        assert!(matches!(rec.outcome, RunOutcome::Ok(_)));
        assert!(
            take_failures().is_empty(),
            "a recovered run is not a failure"
        );
    }

    #[test]
    fn run_isolated_survives_double_panic() {
        let _guard = registry_lock();
        let w = workloads()[0].clone();
        let rec = run_isolated_with(&w, "Baseline", |_, _| -> SimReport {
            panic!("injected fault: always")
        });
        assert!(rec.retried);
        match &rec.outcome {
            RunOutcome::Failed(DcfbError::Run { message, .. }) => {
                assert!(message.contains("injected fault"), "{message}");
                assert!(message.contains("reduced scale"), "{message}");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        let failures = take_failures();
        assert!(failures.iter().any(|f| f.method == "Baseline" && f.retried));
    }

    #[test]
    fn image_cache_returns_same_arc() {
        let w = &workloads()[0];
        let a = image_for(w, IsaMode::Fixed4);
        let b = image_for(w, IsaMode::Fixed4);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
